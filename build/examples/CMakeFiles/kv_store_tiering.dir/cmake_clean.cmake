file(REMOVE_RECURSE
  "CMakeFiles/kv_store_tiering.dir/kv_store_tiering.cpp.o"
  "CMakeFiles/kv_store_tiering.dir/kv_store_tiering.cpp.o.d"
  "kv_store_tiering"
  "kv_store_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
