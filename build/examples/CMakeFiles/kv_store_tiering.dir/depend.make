# Empty dependencies file for kv_store_tiering.
# This may be replaced when dependencies are built.
