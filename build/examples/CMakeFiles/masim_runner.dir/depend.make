# Empty dependencies file for masim_runner.
# This may be replaced when dependencies are built.
