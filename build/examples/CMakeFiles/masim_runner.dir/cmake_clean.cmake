file(REMOVE_RECURSE
  "CMakeFiles/masim_runner.dir/masim_runner.cpp.o"
  "CMakeFiles/masim_runner.dir/masim_runner.cpp.o.d"
  "masim_runner"
  "masim_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masim_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
