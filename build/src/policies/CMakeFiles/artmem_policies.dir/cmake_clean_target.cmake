file(REMOVE_RECURSE
  "libartmem_policies.a"
)
