file(REMOVE_RECURSE
  "CMakeFiles/artmem_policies.dir/autonuma.cpp.o"
  "CMakeFiles/artmem_policies.dir/autonuma.cpp.o.d"
  "CMakeFiles/artmem_policies.dir/autotiering.cpp.o"
  "CMakeFiles/artmem_policies.dir/autotiering.cpp.o.d"
  "CMakeFiles/artmem_policies.dir/memtis.cpp.o"
  "CMakeFiles/artmem_policies.dir/memtis.cpp.o.d"
  "CMakeFiles/artmem_policies.dir/multiclock.cpp.o"
  "CMakeFiles/artmem_policies.dir/multiclock.cpp.o.d"
  "CMakeFiles/artmem_policies.dir/nimble.cpp.o"
  "CMakeFiles/artmem_policies.dir/nimble.cpp.o.d"
  "CMakeFiles/artmem_policies.dir/tiering08.cpp.o"
  "CMakeFiles/artmem_policies.dir/tiering08.cpp.o.d"
  "CMakeFiles/artmem_policies.dir/tpp.cpp.o"
  "CMakeFiles/artmem_policies.dir/tpp.cpp.o.d"
  "libartmem_policies.a"
  "libartmem_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
