
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/autonuma.cpp" "src/policies/CMakeFiles/artmem_policies.dir/autonuma.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/autonuma.cpp.o.d"
  "/root/repo/src/policies/autotiering.cpp" "src/policies/CMakeFiles/artmem_policies.dir/autotiering.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/autotiering.cpp.o.d"
  "/root/repo/src/policies/memtis.cpp" "src/policies/CMakeFiles/artmem_policies.dir/memtis.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/memtis.cpp.o.d"
  "/root/repo/src/policies/multiclock.cpp" "src/policies/CMakeFiles/artmem_policies.dir/multiclock.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/multiclock.cpp.o.d"
  "/root/repo/src/policies/nimble.cpp" "src/policies/CMakeFiles/artmem_policies.dir/nimble.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/nimble.cpp.o.d"
  "/root/repo/src/policies/tiering08.cpp" "src/policies/CMakeFiles/artmem_policies.dir/tiering08.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/tiering08.cpp.o.d"
  "/root/repo/src/policies/tpp.cpp" "src/policies/CMakeFiles/artmem_policies.dir/tpp.cpp.o" "gcc" "src/policies/CMakeFiles/artmem_policies.dir/tpp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/artmem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/artmem_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/lru/CMakeFiles/artmem_lru.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/artmem_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
