# Empty compiler generated dependencies file for artmem_policies.
# This may be replaced when dependencies are built.
