file(REMOVE_RECURSE
  "CMakeFiles/artmem_stats.dir/access_ratio.cpp.o"
  "CMakeFiles/artmem_stats.dir/access_ratio.cpp.o.d"
  "CMakeFiles/artmem_stats.dir/ema_bins.cpp.o"
  "CMakeFiles/artmem_stats.dir/ema_bins.cpp.o.d"
  "libartmem_stats.a"
  "libartmem_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
