# Empty compiler generated dependencies file for artmem_stats.
# This may be replaced when dependencies are built.
