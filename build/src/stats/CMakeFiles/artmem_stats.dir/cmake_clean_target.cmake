file(REMOVE_RECURSE
  "libartmem_stats.a"
)
