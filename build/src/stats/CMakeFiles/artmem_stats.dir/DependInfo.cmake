
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/access_ratio.cpp" "src/stats/CMakeFiles/artmem_stats.dir/access_ratio.cpp.o" "gcc" "src/stats/CMakeFiles/artmem_stats.dir/access_ratio.cpp.o.d"
  "/root/repo/src/stats/ema_bins.cpp" "src/stats/CMakeFiles/artmem_stats.dir/ema_bins.cpp.o" "gcc" "src/stats/CMakeFiles/artmem_stats.dir/ema_bins.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/artmem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/artmem_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
