# Empty dependencies file for artmem_monitor.
# This may be replaced when dependencies are built.
