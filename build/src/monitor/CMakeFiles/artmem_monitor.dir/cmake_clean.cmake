file(REMOVE_RECURSE
  "CMakeFiles/artmem_monitor.dir/damon.cpp.o"
  "CMakeFiles/artmem_monitor.dir/damon.cpp.o.d"
  "libartmem_monitor.a"
  "libartmem_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
