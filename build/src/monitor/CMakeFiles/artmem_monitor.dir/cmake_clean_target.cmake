file(REMOVE_RECURSE
  "libartmem_monitor.a"
)
