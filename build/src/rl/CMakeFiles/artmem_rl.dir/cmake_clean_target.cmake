file(REMOVE_RECURSE
  "libartmem_rl.a"
)
