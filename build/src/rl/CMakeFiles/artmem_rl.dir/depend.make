# Empty dependencies file for artmem_rl.
# This may be replaced when dependencies are built.
