file(REMOVE_RECURSE
  "CMakeFiles/artmem_rl.dir/agent.cpp.o"
  "CMakeFiles/artmem_rl.dir/agent.cpp.o.d"
  "CMakeFiles/artmem_rl.dir/qtable.cpp.o"
  "CMakeFiles/artmem_rl.dir/qtable.cpp.o.d"
  "libartmem_rl.a"
  "libartmem_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
