file(REMOVE_RECURSE
  "CMakeFiles/artmem_util.dir/cli.cpp.o"
  "CMakeFiles/artmem_util.dir/cli.cpp.o.d"
  "CMakeFiles/artmem_util.dir/config.cpp.o"
  "CMakeFiles/artmem_util.dir/config.cpp.o.d"
  "CMakeFiles/artmem_util.dir/logging.cpp.o"
  "CMakeFiles/artmem_util.dir/logging.cpp.o.d"
  "CMakeFiles/artmem_util.dir/rng.cpp.o"
  "CMakeFiles/artmem_util.dir/rng.cpp.o.d"
  "CMakeFiles/artmem_util.dir/stats.cpp.o"
  "CMakeFiles/artmem_util.dir/stats.cpp.o.d"
  "CMakeFiles/artmem_util.dir/table.cpp.o"
  "CMakeFiles/artmem_util.dir/table.cpp.o.d"
  "CMakeFiles/artmem_util.dir/zipf.cpp.o"
  "CMakeFiles/artmem_util.dir/zipf.cpp.o.d"
  "libartmem_util.a"
  "libartmem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
