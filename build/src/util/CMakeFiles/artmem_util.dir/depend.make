# Empty dependencies file for artmem_util.
# This may be replaced when dependencies are built.
