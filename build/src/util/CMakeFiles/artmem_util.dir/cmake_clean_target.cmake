file(REMOVE_RECURSE
  "libartmem_util.a"
)
