# Empty dependencies file for artmem_sim.
# This may be replaced when dependencies are built.
