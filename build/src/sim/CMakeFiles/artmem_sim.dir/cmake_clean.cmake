file(REMOVE_RECURSE
  "CMakeFiles/artmem_sim.dir/engine.cpp.o"
  "CMakeFiles/artmem_sim.dir/engine.cpp.o.d"
  "CMakeFiles/artmem_sim.dir/experiment.cpp.o"
  "CMakeFiles/artmem_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/artmem_sim.dir/registry.cpp.o"
  "CMakeFiles/artmem_sim.dir/registry.cpp.o.d"
  "libartmem_sim.a"
  "libartmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
