file(REMOVE_RECURSE
  "libartmem_sim.a"
)
