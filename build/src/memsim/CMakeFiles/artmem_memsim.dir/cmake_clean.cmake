file(REMOVE_RECURSE
  "CMakeFiles/artmem_memsim.dir/async_sampler.cpp.o"
  "CMakeFiles/artmem_memsim.dir/async_sampler.cpp.o.d"
  "CMakeFiles/artmem_memsim.dir/mlc.cpp.o"
  "CMakeFiles/artmem_memsim.dir/mlc.cpp.o.d"
  "CMakeFiles/artmem_memsim.dir/pebs.cpp.o"
  "CMakeFiles/artmem_memsim.dir/pebs.cpp.o.d"
  "CMakeFiles/artmem_memsim.dir/tiered_machine.cpp.o"
  "CMakeFiles/artmem_memsim.dir/tiered_machine.cpp.o.d"
  "libartmem_memsim.a"
  "libartmem_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
