# Empty dependencies file for artmem_memsim.
# This may be replaced when dependencies are built.
