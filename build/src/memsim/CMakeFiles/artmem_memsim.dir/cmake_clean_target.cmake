file(REMOVE_RECURSE
  "libartmem_memsim.a"
)
