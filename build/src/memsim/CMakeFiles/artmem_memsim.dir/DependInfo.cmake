
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/async_sampler.cpp" "src/memsim/CMakeFiles/artmem_memsim.dir/async_sampler.cpp.o" "gcc" "src/memsim/CMakeFiles/artmem_memsim.dir/async_sampler.cpp.o.d"
  "/root/repo/src/memsim/mlc.cpp" "src/memsim/CMakeFiles/artmem_memsim.dir/mlc.cpp.o" "gcc" "src/memsim/CMakeFiles/artmem_memsim.dir/mlc.cpp.o.d"
  "/root/repo/src/memsim/pebs.cpp" "src/memsim/CMakeFiles/artmem_memsim.dir/pebs.cpp.o" "gcc" "src/memsim/CMakeFiles/artmem_memsim.dir/pebs.cpp.o.d"
  "/root/repo/src/memsim/tiered_machine.cpp" "src/memsim/CMakeFiles/artmem_memsim.dir/tiered_machine.cpp.o" "gcc" "src/memsim/CMakeFiles/artmem_memsim.dir/tiered_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/artmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
