# Empty dependencies file for artmem_core.
# This may be replaced when dependencies are built.
