file(REMOVE_RECURSE
  "libartmem_core.a"
)
