file(REMOVE_RECURSE
  "CMakeFiles/artmem_core.dir/artmem.cpp.o"
  "CMakeFiles/artmem_core.dir/artmem.cpp.o.d"
  "libartmem_core.a"
  "libartmem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
