file(REMOVE_RECURSE
  "CMakeFiles/artmem_lru.dir/lru_lists.cpp.o"
  "CMakeFiles/artmem_lru.dir/lru_lists.cpp.o.d"
  "libartmem_lru.a"
  "libartmem_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
