# Empty dependencies file for artmem_lru.
# This may be replaced when dependencies are built.
