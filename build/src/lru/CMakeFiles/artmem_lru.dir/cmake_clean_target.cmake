file(REMOVE_RECURSE
  "libartmem_lru.a"
)
