file(REMOVE_RECURSE
  "CMakeFiles/artmem_workloads.dir/apps.cpp.o"
  "CMakeFiles/artmem_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/btree.cpp.o"
  "CMakeFiles/artmem_workloads.dir/btree.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/factory.cpp.o"
  "CMakeFiles/artmem_workloads.dir/factory.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/graph.cpp.o"
  "CMakeFiles/artmem_workloads.dir/graph.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/masim.cpp.o"
  "CMakeFiles/artmem_workloads.dir/masim.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/mixer.cpp.o"
  "CMakeFiles/artmem_workloads.dir/mixer.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/patterns.cpp.o"
  "CMakeFiles/artmem_workloads.dir/patterns.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/trace.cpp.o"
  "CMakeFiles/artmem_workloads.dir/trace.cpp.o.d"
  "CMakeFiles/artmem_workloads.dir/ycsb.cpp.o"
  "CMakeFiles/artmem_workloads.dir/ycsb.cpp.o.d"
  "libartmem_workloads.a"
  "libartmem_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
