# Empty compiler generated dependencies file for artmem_workloads.
# This may be replaced when dependencies are built.
