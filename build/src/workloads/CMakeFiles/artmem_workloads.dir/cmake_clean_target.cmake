file(REMOVE_RECURSE
  "libartmem_workloads.a"
)
