
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/apps.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/apps.cpp.o.d"
  "/root/repo/src/workloads/btree.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/btree.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/btree.cpp.o.d"
  "/root/repo/src/workloads/factory.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/factory.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/factory.cpp.o.d"
  "/root/repo/src/workloads/graph.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/graph.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/graph.cpp.o.d"
  "/root/repo/src/workloads/masim.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/masim.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/masim.cpp.o.d"
  "/root/repo/src/workloads/mixer.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/mixer.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/mixer.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/patterns.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/patterns.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/trace.cpp.o.d"
  "/root/repo/src/workloads/ycsb.cpp" "src/workloads/CMakeFiles/artmem_workloads.dir/ycsb.cpp.o" "gcc" "src/workloads/CMakeFiles/artmem_workloads.dir/ycsb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/artmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
