# Empty dependencies file for artmem_cli.
# This may be replaced when dependencies are built.
