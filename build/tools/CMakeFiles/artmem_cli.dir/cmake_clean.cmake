file(REMOVE_RECURSE
  "CMakeFiles/artmem_cli.dir/artmem_cli.cpp.o"
  "CMakeFiles/artmem_cli.dir/artmem_cli.cpp.o.d"
  "artmem"
  "artmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
