file(REMOVE_RECURSE
  "CMakeFiles/test_throttle.dir/test_throttle.cpp.o"
  "CMakeFiles/test_throttle.dir/test_throttle.cpp.o.d"
  "test_throttle"
  "test_throttle.pdb"
  "test_throttle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
