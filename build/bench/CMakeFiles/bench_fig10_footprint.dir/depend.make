# Empty dependencies file for bench_fig10_footprint.
# This may be replaced when dependencies are built.
