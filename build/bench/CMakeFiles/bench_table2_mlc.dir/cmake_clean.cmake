file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_mlc.dir/bench_table2_mlc.cpp.o"
  "CMakeFiles/bench_table2_mlc.dir/bench_table2_mlc.cpp.o.d"
  "bench_table2_mlc"
  "bench_table2_mlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
