# Empty dependencies file for bench_table2_mlc.
# This may be replaced when dependencies are built.
