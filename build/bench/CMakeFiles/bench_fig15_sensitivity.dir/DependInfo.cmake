
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_sensitivity.cpp" "bench/CMakeFiles/bench_fig15_sensitivity.dir/bench_fig15_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig15_sensitivity.dir/bench_fig15_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/artmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/artmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/artmem_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/artmem_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/artmem_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/artmem_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lru/CMakeFiles/artmem_lru.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/artmem_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/artmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
