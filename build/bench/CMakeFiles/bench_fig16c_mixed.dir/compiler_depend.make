# Empty compiler generated dependencies file for bench_fig16c_mixed.
# This may be replaced when dependencies are built.
