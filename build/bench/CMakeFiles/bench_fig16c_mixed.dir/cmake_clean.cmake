file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16c_mixed.dir/bench_fig16c_mixed.cpp.o"
  "CMakeFiles/bench_fig16c_mixed.dir/bench_fig16c_mixed.cpp.o.d"
  "bench_fig16c_mixed"
  "bench_fig16c_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16c_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
