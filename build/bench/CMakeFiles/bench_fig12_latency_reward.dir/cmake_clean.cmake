file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_latency_reward.dir/bench_fig12_latency_reward.cpp.o"
  "CMakeFiles/bench_fig12_latency_reward.dir/bench_fig12_latency_reward.cpp.o.d"
  "bench_fig12_latency_reward"
  "bench_fig12_latency_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_latency_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
