# Empty compiler generated dependencies file for bench_fig12_latency_reward.
# This may be replaced when dependencies are built.
