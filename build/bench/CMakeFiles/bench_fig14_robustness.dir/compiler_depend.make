# Empty compiler generated dependencies file for bench_fig14_robustness.
# This may be replaced when dependencies are built.
