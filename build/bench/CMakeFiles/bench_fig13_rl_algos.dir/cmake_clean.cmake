file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_rl_algos.dir/bench_fig13_rl_algos.cpp.o"
  "CMakeFiles/bench_fig13_rl_algos.dir/bench_fig13_rl_algos.cpp.o.d"
  "bench_fig13_rl_algos"
  "bench_fig13_rl_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_rl_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
