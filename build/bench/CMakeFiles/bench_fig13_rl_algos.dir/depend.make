# Empty dependencies file for bench_fig13_rl_algos.
# This may be replaced when dependencies are built.
