file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_threshold.dir/bench_fig4_threshold.cpp.o"
  "CMakeFiles/bench_fig4_threshold.dir/bench_fig4_threshold.cpp.o.d"
  "bench_fig4_threshold"
  "bench_fig4_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
