file(REMOVE_RECURSE
  "CMakeFiles/bench_debug_single.dir/bench_debug_single.cpp.o"
  "CMakeFiles/bench_debug_single.dir/bench_debug_single.cpp.o.d"
  "bench_debug_single"
  "bench_debug_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_debug_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
