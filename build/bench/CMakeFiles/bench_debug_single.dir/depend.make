# Empty dependencies file for bench_debug_single.
# This may be replaced when dependencies are built.
