// detlint fixture: explicitly seeded RNG — must produce no findings.
#include <cstdint>
#include <random>

std::uint32_t
fixture_seeded_rng(std::uint64_t seed)
{
    // An engine constructed from an explicit deterministic seed is the
    // sanctioned pattern (the tree itself uses util/rng.hpp).
    std::mt19937 engine(static_cast<std::uint32_t>(seed));
    std::mt19937_64 wide(seed);
    return static_cast<std::uint32_t>(engine() + wide());
}
