// detlint fixture: consumed status results — must produce no findings
// even with "try_load" and ".emit" configured as status functions.
#include <iostream>
#include <optional>

struct Sink {
    bool emit(std::ostream& os) { return os.good(); }
};

std::optional<int> try_load(int source);

int
fixture_consumed_status(Sink& sink)
{
    const auto loaded = try_load(1);
    if (!sink.emit(std::cout))
        return -1;
    (void)try_load(2);  // explicit discard is an acknowledgement
    // A free function named emit must not match the member-only entry.
    return loaded.value_or(0);
}
