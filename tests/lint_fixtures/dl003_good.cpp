// detlint fixture: ordered containers — must produce no findings.
#include <map>
#include <set>
#include <string>
#include <vector>

int
fixture_ordered_iteration(const std::map<std::string, int>& scores)
{
    std::set<int> seen;
    std::vector<int> flat;
    int total = 0;
    for (const auto& [name, value] : scores) {
        flat.push_back(value);
        total += static_cast<int>(name.size());
    }
    return total + static_cast<int>(seen.size() + flat.size());
}
