// detlint fixture: order-fixed reductions — must produce no findings.
#include <cstdint>
#include <numeric>
#include <vector>

double
fixture_ordered_reductions(const std::vector<double>& values)
{
    // Explicit job-order loop: the reduction order is the code order.
    double total = 0.0;
    for (const double value : values)
        total += value;
    // Integer accumulate is exact; order cannot change the result.
    std::vector<std::uint64_t> counts(4, 1);
    const std::uint64_t n =
        std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
    return total + static_cast<double>(n);
}
