// detlint fixture: every construct below must fire DL002 (unseeded or
// platform-seeded RNG).
#include <cstdlib>
#include <random>

int
fixture_platform_entropy()
{
    srand(42);
    int a = rand();
    std::random_device device;
    std::mt19937 unseeded;
    std::default_random_engine also_unseeded;
    return a + static_cast<int>(device() + unseeded() + also_unseeded());
}
