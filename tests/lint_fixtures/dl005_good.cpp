// detlint fixture: capability-annotated wrappers — must produce no
// findings. Mirrors the util/sync.hpp pattern without including it
// (fixtures are standalone).
struct Mutex {
    void lock();
    void unlock();
};

struct CondVar {
    void notify_one();
};

struct FixtureAnnotatedPrimitives {
    Mutex mutex;
    CondVar cv;
    int guarded = 0;
};
