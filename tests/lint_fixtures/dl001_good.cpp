// detlint fixture: simulated-time usage — must produce no findings.
#include <cstdint>

struct Machine {
    std::uint64_t now() const { return tick; }
    std::uint64_t tick = 0;
};

std::uint64_t
fixture_simulated_time(const Machine& machine)
{
    // Durations are fine; only clock *reads* are banned. A comment
    // mentioning std::chrono::steady_clock must not fire either.
    const std::uint64_t start = machine.now();
    const char* label = "std::chrono::system_clock";  // string, not a call
    return start + (label != nullptr ? 1u : 0u);
}
