// detlint fixture: tenancy code drawing from the frozen kJob seed
// stream — every use below must fire DL002. The path places this file
// under src/tenancy, where the scoped rule applies: tenant seed
// streams must derive from SeedDomain::kTenant, or tenant 3 collides
// with sweep job 3.
#include <cstdint>

enum class SeedDomain : std::uint64_t { kJob = 0, kTenant = 1 };

std::uint64_t derive_seed(std::uint64_t base, SeedDomain domain,
                          std::uint64_t index);

std::uint64_t
fixture_tenant_seed(std::uint64_t base, std::uint32_t tenant)
{
    const auto wrong = derive_seed(base, SeedDomain::kJob, tenant);
    return wrong ^ static_cast<std::uint64_t>(SeedDomain::kJob);
}
