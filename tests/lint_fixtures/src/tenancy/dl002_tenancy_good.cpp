// detlint fixture: tenancy code deriving its streams from the tenant
// seed domain — must produce no findings.
#include <cstdint>

enum class SeedDomain : std::uint64_t { kJob = 0, kTenant = 1 };

std::uint64_t derive_seed(std::uint64_t base, SeedDomain domain,
                          std::uint64_t index);

std::uint64_t
fixture_tenant_seed(std::uint64_t base, std::uint32_t tenant)
{
    return derive_seed(base, SeedDomain::kTenant, tenant);
}
