// detlint fixture: discarded status results. Fires only when the test
// config lists "try_load" and ".emit" as status functions.
#include <iostream>
#include <optional>

struct Sink {
    bool emit(std::ostream& os) { return os.good(); }
};

std::optional<int> try_load(int source);

void
fixture_discarded_status(Sink& sink)
{
    try_load(1);
    sink.emit(std::cout);
}
