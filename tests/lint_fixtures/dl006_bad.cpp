// detlint fixture: shared mutable statics — every declaration below
// must fire DL006.
#include <cstdint>
#include <string>

static int fixture_counter = 0;
static std::uint64_t fixture_total;
static std::string fixture_name = "shared";
inline static double fixture_rate = 0.5;
thread_local int fixture_scratch = 0;

int
fixture_bump()
{
    return ++fixture_counter;
}
