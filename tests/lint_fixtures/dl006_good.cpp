// detlint fixture: immutable or non-static state — must produce no
// findings.
#include <cstdint>

static const int kFixtureLimit = 8;
static constexpr double kFixtureRate = 0.5;

static int fixture_helper(int value);  // function, not data

int
fixture_local_state(int input)
{
    int counter = 0;  // per-call, not shared
    counter += input;
    return fixture_helper(counter) + kFixtureLimit +
           static_cast<int>(kFixtureRate);
}
