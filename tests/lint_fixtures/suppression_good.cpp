// detlint fixture: valid suppressions — must produce no findings.
#include <unordered_map>

// Same-line form: rule id plus a mandatory reason.
std::unordered_map<int, int> fixture_cache;  // lint:allow(DL003,DL006) fixture: order never observed

// Next-line form: a suppression on its own comment line covers the
// following line of code.
// lint:allow(DL003) fixture: keys are drained through a sorted copy
std::unordered_map<int, int> fixture_index;
