// detlint fixture: every line below must fire DL001 (wall-clock read).
// Never compiled; excluded from the self-lint by configs/detlint.toml.
#include <chrono>
#include <ctime>

long
fixture_wall_clock_reads()
{
    auto a = std::chrono::steady_clock::now();
    auto b = std::chrono::system_clock::now();
    auto c = std::chrono::high_resolution_clock::now();
    long d = time(nullptr);
    long e = clock();
    (void)a;
    (void)b;
    (void)c;
    return d + e;
}
