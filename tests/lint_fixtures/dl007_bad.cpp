// detlint fixture: order-sensitive floating-point reductions — every
// statement below must fire DL007.
#include <execution>
#include <numeric>
#include <vector>

double
fixture_unordered_reductions(const std::vector<double>& values)
{
    double a = std::reduce(values.begin(), values.end());
    double b = std::reduce(std::execution::par, values.begin(),
                           values.end());
    double c = std::accumulate(values.begin(), values.end(), 0.0);
    return a + b + c;
}
