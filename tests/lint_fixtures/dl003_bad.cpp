// detlint fixture: every container below must fire DL003
// (implementation-defined iteration order).
#include <string>
#include <unordered_map>
#include <unordered_set>

int
fixture_hash_order(const std::unordered_map<std::string, int>& scores)
{
    std::unordered_set<int> seen;
    int total = 0;
    for (const auto& [name, value] : scores)
        total += value + static_cast<int>(name.size());
    return total + static_cast<int>(seen.size());
}
