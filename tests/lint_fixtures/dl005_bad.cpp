// detlint fixture: raw std synchronization primitives — every member
// below must fire DL005.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

struct FixtureRawPrimitives {
    std::mutex mutex;
    std::shared_mutex rw_mutex;
    std::condition_variable cv;
    std::condition_variable_any cv_any;
};
