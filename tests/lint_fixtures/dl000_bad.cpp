// detlint fixture: malformed suppressions — every marker below must
// fire DL000 (and must NOT suppress anything).
int fixture_a = 0;  // lint:allow(DL999) no such rule
int fixture_b = 0;  // lint:allow(DL003)
int fixture_c = 0;  // lint:allow(DL000) the meta-rule cannot be allowed
