/**
 * @file
 * Cross-cutting integration and failure-injection tests: shipped
 * config files, trace-frozen policy comparisons, machine capacity
 * edges, and PEBS overload behaviour inside the engine.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "../bench/bench_common.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "util/cli.hpp"
#include "workloads/masim.hpp"
#include "workloads/simple.hpp"
#include "workloads/trace.hpp"

namespace artmem {
namespace {

constexpr Bytes kPage = 2ull << 20;

std::string
repo_config(const std::string& name)
{
    // Tests run from build/tests (ctest) or build; search upward.
    for (auto dir = std::filesystem::current_path();
         dir != dir.root_path(); dir = dir.parent_path()) {
        const auto candidate = dir / "configs" / name;
        if (std::filesystem::exists(candidate))
            return candidate.string();
    }
    return "";
}

TEST(ShippedConfigs, ParseAndMatchBuiltInPatterns)
{
    const auto path = repo_config("s1.cfg");
    if (path.empty())
        GTEST_SKIP() << "configs/ not found from test cwd";
    const auto spec =
        workloads::Masim::parse_spec(KvConfig::load(path));
    EXPECT_EQ(spec.name, "s1");
    EXPECT_EQ(spec.footprint, 32ull << 30);
    ASSERT_EQ(spec.phases.size(), 1u);
    EXPECT_EQ(spec.phases[0].regions.size(), 3u);
}

TEST(ShippedConfigs, AllFourPatternsRun)
{
    for (const char* name : {"s1.cfg", "s2.cfg", "s3.cfg", "s4.cfg",
                             "mixed_demo.cfg"}) {
        const auto path = repo_config(name);
        if (path.empty())
            GTEST_SKIP() << "configs/ not found from test cwd";
        auto spec = workloads::Masim::parse_spec(KvConfig::load(path));
        // Shrink for test speed.
        for (auto& phase : spec.phases)
            phase.accesses = 2000;
        workloads::Masim gen(spec, kPage, 1);
        std::vector<PageId> buf(512);
        EXPECT_GT(gen.fill(buf), 0u) << name;
    }
}

TEST(TraceFrozen, PoliciesSeeIdenticalStreams)
{
    // Record one stochastic workload, then replay it under two
    // policies: the access counts delivered to the machines must be
    // identical, so runtime differences are pure policy effects.
    const std::string path =
        ::testing::TempDir() + "/frozen_ycsb.trace";
    {
        workloads::TraceWriter writer(
            workloads::make_workload("ycsb", kPage, 300000, 9), path,
            kPage);
        std::vector<PageId> buf(4096);
        while (writer.fill(buf) > 0) {
        }
    }
    auto run = [&](const char* policy_name) {
        workloads::TraceReplay replay(path);
        auto mc = sim::make_machine_config(replay.footprint(),
                                           sim::RatioSpec{1, 4}, kPage);
        memsim::TieredMachine machine(mc);
        auto policy = sim::make_policy(policy_name);
        sim::EngineConfig engine;
        return sim::run_simulation(replay, *policy, machine, engine);
    };
    const auto a = run("static");
    const auto b = run("memtis");
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.totals.total_accesses(), b.totals.total_accesses());
}

TEST(MachineEdges, FootprintLargerThanMachineIsFatal)
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 64 * kPage;
    cfg.tiers[0].capacity = 16 * kPage;
    cfg.tiers[1].capacity = 16 * kPage;  // 32 < 64 pages
    EXPECT_EXIT(memsim::TieredMachine{cfg},
                ::testing::ExitedWithCode(1), "exceeds machine capacity");
}

TEST(MachineEdges, MisalignedAddressSpaceIsFatal)
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = kPage + 1;
    EXPECT_EXIT(memsim::TieredMachine{cfg},
                ::testing::ExitedWithCode(1), "page aligned");
}

TEST(MachineEdges, ContentionRangeValidated)
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 4 * kPage;
    cfg.tiers[0].capacity = 4 * kPage;
    cfg.tiers[1].capacity = 4 * kPage;
    cfg.migration_contention = 1.5;
    EXPECT_EXIT(memsim::TieredMachine{cfg},
                ::testing::ExitedWithCode(1), "migration_contention");
}

TEST(MasimEdges, RegionBeyondFootprintIsFatal)
{
    workloads::MasimSpec spec;
    spec.name = "bad";
    spec.footprint = 4 * kPage;
    workloads::MasimPhase phase;
    phase.accesses = 10;
    phase.regions = {{2 * kPage, 4 * kPage, 1.0, false}};
    spec.phases.push_back(phase);
    EXPECT_EXIT((workloads::Masim{spec, kPage, 1}),
                ::testing::ExitedWithCode(1), "exceeds footprint");
}

TEST(MasimEdges, MalformedConfigLineIsFatal)
{
    EXPECT_EXIT(KvConfig::parse("this line has no equals sign"),
                ::testing::ExitedWithCode(1), "missing '='");
}

TEST(MasimEdges, UnknownSpecKeyIsFatalAndNamed)
{
    // A typo ("acesses") must not silently fall back to a default; the
    // error names the offending key.
    const auto cfg = KvConfig::parse(
        "name = typo\nfootprint_mib = 8\nphases = 1\n"
        "phase0.acesses = 100\nphase0.regions = 1\n"
        "phase0.region0 = 0 8 1.0\n");
    EXPECT_EXIT(workloads::Masim::parse_spec(cfg),
                ::testing::ExitedWithCode(1), "phase0.acesses");
}

TEST(MasimEdges, NonNumericRegionTripleIsFatal)
{
    const auto cfg = KvConfig::parse(
        "name = bad\nfootprint_mib = 8\nphases = 1\n"
        "phase0.accesses = 100\nphase0.regions = 1\n"
        "phase0.region0 = zero 8 1.0\n");
    EXPECT_EXIT(workloads::Masim::parse_spec(cfg),
                ::testing::ExitedWithCode(1), "malformed phase0.region0");
}

TEST(MasimEdges, UnknownRegionModeIsFatal)
{
    const auto cfg = KvConfig::parse(
        "name = bad\nfootprint_mib = 8\nphases = 1\n"
        "phase0.accesses = 100\nphase0.regions = 1\n"
        "phase0.region0 = 0 8 1.0 sequentialish\n");
    EXPECT_EXIT(workloads::Masim::parse_spec(cfg),
                ::testing::ExitedWithCode(1), "unknown access mode");
}

TEST(MasimEdges, TrailingGarbageInRegionIsFatal)
{
    const auto cfg = KvConfig::parse(
        "name = bad\nfootprint_mib = 8\nphases = 1\n"
        "phase0.accesses = 100\nphase0.regions = 1\n"
        "phase0.region0 = 0 8 1.0 seq extra\n");
    EXPECT_EXIT(workloads::Masim::parse_spec(cfg),
                ::testing::ExitedWithCode(1), "trailing garbage");
}

TEST(MasimEdges, NonNumericValueForIntKeyIsFatal)
{
    const auto cfg = KvConfig::parse(
        "name = bad\nfootprint_mib = lots\nphases = 1\n"
        "phase0.accesses = 100\nphase0.regions = 1\n"
        "phase0.region0 = 0 8 1.0\n");
    EXPECT_EXIT(workloads::Masim::parse_spec(cfg),
                ::testing::ExitedWithCode(1), "footprint_mib");
}

TEST(ShippedConfigs, AllPassTheStrictKeyValidation)
{
    // Every config we ship must survive the unknown-key rejection added
    // to parse_spec; a config drifting out of the schema is a bug here,
    // not at the user's machine.
    for (const char* name : {"s1.cfg", "s2.cfg", "s3.cfg", "s4.cfg",
                             "mixed_demo.cfg"}) {
        const auto path = repo_config(name);
        if (path.empty())
            GTEST_SKIP() << "configs/ not found from test cwd";
        const auto spec =
            workloads::Masim::parse_spec(KvConfig::load(path));
        EXPECT_FALSE(spec.phases.empty()) << name;
    }
}

TEST(CliEdges, FlagNamesEnumeratesParsedFlags)
{
    const char* argv[] = {"prog", "--seed=7", "--csv", "run"};
    const auto args = CliArgs::parse(4, const_cast<char**>(argv));
    const auto names = args.flag_names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "csv");  // sorted
    EXPECT_EQ(names[1], "seed");
}

TEST(BenchOptionsEdges, UnknownFlagIsFatalAndNamed)
{
    const char* argv[] = {"bench", "--acesses=100"};
    EXPECT_EXIT(
        bench::BenchOptions::parse(2, const_cast<char**>(argv)),
        ::testing::ExitedWithCode(1), "unknown flag --acesses");
}

TEST(BenchOptionsEdges, ExtraFlagsAreAccepted)
{
    const char* argv[] = {"bench", "--workload=s1", "--quick"};
    const auto opt = bench::BenchOptions::parse(
        3, const_cast<char**>(argv), 8000, {"workload"});
    EXPECT_EQ(opt.accesses, 2000u);  // --quick quarters the default
}

TEST(PebsOverload, TinyBufferDropsButEngineSurvives)
{
    // Failure injection: a 64-slot PEBS buffer against a 1 ms drain
    // cadence guarantees drops; the run must still complete with
    // correct access accounting.
    sim::RunSpec spec;
    spec.workload = "s1";
    spec.policy = "memtis";
    spec.accesses = 400000;
    spec.engine.pebs.buffer_capacity = 64;
    spec.engine.pebs.period = 2;  // flood it
    const auto r = sim::run_experiment(spec);
    EXPECT_EQ(r.accesses, 400000u);
    EXPECT_GT(r.pebs_dropped, 0u);
    EXPECT_EQ(r.pebs_recorded, 200000u);
}

TEST(EngineEdges, ZeroLengthWorkloadFinishesImmediately)
{
    workloads::SequentialScan gen(4 * kPage, kPage, 0);
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 4 * kPage;
    cfg.tiers[0].capacity = 4 * kPage;
    cfg.tiers[1].capacity = 8 * kPage;
    memsim::TieredMachine machine(cfg);
    auto policy = sim::make_policy("artmem");
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, *policy, machine, engine);
    EXPECT_EQ(r.accesses, 0u);
    EXPECT_DOUBLE_EQ(r.fast_ratio, 1.0);  // idle convention
}

}  // namespace
}  // namespace artmem
