/**
 * @file
 * Unit tests for the tabular RL substrate: Q-table mechanics,
 * Q-learning and SARSA updates, and serialization.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/agent.hpp"
#include "rl/qtable.hpp"

namespace artmem::rl {
namespace {

TEST(QTable, InitAndAccess)
{
    QTable q(3, 4, 0.5);
    EXPECT_EQ(q.states(), 3);
    EXPECT_EQ(q.actions(), 4);
    EXPECT_DOUBLE_EQ(q.at(2, 3), 0.5);
    q.at(1, 2) = 7.0;
    EXPECT_DOUBLE_EQ(q.at(1, 2), 7.0);
}

TEST(QTable, BestActionAndTies)
{
    QTable q(2, 3);
    q.at(0, 1) = 2.0;
    q.at(0, 2) = 1.0;
    EXPECT_EQ(q.best_action(0), 1);
    EXPECT_DOUBLE_EQ(q.max_q(0), 2.0);
    // All-zero row: ties break to action 0.
    EXPECT_EQ(q.best_action(1), 0);
}

TEST(QTable, EpsilonZeroIsGreedy)
{
    QTable q(1, 4);
    q.at(0, 3) = 1.0;
    Rng rng(1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(q.select(0, 0.0, rng), 3);
}

TEST(QTable, EpsilonOneExploresAllActions)
{
    QTable q(1, 4);
    q.at(0, 3) = 1.0;
    Rng rng(1);
    std::vector<int> seen(4, 0);
    for (int i = 0; i < 400; ++i)
        ++seen[q.select(0, 1.0, rng)];
    for (int a = 0; a < 4; ++a)
        EXPECT_GT(seen[a], 40) << a;
}

TEST(QTable, SaveLoadRoundTrip)
{
    QTable q(3, 2);
    q.at(0, 0) = 1.25;
    q.at(2, 1) = -3.5;
    std::stringstream ss;
    q.save(ss);
    QTable loaded = QTable::load(ss);
    EXPECT_EQ(loaded.states(), 3);
    EXPECT_EQ(loaded.actions(), 2);
    EXPECT_DOUBLE_EQ(loaded.at(0, 0), 1.25);
    EXPECT_DOUBLE_EQ(loaded.at(2, 1), -3.5);
    EXPECT_DOUBLE_EQ(loaded.at(1, 1), 0.0);
}

TEST(QTable, TryLoadRejectsMalformedBlobs)
{
    const auto rejects = [](const std::string& blob) {
        std::istringstream in(blob);
        std::string error;
        const auto table = QTable::try_load(in, &error);
        EXPECT_FALSE(table.has_value()) << blob;
        EXPECT_FALSE(error.empty()) << blob;
        return !table.has_value();
    };
    EXPECT_TRUE(rejects(""));                           // empty stream
    EXPECT_TRUE(rejects("garbage 2 3\n0 0 0\n0 0 0"));  // wrong magic
    EXPECT_TRUE(rejects("qtable -2 3\n"));              // negative dims
    EXPECT_TRUE(rejects("qtable 0 5\n"));               // zero dims
    EXPECT_TRUE(rejects("qtable 99999999 99999999\n")); // implausible dims
    EXPECT_TRUE(rejects("qtable 2 2\n1 2\n3"));         // truncated body
    EXPECT_TRUE(rejects("qtable 2 2\n1 2\nx 4"));       // non-numeric body
    EXPECT_TRUE(rejects("qtable 2 2\n1 2\nnan 4"));     // non-finite entry
    EXPECT_TRUE(rejects("qtable 2 2\n1 inf\n3 4"));     // non-finite entry
}

TEST(QTable, TryLoadAcceptsWhatSaveProduces)
{
    QTable q(3, 2);
    q.at(0, 1) = -2.5;
    q.at(2, 0) = 11.0;
    std::stringstream blob;
    q.save(blob);
    const auto loaded = QTable::try_load(blob);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->states(), 3);
    EXPECT_EQ(loaded->actions(), 2);
    EXPECT_DOUBLE_EQ(loaded->at(0, 1), -2.5);
    EXPECT_DOUBLE_EQ(loaded->at(2, 0), 11.0);
}

TEST(QTable, MemoryFootprintIsSmall)
{
    // Section 6.4: the two ArtMem Q-tables occupy < 10 KB together.
    QTable migration(12, 10);
    QTable threshold(12, 5);
    EXPECT_LT(migration.memory_bytes() + threshold.memory_bytes(),
              10u * 1024);
}

AgentConfig
greedy_config(Algorithm algo = Algorithm::kQLearning)
{
    AgentConfig cfg;
    cfg.alpha = 0.5;
    cfg.gamma = 0.5;
    cfg.epsilon = 0.0;
    cfg.algorithm = algo;
    return cfg;
}

TEST(TdAgent, FirstStepDoesNotUpdate)
{
    TdAgent agent(2, 2, greedy_config(), 1);
    agent.step(100.0, 0);
    EXPECT_EQ(agent.updates(), 0u);
    for (int s = 0; s < 2; ++s)
        for (int a = 0; a < 2; ++a)
            EXPECT_DOUBLE_EQ(agent.table().at(s, a), 0.0);
}

TEST(TdAgent, QLearningUpdateFormula)
{
    TdAgent agent(2, 2, greedy_config(), 1);
    agent.reset(0, 1);            // pretend we took action 1 in state 0
    agent.table().at(1, 0) = 4.0; // max_a Q(1, a) = 4
    agent.step(2.0, 1);
    // Q(0,1) += 0.5 * (2 + 0.5*4 - 0) = 2.0
    EXPECT_DOUBLE_EQ(agent.table().at(0, 1), 2.0);
    EXPECT_EQ(agent.updates(), 1u);
}

TEST(TdAgent, SarsaUsesChosenAction)
{
    // Make the greedy next action have a different value than the max
    // by seeding Q so both algorithms diverge only under exploration;
    // with epsilon=0 greedy == max, so force the difference via reset.
    AgentConfig cfg = greedy_config(Algorithm::kSarsa);
    TdAgent agent(2, 2, cfg, 1);
    agent.reset(0, 0);
    agent.table().at(1, 0) = 3.0;
    agent.table().at(1, 1) = 5.0;
    agent.step(1.0, 1);
    // Greedy chooses action 1 (value 5): target = 1 + 0.5*5.
    EXPECT_DOUBLE_EQ(agent.table().at(0, 0), 0.5 * (1.0 + 2.5));
}

TEST(TdAgent, ConvergesOnTwoArmedBandit)
{
    // State 0 only; action 1 pays +1, action 0 pays -1. The agent must
    // learn to prefer action 1.
    AgentConfig cfg;
    cfg.alpha = 0.2;
    cfg.gamma = 0.0;
    cfg.epsilon = 0.2;
    TdAgent agent(1, 2, cfg, 7);
    int action = agent.step(0.0, 0);
    for (int i = 0; i < 500; ++i) {
        const double reward = action == 1 ? 1.0 : -1.0;
        action = agent.step(reward, 0);
    }
    EXPECT_EQ(agent.table().best_action(0), 1);
    EXPECT_GT(agent.table().at(0, 1), agent.table().at(0, 0));
}

TEST(TdAgent, ClearHistorySkipsUpdate)
{
    TdAgent agent(2, 2, greedy_config(), 1);
    agent.reset(0, 0);
    agent.clear_history();
    agent.step(5.0, 1);
    EXPECT_EQ(agent.updates(), 0u);
}

TEST(TdAgent, SetTableRequiresMatchingShape)
{
    TdAgent agent(2, 2, greedy_config(), 1);
    QTable q(2, 2);
    q.at(0, 1) = 9.0;
    agent.set_table(std::move(q));
    EXPECT_DOUBLE_EQ(agent.table().at(0, 1), 9.0);
}

class GridWorldConvergence
    : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(GridWorldConvergence, LearnsShortestChain)
{
    // 5-state chain: move right (action 1) to reach the terminal state
    // and get +10; moving left (action 0) pays -0.1 and goes back.
    AgentConfig cfg;
    cfg.alpha = 0.3;
    cfg.gamma = 0.9;
    cfg.epsilon = 0.3;
    cfg.algorithm = GetParam();
    TdAgent agent(5, 2, cfg, 3);
    for (int episode = 0; episode < 300; ++episode) {
        int state = 0;
        agent.clear_history();
        int action = agent.step(0.0, state);
        for (int t = 0; t < 50 && state < 4; ++t) {
            double reward;
            if (action == 1) {
                ++state;
                reward = state == 4 ? 10.0 : 0.0;
            } else {
                state = std::max(0, state - 1);
                reward = -0.1;
            }
            action = agent.step(reward, state);
        }
    }
    // Every non-terminal state should prefer moving right.
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(agent.table().best_action(s), 1) << "state " << s;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GridWorldConvergence,
                         ::testing::Values(Algorithm::kQLearning,
                                           Algorithm::kSarsa,
                                           Algorithm::kExpectedSarsa));

TEST(TdAgent, ExpectedSarsaUsesPolicyExpectation)
{
    AgentConfig cfg = greedy_config(Algorithm::kExpectedSarsa);
    cfg.epsilon = 0.5;
    TdAgent agent(2, 2, cfg, 1);
    agent.reset(0, 0);
    agent.table().at(1, 0) = 2.0;
    agent.table().at(1, 1) = 6.0;
    agent.step(1.0, 1);
    // E[Q(1,.)] = 0.5 * max(6) + 0.5 * mean(4) = 5
    // Q(0,0) += 0.5 * (1 + 0.5*5 - 0) = 1.75
    EXPECT_DOUBLE_EQ(agent.table().at(0, 0), 1.75);
}

}  // namespace
}  // namespace artmem::rl
