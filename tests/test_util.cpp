/**
 * @file
 * Unit tests for the util substrate: RNG, Zipfian, statistics, table
 * printing, config and CLI parsing.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/types.hpp"
#include "util/zipf.hpp"

namespace artmem {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(7);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.next_below(8)];
    for (int count : seen)
        EXPECT_GT(count, 500);  // roughly uniform
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.next_range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(11);
    Rng child = parent.fork();
    EXPECT_NE(parent.next(), child.next());
}

TEST(ByteLiterals, ScaleCorrectly)
{
    EXPECT_EQ(1_KiB, 1024ull);
    EXPECT_EQ(1_MiB, 1024ull * 1024);
    EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(1_ms, 1000000ull);
    EXPECT_EQ(2_s, 2000000000ull);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(42);
    ZipfianGenerator zipf(1000, 0.99);
    std::vector<int> hits(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++hits[zipf.next(rng)];
    EXPECT_GT(hits[0], hits[10]);
    EXPECT_GT(hits[0], hits[999]);
    // Rank 0 of a theta=0.99 Zipfian draws roughly 1/zeta share.
    EXPECT_GT(hits[0], 100000 / 20);
}

TEST(Zipf, AllDrawsInRange)
{
    Rng rng(42);
    ZipfianGenerator zipf(50, 0.7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 50u);
}

TEST(Zipf, ScrambledSpreadsHotItems)
{
    Rng rng(42);
    ScrambledZipfianGenerator zipf(1000, 0.99);
    std::vector<int> hits(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++hits[zipf.next(rng)];
    // The hottest item should not be item 0 with overwhelming likelihood.
    int hottest = 0;
    for (int i = 1; i < 1000; ++i)
        if (hits[i] > hits[hottest])
            hottest = i;
    // Scrambling maps rank 0 to a pseudo-random slot; just assert the
    // distribution is still skewed.
    EXPECT_GT(hits[hottest], 100000 / 20);
}

TEST(OnlineStats, MeanAndVariance)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineStats, MergeEmptyIntoPopulatedIsNoop)
{
    // An accumulator that never saw a sample carries zero-initialized
    // min/max; merging it must not pull an all-negative population's
    // extrema toward 0 (telemetry gauges merge empty shards routinely).
    OnlineStats a, empty;
    a.add(-3.0);
    a.add(-1.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), -1.0);
    EXPECT_DOUBLE_EQ(a.mean(), -2.0);
}

TEST(OnlineStats, MergePopulatedIntoEmptyAdopts)
{
    OnlineStats empty, b;
    b.add(-3.0);
    b.add(-1.0);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.min(), -3.0);
    EXPECT_DOUBLE_EQ(empty.max(), -1.0);
}

TEST(OnlineStats, MergeTwoEmptiesStaysEmpty)
{
    OnlineStats a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> neg{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero)
{
    std::vector<double> x{1, 1, 1};
    std::vector<double> y{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, GeomeanAndMean)
{
    std::vector<double> xs{1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
    EXPECT_NEAR(mean(xs), 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 2);
    t.row().cell("b").cell(std::uint64_t{42});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(t.row_count(), 2u);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(KvConfig, ParsesTypesAndComments)
{
    const auto cfg = KvConfig::parse(
        "# comment\n"
        "name = hello\n"
        "count = 42   # trailing comment\n"
        "ratio = 0.5\n"
        "flag = true\n");
    EXPECT_EQ(cfg.get_string("name", ""), "hello");
    EXPECT_EQ(cfg.get_int("count", 0), 42);
    EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0), 0.5);
    EXPECT_TRUE(cfg.get_bool("flag", false));
    EXPECT_EQ(cfg.get_int("missing", 7), 7);
    EXPECT_EQ(cfg.size(), 4u);
}

TEST(KvConfig, OverwriteAndHas)
{
    KvConfig cfg;
    cfg.set("k", "1");
    cfg.set("k", "2");
    EXPECT_EQ(cfg.get_int("k", 0), 2);
    EXPECT_TRUE(cfg.has("k"));
    EXPECT_FALSE(cfg.has("other"));
}

TEST(CliArgs, ParsesAllForms)
{
    const char* argv[] = {"prog", "--alpha=0.5", "--name=x", "--verbose",
                          "positional"};
    auto args = CliArgs::parse(5, const_cast<char**>(argv));
    EXPECT_DOUBLE_EQ(args.get_double("alpha", 0), 0.5);
    EXPECT_EQ(args.get_string("name", ""), "x");
    EXPECT_TRUE(args.get_bool("verbose", false));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "positional");
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.get_int("missing", 9), 9);
}

}  // namespace
}  // namespace artmem
