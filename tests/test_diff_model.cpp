/**
 * @file
 * Differential harness for the batched hot path (DESIGN.md §9).
 *
 * The engine's inner loop was rewritten from one-access-at-a-time calls
 * into TieredMachine::access_batch() / access_batch_faulted(), which
 * shadow the clock and per-tier counters in locals. The overhaul's
 * contract is *bit-identity*: every observable state — simulated time,
 * counters, per-page flags, the PEBS sample stream, and the fault
 * injector's draw schedule — must match the old scalar semantics
 * exactly. This file enforces the contract three ways:
 *
 *  1. Lockstep oracle: four identically configured machines run the
 *     same seeded access stream — one through the retained scalar
 *     access() sequence (the pre-overhaul engine loop, kept verbatim
 *     below), one through access_batch(), one through the sharded
 *     pipeline with the serial epoch merge, and one through the
 *     sharded pipeline with the parallel per-lane merge (per-lane
 *     latency accumulators, per-shard PEBS streams, per-shard LRU,
 *     deterministic boundary merge); full state is compared every
 *     decision interval, across all built-in fault scenarios, with
 *     trap storms and a re-entrant promotion fault handler thrown in.
 *
 *  2. Naive model: an independent single-stepping reference model of
 *     TieredMachine (separate plain arrays instead of packed flags, its
 *     own FaultInjector replica, a deque-based sampler) is stepped one
 *     access at a time and compared against the batched machine.
 *
 *  3. Policy-side structures: EmaBins and LruLists — whose record/touch
 *     paths were inlined for the overhaul — are checked against naive
 *     histogram/std::list models while consuming a batched run's
 *     drained samples.
 *
 * Plus the Zipf fast path: the bucket-table rank lookup must agree with
 * the Gray et al. closed form on every draw.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string_view>
#include <vector>

#include "lru/lru_lists.hpp"
#include "memsim/fault_injector.hpp"
#include "memsim/pebs.hpp"
#include "memsim/sharded_access.hpp"
#include "memsim/tiered_machine.hpp"
#include "stats/ema_bins.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace artmem {
namespace {

using memsim::FaultConfig;
using memsim::FaultInjector;
using memsim::MachineConfig;
using memsim::PebsSample;
using memsim::PebsSampler;
using memsim::ShardedAccessEngine;
using memsim::Tier;
using memsim::TieredMachine;

constexpr std::size_t kPages = 1024;
constexpr std::size_t kFastPages = 256;

MachineConfig
small_machine()
{
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = kPages * cfg.page_size;
    cfg.tiers[0].capacity = kFastPages * cfg.page_size;
    cfg.tiers[1].capacity = kPages * cfg.page_size;
    return cfg;
}

/**
 * The engine's pre-overhaul scalar inner loop, kept verbatim as the
 * slow oracle: access() advances the clock and fires traps; the
 * suppression draw happens after the access at the post-access (and
 * post-trap) timestamp; the sample records the pre-handler tier.
 */
void
scalar_accesses(TieredMachine& m, PebsSampler& sampler, const PageId* pages,
                std::size_t n, std::uint64_t& pebs_suppressed)
{
    FaultInjector* inj = m.fault_injector();
    for (std::size_t i = 0; i < n; ++i) {
        const Tier tier = m.access(pages[i]);
        if (inj != nullptr) {
            if (inj->sample_suppressed(m.now()))
                ++pebs_suppressed;
            else
                sampler.observe(pages[i], tier);
        } else {
            sampler.observe(pages[i], tier);
        }
    }
}

void
expect_counters_equal(const TieredMachine::Counters& a,
                      const TieredMachine::Counters& b)
{
    EXPECT_EQ(a.accesses[0], b.accesses[0]);
    EXPECT_EQ(a.accesses[1], b.accesses[1]);
    EXPECT_EQ(a.hint_faults, b.hint_faults);
    EXPECT_EQ(a.promoted_pages, b.promoted_pages);
    EXPECT_EQ(a.demoted_pages, b.demoted_pages);
    EXPECT_EQ(a.exchanges, b.exchanges);
    EXPECT_EQ(a.migration_busy_ns, b.migration_busy_ns);
    EXPECT_EQ(a.overhead_ns, b.overhead_ns);
    EXPECT_EQ(a.failed_no_slot, b.failed_no_slot);
    EXPECT_EQ(a.failed_pinned, b.failed_pinned);
    EXPECT_EQ(a.failed_transient, b.failed_transient);
    EXPECT_EQ(a.failed_contended, b.failed_contended);
    EXPECT_EQ(a.aborted_migration_ns, b.aborted_migration_ns);
}

void
expect_machines_equal(const TieredMachine& a, const TieredMachine& b)
{
    ASSERT_EQ(a.now(), b.now());
    for (int t = 0; t < memsim::kTierCount; ++t) {
        const auto tier = static_cast<Tier>(t);
        EXPECT_EQ(a.used_pages(tier), b.used_pages(tier));
        EXPECT_EQ(a.free_pages(tier), b.free_pages(tier));
    }
    expect_counters_equal(a.totals(), b.totals());
    for (PageId p = 0; p < a.page_count(); ++p) {
        ASSERT_EQ(a.is_allocated(p), b.is_allocated(p)) << "page " << p;
        ASSERT_EQ(a.accessed(p), b.accessed(p)) << "page " << p;
        ASSERT_EQ(a.has_trap(p), b.has_trap(p)) << "page " << p;
        if (a.is_allocated(p)) {
            ASSERT_EQ(a.tier_of(p), b.tier_of(p)) << "page " << p;
        }
    }
    const FaultInjector* fa = a.fault_injector();
    const FaultInjector* fb = b.fault_injector();
    ASSERT_EQ(fa == nullptr, fb == nullptr);
    if (fa != nullptr && fb != nullptr) {
        EXPECT_EQ(fa->draws(), fb->draws());
        EXPECT_EQ(fa->transient_aborts(), fb->transient_aborts());
        EXPECT_EQ(fa->contended_hits(), fb->contended_hits());
        EXPECT_EQ(fa->suppressed_samples(), fb->suppressed_samples());
    }
}

void
expect_samples_equal(const std::vector<PebsSample>& a,
                     const std::vector<PebsSample>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].page, b[i].page) << "sample " << i;
        ASSERT_EQ(a[i].tier, b[i].tier) << "sample " << i;
    }
}

/** One hint-fault record; logged by both machines' handlers. */
struct TrapEvent {
    PageId page;
    Tier tier;
    SimTimeNs now;

    bool operator==(const TrapEvent&) const = default;
};

/**
 * Drives the scalar oracle, the batched machine, a third machine fed
 * through the sharded epoch pipeline with the serial merge (3 shards,
 * audit on), AND a fourth fed through the same pipeline with the
 * parallel per-lane merge, in lockstep over one fault scenario,
 * interleaving migrations, exchanges, trap arming, and accessed-bit
 * scans between intervals, and comparing complete state at every
 * interval boundary. The parallel engine's boundary merge runs right
 * before each drain, exactly as the engine loop orders it.
 */
void
run_lockstep_scenario(std::string_view scenario, std::uint64_t seed)
{
    TieredMachine scalar(small_machine());
    TieredMachine batched(small_machine());
    TieredMachine sharded(small_machine());
    TieredMachine parallel(small_machine());
    const FaultConfig faults = memsim::make_fault_scenario(scenario, 7);
    scalar.install_faults(faults);
    batched.install_faults(faults);
    sharded.install_faults(faults);
    parallel.install_faults(faults);
    ShardedAccessEngine shard_engine(
        sharded, {.shards = 3, .seed = seed, .audit = true});
    ShardedAccessEngine parallel_engine(parallel, {.shards = 3,
                                                   .seed = seed,
                                                   .audit = true,
                                                   .parallel_merge = true});

    // Re-entrant handler, as AutoNUMA-style policies install: promote
    // the faulting page on the spot. Inside access_batch() this forces
    // the local clock/counter flush-and-reload protocol (and flips the
    // sharded walk into its legacy tail).
    std::vector<TrapEvent> scalar_traps;
    std::vector<TrapEvent> batched_traps;
    std::vector<TrapEvent> sharded_traps;
    std::vector<TrapEvent> parallel_traps;
    scalar.set_fault_handler([&](PageId page, Tier tier) {
        scalar_traps.push_back({page, tier, scalar.now()});
        if (tier == Tier::kSlow)
            (void)scalar.migrate(page, Tier::kFast);
    });
    batched.set_fault_handler([&](PageId page, Tier tier) {
        batched_traps.push_back({page, tier, batched.now()});
        if (tier == Tier::kSlow)
            (void)batched.migrate(page, Tier::kFast);
    });
    sharded.set_fault_handler([&](PageId page, Tier tier) {
        sharded_traps.push_back({page, tier, sharded.now()});
        if (tier == Tier::kSlow)
            (void)sharded.migrate(page, Tier::kFast);
    });
    parallel.set_fault_handler([&](PageId page, Tier tier) {
        parallel_traps.push_back({page, tier, parallel.now()});
        if (tier == Tier::kSlow)
            (void)parallel.migrate(page, Tier::kFast);
    });

    // Small buffer so overflow drops are exercised too.
    const PebsSampler::Config sampler_cfg{.period = 7,
                                          .buffer_capacity = 1 << 8};
    PebsSampler scalar_sampler(sampler_cfg);
    PebsSampler batched_sampler(sampler_cfg);
    PebsSampler sharded_sampler(sampler_cfg);
    PebsSampler parallel_sampler(sampler_cfg);
    std::uint64_t scalar_suppressed = 0;
    std::uint64_t batched_suppressed = 0;
    std::uint64_t sharded_suppressed = 0;
    std::uint64_t parallel_suppressed = 0;

    Rng stream(seed);
    Rng ops(derive_seed(seed, 1));
    std::vector<PageId> batch;
    std::vector<PebsSample> scalar_drained;
    std::vector<PebsSample> batched_drained;
    std::vector<PebsSample> sharded_drained;
    std::vector<PebsSample> parallel_drained;

    for (int interval = 0; interval < 64; ++interval) {
        SCOPED_TRACE(testing::Message()
                     << "scenario=" << scenario << " seed=" << seed
                     << " interval=" << interval);

        // One interval: a few variable-sized batches of a hot/cold mix.
        for (int chunk = 0; chunk < 4; ++chunk) {
            const std::size_t n = 1 + stream.next_below(257);
            batch.clear();
            for (std::size_t i = 0; i < n; ++i) {
                const bool hot = stream.next_bool(0.7);
                batch.push_back(static_cast<PageId>(
                    hot ? stream.next_below(128)
                        : stream.next_below(kPages)));
            }
            scalar_accesses(scalar, scalar_sampler, batch.data(), n,
                            scalar_suppressed);
            if (batched.faults_enabled()) {
                batched.access_batch_faulted(batch.data(), n,
                                             batched_sampler,
                                             batched_suppressed);
                shard_engine.process_faulted(batch.data(), n,
                                             sharded_sampler,
                                             sharded_suppressed);
                parallel_engine.process_faulted(batch.data(), n,
                                                parallel_sampler,
                                                parallel_suppressed);
            } else {
                batched.access_batch(batch.data(), n, batched_sampler);
                shard_engine.process(batch.data(), n, sharded_sampler);
                parallel_engine.process(batch.data(), n,
                                        parallel_sampler);
            }
        }

        // Decision-interval work, applied identically to all machines.
        for (int i = 0; i < 8; ++i) {
            const auto page =
                static_cast<PageId>(ops.next_below(kPages));
            if (!scalar.is_allocated(page))
                continue;
            const Tier dst = scalar.tier_of(page) == Tier::kFast
                                 ? Tier::kSlow
                                 : Tier::kFast;
            const auto status = scalar.migrate(page, dst).status;
            EXPECT_EQ(status, batched.migrate(page, dst).status);
            EXPECT_EQ(status, sharded.migrate(page, dst).status);
            EXPECT_EQ(status, parallel.migrate(page, dst).status);
        }
        const auto a = static_cast<PageId>(ops.next_below(kPages));
        const auto b = static_cast<PageId>(ops.next_below(kPages));
        if (scalar.is_allocated(a) && scalar.is_allocated(b)) {
            EXPECT_EQ(scalar.exchange(a, b).status,
                      batched.exchange(a, b).status);
            (void)sharded.exchange(a, b);
            (void)parallel.exchange(a, b);
        }
        for (int i = 0; i < 16; ++i) {
            const auto page =
                static_cast<PageId>(ops.next_below(kPages));
            scalar.set_trap(page);
            batched.set_trap(page);
            sharded.set_trap(page);
            parallel.set_trap(page);
        }
        for (int i = 0; i < 16; ++i) {
            const auto page =
                static_cast<PageId>(ops.next_below(kPages));
            EXPECT_EQ(scalar.test_and_clear_accessed(page),
                      batched.test_and_clear_accessed(page));
            (void)sharded.test_and_clear_accessed(page);
            (void)parallel.test_and_clear_accessed(page);
        }

        // Full-state comparison at the interval boundary. The parallel
        // engine's per-lane sampler records flow into its ring only at
        // merge_boundary(), which the engine loop runs before every
        // drain — mirrored here.
        parallel_engine.merge_boundary(parallel_sampler);
        parallel_engine.splice_recency();
        scalar_drained.clear();
        batched_drained.clear();
        sharded_drained.clear();
        parallel_drained.clear();
        scalar_sampler.drain(scalar_drained, 1 << 12);
        batched_sampler.drain(batched_drained, 1 << 12);
        sharded_sampler.drain(sharded_drained, 1 << 12);
        parallel_sampler.drain(parallel_drained, 1 << 12);
        expect_samples_equal(scalar_drained, batched_drained);
        expect_samples_equal(scalar_drained, sharded_drained);
        expect_samples_equal(scalar_drained, parallel_drained);
        EXPECT_EQ(scalar_sampler.recorded(), batched_sampler.recorded());
        EXPECT_EQ(scalar_sampler.dropped(), batched_sampler.dropped());
        EXPECT_EQ(scalar_sampler.recorded(), sharded_sampler.recorded());
        EXPECT_EQ(scalar_sampler.dropped(), sharded_sampler.dropped());
        EXPECT_EQ(scalar_sampler.recorded(),
                  parallel_sampler.recorded());
        EXPECT_EQ(scalar_sampler.dropped(), parallel_sampler.dropped());
        EXPECT_EQ(scalar_suppressed, batched_suppressed);
        EXPECT_EQ(scalar_suppressed, sharded_suppressed);
        EXPECT_EQ(scalar_suppressed, parallel_suppressed);
        ASSERT_EQ(scalar_traps, batched_traps);
        ASSERT_EQ(scalar_traps, sharded_traps);
        ASSERT_EQ(scalar_traps, parallel_traps);
        expect_machines_equal(scalar, batched);
        expect_machines_equal(scalar, sharded);
        expect_machines_equal(scalar, parallel);
        if (interval % 4 == 3) {
            const auto window = scalar.take_window();
            expect_counters_equal(window, batched.take_window());
            expect_counters_equal(window, sharded.take_window());
            expect_counters_equal(window, parallel.take_window());
        }
        if (testing::Test::HasFailure())
            return;  // one divergence floods everything downstream
    }
    // The randomized phase-1 self-checks must actually have sampled
    // (audit is on and the run covers tens of thousands of accesses).
    EXPECT_GT(shard_engine.audited_accesses(), 0u);
    EXPECT_GT(parallel_engine.audited_accesses(), 0u);
    // Trap storms under a re-entrant handler must have exercised the
    // legacy-tail fallback at least once.
    EXPECT_GT(shard_engine.legacy_tails(), 0u);
    // The parallel engine must have taken both merge paths: parallel
    // folds on all-plain batches, serial fallbacks (and their legacy
    // tails) whenever an armed trap or injected fault made a batch
    // special.
    EXPECT_GT(parallel_engine.parallel_merges(), 0u);
    EXPECT_GT(parallel_engine.serial_merges(), 0u);
    EXPECT_EQ(shard_engine.parallel_merges(), 0u);
}

TEST(DiffModel, BatchMatchesScalarOracleAcrossFaultScenarios)
{
    for (const auto scenario : memsim::fault_scenario_names())
        for (const std::uint64_t seed : {3ull, 17ull})
            run_lockstep_scenario(scenario, seed);
}

// ---------------------------------------------------------------------
// Naive single-stepping reference model of TieredMachine.
// ---------------------------------------------------------------------

/**
 * Re-implements the access-path semantics with plain per-page arrays
 * (no packed flag bytes, no batching, no local shadowing): first-touch
 * allocation with co-tenant pressure, latency charging through its own
 * FaultInjector replica, accessed bits, trap firing, and a deque-based
 * PEBS model. Valid as long as only accesses and traps run — the only
 * injector draws are then the per-access suppression draws, so the
 * replica injector stays in sync with the machine's by construction.
 */
struct NaiveMachine {
    MachineConfig cfg;
    std::vector<bool> allocated;
    std::vector<bool> slow;  // tier bit
    std::vector<bool> accessed;
    std::vector<bool> trap;
    std::size_t used[2] = {0, 0};
    SimTimeNs now = 0;
    std::uint64_t acc[2] = {0, 0};
    std::uint64_t hint_faults = 0;
    std::unique_ptr<FaultInjector> inj;

    // Deque model of PebsSampler's counter + ring buffer.
    std::uint32_t period;
    std::uint32_t countdown;
    std::size_t buffer_cap;  // power of two, as RingBuffer rounds
    std::deque<PebsSample> buffer;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t suppressed = 0;

    NaiveMachine(const MachineConfig& machine_cfg, const FaultConfig& fc,
                 const PebsSampler::Config& sc)
        : cfg(machine_cfg),
          allocated(kPages, false),
          slow(kPages, false),
          accessed(kPages, false),
          trap(kPages, false),
          period(sc.period),
          countdown(sc.period)
    {
        if (fc.any_enabled())
            inj = std::make_unique<FaultInjector>(
                fc, cfg.fast_capacity_pages());
        buffer_cap = 1;
        while (buffer_cap < sc.buffer_capacity)
            buffer_cap <<= 1;
    }

    std::size_t
    free_fast() const
    {
        const std::size_t reserved =
            inj != nullptr ? inj->reserved_fast_pages(now) : 0;
        const std::size_t taken = used[0] + reserved;
        const std::size_t cap = cfg.fast_capacity_pages();
        return cap > taken ? cap - taken : 0;
    }

    void
    step(PageId page)
    {
        if (!allocated[page]) {
            int t = free_fast() > 0 ? 0 : 1;
            if (t == 1 && used[1] >= cfg.slow_capacity_pages())
                t = 0;
            ++used[t];
            allocated[page] = true;
            slow[page] = t == 1;
            // allocate() rewrites the whole flags byte, so a trap armed
            // on a never-touched page is dropped on first touch.
            trap[page] = false;
        }
        const int t = slow[page] ? 1 : 0;
        const auto tier = static_cast<Tier>(t);
        accessed[page] = true;
        const SimTimeNs base = cfg.tiers[t].load_latency_ns;
        now += inj != nullptr ? inj->effective_latency(tier, base, now)
                              : base;
        ++acc[t];
        if (trap[page]) {
            trap[page] = false;
            now += cfg.hint_fault_cost_ns;
            ++hint_faults;
        }
        if (inj != nullptr && inj->sample_suppressed(now)) {
            ++suppressed;
            return;
        }
        if (--countdown == 0) {
            countdown = period;
            ++recorded;
            if (buffer.size() < buffer_cap)
                buffer.push_back({page, tier});
            else
                ++dropped;
        }
    }
};

void
run_naive_model_scenario(std::string_view scenario, std::uint64_t seed)
{
    const MachineConfig cfg = small_machine();
    const FaultConfig faults = memsim::make_fault_scenario(scenario, 11);
    const PebsSampler::Config sampler_cfg{.period = 5,
                                          .buffer_capacity = 1 << 8};

    TieredMachine machine(cfg);
    machine.install_faults(faults);
    std::uint64_t machine_trap_count = 0;
    machine.set_fault_handler(
        [&](PageId, Tier) { ++machine_trap_count; });
    PebsSampler sampler(sampler_cfg);
    std::uint64_t machine_suppressed = 0;

    NaiveMachine model(cfg, faults, sampler_cfg);

    Rng stream(seed);
    Rng ops(derive_seed(seed, 2));
    std::vector<PageId> batch;
    std::vector<PebsSample> drained;

    for (int interval = 0; interval < 64; ++interval) {
        SCOPED_TRACE(testing::Message()
                     << "scenario=" << scenario << " seed=" << seed
                     << " interval=" << interval);
        const std::size_t n = 1 + stream.next_below(513);
        batch.clear();
        for (std::size_t i = 0; i < n; ++i)
            batch.push_back(
                static_cast<PageId>(stream.next_below(kPages)));

        for (const PageId page : batch)
            model.step(page);
        if (machine.faults_enabled())
            machine.access_batch_faulted(batch.data(), n, sampler,
                                         machine_suppressed);
        else
            machine.access_batch(batch.data(), n, sampler);

        // Arm traps identically (accesses only; no migrations, so the
        // replica injector's draw stream stays aligned).
        for (int i = 0; i < 8; ++i) {
            const auto page =
                static_cast<PageId>(ops.next_below(kPages));
            machine.set_trap(page);
            model.trap[page] = true;
        }

        ASSERT_EQ(machine.now(), model.now);
        EXPECT_EQ(machine.totals().accesses[0], model.acc[0]);
        EXPECT_EQ(machine.totals().accesses[1], model.acc[1]);
        EXPECT_EQ(machine.totals().hint_faults, model.hint_faults);
        EXPECT_EQ(machine_trap_count, model.hint_faults);
        EXPECT_EQ(machine.used_pages(Tier::kFast), model.used[0]);
        EXPECT_EQ(machine.used_pages(Tier::kSlow), model.used[1]);
        EXPECT_EQ(machine_suppressed, model.suppressed);
        EXPECT_EQ(sampler.recorded(), model.recorded);
        EXPECT_EQ(sampler.dropped(), model.dropped);
        for (PageId p = 0; p < kPages; ++p) {
            ASSERT_EQ(machine.is_allocated(p), model.allocated[p])
                << "page " << p;
            ASSERT_EQ(machine.accessed(p), model.accessed[p])
                << "page " << p;
            ASSERT_EQ(machine.has_trap(p), model.trap[p]) << "page " << p;
            if (model.allocated[p]) {
                ASSERT_EQ(machine.tier_of(p),
                          model.slow[p] ? Tier::kSlow : Tier::kFast)
                    << "page " << p;
            }
        }
        drained.clear();
        sampler.drain(drained, 1 << 12);
        ASSERT_EQ(drained.size(), model.buffer.size());
        for (std::size_t i = 0; i < drained.size(); ++i) {
            ASSERT_EQ(drained[i].page, model.buffer[i].page);
            ASSERT_EQ(drained[i].tier, model.buffer[i].tier);
        }
        model.buffer.clear();
        if (testing::Test::HasFailure())
            return;
    }
}

TEST(DiffModel, NaiveSingleStepModelMatchesBatchedMachine)
{
    for (const auto scenario : memsim::fault_scenario_names())
        run_naive_model_scenario(scenario, 23);
}

// ---------------------------------------------------------------------
// Policy-side structures: EmaBins + LruLists vs naive models.
// ---------------------------------------------------------------------

TEST(DiffModel, EmaBinsAndLruListsMatchNaiveModels)
{
    // Drive a batched machine, feed its drained samples to the real
    // EmaBins + LruLists (their hot paths are inlined for §9) and to
    // naive models: a plain count vector with a from-scratch histogram
    // rebuild, and four std::lists.
    const std::uint64_t seed = 31;
    TieredMachine machine(small_machine());
    PebsSampler sampler({.period = 3, .buffer_capacity = 1 << 12});

    stats::EmaBins bins(kPages, 4096);
    lru::LruLists lists(kPages);
    std::vector<std::uint32_t> naive_counts(kPages, 0);
    std::list<PageId> naive_lists[4];
    std::vector<bool> naive_referenced(kPages, false);

    const auto naive_list_of = [&](PageId page) {
        for (int l = 0; l < 4; ++l)
            for (const PageId p : naive_lists[l])
                if (p == page)
                    return l;
        return 4;  // kNone
    };
    const auto naive_touch = [&](PageId page, Tier tier) {
        const int active = tier == Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        const int current = naive_list_of(page);
        if (current == 4) {
            naive_referenced[page] = true;
            naive_lists[inactive].push_front(page);
            return;
        }
        naive_lists[current].remove(page);
        if (current == 0 || current == 2) {  // was on an active list
            naive_referenced[page] = true;
            naive_lists[active].push_front(page);
        } else if (naive_referenced[page]) {
            naive_referenced[page] = false;
            naive_lists[active].push_front(page);
        } else {
            naive_referenced[page] = true;
            naive_lists[inactive].push_front(page);
        }
    };

    Rng stream(seed);
    std::vector<PageId> batch;
    std::vector<PebsSample> drained;
    for (int interval = 0; interval < 48; ++interval) {
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " interval=" << interval);
        const std::size_t n = 1 + stream.next_below(1025);
        batch.clear();
        for (std::size_t i = 0; i < n; ++i) {
            const bool hot = stream.next_bool(0.6);
            batch.push_back(static_cast<PageId>(
                hot ? stream.next_below(64) : stream.next_below(kPages)));
        }
        machine.access_batch(batch.data(), n, sampler);
        drained.clear();
        sampler.drain(drained, 1 << 12);
        for (const auto& s : drained) {
            bins.record(s.page);
            if (naive_counts[s.page] < (1u << (stats::EmaBins::kBins - 1)))
                ++naive_counts[s.page];
            lists.touch(s.page, s.tier);
            naive_touch(s.page, s.tier);
        }
        if (bins.cooling_due()) {
            bins.cool();
            for (auto& c : naive_counts)
                c >>= 1;
        }
        // Exercise the aging/scan paths on both models every so often.
        if (interval % 8 == 7) {
            for (const Tier tier : {Tier::kFast, Tier::kSlow}) {
                const int active = tier == Tier::kFast ? 0 : 2;
                const int inactive = active + 1;
                const std::size_t scans = 16;
                const std::size_t deactivated =
                    lists.age_active(tier, scans);
                std::size_t naive_deactivated = 0;
                for (std::size_t i = 0;
                     i < scans && !naive_lists[active].empty(); ++i) {
                    const PageId page = naive_lists[active].back();
                    naive_lists[active].pop_back();
                    if (naive_referenced[page]) {
                        naive_referenced[page] = false;
                        naive_lists[active].push_front(page);
                    } else {
                        naive_lists[inactive].push_front(page);
                        ++naive_deactivated;
                    }
                }
                EXPECT_EQ(deactivated, naive_deactivated);
            }
        }

        // Compare: per-page EMA counts plus the bin histogram rebuilt
        // from scratch, then exact list order head -> tail.
        std::uint64_t naive_bins[stats::EmaBins::kBins] = {};
        for (PageId p = 0; p < kPages; ++p) {
            ASSERT_EQ(bins.count(p), naive_counts[p]) << "page " << p;
            ++naive_bins[stats::EmaBins::bin_of(naive_counts[p])];
        }
        for (int b = 0; b < stats::EmaBins::kBins; ++b)
            ASSERT_EQ(bins.bin_pages(b), naive_bins[b]) << "bin " << b;
        for (int l = 0; l < 4; ++l) {
            const auto list = static_cast<lru::ListId>(l);
            ASSERT_EQ(lists.size(list), naive_lists[l].size())
                << "list " << l;
            PageId page = lists.head(list);
            for (const PageId expected : naive_lists[l]) {
                ASSERT_EQ(page, expected) << "list " << l;
                ASSERT_EQ(lists.where(page), list);
                ASSERT_EQ(lists.referenced(page),
                          naive_referenced[page]);
                page = lists.next(page);
            }
            ASSERT_EQ(page, kInvalidPage) << "list " << l;
        }
        if (testing::Test::HasFailure())
            return;
    }
}

// ---------------------------------------------------------------------
// Zipf fast path: bucket-table lookup vs the closed form.
// ---------------------------------------------------------------------

TEST(DiffModel, ZipfTableMatchesClosedFormOnEveryDraw)
{
    // Two generators' parameter spaces: small n (table covers all
    // ranks) and the paper-scale skews. Two identically seeded RNGs
    // consume the same uniform u: one feeds the table-backed next(),
    // one the closed form directly.
    const struct {
        std::uint64_t n;
        double theta;
    } cases[] = {
        {100, 0.99}, {4096, 0.99}, {4096, 0.5}, {1u << 20, 0.9},
    };
    for (const auto& c : cases) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << c.n << " theta=" << c.theta);
        ZipfianGenerator zipf(c.n, c.theta);
        ASSERT_GT(zipf.table_ranks(), 0u);
        Rng fast(91);
        Rng oracle(91);
        for (int i = 0; i < 2000000; ++i) {
            const double u = oracle.next_double();
            const std::uint64_t want = zipf.rank_of(u);
            const std::uint64_t got = zipf.next(fast);
            ASSERT_EQ(got, want) << "draw " << i << " u=" << u;
        }
    }
}

}  // namespace
}  // namespace artmem
