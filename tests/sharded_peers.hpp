/**
 * @file
 * Test-only corruption back doors for the sharded access pipeline,
 * shared by tests/test_sharded.cpp and tests/test_verify.cpp (one
 * definition each — the peers are friends of the production classes,
 * so the definitions must be the named types, and sharing one header
 * keeps the two translation units ODR-consistent).
 */
#ifndef ARTMEM_TESTS_SHARDED_PEERS_HPP
#define ARTMEM_TESTS_SHARDED_PEERS_HPP

#include <cstdint>
#include <vector>

#include "lru/sharded_lru.hpp"
#include "memsim/sharded_access.hpp"

namespace artmem::memsim {

/** Friend of ShardedAccessEngine: seeds deliberate lane-state
 *  corruption so panic/audit detection paths can be exercised. */
struct ShardedEngineTestPeer {
    /** Lane @p lane's phase-1 scan output (mutable). */
    static std::vector<std::uint32_t>&
    entries(ShardedAccessEngine& engine, unsigned lane)
    {
        return engine.lanes_[lane].entries;
    }

    /** Lane @p lane's cumulative folded latency (mutable). */
    static SimTimeNs&
    folded_lat_ns(ShardedAccessEngine& engine, unsigned lane)
    {
        return engine.lanes_[lane].folded_lat_ns;
    }

    /** Lane @p lane's cumulative folded access count (mutable). */
    static std::uint64_t&
    folded_accesses(ShardedAccessEngine& engine, unsigned lane)
    {
        return engine.lanes_[lane].folded_accesses;
    }

    /** Lane @p lane's pending sampler records (mutable). */
    static std::vector<ShardedAccessEngine::PendingSample>&
    pending(ShardedAccessEngine& engine, unsigned lane)
    {
        return engine.lanes_[lane].pending;
    }

    /** The engine's recency view (mutable; parallel merge only). */
    static lru::ShardedLru&
    recency(ShardedAccessEngine& engine)
    {
        return *engine.recency_;
    }
};

}  // namespace artmem::memsim

namespace artmem::lru {

/** Friend of ShardedLru: reach the private segments and stamps. */
struct ShardedLruTestPeer {
    static LruLists&
    segment(ShardedLru& sharded, unsigned shard)
    {
        return sharded.segments_[shard];
    }

    static std::vector<std::uint64_t>&
    stamps(ShardedLru& sharded)
    {
        return sharded.stamp_;
    }
};

}  // namespace artmem::lru

#endif  // ARTMEM_TESTS_SHARDED_PEERS_HPP
