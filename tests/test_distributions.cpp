/**
 * @file
 * Statistical property tests on the workload generators: the paper's
 * claims about each application's access pattern must actually hold in
 * the emitted page streams (hot-set concentration, skew direction,
 * level-frequency gradients, phase recency).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "workloads/btree.hpp"
#include "workloads/factory.hpp"
#include "workloads/graph.hpp"

namespace artmem::workloads {
namespace {

constexpr Bytes kPage = 2ull << 20;

std::vector<std::uint64_t>
page_histogram(AccessGenerator& gen, std::size_t pages)
{
    std::vector<std::uint64_t> counts(pages, 0);
    std::vector<PageId> buf(8192);
    std::size_t n;
    while ((n = gen.fill(buf)) > 0)
        for (std::size_t i = 0; i < n; ++i)
            if (buf[i] < pages)
                ++counts[buf[i]];
    return counts;
}

/** Fraction of accesses landing on the hottest @p k pages. */
double
top_k_share(std::vector<std::uint64_t> counts, std::size_t k)
{
    std::sort(counts.begin(), counts.end(), std::greater<>());
    std::uint64_t total = 0, top = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        total += counts[i];
        if (i < k)
            top += counts[i];
    }
    return total == 0 ? 0.0
                      : static_cast<double>(top) /
                            static_cast<double>(total);
}

struct SkewCase {
    const char* workload;
    /** Hottest 10% of pages must hold at least this access share. */
    double min_top_decile_share;
    /** ...and at most this much (sanity against degenerate spikes). */
    double max_top_decile_share;
};

class WorkloadSkew : public ::testing::TestWithParam<SkewCase>
{
};

TEST_P(WorkloadSkew, TopDecileShareInExpectedBand)
{
    const auto& c = GetParam();
    auto gen = make_workload(c.workload, kPage, 400000, 17);
    const auto pages =
        static_cast<std::size_t>(gen->footprint() / kPage);
    const auto counts = page_histogram(*gen, pages);
    const double share = top_k_share(counts, pages / 10);
    EXPECT_GE(share, c.min_top_decile_share) << c.workload;
    EXPECT_LE(share, c.max_top_decile_share) << c.workload;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, WorkloadSkew,
    ::testing::Values(
        // ycsb: zipf 0.99 -> strongly skewed
        SkewCase{"ycsb", 0.55, 1.0},
        // cc: compact hub block -> strongly skewed (Fig. 10b)
        SkewCase{"cc", 0.55, 1.0},
        // sssp: "minor differences in access frequency" (Fig. 10a)
        SkewCase{"sssp", 0.15, 0.65},
        // dlrm: "largely unskewed" embeddings + small dense region
        SkewCase{"dlrm", 0.30, 0.75},
        // xsbench: hot unionized grid over a large uniform remainder
        SkewCase{"xsbench", 0.55, 0.95},
        // uniform control: top decile holds ~10%
        SkewCase{"uniform", 0.08, 0.15}),
    [](const auto& suite_info) {
        return std::string(suite_info.param.workload);
    });

TEST(BtreeLevels, UpperLevelsExponentiallyHotter)
{
    Btree::Params params;
    params.footprint = 1ull << 30;
    params.total_accesses = 300000;
    Btree gen(params, kPage, 21);
    const auto pages =
        static_cast<std::size_t>(params.footprint / kPage);
    const auto counts = page_histogram(gen, pages);
    // Page 0 holds the root + top levels: it must dominate any page in
    // the leaf half of the address space by a wide margin.
    std::uint64_t max_leaf = 0;
    for (std::size_t p = pages / 2; p < pages; ++p)
        max_leaf = std::max(max_leaf, counts[p]);
    EXPECT_GT(counts[0], 20 * std::max<std::uint64_t>(1, max_leaf));
}

TEST(GraphPresets, ScrambleSpreadsTheHotSet)
{
    // CC (unscrambled) must concentrate its top decile into contiguous
    // runs; PR (scrambled) must not.
    auto run_longest_hot_run = [](const GraphWorkload::Params& params) {
        GraphWorkload gen(params, kPage, 23);
        const auto pages =
            static_cast<std::size_t>(params.footprint / kPage);
        auto counts = page_histogram(gen, pages);
        // Mark the hottest 5% of pages, find the longest contiguous run.
        auto sorted = counts;
        std::sort(sorted.begin(), sorted.end(), std::greater<>());
        const auto threshold = sorted[pages / 20];
        std::size_t longest = 0, current = 0;
        for (std::size_t p = 0; p < pages; ++p) {
            if (counts[p] >= threshold && counts[p] > 0)
                longest = std::max(longest, ++current);
            else
                current = 0;
        }
        return static_cast<double>(longest) / static_cast<double>(pages);
    };
    const double cc_run =
        run_longest_hot_run(GraphWorkload::cc(300000));
    const double pr_run =
        run_longest_hot_run(GraphWorkload::pr(300000));
    EXPECT_GT(cc_run, 3.0 * pr_run);
}

TEST(LiblinearPhases, WarmRegionBecomesHot)
{
    // Section 6.2: Liblinear's early phase is near-uniform; the warm
    // region then becomes the hot working set. Compare the warm-region
    // share between the first and last thirds of the run.
    auto gen = make_workload("liblinear", kPage, 600000, 31);
    const auto pages =
        static_cast<std::size_t>(gen->footprint() / kPage);
    const PageId warm_lo = static_cast<PageId>(
        (10ull << 30) / kPage);
    const PageId warm_hi = static_cast<PageId>(
        (24ull << 30) / kPage);
    std::vector<PageId> buf(4096);
    std::uint64_t emitted = 0, early_in = 0, early_n = 0, late_in = 0,
                  late_n = 0;
    std::size_t n;
    while ((n = gen->fill(buf)) > 0) {
        for (std::size_t i = 0; i < n; ++i, ++emitted) {
            const bool in_warm =
                buf[i] >= warm_lo && buf[i] < warm_hi;
            if (emitted < 200000) {
                early_in += in_warm;
                ++early_n;
            } else if (emitted >= 400000) {
                late_in += in_warm;
                ++late_n;
            }
        }
    }
    ASSERT_GT(early_n, 0u);
    ASSERT_GT(late_n, 0u);
    const double early_share =
        static_cast<double>(early_in) / static_cast<double>(early_n);
    const double late_share =
        static_cast<double>(late_in) / static_cast<double>(late_n);
    EXPECT_GT(late_share, early_share + 0.2);
    (void)pages;
}

}  // namespace
}  // namespace artmem::workloads
