/**
 * @file
 * detlint analyzer tests: every rule fires on its known-bad fixture
 * and stays silent on its known-good twin (tests/lint_fixtures/), the
 * suppression grammar works in both same-line and next-line form with
 * malformed markers demoted to DL000, the config parser accepts the
 * checked-in configs/detlint.toml subset and rejects garbage with line
 * numbers, and the JSON writer emits the shape CI archives.
 *
 * The directory-walk test drives the real fixture corpus on disk
 * (ARTMEM_LINT_FIXTURE_DIR, injected by tests/CMakeLists.txt); the
 * rule-precision tests lint in-memory snippets so a failure pinpoints
 * the exact construct.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace artmem::detlint {
namespace {

/** Config the fixture corpus is written against. */
Config
fixture_config()
{
    Config config;
    config.status_functions = {"try_load", ".emit"};
    return config;
}

std::vector<Finding>
lint_snippet(std::string_view text, const Config& config = Config())
{
    return lint_text("snippet.cpp", std::string(text), config);
}

/** All rule ids seen in @p findings. */
std::vector<std::string>
rules_of(const std::vector<Finding>& findings)
{
    std::vector<std::string> rules;
    for (const auto& f : findings)
        rules.push_back(f.rule);
    return rules;
}

TEST(Catalog, HasEveryRuleOnce)
{
    const auto& catalog = rule_catalog();
    ASSERT_EQ(catalog.size(), 8u);
    const char* expected[] = {"DL000", "DL001", "DL002", "DL003",
                              "DL004", "DL005", "DL006", "DL007"};
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        EXPECT_EQ(catalog[i].id, expected[i]);
        EXPECT_FALSE(catalog[i].title.empty());
        EXPECT_FALSE(catalog[i].rationale.empty());
        EXPECT_TRUE(known_rule(catalog[i].id));
    }
    EXPECT_FALSE(known_rule("DL999"));
    EXPECT_FALSE(known_rule(""));
}

// --------------------------------------------------------------- corpus

/**
 * The fixture corpus is the ground truth: dlNNN_bad.cpp must produce
 * at least one finding, every one of them rule DLNNN; dlNNN_good.cpp
 * (and suppression_good.cpp) must produce none.
 */
TEST(FixtureCorpus, EveryRuleFiresBothDirections)
{
    std::vector<std::string> errors;
    const auto findings = lint_paths({ARTMEM_LINT_FIXTURE_DIR},
                                     fixture_config(), errors);
    ASSERT_TRUE(errors.empty()) << errors.front();
    ASSERT_FALSE(findings.empty());

    std::map<std::string, std::vector<std::string>> by_file;
    for (const auto& f : findings) {
        const std::string name = f.path.substr(f.path.rfind('/') + 1);
        by_file[name].push_back(f.rule);
        EXPECT_GT(f.line, 0u) << f.path;
        EXPECT_FALSE(f.excerpt.empty()) << f.path;
    }

    const char* rules[] = {"DL000", "DL001", "DL002", "DL003",
                           "DL004", "DL005", "DL006", "DL007"};
    for (const char* rule : rules) {
        std::string stem = rule;
        std::transform(stem.begin(), stem.end(), stem.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        const std::string bad = stem + "_bad.cpp";
        ASSERT_TRUE(by_file.count(bad)) << bad << " produced no findings";
        for (const auto& seen : by_file[bad])
            EXPECT_EQ(seen, rule) << "stray finding in " << bad;
        EXPECT_FALSE(by_file.count(stem + "_good.cpp"))
            << stem << "_good.cpp must be clean";
    }
    EXPECT_FALSE(by_file.count("suppression_good.cpp"))
        << "valid suppressions must silence their findings";
    // Path-scoped rules: the nested src/tenancy fixtures exercise the
    // seed-domain ban that only applies inside the tenancy subsystem.
    ASSERT_TRUE(by_file.count("dl002_tenancy_bad.cpp"))
        << "tenancy kJob misuse produced no findings";
    for (const auto& seen : by_file["dl002_tenancy_bad.cpp"])
        EXPECT_EQ(seen, "DL002") << "stray finding in dl002_tenancy_bad";
    EXPECT_GE(by_file["dl002_tenancy_bad.cpp"].size(), 2u);
    EXPECT_FALSE(by_file.count("dl002_tenancy_good.cpp"))
        << "dl002_tenancy_good.cpp must be clean";
    // Known-bad counts: each bad fixture exercises several constructs.
    EXPECT_GE(by_file["dl001_bad.cpp"].size(), 5u);
    EXPECT_GE(by_file["dl002_bad.cpp"].size(), 5u);
    EXPECT_GE(by_file["dl005_bad.cpp"].size(), 4u);
    EXPECT_GE(by_file["dl006_bad.cpp"].size(), 5u);
    EXPECT_EQ(by_file["dl000_bad.cpp"].size(), 3u);
}

// ------------------------------------------------------- rule precision

TEST(Rules, WallClockInStringOrCommentDoesNotFire)
{
    EXPECT_TRUE(lint_snippet("// std::chrono::steady_clock::now()\n"
                             "const char* s = \"time(nullptr)\";\n")
                    .empty());
    EXPECT_EQ(rules_of(lint_snippet(
                  "auto t = std::chrono::steady_clock::now();\n")),
              std::vector<std::string>{"DL001"});
}

TEST(Rules, BlockCommentSpansLines)
{
    EXPECT_TRUE(lint_snippet("/* std::random_device\n"
                             "   rand() */ int x = 0;\n")
                    .empty());
}

TEST(Rules, DigitSeparatorIsNotACharLiteral)
{
    // A naive char-literal scanner would swallow everything between
    // the separators and corrupt the rest of the line.
    const auto findings = lint_snippet(
        "machine.advance(1'000'000'000); std::random_device d;\n");
    EXPECT_EQ(rules_of(findings), std::vector<std::string>{"DL002"});
}

TEST(Rules, SeededEngineDoesNotFire)
{
    EXPECT_TRUE(lint_snippet("std::mt19937 rng(seed);\n").empty());
    EXPECT_EQ(rules_of(lint_snippet("std::mt19937 rng;\n")),
              std::vector<std::string>{"DL002"});
}

TEST(Rules, FrozenJobSeedFiresOnlyInsideTenancy)
{
    // The kJob domain is fine everywhere else (sweep, engine, tests);
    // only src/tenancy is held to the kTenant tagging rule.
    const std::string code =
        "const auto s = derive_seed(base, SeedDomain::kJob, i);\n";
    EXPECT_EQ(rules_of(lint_text("src/tenancy/tenant_set.cpp", code,
                                 Config())),
              std::vector<std::string>{"DL002"});
    EXPECT_EQ(rules_of(lint_text("/root/repo/src/tenancy/admission.cpp",
                                 code, Config())),
              std::vector<std::string>{"DL002"});
    EXPECT_TRUE(lint_text("src/sweep/runner.cpp", code, Config()).empty());
    EXPECT_TRUE(lint_text("src/sim/engine.cpp", code, Config()).empty());
    // The sanctioned domain is silent even inside the subsystem.
    EXPECT_TRUE(lint_text("src/tenancy/tenant_set.cpp",
                          "const auto s = derive_seed(base, "
                          "SeedDomain::kTenant, i);\n",
                          Config())
                    .empty());
}

TEST(Rules, DiscardedStatusHonoursConsumers)
{
    Config config;
    config.status_functions = {"try_load", ".emit"};
    EXPECT_EQ(rules_of(lint_snippet("try_load(1);\n", config)),
              std::vector<std::string>{"DL004"});
    EXPECT_EQ(rules_of(lint_snippet("sink.emit(os);\n", config)),
              std::vector<std::string>{"DL004"});
    // Consumed, cast away, or free-function-vs-member: all silent.
    EXPECT_TRUE(lint_snippet("auto r = try_load(1);\n", config).empty());
    EXPECT_TRUE(lint_snippet("(void)try_load(1);\n", config).empty());
    EXPECT_TRUE(lint_snippet("return try_load(1);\n", config).empty());
    EXPECT_TRUE(lint_snippet("emit(sink, opt);\n", config).empty());
    // A continuation line consuming the value must not fire.
    EXPECT_TRUE(lint_snippet("total +=\n    try_load(1);\n", config)
                    .empty());
}

TEST(Rules, MutableStaticNeedsDataNotFunctions)
{
    EXPECT_EQ(rules_of(lint_snippet("static int counter = 0;\n")),
              std::vector<std::string>{"DL006"});
    EXPECT_TRUE(lint_snippet("static const int kLimit = 8;\n").empty());
    EXPECT_TRUE(lint_snippet("static constexpr int kBins = 17;\n").empty());
    EXPECT_TRUE(lint_snippet("static int helper(int value);\n").empty());
}

TEST(Rules, FloatAccumulateFiresIntegerDoesNot)
{
    EXPECT_EQ(rules_of(lint_snippet(
                  "auto s = std::accumulate(b, e, 0.0);\n")),
              std::vector<std::string>{"DL007"});
    EXPECT_TRUE(
        lint_snippet("auto s = std::accumulate(b, e, 0);\n").empty());
}

// ---------------------------------------------------------- suppression

TEST(Suppression, SameLineWithReasonSilences)
{
    EXPECT_TRUE(lint_snippet("std::unordered_map<int, int> m;  "
                             "// lint:allow(DL003) sorted before use\n")
                    .empty());
}

TEST(Suppression, NextLineCommentCoversFollowingCode)
{
    EXPECT_TRUE(lint_snippet("// lint:allow(DL003) sorted before use\n"
                             "std::unordered_map<int, int> m;\n")
                    .empty());
    // ... but not the line after that.
    const auto findings =
        lint_snippet("// lint:allow(DL003) sorted before use\n"
                     "int x = 0;\n"
                     "std::unordered_map<int, int> m;\n");
    EXPECT_EQ(rules_of(findings), std::vector<std::string>{"DL003"});
}

TEST(Suppression, MissingReasonIsDL000AndDoesNotSuppress)
{
    const auto findings = lint_snippet(
        "std::unordered_map<int, int> m;  // lint:allow(DL003)\n");
    const auto rules = rules_of(findings);
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "DL000"), 1);
    EXPECT_EQ(std::count(rules.begin(), rules.end(), "DL003"), 1);
}

TEST(Suppression, UnknownRuleIsDL000)
{
    const auto findings =
        lint_snippet("int x = 0;  // lint:allow(DL123) because\n");
    EXPECT_EQ(rules_of(findings), std::vector<std::string>{"DL000"});
}

TEST(Suppression, WrongRuleDoesNotSilenceOthers)
{
    const auto findings = lint_snippet(
        "std::unordered_map<int, int> m;  // lint:allow(DL001) nope\n");
    EXPECT_EQ(rules_of(findings), std::vector<std::string>{"DL003"});
}

TEST(Suppression, MarkerInsideStringLiteralIsInert)
{
    // detlint's own sources embed the marker in string literals; only
    // real comment text may suppress (or malform).
    EXPECT_TRUE(lint_snippet("const char* kNeedle = "
                             "\"lint:allow(\";\n")
                    .empty());
}

// --------------------------------------------------------------- config

TEST(ConfigParse, AcceptsCheckedInSubset)
{
    std::istringstream is(
        "# comment\n"
        "[lint]\n"
        "extensions = [\".cpp\", \".hpp\"]\n"
        "exclude = [\"tests/lint_fixtures\"]\n"
        "[rules.DL001]\n"
        "allow = [\"src/telemetry/phase_timer.cpp\"]\n"
        "[rules.DL004]\n"
        "functions = [\"try_load\", \".emit\"]\n");
    Config config;
    std::string error;
    ASSERT_TRUE(parse_config(is, config, error)) << error;
    EXPECT_EQ(config.extensions,
              (std::vector<std::string>{".cpp", ".hpp"}));
    EXPECT_EQ(config.exclude,
              (std::vector<std::string>{"tests/lint_fixtures"}));
    EXPECT_EQ(config.allow.at("DL001"),
              (std::vector<std::string>{"src/telemetry/phase_timer.cpp"}));
    EXPECT_EQ(config.status_functions,
              (std::vector<std::string>{"try_load", ".emit"}));
}

TEST(ConfigParse, RejectsUnknownRuleSectionWithLineNumber)
{
    std::istringstream is("[rules.DL999]\nallow = [\"src\"]\n");
    Config config;
    std::string error;
    EXPECT_FALSE(parse_config(is, config, error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(ConfigParse, RejectsKeyOutsideSection)
{
    std::istringstream is("allow = [\"src\"]\n");
    Config config;
    std::string error;
    EXPECT_FALSE(parse_config(is, config, error));
}

TEST(ConfigAllow, PathPrefixMatchesRepoRelativeAndAbsolute)
{
    Config config;
    config.allow["DL001"] = {"src/telemetry/phase_timer.cpp"};
    const std::string code =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(
        lint_text("src/telemetry/phase_timer.cpp", code, config).empty());
    EXPECT_TRUE(lint_text("/root/repo/src/telemetry/phase_timer.cpp",
                          code, config)
                    .empty());
    // A different file, and a same-suffix-but-different-component path,
    // still fire.
    EXPECT_FALSE(
        lint_text("src/telemetry/trace.cpp", code, config).empty());
    EXPECT_FALSE(lint_text("src/telemetry/phase_timer.cpp2", code, config)
                     .empty());
}

// --------------------------------------------------------------- output

TEST(Output, JsonShapeAndEscaping)
{
    std::vector<Finding> findings;
    findings.push_back({"DL003", "src/a.cpp", 7,
                        "unordered-container iteration order",
                        "std::unordered_map<std::string, int> m; // \"x\""});
    std::ostringstream os;
    write_json(os, findings);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"tool\": \"detlint\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"DL003\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    EXPECT_NE(json.find("\\\"x\\\""), std::string::npos);

    std::ostringstream empty;
    write_json(empty, {});
    EXPECT_NE(empty.str().find("\"count\": 0"), std::string::npos);
}

TEST(Output, TextReportSummarizes)
{
    std::ostringstream os;
    write_text(os, {});
    EXPECT_EQ(os.str(), "detlint: clean\n");
}

}  // namespace
}  // namespace artmem::detlint
