/**
 * @file
 * Sharded access pipeline: determinism, partition, and seed-domain
 * tests (DESIGN.md §12).
 *
 * The --shards refactor carries the same contract as --jobs: shard
 * count is an execution detail, never an input to the simulation.
 * These tests pin that contract from four sides:
 *
 *  1. seed domains — the kShard derivation stream is disjoint from the
 *     kJob stream (so "shard 3 of a run" can never replay "job 3 of a
 *     sweep"), and kJob is bit-for-bit the legacy two-argument stream;
 *  2. ownership — the slice map is a fixed partition of the page space,
 *     independent of the shard count;
 *  3. invariance — full run_experiment() results (runtime, counters,
 *     timeline, PEBS accounting) are identical for shards 0 (legacy
 *     loop), 1, 2, 3 and 8, across policies, fault scenarios, and
 *     transactional abort storms;
 *  4. verification — the cross-shard partition/census invariant passes
 *     on live machines and the randomized phase-1 self-checks actually
 *     sample;
 *  5. parallel merge — phase 2 of all-plain batches run as per-lane
 *     parallel work (per-lane latency accumulators, per-shard PEBS
 *     streams, per-shard LRU segments) merged deterministically at
 *     batch/decision boundaries is byte-identical to the serial epoch
 *     merge, for every forced lane completion order (the
 *     lane_delay_hook permutation tests, run under TSan by
 *     scripts/check_sanitizers.sh), and the ShardedLru splice
 *     reproduces a serially touched LruLists oracle exactly;
 *  6. diagnostics — an ownership-partition panic names the page,
 *     slice, shard count, and ownership-map epoch (death test).
 */
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "memsim/fault_injector.hpp"
#include "memsim/pebs.hpp"
#include "memsim/sharded_access.hpp"
#include "memsim/tiered_machine.hpp"
#include "sharded_peers.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"
#include "verify/invariant_checker.hpp"

namespace artmem {
namespace {

using memsim::MachineConfig;
using memsim::PebsSampler;
using memsim::ShardedAccessEngine;
using memsim::Tier;
using memsim::TieredMachine;

// ---------------------------------------------------------------------
// Seed domains.
// ---------------------------------------------------------------------

TEST(SeedDomains, JobDomainIsTheLegacyStreamExactly)
{
    // Sweep goldens pin the legacy two-argument stream; the namespaced
    // overload must reproduce it bit-for-bit under kJob.
    for (const std::uint64_t base : {0ull, 42ull, 0xdeadbeefull,
                                     0x9e3779b97f4a7c15ull}) {
        for (std::uint64_t i = 0; i < 256; ++i)
            ASSERT_EQ(derive_seed(base, SeedDomain::kJob, i),
                      derive_seed(base, i))
                << "base=" << base << " i=" << i;
    }
}

TEST(SeedDomains, JobAndShardStreamsNeverCollide)
{
    // The collision the namespacing exists to prevent: job i of a sweep
    // and shard i of a run sharing one RNG stream whenever the run seed
    // equals the sweep base seed. Exhaustively cross-check the first 64
    // indices of both domains (shard indices cap at 64) — including the
    // issue's canonical pair, job 3 vs shard 3 — for several bases.
    for (const std::uint64_t base : {0ull, 3ull, 42ull, 0xa11ce5eeull}) {
        std::set<std::uint64_t> job_seeds;
        for (std::uint64_t i = 0; i < 64; ++i)
            job_seeds.insert(derive_seed(base, SeedDomain::kJob, i));
        for (std::uint64_t i = 0; i < 64; ++i) {
            ASSERT_EQ(job_seeds.count(
                          derive_seed(base, SeedDomain::kShard, i)),
                      0u)
                << "base=" << base << " shard index " << i
                << " collides with a job seed";
        }
        ASSERT_NE(derive_seed(base, SeedDomain::kShard, 3),
                  derive_seed(base, SeedDomain::kJob, 3));
    }
}

// ---------------------------------------------------------------------
// Ownership partition.
// ---------------------------------------------------------------------

TEST(ShardedAccess, OwnershipIsAFixedPartitionOfTheSliceSpace)
{
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = 1024 * cfg.page_size;
    cfg.tiers[0].capacity = 256 * cfg.page_size;
    cfg.tiers[1].capacity = 1024 * cfg.page_size;
    TieredMachine machine(cfg);

    // slice_of is a pure function of the page: 64-page blocks cycling
    // through 64 slices, independent of any engine instance.
    ASSERT_EQ(ShardedAccessEngine::slice_of(0), 0u);
    ASSERT_EQ(ShardedAccessEngine::slice_of(63), 0u);
    ASSERT_EQ(ShardedAccessEngine::slice_of(64), 1u);
    ASSERT_EQ(ShardedAccessEngine::slice_of(64ull * 64), 0u);

    for (const unsigned shards : {1u, 2u, 3u, 8u, 64u}) {
        ShardedAccessEngine engine(machine, {.shards = shards});
        ASSERT_EQ(engine.shards(), shards);
        for (unsigned sl = 0; sl < ShardedAccessEngine::kNumSlices; ++sl)
            ASSERT_EQ(engine.slice_owner(sl), sl % shards) << "slice " << sl;
        for (PageId p = 0; p < machine.page_count(); ++p) {
            ASSERT_LT(engine.owner_of(p), shards) << "page " << p;
            ASSERT_EQ(engine.owner_of(p),
                      ShardedAccessEngine::slice_of(p) % shards)
                << "page " << p;
        }
    }
}

// ---------------------------------------------------------------------
// Full-run invariance across shard counts.
// ---------------------------------------------------------------------

void
expect_results_equal(const sim::RunResult& a, const sim::RunResult& b)
{
    ASSERT_EQ(a.runtime_ns, b.runtime_ns);
    ASSERT_EQ(a.accesses, b.accesses);
    ASSERT_EQ(a.fast_ratio, b.fast_ratio);
    ASSERT_EQ(a.totals.accesses[0], b.totals.accesses[0]);
    ASSERT_EQ(a.totals.accesses[1], b.totals.accesses[1]);
    ASSERT_EQ(a.totals.hint_faults, b.totals.hint_faults);
    ASSERT_EQ(a.totals.promoted_pages, b.totals.promoted_pages);
    ASSERT_EQ(a.totals.demoted_pages, b.totals.demoted_pages);
    ASSERT_EQ(a.totals.exchanges, b.totals.exchanges);
    ASSERT_EQ(a.totals.migration_busy_ns, b.totals.migration_busy_ns);
    ASSERT_EQ(a.totals.overhead_ns, b.totals.overhead_ns);
    ASSERT_EQ(a.totals.failed_no_slot, b.totals.failed_no_slot);
    ASSERT_EQ(a.totals.failed_pinned, b.totals.failed_pinned);
    ASSERT_EQ(a.totals.failed_transient, b.totals.failed_transient);
    ASSERT_EQ(a.totals.failed_contended, b.totals.failed_contended);
    ASSERT_EQ(a.totals.aborted_migration_ns,
              b.totals.aborted_migration_ns);
    ASSERT_EQ(a.totals.tx_opened, b.totals.tx_opened);
    ASSERT_EQ(a.totals.tx_committed, b.totals.tx_committed);
    ASSERT_EQ(a.totals.tx_aborted, b.totals.tx_aborted);
    ASSERT_EQ(a.totals.tx_retries, b.totals.tx_retries);
    ASSERT_EQ(a.totals.tx_free_flips, b.totals.tx_free_flips);
    ASSERT_EQ(a.totals.tx_dual_drops, b.totals.tx_dual_drops);
    ASSERT_EQ(a.totals.tx_dual_reclaims, b.totals.tx_dual_reclaims);
    ASSERT_EQ(a.totals.failed_tx_busy, b.totals.failed_tx_busy);
    ASSERT_EQ(a.pebs_recorded, b.pebs_recorded);
    ASSERT_EQ(a.pebs_dropped, b.pebs_dropped);
    ASSERT_EQ(a.pebs_suppressed, b.pebs_suppressed);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        const auto& ia = a.timeline[i];
        const auto& ib = b.timeline[i];
        ASSERT_EQ(ia.end_time, ib.end_time) << "interval " << i;
        ASSERT_EQ(ia.accesses, ib.accesses) << "interval " << i;
        ASSERT_EQ(ia.fast_ratio, ib.fast_ratio) << "interval " << i;
        ASSERT_EQ(ia.promoted, ib.promoted) << "interval " << i;
        ASSERT_EQ(ia.demoted, ib.demoted) << "interval " << i;
        ASSERT_EQ(ia.exchanges, ib.exchanges) << "interval " << i;
        ASSERT_EQ(ia.failed_migrations, ib.failed_migrations)
            << "interval " << i;
        ASSERT_EQ(ia.sampling_blackout, ib.sampling_blackout)
            << "interval " << i;
    }
}

sim::RunSpec
base_spec(const std::string& workload, const std::string& policy)
{
    sim::RunSpec spec;
    spec.workload = workload;
    spec.policy = policy;
    spec.ratio = {1, 4};
    spec.accesses = 150000;
    spec.seed = 7;
    spec.engine.record_timeline = true;
    spec.engine.check_invariants = true;
    return spec;
}

TEST(ShardedAccess, RunResultsInvariantAcrossShardCountsAndPolicies)
{
    // shards=0 is the legacy unsharded loop; 1 the single-lane sharded
    // pipeline; 3 does not divide the 64 slices evenly; 8 the paper's
    // "one shard per core" shape. tpp installs a trap handler that
    // migrates mid-batch, driving the legacy-tail path hard. Both merge
    // flavours must match the unsharded baseline for every count.
    for (const char* policy : {"artmem", "tpp", "memtis", "autotiering"}) {
        SCOPED_TRACE(policy);
        const auto baseline = sim::run_experiment(base_spec("ycsb", policy));
        for (const unsigned shards : {1u, 2u, 3u, 8u}) {
            for (const bool parallel : {false, true}) {
                SCOPED_TRACE(shards);
                SCOPED_TRACE(parallel ? "parallel" : "serial");
                auto spec = base_spec("ycsb", policy);
                spec.engine.shards = shards;
                spec.engine.parallel_merge = parallel;
                expect_results_equal(baseline, sim::run_experiment(spec));
            }
        }
    }
}

TEST(ShardedAccess, RunResultsInvariantUnderFaultsAndTxAbortStorm)
{
    auto storm = base_spec("ycsb", "memtis");
    storm.accesses = 300000;
    storm.engine.faults = memsim::make_fault_scenario("abort_storm", 7);
    storm.engine.tx.enabled = true;
    const auto baseline = sim::run_experiment(storm);
    ASSERT_GT(baseline.totals.tx_opened, 0u);
    ASSERT_GT(baseline.totals.tx_aborted, 0u);
    for (const unsigned shards : {1u, 4u}) {
        for (const bool parallel : {false, true}) {
            SCOPED_TRACE(shards);
            SCOPED_TRACE(parallel ? "parallel" : "serial");
            auto spec = storm;
            spec.engine.shards = shards;
            spec.engine.parallel_merge = parallel;
            expect_results_equal(baseline, sim::run_experiment(spec));
        }
    }

    auto blackout = base_spec("ycsb", "tpp");
    blackout.engine.faults = memsim::make_fault_scenario("blackout", 7);
    const auto blk = sim::run_experiment(blackout);
    ASSERT_GT(blk.pebs_suppressed, 0u);
    for (const bool parallel : {false, true}) {
        SCOPED_TRACE(parallel ? "parallel" : "serial");
        auto spec = blackout;
        spec.engine.shards = 5;
        spec.engine.parallel_merge = parallel;
        expect_results_equal(blk, sim::run_experiment(spec));
    }
}

// ---------------------------------------------------------------------
// Parallel merge: direct engine lockstep + merge-order determinism.
// ---------------------------------------------------------------------

MachineConfig
small_machine_config(std::size_t pages)
{
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = pages * cfg.page_size;
    cfg.tiers[0].capacity = (pages / 4) * cfg.page_size;
    cfg.tiers[1].capacity = pages * cfg.page_size;
    return cfg;
}

TEST(ShardedAccess, ParallelMergeMatchesSerialStreamAndClock)
{
    // Two sharded engines over twin machines, one per merge flavour,
    // fed identical batches. After every simulated boundary the
    // parallel engine's published sampler stream, clock, and counters
    // must equal the serial oracle's exactly.
    const std::size_t pages = 1024;
    TieredMachine serial_machine(small_machine_config(pages));
    TieredMachine parallel_machine(small_machine_config(pages));
    serial_machine.prefault_range(0, pages);
    parallel_machine.prefault_range(0, pages);

    ShardedAccessEngine serial_engine(
        serial_machine, {.shards = 4, .seed = 1, .audit = true});
    ShardedAccessEngine parallel_engine(parallel_machine,
                                        {.shards = 4,
                                         .seed = 1,
                                         .audit = true,
                                         .parallel_merge = true});
    PebsSampler serial_sampler({.period = 7, .buffer_capacity = 1 << 8});
    PebsSampler parallel_sampler({.period = 7, .buffer_capacity = 1 << 8});

    Rng stream(11);
    std::vector<PageId> batch;
    std::vector<memsim::PebsSample> serial_drained;
    std::vector<memsim::PebsSample> parallel_drained;
    for (int round = 0; round < 64; ++round) {
        batch.clear();
        for (int i = 0; i < 512; ++i)
            batch.push_back(static_cast<PageId>(stream.next_below(pages)));
        serial_engine.process(batch.data(), batch.size(), serial_sampler);
        parallel_engine.process(batch.data(), batch.size(),
                                parallel_sampler);
        ASSERT_EQ(parallel_machine.now(), serial_machine.now())
            << "round " << round;
        if (round % 8 == 7) {
            // Simulated tick boundary: publish pending per-shard
            // records, then both streams must drain identically.
            parallel_engine.merge_boundary(parallel_sampler);
            ASSERT_EQ(parallel_sampler.recorded(),
                      serial_sampler.recorded());
            ASSERT_EQ(parallel_sampler.dropped(),
                      serial_sampler.dropped());
            ASSERT_EQ(parallel_sampler.countdown(),
                      serial_sampler.countdown());
            serial_drained.clear();
            parallel_drained.clear();
            serial_sampler.drain(serial_drained,
                                 static_cast<std::size_t>(-1));
            parallel_sampler.drain(parallel_drained,
                                   static_cast<std::size_t>(-1));
            ASSERT_EQ(parallel_drained.size(), serial_drained.size());
            for (std::size_t i = 0; i < serial_drained.size(); ++i) {
                ASSERT_EQ(parallel_drained[i].page,
                          serial_drained[i].page)
                    << "record " << i;
                ASSERT_EQ(parallel_drained[i].tier,
                          serial_drained[i].tier)
                    << "record " << i;
            }
            parallel_engine.splice_recency();
            const auto examined =
                verify::InvariantChecker::check_shard_partition(
                    parallel_machine, parallel_engine);
            ASSERT_GT(examined, 0u);
        }
    }
    // Every batch was all-plain (prefaulted, no traps), so the parallel
    // engine must actually have exercised the parallel fold.
    EXPECT_GT(parallel_engine.parallel_merges(), 0u);
    EXPECT_EQ(parallel_engine.serial_merges(), 0u);
    EXPECT_EQ(serial_engine.parallel_merges(), 0u);
    EXPECT_GT(parallel_engine.parallel_accesses(), 0u);
    const auto& st = serial_machine.totals();
    const auto& pt = parallel_machine.totals();
    EXPECT_EQ(pt.accesses[0], st.accesses[0]);
    EXPECT_EQ(pt.accesses[1], st.accesses[1]);
    // The recency view exists only on the parallel engine and holds
    // one segment entry per touched page.
    ASSERT_NE(parallel_engine.recency(), nullptr);
    EXPECT_EQ(serial_engine.recency(), nullptr);
    EXPECT_GT(parallel_engine.recency()->touches(), 0u);
}

/**
 * Gate used by the lane-permutation tests: lanes entering a phase spin
 * (yielding, no wall clock — the determinism lint bans sleeps) until
 * the global turn counter reaches their configured rank, so the four
 * lanes of every phase complete in exactly the forced order.
 */
std::function<void(unsigned)>
make_permutation_hook(std::shared_ptr<std::atomic<std::uint64_t>> turn,
                      std::array<unsigned, 4> rank)
{
    return [turn = std::move(turn), rank](unsigned v) {
        constexpr unsigned kShards = 4;
        if (v < kShards) {
            while (turn->load(std::memory_order_acquire) % kShards !=
                   rank[v])
                std::this_thread::yield();
        } else {
            turn->fetch_add(1, std::memory_order_release);
        }
    };
}

TEST(ShardedAccess, ParallelMergeIsLaneCompletionOrderInvariant)
{
    // Force every lane completion order the scheduler could produce
    // (identity, reversal, rotation, interleave) and require the full
    // run result — clock, counters, timeline, PEBS accounting — to be
    // byte-equal to the un-hooked run. scripts/check_sanitizers.sh
    // runs this suite under TSan, so a data race in the lane fan-out
    // fails CI even if it never perturbs output on this host.
    auto spec = base_spec("ycsb", "memtis");
    spec.accesses = 60000;
    spec.engine.shards = 4;
    spec.engine.parallel_merge = true;
    const auto baseline = sim::run_experiment(spec);

    const std::array<std::array<unsigned, 4>, 4> orders = {{
        {0u, 1u, 2u, 3u},
        {3u, 2u, 1u, 0u},
        {1u, 2u, 3u, 0u},
        {2u, 0u, 3u, 1u},
    }};
    for (const auto& rank : orders) {
        SCOPED_TRACE(::testing::Message()
                     << "order " << rank[0] << rank[1] << rank[2]
                     << rank[3]);
        auto forced = spec;
        forced.engine.lane_delay_hook = make_permutation_hook(
            std::make_shared<std::atomic<std::uint64_t>>(0), rank);
        expect_results_equal(baseline, sim::run_experiment(forced));
    }
}

// ---------------------------------------------------------------------
// ShardedLru: splice vs serially touched oracle.
// ---------------------------------------------------------------------

TEST(ShardedLru, SpliceReproducesSeriallyTouchedOracle)
{
    // Feed one interleaved touch stream both to per-shard segments
    // (each touch through its page's owning shard, stamped with the
    // global sequence number) and to a single serial LruLists. After
    // every splice the merged view must equal the oracle exactly:
    // same list membership, same head-to-tail order, same referenced
    // bits. This is the equivalence theorem in lru/sharded_lru.hpp,
    // exercised with tier flips standing in for migrations.
    const std::size_t pages = 2048;
    const unsigned shards = 4;
    lru::ShardedLru sharded(pages, shards);
    lru::LruLists oracle(pages);

    Rng rng(99);
    std::uint64_t stamp = 0;
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 500; ++i) {
            const auto page = static_cast<PageId>(rng.next_below(pages));
            const Tier tier =
                (rng.next() & 7) != 0 ? Tier::kFast : Tier::kSlow;
            const unsigned shard =
                ShardedAccessEngine::slice_of(page) % shards;
            sharded.touch(shard, page, tier, stamp++);
            oracle.touch(page, tier);
        }
        sharded.splice();
        const lru::LruLists& merged = sharded.merged();
        for (int l = 0; l < 4; ++l) {
            const auto list = static_cast<lru::ListId>(l);
            ASSERT_EQ(merged.size(list), oracle.size(list))
                << "round " << round << " list " << l;
            PageId a = merged.head(list);
            PageId b = oracle.head(list);
            while (true) {
                ASSERT_EQ(a, b) << "round " << round << " list " << l;
                if (a == kInvalidPage)
                    break;
                ASSERT_EQ(merged.referenced(a), oracle.referenced(a))
                    << "page " << a;
                a = merged.next(a);
                b = oracle.next(b);
            }
        }
        for (PageId p = 0; p < pages; ++p)
            ASSERT_EQ(merged.where(p), oracle.where(p)) << "page " << p;
    }
    EXPECT_EQ(sharded.touches(), stamp);
    EXPECT_EQ(sharded.splices(), 40u);
}

// ---------------------------------------------------------------------
// Partition panic diagnostics (death test).
// ---------------------------------------------------------------------

TEST(ShardedAccessDeathTest, PartitionPanicNamesSliceShardsAndEpoch)
{
    // Corrupt lane 0's scan output between phase 1 and phase 2 (via
    // the test scheduling hook, which fires with value lane+shards
    // after the lane's entries are built) and require the resulting
    // panic to carry the triage fields: page, slice, owner/shard
    // count, and the ownership-map epoch.
    TieredMachine machine(small_machine_config(1024));
    machine.prefault_range(0, 1024);
    ShardedAccessEngine* engine_ptr = nullptr;
    ShardedAccessEngine::Config config;
    config.shards = 1;
    config.lane_delay_hook = [&engine_ptr](unsigned v) {
        if (v == 1 && engine_ptr != nullptr) {
            auto& entries =
                memsim::ShardedEngineTestPeer::entries(*engine_ptr, 0);
            if (!entries.empty())
                entries[0] += 1u << 2;  // shift the packed batch index
        }
    };
    ShardedAccessEngine engine(machine, config);
    engine_ptr = &engine;
    PebsSampler sampler({.period = 7, .buffer_capacity = 1 << 8});
    std::vector<PageId> batch(64);
    for (std::size_t i = 0; i < batch.size(); ++i)
        batch[i] = static_cast<PageId>(i);
    EXPECT_DEATH(engine.process(batch.data(), batch.size(), sampler),
                 "slice .* of 1 shards.*ownership-map epoch");
}

// ---------------------------------------------------------------------
// Partition invariant + phase-1 self-checks.
// ---------------------------------------------------------------------

TEST(ShardedAccess, PartitionCensusAuditPassesOnALiveMachine)
{
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = 1024 * cfg.page_size;
    cfg.tiers[0].capacity = 128 * cfg.page_size;
    cfg.tiers[1].capacity = 1024 * cfg.page_size;
    TieredMachine machine(cfg);
    ShardedAccessEngine engine(machine,
                               {.shards = 3, .seed = 99, .audit = true});
    PebsSampler sampler({.period = 7, .buffer_capacity = 1 << 10});

    Rng stream(123);
    std::vector<PageId> batch;
    for (int round = 0; round < 64; ++round) {
        batch.clear();
        for (int i = 0; i < 512; ++i)
            batch.push_back(static_cast<PageId>(stream.next_below(1024)));
        engine.process(batch.data(), batch.size(), sampler);
        // Churn residency so the census sees both tiers.
        for (int i = 0; i < 4; ++i) {
            const auto page =
                static_cast<PageId>(stream.next_below(1024));
            if (machine.is_allocated(page)) {
                const Tier dst = machine.tier_of(page) == Tier::kFast
                                     ? Tier::kSlow
                                     : Tier::kFast;
                (void)machine.migrate(page, dst);
            }
        }
        const auto examined =
            verify::InvariantChecker::check_shard_partition(machine,
                                                            engine);
        ASSERT_GT(examined, 0u) << "round " << round;
    }
    EXPECT_EQ(engine.batches(), 64u);
    EXPECT_GT(engine.audited_accesses(), 0u);
    EXPECT_EQ(engine.legacy_tails(), 0u);  // no traps armed
}

TEST(ShardedAccess, AuditStreamsAreSeedDeterministic)
{
    // Two engines with the same seed must take identical audit samples;
    // a different seed must (overwhelmingly) diverge. The audit stream
    // is the only RNG in the pipeline and feeds nothing observable, so
    // this is purely about replayability of the self-checks.
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = 512 * cfg.page_size;
    cfg.tiers[0].capacity = 128 * cfg.page_size;
    cfg.tiers[1].capacity = 512 * cfg.page_size;

    const auto run = [&](std::uint64_t seed) {
        TieredMachine machine(cfg);
        ShardedAccessEngine engine(
            machine, {.shards = 4, .seed = seed, .audit = true});
        PebsSampler sampler({.period = 7, .buffer_capacity = 1 << 10});
        Rng stream(5);
        std::vector<PageId> batch;
        for (int round = 0; round < 128; ++round) {
            batch.clear();
            for (int i = 0; i < 512; ++i)
                batch.push_back(
                    static_cast<PageId>(stream.next_below(512)));
            engine.process(batch.data(), batch.size(), sampler);
        }
        return engine.audited_accesses();
    };

    const auto a = run(1);
    ASSERT_GT(a, 0u);
    ASSERT_EQ(a, run(1));
    ASSERT_NE(a, run(2));
}

}  // namespace
}  // namespace artmem
