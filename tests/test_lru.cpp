/**
 * @file
 * Unit tests for the active/inactive LRU list substrate.
 */
#include <gtest/gtest.h>

#include "lru/lru_lists.hpp"

namespace artmem::lru {
namespace {

using memsim::Tier;

TEST(ListId, MappingHelpers)
{
    EXPECT_EQ(list_id(Tier::kFast, true), ListId::kFastActive);
    EXPECT_EQ(list_id(Tier::kFast, false), ListId::kFastInactive);
    EXPECT_EQ(list_id(Tier::kSlow, true), ListId::kSlowActive);
    EXPECT_EQ(list_id(Tier::kSlow, false), ListId::kSlowInactive);
    EXPECT_EQ(list_tier(ListId::kSlowActive), Tier::kSlow);
    EXPECT_TRUE(list_active(ListId::kFastActive));
    EXPECT_FALSE(list_active(ListId::kSlowInactive));
}

TEST(LruLists, InsertHeadOrdering)
{
    LruLists l(8);
    l.insert_head(1, ListId::kFastActive);
    l.insert_head(2, ListId::kFastActive);
    l.insert_head(3, ListId::kFastActive);
    EXPECT_EQ(l.head(ListId::kFastActive), 3u);
    EXPECT_EQ(l.tail(ListId::kFastActive), 1u);
    EXPECT_EQ(l.next(3), 2u);
    EXPECT_EQ(l.prev(1), 2u);
    EXPECT_EQ(l.size(ListId::kFastActive), 3u);
}

TEST(LruLists, InsertTailOrdering)
{
    LruLists l(8);
    l.insert_tail(1, ListId::kSlowInactive);
    l.insert_tail(2, ListId::kSlowInactive);
    EXPECT_EQ(l.head(ListId::kSlowInactive), 1u);
    EXPECT_EQ(l.tail(ListId::kSlowInactive), 2u);
}

TEST(LruLists, RemoveRelinks)
{
    LruLists l(8);
    for (PageId p : {1, 2, 3})
        l.insert_head(p, ListId::kFastActive);
    l.remove(2);
    EXPECT_EQ(l.where(2), ListId::kNone);
    EXPECT_EQ(l.next(3), 1u);
    EXPECT_EQ(l.prev(1), 3u);
    EXPECT_EQ(l.size(ListId::kFastActive), 2u);
    // Removing an unlinked page is a no-op.
    l.remove(2);
    EXPECT_EQ(l.size(ListId::kFastActive), 2u);
}

TEST(LruLists, RemoveHeadAndTail)
{
    LruLists l(8);
    for (PageId p : {1, 2, 3})
        l.insert_head(p, ListId::kFastActive);
    l.remove(3);  // head
    EXPECT_EQ(l.head(ListId::kFastActive), 2u);
    l.remove(1);  // tail
    EXPECT_EQ(l.tail(ListId::kFastActive), 2u);
    l.remove(2);  // only element
    EXPECT_EQ(l.head(ListId::kFastActive), kInvalidPage);
    EXPECT_EQ(l.tail(ListId::kFastActive), kInvalidPage);
}

TEST(LruLists, TouchInsertsUnlinkedOnInactive)
{
    LruLists l(8);
    l.touch(4, Tier::kSlow);
    EXPECT_EQ(l.where(4), ListId::kSlowInactive);
    EXPECT_TRUE(l.referenced(4));
}

TEST(LruLists, SecondTouchActivates)
{
    LruLists l(8);
    l.touch(4, Tier::kSlow);
    l.touch(4, Tier::kSlow);
    EXPECT_EQ(l.where(4), ListId::kSlowActive);
}

TEST(LruLists, TouchRotatesActiveToHead)
{
    LruLists l(8);
    l.insert_head(1, ListId::kFastActive);
    l.insert_head(2, ListId::kFastActive);
    l.touch(1, Tier::kFast);
    EXPECT_EQ(l.head(ListId::kFastActive), 1u);
}

TEST(LruLists, TouchRehomesAfterMigration)
{
    LruLists l(8);
    l.insert_head(1, ListId::kSlowActive);
    // The page migrated to fast since; the next touch re-homes it.
    l.touch(1, Tier::kFast);
    EXPECT_EQ(l.where(1), ListId::kFastActive);
}

TEST(LruLists, AgeActiveDeactivatesUnreferenced)
{
    LruLists l(8);
    for (PageId p : {1, 2, 3})
        l.insert_head(p, ListId::kFastActive);
    l.set_referenced(1);  // tail is referenced: gets a second chance
    const auto deactivated = l.age_active(Tier::kFast, 3);
    EXPECT_EQ(deactivated, 2u);
    EXPECT_EQ(l.where(1), ListId::kFastActive);
    EXPECT_EQ(l.where(2), ListId::kFastInactive);
    EXPECT_EQ(l.where(3), ListId::kFastInactive);
    EXPECT_FALSE(l.referenced(1));  // second chance consumed the bit
}

TEST(LruLists, ScanInactiveSplitsReferenced)
{
    LruLists l(8);
    l.insert_head(1, ListId::kFastInactive);
    l.insert_head(2, ListId::kFastInactive);
    l.set_referenced(2);
    std::vector<PageId> candidates;
    const auto n = l.scan_inactive(Tier::kFast, 2, candidates);
    EXPECT_EQ(n, 1u);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0], 1u);          // unreferenced: candidate
    EXPECT_EQ(l.where(2), ListId::kFastActive);  // referenced: activated
}

TEST(LruLists, SizesStayConsistentUnderChurn)
{
    LruLists l(64);
    // Property: after arbitrary operations, sum of list sizes equals
    // the number of linked pages and traversals match sizes.
    for (PageId p = 0; p < 64; ++p)
        l.touch(p, p % 2 ? Tier::kFast : Tier::kSlow);
    for (PageId p = 0; p < 64; p += 3)
        l.touch(p, p % 2 ? Tier::kFast : Tier::kSlow);
    for (PageId p = 0; p < 64; p += 5)
        l.remove(p);
    std::size_t linked = 0;
    for (PageId p = 0; p < 64; ++p)
        linked += l.where(p) != ListId::kNone;
    std::size_t total = 0;
    for (auto id : {ListId::kFastActive, ListId::kFastInactive,
                    ListId::kSlowActive, ListId::kSlowInactive}) {
        std::size_t walk = 0;
        for (PageId p = l.head(id); p != kInvalidPage; p = l.next(p))
            ++walk;
        EXPECT_EQ(walk, l.size(id));
        total += walk;
    }
    EXPECT_EQ(total, linked);
}

}  // namespace
}  // namespace artmem::lru
