/**
 * @file
 * Tests for the deterministic parallel sweep subsystem: seed
 * derivation, the thread pool, SweepRunner determinism across worker
 * counts, exception propagation, ResultSink emission, and the
 * BenchOptions --quick/--accesses contract.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "bench_common.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace artmem {
namespace {

using bench::BenchOptions;

// ---------------------------------------------------------------- seeds

TEST(DeriveSeed, PureFunctionOfBaseAndIndex)
{
    EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
    EXPECT_EQ(derive_seed(42, 17), derive_seed(42, 17));
    EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
    EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(DeriveSeed, DecorrelatedAcrossIndices)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(derive_seed(7, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeed, IndependentOfGridShape)
{
    // The same job index gets the same seed no matter how the grid
    // that produced it was shaped: 2x3 vs 3x2 vs a flat list of 6.
    sim::RunSpec prototype;
    prototype.accesses = 1000;
    auto wide = sweep::SweepSpec::grid(
        {"s1", "s2"}, {"static", "autonuma", "tpp"}, {{1, 1}}, prototype);
    auto tall = sweep::SweepSpec::grid(
        {"s1", "s2", "s3"}, {"static", "autonuma"}, {{1, 1}}, prototype);
    wide.derive_seeds(42);
    tall.derive_seeds(42);
    ASSERT_EQ(wide.jobs.size(), tall.jobs.size());
    for (std::size_t i = 0; i < wide.jobs.size(); ++i) {
        EXPECT_EQ(wide.jobs[i].spec.seed, tall.jobs[i].spec.seed);
        EXPECT_EQ(wide.jobs[i].spec.seed, derive_seed(42, i));
    }
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReusableAcrossWaits)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesFirstExceptionWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("job 3 failed");
            ++completed;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Every non-throwing task still ran; the pool stays usable.
    EXPECT_EQ(completed.load(), 19);
    pool.submit([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 20);
}

// ---------------------------------------------------------- SweepRunner

TEST(SweepRunner, MapCollectsResultsInIndexOrder)
{
    sweep::SweepRunner runner({.jobs = 4, .progress = false});
    const auto out = runner.map<std::size_t>(
        64, [](std::size_t i) { return i * 3 + 1; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3 + 1);
}

TEST(SweepRunner, GridShapeAndLabels)
{
    sim::RunSpec prototype;
    prototype.accesses = 123;
    prototype.seed = 9;
    const auto spec = sweep::SweepSpec::grid(
        {"s1", "s2"}, {"static", "tpp"}, {{1, 1}, {1, 4}}, prototype);
    ASSERT_EQ(spec.jobs.size(), 8u);
    // Nesting order: workload (outer), policy, ratio (inner).
    EXPECT_EQ(spec.jobs[0].spec.workload, "s1");
    EXPECT_EQ(spec.jobs[0].spec.policy, "static");
    EXPECT_EQ(spec.jobs[0].spec.ratio.label(), "1:1");
    EXPECT_EQ(spec.jobs[1].spec.ratio.label(), "1:4");
    EXPECT_EQ(spec.jobs[2].spec.policy, "tpp");
    EXPECT_EQ(spec.jobs[4].spec.workload, "s2");
    const std::vector<std::string> labels{"s2", "tpp", "1:4"};
    EXPECT_EQ(spec.jobs[7].labels, labels);
    EXPECT_EQ(spec.jobs[7].spec.accesses, 123u);
    EXPECT_EQ(spec.jobs[7].spec.seed, 9u);
}

/** The full result fields the benches consume, for exact comparison. */
void
expect_identical(const sim::RunResult& a, const sim::RunResult& b)
{
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.fast_ratio, b.fast_ratio);
    EXPECT_EQ(a.totals.promoted_pages, b.totals.promoted_pages);
    EXPECT_EQ(a.totals.demoted_pages, b.totals.demoted_pages);
    EXPECT_EQ(a.totals.exchanges, b.totals.exchanges);
    EXPECT_EQ(a.pebs_recorded, b.pebs_recorded);
}

TEST(SweepRunner, SerialAndParallelResultsIdentical)
{
    sim::RunSpec prototype;
    prototype.accesses = 60000;
    prototype.seed = 42;
    const auto spec = sweep::SweepSpec::grid(
        {"s1"}, {"static", "autonuma", "memtis", "artmem"},
        {{1, 1}, {1, 4}}, prototype);

    sweep::SweepRunner serial({.jobs = 1, .progress = false});
    sweep::SweepRunner parallel({.jobs = 4, .progress = false});
    const auto a = serial.run(spec);
    const auto b = parallel.run(spec);
    ASSERT_EQ(a.size(), spec.jobs.size());
    ASSERT_EQ(b.size(), spec.jobs.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect_identical(a[i], b[i]);
}

TEST(SweepRunner, CustomRunAndPolicyFactoryJobs)
{
    // A custom-run job and a make_policy job produce the same numbers
    // as the default runner for an equivalent configuration.
    sweep::SweepSpec spec;
    sim::RunSpec run_spec;
    run_spec.workload = "s1";
    run_spec.policy = "memtis";
    run_spec.accesses = 50000;
    spec.add(run_spec, {"default"});
    spec.add_with_policy(run_spec, {"factory"},
                         [] { return sim::make_policy("memtis", 42); });
    spec.add_run({"custom"}, [run_spec] {
        return sim::run_experiment(run_spec);
    });
    sweep::SweepRunner runner({.jobs = 3, .progress = false});
    const auto out = runner.run(spec);
    ASSERT_EQ(out.size(), 3u);
    expect_identical(out[0], out[1]);
    expect_identical(out[0], out[2]);
}

TEST(SweepRunner, JobExceptionPropagates)
{
    sweep::SweepSpec spec;
    sim::RunSpec ok;
    ok.workload = "s1";
    ok.policy = "static";
    ok.accesses = 20000;
    spec.add(ok, {"ok"});
    spec.add_run({"boom"}, []() -> sim::RunResult {
        throw std::runtime_error("boom");
    });
    spec.add(ok, {"ok2"});
    sweep::SweepRunner runner({.jobs = 2, .progress = false});
    EXPECT_THROW(runner.run(spec), std::runtime_error);
}

// ----------------------------------------------------------- ResultSink

TEST(ResultSink, CsvMatchesTableOutput)
{
    sweep::ResultSink sink({"workload", "runtime"});
    sink.row().cell(std::string("s1")).cell(1.25, 2);
    sink.row().cell(std::string("s2")).cell(0.5, 2);
    std::ostringstream csv;
    ASSERT_TRUE(sink.emit(csv, sweep::Format::kCsv));
    EXPECT_EQ(csv.str(), "workload,runtime\ns1,1.25\ns2,0.50\n");

    Table table({"workload", "runtime"});
    table.row().cell(std::string("s1")).cell(1.25, 2);
    table.row().cell(std::string("s2")).cell(0.5, 2);
    std::ostringstream table_csv;
    table.print_csv(table_csv);
    EXPECT_EQ(csv.str(), table_csv.str());
}

TEST(ResultSink, JsonQuotesLabelsAndEmitsNumbersRaw)
{
    sweep::ResultSink sink({"policy", "ratio", "runtime"});
    sink.row()
        .cell(std::string("artmem"))
        .cell(std::string("1:16"))
        .cell(1.5, 3);
    std::ostringstream os;
    ASSERT_TRUE(sink.emit(os, sweep::Format::kJson));
    EXPECT_EQ(os.str(), "[\n  {\"policy\": \"artmem\", "
                        "\"ratio\": \"1:16\", \"runtime\": 1.500}\n]\n");
}

// ----------------------------------------------------------- bench CLI

BenchOptions
parse_options(std::vector<std::string> argv_strings)
{
    argv_strings.insert(argv_strings.begin(), "bench");
    std::vector<char*> argv;
    argv.reserve(argv_strings.size());
    for (auto& arg : argv_strings)
        argv.push_back(arg.data());
    return BenchOptions::parse(static_cast<int>(argv.size()), argv.data(),
                               8000000);
}

TEST(BenchOptions, QuickScalesOnlyTheDefaultAccessCount)
{
    EXPECT_EQ(parse_options({}).accesses, 8000000u);
    EXPECT_EQ(parse_options({"--quick"}).accesses, 2000000u);
    // An explicit --accesses is taken verbatim, even with --quick.
    EXPECT_EQ(parse_options({"--accesses=600"}).accesses, 600u);
    EXPECT_EQ(parse_options({"--quick", "--accesses=600"}).accesses, 600u);
}

TEST(BenchOptions, JobsAndFormatFlags)
{
    EXPECT_EQ(parse_options({}).jobs, 0u);
    EXPECT_EQ(parse_options({"--jobs=4"}).jobs, 4u);
    EXPECT_EQ(parse_options({}).format(), sweep::Format::kTable);
    EXPECT_EQ(parse_options({"--csv"}).format(), sweep::Format::kCsv);
    EXPECT_EQ(parse_options({"--json"}).format(), sweep::Format::kJson);
}

}  // namespace
}  // namespace artmem
