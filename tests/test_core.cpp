/**
 * @file
 * Tests for the ArtMem policy itself: initialization per Algorithm 1,
 * reward mechanics, threshold clamping, migration-scope behaviour,
 * ablation switches, reward modes, and Q-table import/export.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "core/artmem.hpp"
#include "sim/engine.hpp"
#include "workloads/masim.hpp"
#include "workloads/simple.hpp"

namespace artmem::core {
namespace {

constexpr Bytes kPage = 2ull << 20;

memsim::MachineConfig
machine_config(std::size_t fast_pages, std::size_t total_pages)
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = total_pages * kPage;
    cfg.tiers[0].capacity = fast_pages * kPage;
    cfg.tiers[1].capacity = (total_pages + 8) * kPage;
    return cfg;
}

workloads::MasimSpec
hot_high_spec(std::uint64_t accesses, Bytes footprint = 512 * kPage)
{
    workloads::MasimSpec spec;
    spec.name = "hot-high";
    spec.footprint = footprint;
    workloads::MasimPhase phase;
    phase.accesses = accesses;
    phase.regions = {
        {footprint - 64 * kPage, 64 * kPage, 95.0, false},
        {0, footprint, 5.0, false},
    };
    spec.phases.push_back(phase);
    return spec;
}

TEST(ArtMemConfigValidation, RejectsBadConfigs)
{
    ArtMemConfig ok;
    EXPECT_NO_THROW(ArtMem{ok});
    // Death tests for fatal() exits.
    ArtMemConfig bad_sizes = ok;
    bad_sizes.migration_sizes_mib = {16, 32};  // missing the 0 action
    EXPECT_EXIT(ArtMem{bad_sizes}, ::testing::ExitedWithCode(1), "");
    ArtMemConfig bad_k = ok;
    bad_k.k = 0;
    EXPECT_EXIT(ArtMem{bad_k}, ::testing::ExitedWithCode(1), "");
    ArtMemConfig bad_thr = ok;
    bad_thr.min_threshold = 100;
    bad_thr.max_threshold = 10;
    EXPECT_EXIT(ArtMem{bad_thr}, ::testing::ExitedWithCode(1), "");
}

TEST(ArtMemInit, Algorithm1Initialization)
{
    ArtMem policy;
    memsim::TieredMachine machine(machine_config(4, 8));
    policy.init(machine);
    // Q(k, action 0) = 1, everything else 0 (Algorithm 1 line 1).
    const auto& q = policy.migration_agent().table();
    EXPECT_EQ(q.states(), 12);   // k=10 -> states 0..10 plus no-sample
    EXPECT_EQ(q.actions(), 10);  // 0 + 9 doubling sizes
    EXPECT_DOUBLE_EQ(q.at(10, 0), 1.0);
    EXPECT_DOUBLE_EQ(q.at(9, 0), 0.0);
    EXPECT_DOUBLE_EQ(q.at(10, 1), 0.0);
    const auto& t = policy.threshold_agent().table();
    EXPECT_EQ(t.actions(), 5);  // {-8,-4,0,+4,+8}
    EXPECT_EQ(policy.current_threshold(), 16u);  // heuristic minimum
}

TEST(ArtMemInit, QTableMemoryUnder10KiB)
{
    ArtMem policy;
    memsim::TieredMachine machine(machine_config(4, 8));
    policy.init(machine);
    EXPECT_LT(policy.migration_agent().table().memory_bytes() +
                  policy.threshold_agent().table().memory_bytes(),
              10u * 1024);
}

TEST(ArtMemRun, PromotesHotSetAndBeatsStatic)
{
    auto run = [](policies::Policy& policy) {
        workloads::Masim gen(hot_high_spec(3000000), kPage, 13);
        memsim::TieredMachine machine(machine_config(256, 512));
        sim::EngineConfig engine;
        return sim::run_simulation(gen, policy, machine, engine);
    };
    ArtMemConfig cfg;
    ArtMem artmem(cfg);
    const auto r = run(artmem);
    EXPECT_GT(r.totals.promoted_pages, 0u);
    EXPECT_GT(r.fast_ratio, 0.5);
    EXPECT_GT(artmem.periods(), 10u);
}

TEST(ArtMemRun, NoMigrationWhenAlreadyAllFast)
{
    // Footprint fits entirely in the fast tier: state stays k and the
    // primed Q(k, 0)=1 keeps choosing "no migration" (minus epsilon
    // exploration, which cannot move anything as there is no slow page).
    ArtMem policy;
    workloads::UniformRandom gen(64 * kPage, kPage, 500000, 3);
    memsim::TieredMachine machine(machine_config(128, 64));
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    EXPECT_EQ(r.totals.migrated_pages(), 0u);
    EXPECT_DOUBLE_EQ(r.fast_ratio, 1.0);
}

TEST(ArtMemThreshold, StaysWithinClampRange)
{
    ArtMemConfig cfg;
    cfg.min_threshold = 16;
    cfg.max_threshold = 64;
    ArtMem policy(cfg);
    workloads::Masim gen(hot_high_spec(2000000), kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    sim::run_simulation(gen, policy, machine, engine);
    EXPECT_GE(policy.current_threshold(), 16u);
    EXPECT_LE(policy.current_threshold(), 64u);
}

TEST(ArtMemAblation, HeuristicModeStillMigrates)
{
    ArtMemConfig cfg;
    cfg.use_rl = false;
    ArtMem policy(cfg);
    workloads::Masim gen(hot_high_spec(2000000), kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    EXPECT_GT(r.totals.promoted_pages, 0u);
    EXPECT_GT(r.fast_ratio, 0.5);
}

TEST(ArtMemAblation, NoSortingUsesFrequencyOnly)
{
    ArtMemConfig cfg;
    cfg.use_sorting = false;
    ArtMem policy(cfg);
    workloads::Masim gen(hot_high_spec(2000000), kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(ArtMemReward, LatencyModeRuns)
{
    ArtMemConfig cfg;
    cfg.reward_mode = RewardMode::kLatency;
    ArtMem policy(cfg);
    workloads::Masim gen(hot_high_spec(2000000), kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(ArtMemSarsa, RunsAndMigrates)
{
    ArtMemConfig cfg;
    cfg.agent.algorithm = rl::Algorithm::kSarsa;
    ArtMem policy(cfg);
    workloads::Masim gen(hot_high_spec(2000000), kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(ArtMemQTables, SaveLoadRoundTrip)
{
    ArtMem a;
    memsim::TieredMachine ma(machine_config(4, 8));
    a.init(ma);
    a.migration_agent().table().at(5, 3) = 0.75;
    a.threshold_agent().table().at(2, 1) = -0.5;
    std::stringstream ss;
    a.save_qtables(ss);

    ArtMem b;
    memsim::TieredMachine mb(machine_config(4, 8));
    b.init(mb);
    b.load_qtables(ss);
    EXPECT_DOUBLE_EQ(b.migration_agent().table().at(5, 3), 0.75);
    EXPECT_DOUBLE_EQ(b.threshold_agent().table().at(2, 1), -0.5);
}

TEST(ArtMemQTables, MalformedBlobFallsBackToColdStart)
{
    // A corrupt pretrained blob must not kill the run (it is operator
    // input, not an internal invariant): load_qtables() warns, reports
    // false, and leaves the cold-start tables untouched.
    ArtMem policy;
    memsim::TieredMachine machine(machine_config(4, 8));
    policy.init(machine);
    const auto rejects = [&](const std::string& blob) {
        std::istringstream in(blob);
        return !policy.load_qtables(in);
    };
    EXPECT_TRUE(rejects(""));                  // empty
    EXPECT_TRUE(rejects("not a qtable at all"));
    EXPECT_TRUE(rejects("qtable 12 10\n1 2"));  // truncated body
    // Right magic, wrong dimensions for both agents.
    rl::QTable small(2, 2);
    std::stringstream mismatched;
    small.save(mismatched);
    small.save(mismatched);
    EXPECT_TRUE(rejects(mismatched.str()));
    // A valid migration table followed by garbage must not be applied
    // half-way: the migration agent stays cold too.
    rl::QTable shaped(12, 10);
    shaped.at(4, 4) = 9.0;
    std::stringstream half;
    shaped.save(half);
    half << "garbage";
    EXPECT_TRUE(rejects(half.str()));
    EXPECT_DOUBLE_EQ(policy.migration_agent().table().at(4, 4), 0.0);
    // Cold-start signature intact (Algorithm 1 line 1).
    EXPECT_DOUBLE_EQ(policy.migration_agent().table().at(10, 0), 1.0);
}

TEST(ArtMemQTables, BadPretrainedBlobStillRuns)
{
    // The CLI path: set_pretrained_qtables() with a truncated blob is
    // installed at init() time; the run must proceed from a cold start
    // rather than dying mid-experiment.
    ArtMemConfig cfg;
    ArtMem policy(cfg);
    policy.set_pretrained_qtables("qtable 12 10\n0.25 truncated");
    workloads::Masim gen(hot_high_spec(500000), kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    EXPECT_EQ(r.accesses, 500000u);
    EXPECT_GT(policy.periods(), 0u);
}

TEST(ArtMemGuard, NeverSwapsHotForHot)
{
    // Pattern-S4 style trap: the hot set exceeds the fast tier and all
    // hot pages have equal heat. Once the fast tier is full of hot
    // pages, the hot-victim guard must keep steady-state churn near
    // zero instead of endlessly swapping equal-heat pages.
    workloads::MasimSpec spec;
    spec.name = "s4-like";
    spec.footprint = 512 * kPage;
    workloads::MasimPhase phase;
    phase.accesses = 3000000;
    phase.regions = {
        {64 * kPage, 384 * kPage, 92.0, false},  // hot 384 > fast 256
        {0, 512 * kPage, 8.0, false},
    };
    spec.phases.push_back(phase);

    ArtMem policy;
    workloads::Masim gen(spec, kPage, 13);
    memsim::TieredMachine machine(machine_config(256, 512));
    sim::EngineConfig engine;
    engine.record_timeline = true;
    const auto r = sim::run_simulation(gen, policy, machine, engine);
    // Late-run migrations (final quarter) must be a small share of the
    // total: the system has settled.
    std::uint64_t late = 0, total = 0;
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
        const auto moved = r.timeline[i].promoted + r.timeline[i].demoted;
        total += moved;
        if (i >= r.timeline.size() * 3 / 4)
            late += moved;
    }
    if (total > 0) {
        EXPECT_LT(static_cast<double>(late) / static_cast<double>(total),
                  0.3);
    }
}

TEST(ArtMemPretrained, TablesInstalledAfterInit)
{
    ArtMem trainer;
    memsim::TieredMachine ma(machine_config(4, 8));
    trainer.init(ma);
    trainer.migration_agent().table().at(3, 2) = 42.0;
    std::stringstream blob;
    trainer.save_qtables(blob);

    ArtMem student;
    student.set_pretrained_qtables(blob.str());
    memsim::TieredMachine mb(machine_config(4, 8));
    student.init(mb);
    EXPECT_DOUBLE_EQ(student.migration_agent().table().at(3, 2), 42.0);
    // Re-init must re-install (fresh run semantics).
    memsim::TieredMachine mc(machine_config(4, 8));
    student.init(mc);
    EXPECT_DOUBLE_EQ(student.migration_agent().table().at(3, 2), 42.0);
}

TEST(ArtMemRewardModes, ProduceDistinctTrajectories)
{
    auto run_mode = [](RewardMode mode) {
        ArtMemConfig cfg;
        cfg.reward_mode = mode;
        ArtMem policy(cfg);
        workloads::Masim gen(hot_high_spec(2000000), kPage, 13);
        memsim::TieredMachine machine(machine_config(256, 512));
        sim::EngineConfig engine;
        return sim::run_simulation(gen, policy, machine, engine);
    };
    const auto ratio_based = run_mode(RewardMode::kAccessRatio);
    const auto latency_based = run_mode(RewardMode::kLatency);
    EXPECT_NE(ratio_based.runtime_ns, latency_based.runtime_ns);
}

TEST(ArtMemDeterminism, SameSeedSameOutcome)
{
    auto run_once = [](std::uint64_t seed) {
        ArtMemConfig cfg;
        cfg.seed = seed;
        ArtMem policy(cfg);
        workloads::Masim gen(hot_high_spec(1000000), kPage, 13);
        memsim::TieredMachine machine(machine_config(256, 512));
        sim::EngineConfig engine;
        return sim::run_simulation(gen, policy, machine, engine);
    };
    const auto a = run_once(7);
    const auto b = run_once(7);
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.totals.migrated_pages(), b.totals.migrated_pages());
    const auto c = run_once(8);
    // Different exploration seed: almost surely a different trajectory.
    EXPECT_NE(a.runtime_ns, c.runtime_ns);
}

}  // namespace
}  // namespace artmem::core
