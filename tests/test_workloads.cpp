/**
 * @file
 * Unit tests for the workload generators: MASIM, the S1-S4 patterns,
 * YCSB, graph emulations, B-tree, app specs, the mixer, and the
 * factory.
 */
#include <gtest/gtest.h>

#include <map>

#include "workloads/apps.hpp"
#include "workloads/btree.hpp"
#include "workloads/factory.hpp"
#include "workloads/graph.hpp"
#include "workloads/masim.hpp"
#include "workloads/mixer.hpp"
#include "workloads/patterns.hpp"
#include "workloads/simple.hpp"
#include "workloads/trace.hpp"
#include "workloads/ycsb.hpp"

namespace artmem::workloads {
namespace {

constexpr Bytes kPage = 2ull << 20;

/** Drain a generator fully, returning per-page access counts. */
std::map<PageId, std::uint64_t>
histogram(AccessGenerator& gen)
{
    std::map<PageId, std::uint64_t> counts;
    std::vector<PageId> buf(4096);
    std::size_t n;
    std::uint64_t total = 0;
    while ((n = gen.fill(buf)) > 0) {
        for (std::size_t i = 0; i < n; ++i)
            ++counts[buf[i]];
        total += n;
        EXPECT_LE(total, gen.total_accesses() + buf.size()) << "runaway";
        if (total > gen.total_accesses() + buf.size())
            break;
    }
    std::uint64_t sum = 0;
    for (const auto& [page, c] : counts)
        sum += c;
    EXPECT_EQ(sum, gen.total_accesses());
    return counts;
}

TEST(Masim, RespectsBudgetAndFootprint)
{
    MasimSpec spec;
    spec.name = "t";
    spec.footprint = 64ull << 20;  // 32 pages
    MasimPhase phase;
    phase.accesses = 1000;
    phase.regions = {{0, 64ull << 20, 1.0, false}};
    spec.phases.push_back(phase);
    Masim gen(spec, kPage, 1);
    auto counts = histogram(gen);
    for (const auto& [page, c] : counts)
        EXPECT_LT(page, 32u);
}

TEST(Masim, WeightsDriveDistribution)
{
    MasimSpec spec;
    spec.name = "t";
    spec.footprint = 100 * kPage;
    MasimPhase phase;
    phase.accesses = 100000;
    phase.regions = {
        {0, 10 * kPage, 90.0, false},      // pages 0..9: 90%
        {10 * kPage, 90 * kPage, 10.0, false},
    };
    spec.phases.push_back(phase);
    Masim gen(spec, kPage, 1);
    auto counts = histogram(gen);
    std::uint64_t hot = 0;
    for (PageId p = 0; p < 10; ++p)
        hot += counts.count(p) ? counts[p] : 0;
    EXPECT_NEAR(static_cast<double>(hot) / 100000.0, 0.9, 0.02);
}

TEST(Masim, SequentialRegionCyclesInOrder)
{
    MasimSpec spec;
    spec.name = "t";
    spec.footprint = 4 * kPage;
    MasimPhase phase;
    phase.accesses = 8;
    phase.regions = {{0, 4 * kPage, 1.0, true}};
    spec.phases.push_back(phase);
    Masim gen(spec, kPage, 1);
    std::vector<PageId> buf(8);
    ASSERT_EQ(gen.fill(buf), 8u);
    const std::vector<PageId> expect = {0, 1, 2, 3, 0, 1, 2, 3};
    EXPECT_EQ(buf, expect);
}

TEST(Masim, PhasesSwitchAtBoundaries)
{
    MasimSpec spec;
    spec.name = "t";
    spec.footprint = 20 * kPage;
    MasimPhase a, b;
    a.accesses = 100;
    a.regions = {{0, kPage, 1.0, false}};  // page 0 only
    b.accesses = 100;
    b.regions = {{10 * kPage, kPage, 1.0, false}};  // page 10 only
    spec.phases = {a, b};
    Masim gen(spec, kPage, 1);
    auto counts = histogram(gen);
    EXPECT_EQ(counts[0], 100u);
    EXPECT_EQ(counts[10], 100u);
}

TEST(Masim, ParseSpecRoundTrip)
{
    const auto cfg = KvConfig::parse(
        "name = demo\n"
        "footprint_mib = 64\n"
        "phases = 1\n"
        "phase0.accesses = 500\n"
        "phase0.regions = 2\n"
        "phase0.region0 = 0 32 9.0\n"
        "phase0.region1 = 32 32 1.0 seq\n");
    const auto spec = Masim::parse_spec(cfg);
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.footprint, 64ull << 20);
    ASSERT_EQ(spec.phases.size(), 1u);
    ASSERT_EQ(spec.phases[0].regions.size(), 2u);
    EXPECT_FALSE(spec.phases[0].regions[0].sequential);
    EXPECT_TRUE(spec.phases[0].regions[1].sequential);
    EXPECT_DOUBLE_EQ(spec.phases[0].regions[0].weight, 9.0);
}

class PatternSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PatternSweep, SpecIsValidAndRuns)
{
    const int k = GetParam();
    const auto spec = pattern_spec(k, 50000);
    EXPECT_EQ(spec.footprint, 32ull << 30);
    Masim gen(spec, kPage, 7);
    EXPECT_EQ(gen.total_accesses(), 50000u);
    auto counts = histogram(gen);
    EXPECT_FALSE(counts.empty());
}

INSTANTIATE_TEST_SUITE_P(S1toS4, PatternSweep, ::testing::Range(1, 5));

TEST(Patterns, S1ConcentratesInHotRegions)
{
    Masim gen(pattern_spec(1, 200000), kPage, 7);
    auto counts = histogram(gen);
    // Hot regions: 500 MiB at 20 GiB and 30 GiB -> 250 pages each.
    const PageId hot1 = (20ull << 30) / kPage;
    const PageId hot2 = (30ull << 30) / kPage;
    std::uint64_t hot = 0;
    for (const auto& [page, c] : counts) {
        if ((page >= hot1 && page < hot1 + 250) ||
            (page >= hot2 && page < hot2 + 250)) {
            hot += c;
        }
    }
    EXPECT_GT(static_cast<double>(hot) / 200000.0, 0.9);
}

TEST(Patterns, S2PhasesAreTransient)
{
    Masim gen(pattern_spec(2, 160000), kPage, 7);
    // First phase hot region: offset 0, 2 GiB = pages 0..1023.
    // Last phase hot region: offset 28 GiB.
    std::vector<PageId> buf(160000 / 8);
    gen.fill(buf);  // phase 0
    std::uint64_t in_first = 0;
    for (PageId p : buf)
        in_first += p < 1024;
    EXPECT_GT(static_cast<double>(in_first) /
                  static_cast<double>(buf.size()),
              0.85);
    // Drain to the final phase.
    for (int i = 0; i < 6; ++i)
        gen.fill(buf);
    gen.fill(buf);
    const PageId last_base = (28ull << 30) / kPage;
    std::uint64_t in_last = 0;
    for (PageId p : buf)
        in_last += p >= last_base && p < last_base + 1024;
    EXPECT_GT(static_cast<double>(in_last) /
                  static_cast<double>(buf.size()),
              0.85);
}

TEST(Ycsb, LoadPhaseIsSequential)
{
    Ycsb::Params params;
    params.footprint = 512ull << 20;  // 256 pages
    params.total_accesses = 100000;
    Ycsb gen(params, kPage, 3);
    EXPECT_EQ(gen.footprint(), 512ull << 20);
    std::vector<PageId> buf(230);  // populated = 230 pages (0.9 fill)
    ASSERT_EQ(gen.fill(buf), 230u);
    for (PageId p = 0; p < 230; ++p)
        EXPECT_EQ(buf[p], p);  // sequential population sweep
}

TEST(Ycsb, ZipfHeadIsHottestPage)
{
    Ycsb::Params params;
    params.footprint = 512ull << 20;
    params.total_accesses = 100000;
    Ycsb gen(params, kPage, 3);
    auto counts = histogram(gen);
    std::uint64_t max_count = 0;
    for (const auto& [page, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_EQ(counts[0], max_count);
}

TEST(Ycsb, PhaseOrderIsABCFD)
{
    Ycsb::Params params;
    params.footprint = 512ull << 20;
    params.total_accesses = 50000;
    Ycsb gen(params, kPage, 3);
    EXPECT_EQ(gen.current_phase(), 'A');
    std::vector<PageId> buf(10000);
    gen.fill(buf);
    EXPECT_EQ(gen.current_phase(), 'B');
    gen.fill(buf);
    EXPECT_EQ(gen.current_phase(), 'C');
    gen.fill(buf);
    EXPECT_EQ(gen.current_phase(), 'F');
    gen.fill(buf);
    EXPECT_EQ(gen.current_phase(), 'D');
}

TEST(Graph, PresetsMatchPaperFootprints)
{
    EXPECT_EQ(GraphWorkload::cc(1).footprint, 69ull << 30);
    EXPECT_EQ(GraphWorkload::sssp(1).footprint, 64ull << 30);
    EXPECT_EQ(GraphWorkload::pr(1).footprint, 25ull << 30);
}

TEST(Graph, CcHotBlockIsCompact)
{
    GraphWorkload gen(GraphWorkload::cc(200000), kPage, 5);
    auto counts = histogram(gen);
    // Find the hottest page; its neighbourhood should also be hot
    // (compact hot block, Fig. 10b).
    PageId hottest = 0;
    std::uint64_t best = 0;
    for (const auto& [page, c] : counts) {
        if (c > best) {
            best = c;
            hottest = page;
        }
    }
    const auto near = [&](PageId p) {
        auto it = counts.find(p);
        return it == counts.end() ? 0 : it->second;
    };
    EXPECT_GT(near(hottest + 1) + near(hottest + 2), best / 8);
}

TEST(Graph, SsspFrontierMoves)
{
    auto params = GraphWorkload::sssp(100000);
    GraphWorkload gen(params, kPage, 5);
    std::vector<PageId> first(10000), last(10000);
    gen.fill(first);
    for (int i = 0; i < 8; ++i)
        gen.fill(last);
    gen.fill(last);
    // The frontier windows of the first and last supersteps barely
    // overlap: compare median pages.
    auto median = [](std::vector<PageId> v) {
        std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
        return v[v.size() / 2];
    };
    EXPECT_NE(median(first) / 1000, median(last) / 1000);
}

TEST(Btree, DepthAndLevelHotness)
{
    Btree::Params params;
    params.footprint = 1ull << 30;  // small tree
    params.total_accesses = 120000;
    Btree gen(params, kPage, 9);
    EXPECT_GE(gen.depth(), 2u);
    auto counts = histogram(gen);
    // The root page (page 0) is touched on every lookup: strictly the
    // hottest page.
    std::uint64_t best = 0;
    for (const auto& [page, c] : counts)
        best = std::max(best, c);
    EXPECT_EQ(counts[0], best);
}

TEST(Btree, EveryLookupDescendsAllLevels)
{
    Btree::Params params;
    params.footprint = 1ull << 30;
    params.total_accesses = 1000;
    Btree gen(params, kPage, 9);
    std::vector<PageId> buf(static_cast<std::size_t>(gen.depth()));
    ASSERT_EQ(gen.fill(buf), buf.size());
    EXPECT_EQ(buf[0], 0u);  // root first
}

TEST(Apps, SpecsMatchTable3Footprints)
{
    EXPECT_EQ(xsbench_spec(1).footprint, 69ull << 30);
    EXPECT_EQ(dlrm_spec(1).footprint, 72ull << 30);
    EXPECT_EQ(liblinear_spec(1).footprint, 68ull << 30);
    EXPECT_EQ(liblinear_spec(1000).phases.size(), 3u);
}

TEST(Mixer, StacksFootprintsAndInterleaves)
{
    std::vector<std::unique_ptr<AccessGenerator>> children;
    children.push_back(std::make_unique<SequentialScan>(
        4 * kPage, kPage, 100));
    children.push_back(std::make_unique<SequentialScan>(
        4 * kPage, kPage, 100));
    Mixer mix(std::move(children), kPage, 8);
    EXPECT_EQ(mix.footprint(), 8 * kPage);
    EXPECT_EQ(mix.total_accesses(), 200u);
    auto counts = histogram(mix);
    // Child 1's pages are offset by 4.
    EXPECT_GT(counts[0], 0u);
    EXPECT_GT(counts[4], 0u);
    EXPECT_EQ(counts.rbegin()->first, 7u);
}

TEST(Mixer, FinishesWhenAllChildrenDone)
{
    std::vector<std::unique_ptr<AccessGenerator>> children;
    children.push_back(std::make_unique<SequentialScan>(kPage, kPage, 10));
    children.push_back(std::make_unique<SequentialScan>(kPage, kPage, 50));
    Mixer mix(std::move(children), kPage, 4);
    std::vector<PageId> buf(1000);
    std::uint64_t total = 0, n;
    while ((n = mix.fill(buf)) > 0)
        total += n;
    EXPECT_EQ(total, 60u);
}

TEST(Factory, BuildsEveryAdvertisedWorkload)
{
    for (const auto name : workload_names()) {
        auto gen = make_workload(name, kPage, 1000, 1);
        ASSERT_NE(gen, nullptr) << name;
        EXPECT_EQ(gen->name(), name);
        EXPECT_GT(gen->footprint(), 0u) << name;
        std::vector<PageId> buf(128);
        EXPECT_GT(gen->fill(buf), 0u) << name;
    }
}

TEST(Factory, AppListIsTable3)
{
    EXPECT_EQ(app_workload_names().size(), 8u);
}

TEST(Trace, RecordAndReplayRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/artmem_trace.bin";
    std::vector<PageId> original;
    {
        auto inner = std::make_unique<Ycsb>(
            Ycsb::Params{.footprint = 256ull << 20,
                         .total_accesses = 20000},
            kPage, 5);
        // Capture the stream once for comparison.
        Ycsb reference(Ycsb::Params{.footprint = 256ull << 20,
                                    .total_accesses = 20000},
                       kPage, 5);
        std::vector<PageId> buf(333);
        std::size_t n;
        while ((n = reference.fill(buf)) > 0)
            original.insert(original.end(), buf.begin(), buf.begin() + n);

        TraceWriter writer(std::move(inner), path, kPage);
        while (writer.fill(buf) > 0) {
        }
        EXPECT_EQ(writer.written(), original.size());
    }  // destructor finalizes the header

    TraceReplay replay(path);
    EXPECT_EQ(replay.page_size(), kPage);
    EXPECT_EQ(replay.footprint(), 256ull << 20);
    EXPECT_EQ(replay.total_accesses(), original.size());
    std::vector<PageId> replayed;
    std::vector<PageId> buf(777);
    std::size_t n;
    while ((n = replay.fill(buf)) > 0)
        replayed.insert(replayed.end(), buf.begin(), buf.begin() + n);
    EXPECT_EQ(replayed, original);
}

TEST(Trace, ReplayRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/artmem_garbage.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all";
    }
    EXPECT_EXIT(TraceReplay{path}, ::testing::ExitedWithCode(1), "");
}

TEST(Simple, UniformCoversSpace)
{
    UniformRandom gen(16 * kPage, kPage, 16000, 3);
    auto counts = histogram(gen);
    EXPECT_EQ(counts.size(), 16u);
}

}  // namespace
}  // namespace artmem::workloads
