/**
 * @file
 * Tests for the DAMON-style region monitor: region invariants under
 * split/merge, hot-region detection against a TieredMachine, and
 * overhead bounding (samples per pass == region count).
 */
#include <gtest/gtest.h>

#include <map>

#include "memsim/tiered_machine.hpp"
#include "monitor/damon.hpp"

namespace artmem::monitor {
namespace {

/** Accessed bits kept in a plain map (no machine needed). */
class FakeBits
{
  public:
    void set(PageId p) { bits_[p] = true; }

    Damon::AccessProbe
    probe()
    {
        return [this](PageId p) {
            const bool was = bits_[p];
            bits_[p] = false;
            ++probes_;
            return was;
        };
    }

    std::uint64_t probes() const { return probes_; }

  private:
    std::map<PageId, bool> bits_;
    std::uint64_t probes_ = 0;
};

bool
regions_cover_space(const std::vector<Region>& regions,
                    std::size_t page_count)
{
    PageId expect = 0;
    for (const auto& r : regions) {
        if (r.start != expect || r.length == 0)
            return false;
        expect += r.length;
    }
    return expect == page_count;
}

TEST(Damon, InitialRegionsPartitionTheSpace)
{
    FakeBits bits;
    Damon damon(1000, bits.probe(), {}, 1);
    EXPECT_TRUE(regions_cover_space(damon.regions(), 1000));
    EXPECT_GE(damon.regions().size(), 10u);
}

TEST(Damon, SampleProbesOnePagePerRegion)
{
    FakeBits bits;
    Damon damon(1000, bits.probe(), {}, 1);
    const auto regions = damon.regions().size();
    damon.sample();
    EXPECT_EQ(bits.probes(), regions);
    EXPECT_EQ(damon.samples_in_window(), 1u);
}

TEST(Damon, AggregationPreservesCoverage)
{
    FakeBits bits;
    Damon::Config cfg;
    cfg.samples_per_aggregation = 3;
    Damon damon(4096, bits.probe(), cfg, 2);
    for (int window = 0; window < 5; ++window) {
        while (!damon.aggregation_due())
            damon.sample();
        const auto snapshot = damon.aggregate();
        EXPECT_TRUE(regions_cover_space(snapshot, 4096));
        EXPECT_TRUE(regions_cover_space(damon.regions(), 4096));
        EXPECT_LE(damon.regions().size(), cfg.max_regions);
        EXPECT_GE(damon.regions().size(), cfg.min_regions);
    }
}

TEST(Damon, DetectsHotRegionOnMachine)
{
    memsim::MachineConfig mc;
    mc.page_size = 2ull << 20;
    mc.address_space = 1024 * mc.page_size;
    mc.tiers[0].capacity = 2048 * mc.page_size;
    mc.tiers[1].capacity = 2048 * mc.page_size;
    memsim::TieredMachine machine(mc);
    machine.prefault_range(0, 1024);

    Damon::Config cfg;
    cfg.samples_per_aggregation = 10;
    Damon damon(
        1024,
        [&](PageId p) { return machine.test_and_clear_accessed(p); }, cfg,
        3);

    // Hot band: pages 512..639 hammered between sampling passes.
    Rng rng(4);
    std::vector<Region> last;
    for (int window = 0; window < 8; ++window) {
        while (!damon.aggregation_due()) {
            for (int i = 0; i < 2000; ++i)
                machine.access(
                    512 + static_cast<PageId>(rng.next_below(128)));
            damon.sample();
        }
        last = damon.aggregate();
    }

    // The hottest region of the final window must overlap the hot band.
    const auto hottest = std::max_element(
        last.begin(), last.end(), [](const Region& a, const Region& b) {
            return a.nr_accesses < b.nr_accesses;
        });
    ASSERT_NE(hottest, last.end());
    EXPECT_GT(hottest->nr_accesses, 0u);
    EXPECT_LT(hottest->start, 640u);
    EXPECT_GT(hottest->start + hottest->length, 512u);
}

TEST(Damon, MergeAveragesWeightedCounts)
{
    // Two adjacent equal-count regions merge into one with the same
    // count; coverage stays intact.
    FakeBits bits;
    Damon::Config cfg;
    cfg.min_regions = 2;
    cfg.max_regions = 4;
    cfg.merge_threshold = 100;  // merge aggressively
    cfg.samples_per_aggregation = 1;
    Damon damon(100, bits.probe(), cfg, 5);
    damon.sample();
    damon.aggregate();
    EXPECT_TRUE(regions_cover_space(damon.regions(), 100));
    EXPECT_GE(damon.regions().size(), cfg.min_regions);
}

}  // namespace
}  // namespace artmem::monitor
