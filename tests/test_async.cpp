/**
 * @file
 * Concurrency tests for the asynchronous sampling path (Section 4.4):
 * a real producer thread and the AsyncSampler's background drainer
 * exchanging PEBS records through the lock-free ring buffer.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "memsim/async_sampler.hpp"

namespace artmem::memsim {
namespace {

TEST(AsyncSampler, DeliversEverythingPublished)
{
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> checksum{0};
    AsyncSampler sampler(1 << 12, [&](std::span<const PebsSample> batch) {
        for (const auto& s : batch) {
            received.fetch_add(1, std::memory_order_relaxed);
            checksum.fetch_add(s.page, std::memory_order_relaxed);
        }
    });

    std::uint64_t published = 0, expected_sum = 0;
    for (PageId p = 0; p < 100000; ++p) {
        if (sampler.publish(p, Tier::kFast)) {
            ++published;
            expected_sum += p;
        }
    }
    sampler.stop();
    EXPECT_EQ(received.load(), published);
    EXPECT_EQ(checksum.load(), expected_sum);
    EXPECT_EQ(sampler.delivered(), published);
    EXPECT_EQ(published + sampler.dropped(), 100000u);
}

TEST(AsyncSampler, HandlerRunsOffTheProducerThread)
{
    std::atomic<bool> seen_other_thread{false};
    const auto producer_id = std::this_thread::get_id();
    AsyncSampler sampler(1 << 10, [&](std::span<const PebsSample>) {
        if (std::this_thread::get_id() != producer_id)
            seen_other_thread.store(true, std::memory_order_relaxed);
    });
    for (PageId p = 0; p < 10000; ++p)
        sampler.publish(p, Tier::kSlow);
    sampler.stop();
    EXPECT_TRUE(seen_other_thread.load());
}

TEST(AsyncSampler, StopIsIdempotent)
{
    AsyncSampler sampler(64, [](std::span<const PebsSample>) {});
    sampler.publish(1, Tier::kFast);
    sampler.stop();
    sampler.stop();  // second stop must be a no-op
    EXPECT_LE(sampler.dropped(), 1u);
}

TEST(AsyncSampler, ConcurrentStopsAllBlockUntilDrainCompletes)
{
    // Regression for the stop() join race the thread-safety pass
    // surfaced: the old compare-exchange fast path let every stop()
    // caller except the winner return while the drainer thread could
    // still be delivering batches. A racing destructor then tore down
    // the handler's captures under the drainer — a use-after-free TSan
    // flags. Now every stop() holds the join handshake until the
    // worker has exited, so after ANY stop() returns the handler can
    // never run again.
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> delivered{0};
        std::atomic<bool> handler_allowed{true};
        {
            AsyncSampler sampler(
                1 << 10, [&](std::span<const PebsSample> batch) {
                    EXPECT_TRUE(handler_allowed.load());
                    delivered.fetch_add(batch.size(),
                                        std::memory_order_relaxed);
                });
            std::uint64_t published = 0;
            for (PageId p = 0; p < 2000; ++p) {
                if (sampler.publish(p, Tier::kFast))
                    ++published;
            }
            std::thread racer([&sampler] { sampler.stop(); });
            sampler.stop();
            // Both stops have returned: the drainer is gone, and every
            // published record was delivered before it exited.
            EXPECT_EQ(delivered.load(), published);
            racer.join();
            handler_allowed.store(false);
        }  // destructor issues a third stop(); must also be safe
    }
}

TEST(AsyncSampler, DropsUnderSustainedOverload)
{
    // A tiny buffer with a slow consumer must shed load rather than
    // block the producer (the PEBS overflow semantics).
    AsyncSampler sampler(
        16,
        [](std::span<const PebsSample>) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        },
        std::chrono::microseconds(200));
    for (PageId p = 0; p < 50000; ++p)
        sampler.publish(p, Tier::kFast);
    sampler.stop();
    EXPECT_GT(sampler.dropped(), 0u);
    EXPECT_EQ(sampler.delivered() + sampler.dropped(), 50000u);
}

TEST(AsyncSampler, DrainsBacklogAfterConsumerBlackout)
{
    // A consumer blackout (the fault model's PEBS outage, here realized
    // as a handler that refuses to make progress): the producer saturates
    // the ring and sheds load. When the gate lifts, every record still
    // queued must be delivered — stop() drains the backlog before
    // joining — and the delivered/dropped accounting must cover every
    // publish attempt exactly once.
    std::atomic<bool> gate_open{false};
    std::atomic<std::uint64_t> received{0};
    AsyncSampler sampler(
        64,
        [&](std::span<const PebsSample> batch) {
            while (!gate_open.load(std::memory_order_acquire))
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            received.fetch_add(batch.size(), std::memory_order_relaxed);
        },
        std::chrono::microseconds(50));

    std::uint64_t published = 0;
    for (PageId p = 0; p < 20000; ++p) {
        if (sampler.publish(p, Tier::kFast))
            ++published;
    }
    EXPECT_GT(sampler.dropped(), 0u);  // blackout forced load shedding

    gate_open.store(true, std::memory_order_release);
    sampler.stop();
    EXPECT_EQ(received.load(), published);
    EXPECT_EQ(sampler.delivered(), published);
    EXPECT_EQ(published + sampler.dropped(), 20000u);
}

}  // namespace
}  // namespace artmem::memsim
