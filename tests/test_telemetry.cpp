/**
 * @file
 * Tests for the deterministic telemetry subsystem (DESIGN.md §8):
 * MetricsRegistry semantics and shard merging, the TraceSink's two
 * serializations (golden JSONL bytes + structurally valid Chrome
 * trace JSON), category filtering, the observational-invariance
 * contract (an instrumented run is bit-identical to a bare one), and
 * byte-identity of merged sweep telemetry across --jobs 1 vs --jobs 4.
 */
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

#include "sim/experiment.hpp"
#include "sweep/sweep.hpp"
#include "sweep/telemetry_merge.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/phase_timer.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace artmem;
using telemetry::Category;

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms)
{
    telemetry::MetricsRegistry reg;
    const auto c = reg.counter("engine.ticks");
    reg.add(c);
    reg.add(c, 4);
    EXPECT_EQ(reg.counter_value("engine.ticks"), 5u);
    EXPECT_EQ(reg.counter_value("no.such.metric"), 0u);

    const auto g = reg.gauge("fast_ratio");
    reg.set(g, 0.25);
    reg.set(g, 0.75);
    const auto* stats = reg.gauge_stats("fast_ratio");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->count(), 2u);
    EXPECT_DOUBLE_EQ(stats->min(), 0.25);
    EXPECT_DOUBLE_EQ(stats->max(), 0.75);
    EXPECT_EQ(reg.gauge_stats("absent"), nullptr);

    const auto h = reg.histogram("cost", {10.0, 100.0});
    reg.observe(h, 5.0);     // bucket <= 10
    reg.observe(h, 10.0);    // inclusive upper bound
    reg.observe(h, 50.0);    // bucket <= 100
    reg.observe(h, 5000.0);  // overflow bucket
    EXPECT_EQ(reg.histogram_count("cost"), 4u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent)
{
    telemetry::MetricsRegistry reg;
    const auto a = reg.counter("x");
    const auto b = reg.counter("x");
    EXPECT_EQ(a, b);
    reg.add(a);
    reg.add(b);
    EXPECT_EQ(reg.counter_value("x"), 2u);
}

TEST(MetricsRegistry, KindMismatchPanics)
{
    telemetry::MetricsRegistry reg;
    reg.counter("m");
    EXPECT_DEATH(reg.gauge("m"), "");
}

TEST(MetricsRegistry, MergeAddsAndAppends)
{
    telemetry::MetricsRegistry a;
    const auto ac = a.counter("shared");
    a.add(ac, 3);

    telemetry::MetricsRegistry b;
    const auto bc = b.counter("shared");
    b.add(bc, 4);
    const auto bo = b.counter("only_in_b");
    b.add(bo, 7);
    const auto bh = b.histogram("h", {1.0});
    b.observe(bh, 0.5);

    a.merge(b);
    EXPECT_EQ(a.counter_value("shared"), 7u);
    EXPECT_EQ(a.counter_value("only_in_b"), 7u);
    EXPECT_EQ(a.histogram_count("h"), 1u);
}

TEST(MetricsRegistry, MergeEmptyGaugeShardKeepsExtrema)
{
    // A shard that registered a gauge but never set it must not poison
    // the merged min/max with its zero-initialized state (the
    // OnlineStats empty-merge contract, exercised at registry level).
    telemetry::MetricsRegistry a;
    const auto ag = a.gauge("g");
    a.set(ag, -5.0);
    a.set(ag, -2.0);

    telemetry::MetricsRegistry never_set;
    never_set.gauge("g");

    a.merge(never_set);
    const auto* stats = a.gauge_stats("g");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->count(), 2u);
    EXPECT_DOUBLE_EQ(stats->min(), -5.0);
    EXPECT_DOUBLE_EQ(stats->max(), -2.0);

    // The other direction: merging a populated shard into an empty
    // registry adopts the shard's statistics unchanged.
    telemetry::MetricsRegistry empty;
    empty.gauge("g");
    empty.merge(a);
    const auto* adopted = empty.gauge_stats("g");
    ASSERT_NE(adopted, nullptr);
    EXPECT_EQ(adopted->count(), 2u);
    EXPECT_DOUBLE_EQ(adopted->max(), -2.0);
}

TEST(MetricsRegistry, WriteJsonIsDeterministic)
{
    const auto build = [] {
        telemetry::MetricsRegistry reg;
        reg.add(reg.counter("c"), 2);
        reg.set(reg.gauge("g"), 1.5);
        reg.observe(reg.histogram("h", {1.0, 2.0}), 1.25);
        std::ostringstream os;
        reg.write_json(os);
        return os.str();
    };
    const std::string once = build();
    EXPECT_EQ(once, build());
    EXPECT_NE(once.find("\"counters\""), std::string::npos);
    EXPECT_NE(once.find("\"c\": 2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Args / categories
// ---------------------------------------------------------------------

TEST(TraceArgs, BuildsEscapedJson)
{
    EXPECT_EQ(telemetry::Args().str(), "{}");
    const std::string json = telemetry::Args()
                                 .add("n", std::uint64_t{7})
                                 .add("d", std::int64_t{-3})
                                 .add("s", "a\"b")
                                 .str();
    EXPECT_EQ(json, "{\"n\":7,\"d\":-3,\"s\":\"a\\\"b\"}");
}

TEST(TraceCategories, ParseAndNames)
{
    EXPECT_EQ(telemetry::parse_categories("all"), telemetry::kAllCategories);
    EXPECT_EQ(telemetry::parse_categories("none"), 0u);
    EXPECT_EQ(telemetry::parse_categories(""), 0u);
    EXPECT_EQ(telemetry::parse_categories("engine"),
              static_cast<std::uint32_t>(Category::kEngine));
    EXPECT_EQ(telemetry::parse_categories("rl,threshold"),
              static_cast<std::uint32_t>(Category::kRl) |
                  static_cast<std::uint32_t>(Category::kThreshold));
    EXPECT_EQ(telemetry::category_name(Category::kPebs), "pebs");
    EXPECT_EQ(telemetry::category_track(Category::kMigration), 1u);
    EXPECT_EXIT(telemetry::parse_categories("bogus"),
                ::testing::ExitedWithCode(1), "unknown trace category");
}

// ---------------------------------------------------------------------
// TraceSink serialization goldens
// ---------------------------------------------------------------------

TEST(TraceSink, GoldenJsonl)
{
    telemetry::TraceSink sink(telemetry::kAllCategories);
    sink.instant(Category::kThreshold, "move", 1500,
                 telemetry::Args().add("delta", std::int64_t{-8}).str());
    sink.complete(Category::kMigration, "promote", 1000, 27500,
                  telemetry::Args().add("page", std::uint64_t{7}).str());
    std::ostringstream os;
    sink.write_jsonl(os);
    EXPECT_EQ(os.str(),
              "{\"ts\":1500,\"cat\":\"threshold\",\"ph\":\"i\","
              "\"name\":\"move\",\"args\":{\"delta\":-8}}\n"
              "{\"ts\":1000,\"cat\":\"migration\",\"ph\":\"X\","
              "\"name\":\"promote\",\"dur\":27500,\"args\":{\"page\":7}}\n");

    std::ostringstream tagged;
    sink.write_jsonl(tagged, 3);
    EXPECT_EQ(tagged.str().substr(0, 9), "{\"job\":3,");
}

TEST(TraceSink, GoldenChrome)
{
    telemetry::TraceSink sink(
        static_cast<std::uint32_t>(Category::kMigration));
    sink.complete(Category::kMigration, "promote", 1000, 27500,
                  telemetry::Args().add("page", std::uint64_t{7}).str());
    std::ostringstream os;
    sink.write_chrome(os);
    EXPECT_EQ(os.str(),
              "{\"traceEvents\":[\n"
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
              "\"args\":{\"name\":\"migration\"}},\n"
              "{\"name\":\"promote\",\"cat\":\"migration\",\"ph\":\"X\","
              "\"ts\":1.000,\"dur\":27.500,\"pid\":0,\"tid\":1,"
              "\"args\":{\"page\":7}}\n"
              "],\"displayTimeUnit\":\"ms\"}\n");
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

/** A small seeded run covering a couple of decision intervals. */
sim::RunSpec
small_spec()
{
    sim::RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 120000;
    spec.seed = 42;
    return spec;
}

std::string
jsonl_of(const sim::RunResult& r)
{
    std::ostringstream os;
    r.telemetry->sink()->write_jsonl(os);
    return os.str();
}

/**
 * Minimal structural JSON check: balanced braces/brackets outside
 * string literals, ending at depth zero (CI additionally validates
 * real runs with python3 -m json.tool).
 */
bool
json_balanced(const std::string& text)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(TelemetryEngine, SeededRunTraceIsByteIdentical)
{
    auto spec = small_spec();
    spec.engine.telemetry.metrics = true;
    spec.engine.telemetry.trace_categories = telemetry::kAllCategories;

    const auto r1 = sim::run_experiment(spec);
    const auto r2 = sim::run_experiment(spec);
    ASSERT_NE(r1.telemetry, nullptr);
    ASSERT_NE(r2.telemetry, nullptr);

    EXPECT_GT(r1.telemetry->sink()->event_count(), 0u);
    EXPECT_EQ(jsonl_of(r1), jsonl_of(r2));

    std::ostringstream c1, c2;
    r1.telemetry->sink()->write_chrome(c1);
    r2.telemetry->sink()->write_chrome(c2);
    EXPECT_EQ(c1.str(), c2.str());
    EXPECT_TRUE(json_balanced(c1.str()));

    std::ostringstream m1, m2;
    r1.telemetry->metrics_registry().write_json(m1);
    r2.telemetry->metrics_registry().write_json(m2);
    EXPECT_EQ(m1.str(), m2.str());
    EXPECT_TRUE(json_balanced(m1.str()));
    EXPECT_EQ(r1.telemetry->metrics_registry().counter_value(
                  "engine.accesses"),
              spec.accesses);
}

TEST(TelemetryEngine, InstrumentationIsObservational)
{
    // Telemetry on (everything) must not change a single simulated
    // number relative to the bare run.
    const auto bare = sim::run_experiment(small_spec());
    auto spec = small_spec();
    spec.engine.telemetry.metrics = true;
    spec.engine.telemetry.trace_categories = telemetry::kAllCategories;
    spec.engine.telemetry.profile = true;
    const auto instr = sim::run_experiment(spec);

    EXPECT_EQ(bare.runtime_ns, instr.runtime_ns);
    EXPECT_EQ(bare.accesses, instr.accesses);
    EXPECT_DOUBLE_EQ(bare.fast_ratio, instr.fast_ratio);
    EXPECT_EQ(bare.totals.promoted_pages, instr.totals.promoted_pages);
    EXPECT_EQ(bare.totals.demoted_pages, instr.totals.demoted_pages);
    EXPECT_EQ(bare.pebs_recorded, instr.pebs_recorded);
}

TEST(TelemetryEngine, CategoryFilteringDropsDisabledEvents)
{
    auto spec = small_spec();
    spec.engine.telemetry.trace_categories =
        telemetry::parse_categories("rl,threshold");
    const auto r = sim::run_experiment(spec);
    ASSERT_NE(r.telemetry, nullptr);
    const auto* sink = r.telemetry->sink();
    ASSERT_NE(sink, nullptr);
    EXPECT_GT(sink->event_count(), 0u);
    EXPECT_FALSE(sink->enabled(Category::kEngine));
    EXPECT_TRUE(sink->enabled(Category::kRl));

    std::ostringstream os;
    sink->write_jsonl(os);
    const std::string text = os.str();
    EXPECT_EQ(text.find("\"cat\":\"engine\""), std::string::npos);
    EXPECT_EQ(text.find("\"cat\":\"migration\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"rl\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Sweep merge determinism
// ---------------------------------------------------------------------

TEST(TelemetrySweep, MergedOutputsIdenticalAcrossJobCounts)
{
    const auto run_with_jobs = [](unsigned jobs) {
        sweep::SweepSpec spec;
        for (const char* policy : {"artmem", "memtis"}) {
            for (int slow : {1, 4}) {
                auto rs = small_spec();
                rs.accesses = 60000;
                rs.policy = policy;
                rs.ratio = {1, slow};
                rs.engine.telemetry.metrics = true;
                rs.engine.telemetry.trace_categories =
                    telemetry::kAllCategories;
                spec.add(std::move(rs));
            }
        }
        sweep::SweepRunner runner({.jobs = jobs, .progress = false});
        const auto results = runner.run(spec);

        std::ostringstream metrics, jsonl, chrome;
        sweep::merge_job_metrics(results).write_json(metrics);
        sweep::write_merged_jsonl(jsonl, results);
        sweep::write_merged_chrome(chrome, results);
        return std::array<std::string, 3>{metrics.str(), jsonl.str(),
                                          chrome.str()};
    };

    const auto serial = run_with_jobs(1);
    const auto parallel = run_with_jobs(4);
    EXPECT_EQ(serial[0], parallel[0]);
    EXPECT_EQ(serial[1], parallel[1]);
    EXPECT_EQ(serial[2], parallel[2]);
    EXPECT_TRUE(json_balanced(serial[2]));
    // Every job contributed: the last job's tag appears in the JSONL.
    EXPECT_NE(serial[1].find("{\"job\":3,"), std::string::npos);
}

// ---------------------------------------------------------------------
// PhaseProfiler
// ---------------------------------------------------------------------

TEST(PhaseProfiler, AccumulatesAndMerges)
{
    telemetry::PhaseProfiler a;
    a.add(telemetry::Phase::kAccess, 100);
    a.add(telemetry::Phase::kAccess, 50);
    telemetry::PhaseProfiler b;
    b.add(telemetry::Phase::kTick, 25);
    a.merge(b);
    EXPECT_EQ(a.phase_ns(telemetry::Phase::kAccess), 150u);
    EXPECT_EQ(a.phase_ns(telemetry::Phase::kTick), 25u);
    EXPECT_EQ(a.total_ns(), 175u);

    std::ostringstream os;
    a.write_table(os);
    EXPECT_NE(os.str().find("phase profile"), std::string::npos);
    EXPECT_NE(os.str().find("access"), std::string::npos);
}

TEST(PhaseProfiler, NullProfilerTimerIsInert)
{
    // The zero-cost-when-off contract: a PhaseTimer over a null
    // profiler records nothing (and reads no clock).
    { telemetry::PhaseTimer timer(nullptr, telemetry::Phase::kAudit); }
    telemetry::PhaseProfiler p;
    { telemetry::PhaseTimer timer(&p, telemetry::Phase::kAudit); }
    EXPECT_EQ(p.phase_ns(telemetry::Phase::kGenerate), 0u);
}

}  // namespace
