/**
 * @file
 * Unit tests for the EMA histogram bins and the access-ratio tracker.
 */
#include <gtest/gtest.h>

#include "stats/access_ratio.hpp"
#include "stats/ema_bins.hpp"

namespace artmem::stats {
namespace {

using memsim::Tier;

TEST(EmaBins, BinOfPowersOfTwo)
{
    EXPECT_EQ(EmaBins::bin_of(0), 0);
    EXPECT_EQ(EmaBins::bin_of(1), 1);
    EXPECT_EQ(EmaBins::bin_of(2), 2);
    EXPECT_EQ(EmaBins::bin_of(3), 2);
    EXPECT_EQ(EmaBins::bin_of(4), 3);
    EXPECT_EQ(EmaBins::bin_of(7), 3);
    EXPECT_EQ(EmaBins::bin_of(8), 4);
    EXPECT_EQ(EmaBins::bin_of(16), 5);
}

TEST(EmaBins, BinFloorInvertsBinOf)
{
    for (int bin = 1; bin < EmaBins::kBins; ++bin) {
        const auto floor = EmaBins::bin_floor(bin);
        EXPECT_EQ(EmaBins::bin_of(floor), bin) << bin;
        if (floor > 1) {
            EXPECT_EQ(EmaBins::bin_of(floor - 1), bin - 1) << bin;
        }
    }
}

TEST(EmaBins, RecordMovesPagesAcrossBins)
{
    EmaBins bins(4);
    EXPECT_EQ(bins.bin_pages(0), 4u);
    bins.record(0);
    EXPECT_EQ(bins.count(0), 1u);
    EXPECT_EQ(bins.bin_pages(0), 3u);
    EXPECT_EQ(bins.bin_pages(1), 1u);
    bins.record(0);
    EXPECT_EQ(bins.bin_pages(1), 0u);
    EXPECT_EQ(bins.bin_pages(2), 1u);
}

TEST(EmaBins, CoolHalvesCounts)
{
    EmaBins bins(2);
    for (int i = 0; i < 10; ++i)
        bins.record(0);
    bins.record(1);
    bins.cool();
    EXPECT_EQ(bins.count(0), 5u);
    EXPECT_EQ(bins.count(1), 0u);
    EXPECT_EQ(bins.cooling_events(), 1u);
    EXPECT_EQ(bins.samples_since_cooling(), 0u);
    // Bin populations rebuilt.
    std::uint64_t total = 0;
    for (int b = 0; b < EmaBins::kBins; ++b)
        total += bins.bin_pages(b);
    EXPECT_EQ(total, 2u);
}

TEST(EmaBins, CoolingDueAfterPeriod)
{
    EmaBins bins(2, 5);
    for (int i = 0; i < 4; ++i)
        bins.record(0);
    EXPECT_FALSE(bins.cooling_due());
    bins.record(1);
    EXPECT_TRUE(bins.cooling_due());
    bins.cool();
    EXPECT_FALSE(bins.cooling_due());
}

TEST(EmaBins, CapacityThresholdSelectsFit)
{
    // 8 pages: 4 pages at count 32 (bin 6), 4 pages at count 2 (bin 2).
    EmaBins bins(8);
    for (PageId p = 0; p < 4; ++p)
        for (int i = 0; i < 32; ++i)
            bins.record(p);
    for (PageId p = 4; p < 8; ++p)
        for (int i = 0; i < 2; ++i)
            bins.record(p);
    // Capacity 4: the 4 hottest fit if the threshold keeps out bin 2.
    const auto t4 = bins.capacity_threshold(4);
    EXPECT_GT(t4, 2u);
    EXPECT_LE(t4, 32u);
    // Capacity 100: everything fits, threshold collapses to 1.
    EXPECT_EQ(bins.capacity_threshold(100), 1u);
}

TEST(EmaBins, PagesAtOrAboveAndCollect)
{
    EmaBins bins(4);
    for (int i = 0; i < 5; ++i)
        bins.record(1);
    for (int i = 0; i < 3; ++i)
        bins.record(2);
    EXPECT_EQ(bins.pages_at_or_above(4), 1u);
    EXPECT_EQ(bins.pages_at_or_above(3), 2u);
    std::vector<PageId> hot;
    EXPECT_EQ(bins.collect_at_or_above(3, hot), 2u);
    EXPECT_EQ(hot.size(), 2u);
}

TEST(EmaBins, SaturationSurvivesCooling)
{
    EmaBins bins(1);
    for (int i = 0; i < 200000; ++i)
        bins.record(0);
    const auto saturated = bins.count(0);
    EXPECT_LE(saturated, 1u << (EmaBins::kBins - 1));
    bins.cool();
    EXPECT_EQ(bins.count(0), saturated / 2);
}

TEST(AccessRatio, Equation1Discretization)
{
    AccessRatioTracker t(10);
    for (int i = 0; i < 9; ++i)
        t.record(Tier::kFast);
    t.record(Tier::kSlow);
    const auto tau = t.take();
    EXPECT_EQ(tau.state, 9);  // floor(9*10/10)
    EXPECT_NEAR(tau.raw_ratio, 0.9, 1e-12);
    EXPECT_EQ(tau.samples, 10u);
}

TEST(AccessRatio, AllFastIsK)
{
    AccessRatioTracker t(10);
    t.record(Tier::kFast);
    EXPECT_EQ(t.take().state, 10);
}

TEST(AccessRatio, AllSlowIsZero)
{
    AccessRatioTracker t(10);
    t.record(Tier::kSlow);
    EXPECT_EQ(t.take().state, 0);
}

TEST(AccessRatio, NoSamplesGetsDedicatedState)
{
    AccessRatioTracker t(10);
    const auto tau = t.take();
    EXPECT_EQ(tau.state, 11);  // k + 1
    EXPECT_TRUE(tau.no_samples(10));
    EXPECT_EQ(tau.samples, 0u);
}

TEST(AccessRatio, TakeResetsPeekDoesNot)
{
    AccessRatioTracker t(10);
    t.record(Tier::kFast);
    EXPECT_EQ(t.peek().samples, 1u);
    EXPECT_EQ(t.peek().samples, 1u);
    t.take();
    EXPECT_EQ(t.peek().samples, 0u);
}

class AccessRatioStateSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AccessRatioStateSweep, StateMatchesFormula)
{
    // Property: for f fast hits out of 10, state == floor(f * k / 10).
    const int fast_hits = GetParam();
    AccessRatioTracker t(10);
    for (int i = 0; i < fast_hits; ++i)
        t.record(Tier::kFast);
    for (int i = fast_hits; i < 10; ++i)
        t.record(Tier::kSlow);
    EXPECT_EQ(t.take().state, fast_hits);  // k == total == 10
}

INSTANTIATE_TEST_SUITE_P(AllMixes, AccessRatioStateSweep,
                         ::testing::Range(0, 11));

}  // namespace
}  // namespace artmem::stats
