/**
 * @file
 * Behavioural tests for the seven baseline tiering policies, driven
 * through the full simulation engine on small machines.
 */
#include <gtest/gtest.h>

#include "policies/autonuma.hpp"
#include "policies/autotiering.hpp"
#include "policies/memtis.hpp"
#include "policies/multiclock.hpp"
#include "policies/nimble.hpp"
#include "policies/static_tiering.hpp"
#include "policies/tiering08.hpp"
#include "policies/tpp.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "workloads/masim.hpp"

namespace artmem::policies {
namespace {

constexpr Bytes kPage = 2ull << 20;

/**
 * A skewed workload over 4096 pages (8 GiB at 2 MiB pages): the 256
 * pages at the top of the address space receive 88% of accesses —
 * placed high so prefault puts them in the slow tier — with a sparse
 * background over the rest (per-page background heat must stay low or
 * every page looks warm to bit/fault-based policies).
 */
workloads::MasimSpec
skewed_spec(std::uint64_t accesses)
{
    workloads::MasimSpec spec;
    spec.name = "skew";
    spec.footprint = 4096 * kPage;
    workloads::MasimPhase phase;
    phase.accesses = accesses;
    phase.regions = {
        {3584 * kPage, 256 * kPage, 94.0, false},
        {0, 4096 * kPage, 6.0, false},
    };
    spec.phases.push_back(phase);
    return spec;
}

memsim::MachineConfig
half_machine()
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 4096 * kPage;
    cfg.tiers[0].capacity = 2048 * kPage;  // half fits
    cfg.tiers[1].capacity = 4200 * kPage;
    return cfg;
}

sim::RunResult
run_policy(Policy& policy, std::uint64_t accesses = 2000000)
{
    workloads::Masim gen(skewed_spec(accesses), kPage, 11);
    memsim::TieredMachine machine(half_machine());
    sim::EngineConfig engine;
    return sim::run_simulation(gen, policy, machine, engine);
}

double
static_ratio(std::uint64_t accesses = 2000000)
{
    StaticTiering policy;
    return run_policy(policy, accesses).fast_ratio;
}

TEST(StaticTiering, NeverMigrates)
{
    StaticTiering policy;
    const auto r = run_policy(policy);
    EXPECT_EQ(r.totals.migrated_pages(), 0u);
    // Hot region lives high -> mostly slow-tier accesses.
    EXPECT_LT(r.fast_ratio, 0.5);
}

/**
 * Every real policy must beat static's fast-tier ratio on the skewed
 * workload: hot pages start in the slow tier and should be promoted.
 */
class PolicyImprovesRatio
    : public ::testing::TestWithParam<std::string_view>
{
};

TEST_P(PolicyImprovesRatio, BeatsStaticOnSkewedWorkload)
{
    auto policy = sim::make_policy(GetParam());
    const auto r = run_policy(*policy);
    const double baseline = static_ratio();
    EXPECT_GT(r.fast_ratio, baseline + 0.15)
        << GetParam() << " ratio " << r.fast_ratio << " vs static "
        << baseline;
    EXPECT_GT(r.totals.promoted_pages + r.totals.exchanges, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, PolicyImprovesRatio,
    ::testing::Values("autonuma", "tpp", "autotiering", "nimble",
                      "multiclock", "memtis", "tiering08", "artmem"),
    [](const auto& suite_info) {
        return std::string(suite_info.param);
    });

TEST(AutoNuma, PromotesViaTwoFaults)
{
    AutoNuma policy;
    const auto r = run_policy(policy);
    EXPECT_GT(r.totals.hint_faults, 0u);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(Tpp, MaintainsFreeHeadroom)
{
    Tpp::Config cfg;
    cfg.demotion_watermark = 0.05;
    Tpp policy(cfg);
    workloads::Masim gen(skewed_spec(2000000), kPage, 11);
    memsim::TieredMachine machine(half_machine());
    sim::EngineConfig engine;
    sim::run_simulation(gen, policy, machine, engine);
    // Decoupled allocation: TPP keeps free pages in the fast tier.
    EXPECT_GT(machine.free_pages(memsim::Tier::kFast), 0u);
}

TEST(AutoTiering, UsesExchangesWhenFastIsFull)
{
    AutoTiering policy;
    const auto r = run_policy(policy);
    EXPECT_GT(r.totals.exchanges + r.totals.promoted_pages, 0u);
}

TEST(Nimble, MigratesInBatches)
{
    Nimble::Config cfg;
    cfg.batch_pages = 16;
    Nimble policy(cfg);
    const auto r = run_policy(policy);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(MultiClock, StagesThroughCandidateList)
{
    MultiClock policy;
    const auto r = run_policy(policy);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(Memtis, CapacityThresholdTracksBins)
{
    Memtis policy;
    run_policy(policy);
    // With 64 hot pages and 256 fast slots, everything hot fits: the
    // threshold collapses toward the minimum and the hot set is fast.
    EXPECT_GE(policy.current_threshold(), 1u);
}

TEST(Memtis, ManualThresholdOverride)
{
    Memtis::Config cfg;
    cfg.manual_threshold = 1000000;  // absurd: nothing qualifies
    Memtis policy(cfg);
    const auto r = run_policy(policy);
    EXPECT_EQ(r.totals.promoted_pages, 0u);
    EXPECT_EQ(policy.current_threshold(), 1000000u);
}

TEST(Tiering08, ThresholdRespondsToDemand)
{
    Tiering08 policy;
    const auto r = run_policy(policy);
    EXPECT_GT(r.totals.promoted_pages, 0u);
}

TEST(Machine, OverheadAccountingSeparatesPolicyCpu)
{
    Memtis policy;
    const auto r = run_policy(policy);
    // MEMTIS walks every page each interval: measurable but bounded.
    EXPECT_GT(r.totals.overhead_ns, 0u);
    EXPECT_LT(static_cast<double>(r.totals.overhead_ns) /
                  static_cast<double>(r.runtime_ns),
              0.10);
}

TEST(Memtis, CoolingHalvesHotness)
{
    Memtis::Config cfg;
    cfg.cooling_period = 2000;
    Memtis policy(cfg);
    run_policy(policy, 500000);
    EXPECT_GT(policy.bins().cooling_events(), 0u);
}

TEST(AutoNuma, ScanThrottleBoundsFaultOverhead)
{
    AutoNuma policy;
    const auto r = run_policy(policy);
    // The adaptive scan rate must keep fault cost below ~15% of runtime.
    const double fault_ns = static_cast<double>(r.totals.hint_faults) * 500.0;
    EXPECT_LT(fault_ns / static_cast<double>(r.runtime_ns), 0.15);
}

TEST(Policies, MigrationConservation)
{
    // Property: for every policy, promoted - demoted (+/- exchanges,
    // which are balanced) equals the net change of fast-tier occupancy.
    for (const auto name : sim::policy_names()) {
        auto policy = sim::make_policy(name);
        workloads::Masim gen(skewed_spec(500000), kPage, 11);
        memsim::TieredMachine machine(half_machine());
        machine.prefault_range(0, machine.page_count());
        const auto fast_before = machine.used_pages(memsim::Tier::kFast);
        sim::EngineConfig engine;
        engine.prefault = false;  // already prefaulted above
        sim::run_simulation(gen, *policy, machine, engine);
        const auto fast_after = machine.used_pages(memsim::Tier::kFast);
        const auto& t = machine.totals();
        const long long net =
            static_cast<long long>(t.promoted_pages) -
            static_cast<long long>(t.demoted_pages);
        EXPECT_EQ(static_cast<long long>(fast_after) -
                      static_cast<long long>(fast_before),
                  net)
            << name;
        EXPECT_LE(fast_after, machine.capacity_pages(memsim::Tier::kFast))
            << name;
    }
}

TEST(Registry, BuildsEveryPolicy)
{
    for (const auto name : sim::policy_names()) {
        auto policy = sim::make_policy(name);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), name);
    }
    EXPECT_EQ(sim::baseline_names().size(), 7u);
}

}  // namespace
}  // namespace artmem::policies
