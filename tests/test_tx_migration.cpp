/**
 * @file
 * Transactional migration engine tests (DESIGN.md section 10): the
 * open/abort/commit state machine on TieredMachine, shadow-copy
 * capacity charging, non-exclusive dual residency with free flips and
 * on-demand reclaim, the deterministic write-abort draw stream, the
 * resolution callback, and the strict tx-off no-op contract.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "memsim/fault_injector.hpp"
#include "memsim/tiered_machine.hpp"
#include "memsim/tx_migration.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"

namespace artmem::memsim {
namespace {

constexpr Bytes kPage = 2ull << 20;

/** Machine with @p fast_pages fast slots and room for @p total_pages. */
MachineConfig
small_machine(std::size_t fast_pages, std::size_t total_pages)
{
    MachineConfig config;
    config.address_space = total_pages * kPage;
    config.tiers[0].capacity = fast_pages * kPage;
    config.tiers[1].capacity = (total_pages + 4) * kPage;
    return config;
}

/** Enabled engine with deterministic defaults for the machine tests. */
TxConfig
tx_on(double write_ratio = 0.0)
{
    TxConfig tx;
    tx.enabled = true;
    tx.seed = 7;
    tx.write_ratio = write_ratio;
    return tx;
}

/** Generous sim-time advance: longer than any one copy window here. */
constexpr SimTimeNs kWholeWindow = 1'000'000'000;

TEST(TxStatusNames, AreStable)
{
    EXPECT_EQ(migrate_status_name(MigrateStatus::kTxOpened), "tx_opened");
    EXPECT_EQ(migrate_status_name(MigrateStatus::kTxInFlight),
              "tx_in_flight");
    EXPECT_EQ(migrate_status_name(MigrateStatus::kTxBusy), "tx_busy");
    EXPECT_EQ(migrate_status_name(MigrateStatus::kTxAbort), "tx_abort");
}

TEST(TxStatusPredicates, ClassifyTxOutcomes)
{
    EXPECT_TRUE(MigrationResult{MigrateStatus::kTxOpened}.pending());
    EXPECT_FALSE(MigrationResult{MigrateStatus::kTxOpened}.ok());
    EXPECT_FALSE(MigrationResult{MigrateStatus::kTxOpened}.busy());
    EXPECT_TRUE(MigrationResult{MigrateStatus::kTxInFlight}.busy());
    EXPECT_TRUE(MigrationResult{MigrateStatus::kTxBusy}.busy());
    for (const auto status :
         {MigrateStatus::kTxInFlight, MigrateStatus::kTxBusy,
          MigrateStatus::kTxAbort}) {
        EXPECT_TRUE(MigrationResult{status}.transient())
            << migrate_status_name(status);
    }
    EXPECT_TRUE(MigrationResult{MigrateStatus::kTxAbort}.faulted());
    EXPECT_FALSE(MigrationResult{MigrateStatus::kTxBusy}.faulted());
}

TEST(TxConfigValidate, RejectsBadRatesAndEmptyTable)
{
    TxConfig bad_rate;
    bad_rate.write_ratio = 1.5;
    EXPECT_EXIT(bad_rate.validate(), ::testing::ExitedWithCode(1), "");
    TxConfig negative;
    negative.write_ratio = -0.1;
    EXPECT_EXIT(negative.validate(), ::testing::ExitedWithCode(1), "");
    TxConfig empty;
    empty.max_inflight = 0;
    EXPECT_EXIT(empty.validate(), ::testing::ExitedWithCode(1), "");
}

TEST(TxConfigParse, RoundTripsKnownKeys)
{
    KvConfig kv;
    kv.set("tx.enabled", "true");
    kv.set("tx.seed", "99");
    kv.set("tx.write_ratio", "0.25");
    kv.set("tx.max_inflight", "8");
    kv.set("tx.non_exclusive", "false");
    const TxConfig tx = parse_tx_config(kv);
    EXPECT_TRUE(tx.enabled);
    EXPECT_EQ(tx.seed, 99u);
    EXPECT_DOUBLE_EQ(tx.write_ratio, 0.25);
    EXPECT_EQ(tx.max_inflight, 8u);
    EXPECT_FALSE(tx.non_exclusive);
}

TEST(TxConfigParse, UnknownKeyIsFatal)
{
    KvConfig kv;
    kv.set("tx.write_probability", "0.5");
    EXPECT_EXIT((void)parse_tx_config(kv), ::testing::ExitedWithCode(1),
                "");
}

TEST(TxCli, UnknownTxFlagIsFatal)
{
    std::vector<std::string> argv_s = {"prog", "--tx-migration",
                                       "--tx-writes=0.5"};
    std::vector<char*> argv;
    for (auto& a : argv_s)
        argv.push_back(a.data());
    const auto args =
        CliArgs::parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT((void)sim::parse_tx_cli(args),
                ::testing::ExitedWithCode(1), "");
}

TEST(TxCli, KnobWithoutMasterSwitchIsFatal)
{
    std::vector<std::string> argv_s = {"prog", "--tx-write-ratio=0.5"};
    std::vector<char*> argv;
    for (auto& a : argv_s)
        argv.push_back(a.data());
    const auto args =
        CliArgs::parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT((void)sim::parse_tx_cli(args),
                ::testing::ExitedWithCode(1), "");
}

TEST(TxCli, ParsesAllKnobs)
{
    std::vector<std::string> argv_s = {
        "prog", "--tx-migration", "--tx-seed=11", "--tx-write-ratio=0.1",
        "--tx-max-inflight=3", "--tx-exclusive"};
    std::vector<char*> argv;
    for (auto& a : argv_s)
        argv.push_back(a.data());
    const auto args =
        CliArgs::parse(static_cast<int>(argv.size()), argv.data());
    const TxConfig tx = sim::parse_tx_cli(args);
    EXPECT_TRUE(tx.enabled);
    EXPECT_EQ(tx.seed, 11u);
    EXPECT_DOUBLE_EQ(tx.write_ratio, 0.1);
    EXPECT_EQ(tx.max_inflight, 3u);
    EXPECT_FALSE(tx.non_exclusive);
}

// --- tx off: the strict no-op contract -------------------------------

TEST(TxOff, MachineBehavesAtomically)
{
    TieredMachine m(small_machine(4, 12));
    m.prefault_range(0, 12);
    EXPECT_FALSE(m.tx_enabled());
    EXPECT_EQ(m.tx_config(), nullptr);
    // Migration completes inside the call, no window, no pending state.
    const auto r = m.migrate(0, Tier::kSlow);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    EXPECT_EQ(m.poll_tx(), 0u);
    EXPECT_EQ(m.tx_inflight_count(), 0u);
    EXPECT_EQ(m.tx_write_draws(), 0u);
    EXPECT_FALSE(m.tx_page_inflight(0));
    EXPECT_FALSE(m.tx_page_dual(0));
    const auto& t = m.totals();
    EXPECT_EQ(t.tx_opened, 0u);
    EXPECT_EQ(t.tx_committed, 0u);
    EXPECT_EQ(t.tx_aborted, 0u);
    EXPECT_EQ(t.tx_retries, 0u);
    EXPECT_EQ(t.tx_free_flips, 0u);
    EXPECT_EQ(t.tx_dual_drops, 0u);
    EXPECT_EQ(t.tx_dual_reclaims, 0u);
    EXPECT_EQ(t.failed_tx_busy, 0u);
}

TEST(TxOff, DisabledConfigRemovesTheEngine)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());
    EXPECT_TRUE(m.tx_enabled());
    m.install_tx(TxConfig{});  // enabled = false
    EXPECT_FALSE(m.tx_enabled());
}

// --- open -> commit lifecycle ----------------------------------------

TEST(TxLifecycle, OpenChargesShadowAndCommitFlipsResidency)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());
    m.prefault_range(0, 12);  // pages 0..3 fast, 4..11 slow
    const std::size_t fast_before = m.used_pages(Tier::kFast);
    const std::size_t slow_before = m.used_pages(Tier::kSlow);

    const auto r = m.migrate(0, Tier::kSlow);
    EXPECT_EQ(r.status, MigrateStatus::kTxOpened);
    EXPECT_TRUE(r.pending());
    // In flight: still primary in fast, shadow slot charged in slow.
    EXPECT_EQ(m.tier_of(0), Tier::kFast);
    EXPECT_TRUE(m.tx_page_inflight(0));
    EXPECT_TRUE(m.tx_page_shadow(0));
    EXPECT_EQ(m.tx_inflight_count(), 1u);
    EXPECT_EQ(m.used_pages(Tier::kFast), fast_before);
    EXPECT_EQ(m.used_pages(Tier::kSlow), slow_before + 1);
    EXPECT_EQ(m.totals().tx_opened, 1u);

    // The window has not closed: polling commits nothing.
    m.advance(10);
    EXPECT_EQ(m.poll_tx(), 0u);
    EXPECT_TRUE(m.tx_page_inflight(0));

    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 1u);
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    EXPECT_FALSE(m.tx_page_inflight(0));
    // Non-exclusive residency: the clean fast copy stays until wanted.
    EXPECT_TRUE(m.tx_page_dual(0));
    EXPECT_EQ(m.tx_reclaimable_pages(Tier::kFast), 1u);
    EXPECT_EQ(m.used_pages(Tier::kFast), fast_before);
    EXPECT_EQ(m.used_pages(Tier::kSlow), slow_before + 1);
    // ...but the dual slot counts as free for future allocations.
    EXPECT_EQ(m.free_pages(Tier::kFast), 1u);
    EXPECT_EQ(m.totals().tx_committed, 1u);
    EXPECT_EQ(m.totals().demoted_pages, 1u);
    EXPECT_GT(m.totals().migration_busy_ns, 0u);
}

TEST(TxLifecycle, ExclusiveModeReleasesTheSourceSlot)
{
    TieredMachine m(small_machine(4, 12));
    auto tx = tx_on();
    tx.non_exclusive = false;
    m.install_tx(tx);
    m.prefault_range(0, 12);
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 1u);
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    EXPECT_FALSE(m.tx_page_dual(0));
    EXPECT_EQ(m.used_pages(Tier::kFast), 3u);
    EXPECT_EQ(m.tx_reclaimable_pages(Tier::kFast), 0u);
}

TEST(TxLifecycle, AccessesDuringWindowServeFromSource)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());  // write_ratio 0: reads never abort
    m.prefault_range(0, 12);
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    const auto fast_acc = m.totals().accesses[0];
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(m.access(0), Tier::kFast);
    EXPECT_EQ(m.totals().accesses[0], fast_acc + 8);
    // A zero write rate short-circuits before the draw: reads on an
    // in-flight page consume nothing from the classification stream,
    // and the transaction commits untouched.
    EXPECT_EQ(m.tx_write_draws(), 0u);
    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 1u);
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
}

TEST(TxLifecycle, SecondRequestOnInFlightPageIsRefused)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());
    m.prefault_range(0, 12);
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    const auto r = m.migrate(0, Tier::kSlow);
    // The primary is still fast, so the retry is not kSameTier; the
    // open transaction refuses it.
    EXPECT_EQ(r.status, MigrateStatus::kTxInFlight);
    EXPECT_TRUE(r.busy());
    EXPECT_EQ(m.totals().failed_tx_busy, 1u);
    EXPECT_EQ(m.tx_inflight_count(), 1u);
}

TEST(TxLifecycle, FullInflightTableRefusesWithTxBusy)
{
    TieredMachine m(small_machine(4, 12));
    auto tx = tx_on();
    tx.max_inflight = 1;
    m.install_tx(tx);
    m.prefault_range(0, 12);
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    const auto r = m.migrate(1, Tier::kSlow);
    EXPECT_EQ(r.status, MigrateStatus::kTxBusy);
    EXPECT_EQ(m.totals().failed_tx_busy, 1u);
    // Draining the table frees the slot.
    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 1u);
    EXPECT_TRUE(m.migrate(1, Tier::kSlow).pending());
}

// --- write aborts ----------------------------------------------------

TEST(TxAbort, WriteDuringWindowAbortsAndRetryIsCounted)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on(1.0));  // every access is a write
    m.prefault_range(0, 12);
    const std::size_t slow_used = m.used_pages(Tier::kSlow);
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    EXPECT_EQ(m.used_pages(Tier::kSlow), slow_used + 1);

    const SimTimeNs before = m.now();
    EXPECT_EQ(m.access(0), Tier::kFast);
    // The write killed the transaction: page stays put, shadow slot
    // released, wasted half-copy charged at the contention share.
    EXPECT_FALSE(m.tx_page_inflight(0));
    EXPECT_EQ(m.tx_inflight_count(), 0u);
    EXPECT_EQ(m.used_pages(Tier::kSlow), slow_used);
    EXPECT_EQ(m.tier_of(0), Tier::kFast);
    EXPECT_EQ(m.totals().tx_aborted, 1u);
    EXPECT_GT(m.totals().aborted_migration_ns, 0u);
    EXPECT_GT(m.now() - before,
              static_cast<SimTimeNs>(
                  m.config().tiers[0].load_latency_ns));
    EXPECT_EQ(m.tx_write_draws(), 1u);
    EXPECT_EQ(m.tx_write_hits(), 1u);

    // Nothing to commit; the abort was already resolved at the access.
    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 0u);

    // Reopening the aborted page counts as a retry.
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    EXPECT_EQ(m.totals().tx_retries, 1u);
    EXPECT_EQ(m.totals().tx_opened, 2u);
}

TEST(TxAbort, DrawStreamIsDeterministic)
{
    // Same seed, same call sequence: identical abort schedule and
    // counters across two independent machines.
    auto run = [](std::uint64_t seed) {
        TieredMachine m(small_machine(4, 12));
        auto tx = tx_on(0.3);
        tx.seed = seed;
        m.install_tx(tx);
        m.prefault_range(0, 12);
        for (PageId p = 0; p < 4; ++p)
            (void)m.migrate(p, Tier::kSlow);
        for (int i = 0; i < 32; ++i)
            m.access(static_cast<PageId>(i % 4));
        m.advance(kWholeWindow);
        (void)m.poll_tx();
        return std::tuple{m.totals().tx_aborted, m.totals().tx_committed,
                          m.tx_write_draws(), m.tx_write_hits(), m.now()};
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_EQ(run(6), run(6));
}

// --- non-exclusive dual residency ------------------------------------

class TxDual : public ::testing::Test
{
  protected:
    TxDual() : machine_(small_machine(4, 12))
    {
        machine_.install_tx(tx_on());
        machine_.prefault_range(0, 12);
        // Demote page 0 and commit: primary slow, clean dual in fast.
        EXPECT_TRUE(machine_.migrate(0, Tier::kSlow).pending());
        machine_.advance(kWholeWindow);
        EXPECT_EQ(machine_.poll_tx(), 1u);
        EXPECT_TRUE(machine_.tx_page_dual(0));
    }

    TieredMachine machine_;
};

TEST_F(TxDual, PromotingBackIsAFreeFlip)
{
    const SimTimeNs before = machine_.now();
    const auto busy_before = machine_.totals().migration_busy_ns;
    const auto r = machine_.migrate(0, Tier::kFast);
    // The fast copy is still clean: adopt it, no copy, no device time.
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(machine_.tier_of(0), Tier::kFast);
    EXPECT_EQ(machine_.now(), before);
    EXPECT_EQ(machine_.totals().migration_busy_ns, busy_before);
    EXPECT_EQ(machine_.totals().tx_free_flips, 1u);
    EXPECT_EQ(machine_.totals().promoted_pages, 1u);
    // Roles swapped: the secondary copy now lives in the slow tier.
    EXPECT_TRUE(machine_.tx_page_dual(0));
    EXPECT_EQ(machine_.tx_reclaimable_pages(Tier::kFast), 0u);
    EXPECT_EQ(machine_.tx_reclaimable_pages(Tier::kSlow), 1u);
}

TEST(TxDualWrite, WriteDropsTheSecondaryCopy)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on(1.0));  // every access is a write
    m.prefault_range(0, 12);
    // Commit a demotion without touching the page mid-window: no
    // accesses means no draws, so even at rate 1.0 it lands cleanly.
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    m.advance(kWholeWindow);
    ASSERT_EQ(m.poll_tx(), 1u);
    ASSERT_TRUE(m.tx_page_dual(0));
    const std::size_t fast_used = m.used_pages(Tier::kFast);
    EXPECT_EQ(m.access(0), Tier::kSlow);
    EXPECT_FALSE(m.tx_page_dual(0));
    EXPECT_EQ(m.used_pages(Tier::kFast), fast_used - 1);
    EXPECT_EQ(m.tx_reclaimable_pages(Tier::kFast), 0u);
    EXPECT_EQ(m.totals().tx_dual_drops, 1u);
    EXPECT_EQ(m.tx_write_hits(), 1u);
    // The dropped copy cannot be free-flipped: promotion reopens a
    // full transaction.
    EXPECT_TRUE(m.migrate(0, Tier::kFast).pending());
}

TEST_F(TxDual, CapacityDemandReclaimsTheDualSlot)
{
    TieredMachine& m = machine_;
    // The fast tier is nominally full (3 exclusive + 1 dual copy); a
    // promotion must evict the clean dual copy rather than fail.
    ASSERT_EQ(m.used_pages(Tier::kFast), m.capacity_pages(Tier::kFast));
    ASSERT_EQ(m.free_pages(Tier::kFast), 1u);
    EXPECT_TRUE(m.migrate(4, Tier::kFast).pending());
    EXPECT_EQ(m.totals().tx_dual_reclaims, 1u);
    EXPECT_FALSE(m.tx_page_dual(0));
    EXPECT_EQ(m.tx_reclaimable_pages(Tier::kFast), 0u);
    EXPECT_EQ(m.used_pages(Tier::kFast), m.capacity_pages(Tier::kFast));
}

TEST(TxCapacity, FullDestinationWithoutDualsIsNoFreeSlot)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());
    m.prefault_range(0, 12);  // fast full, nothing reclaimable
    const auto r = m.migrate(4, Tier::kFast);
    EXPECT_EQ(r.status, MigrateStatus::kNoFreeSlot);
    EXPECT_EQ(m.totals().failed_no_slot, 1u);
    EXPECT_EQ(m.tx_inflight_count(), 0u);
    EXPECT_EQ(m.used_pages(Tier::kFast), 4u);
}

// --- exchanges -------------------------------------------------------

TEST(TxExchange, OneTransactionCoversThePairAndChargesNoShadow)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());
    m.prefault_range(0, 12);
    const std::size_t fast_used = m.used_pages(Tier::kFast);
    const std::size_t slow_used = m.used_pages(Tier::kSlow);
    const auto r = m.exchange(0, 4);  // fast <-> slow
    EXPECT_TRUE(r.pending());
    EXPECT_EQ(m.tx_inflight_count(), 1u);
    EXPECT_TRUE(m.tx_page_inflight(0));
    EXPECT_TRUE(m.tx_page_inflight(4));
    // Bounce-buffer copies: neither tier is charged a shadow slot.
    EXPECT_FALSE(m.tx_page_shadow(0));
    EXPECT_FALSE(m.tx_page_shadow(4));
    EXPECT_EQ(m.used_pages(Tier::kFast), fast_used);
    EXPECT_EQ(m.used_pages(Tier::kSlow), slow_used);

    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 1u);
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    EXPECT_EQ(m.tier_of(4), Tier::kFast);
    EXPECT_FALSE(m.tx_page_dual(0));
    EXPECT_FALSE(m.tx_page_dual(4));
    EXPECT_EQ(m.totals().exchanges, 1u);
    EXPECT_EQ(m.totals().tx_committed, 1u);
}

TEST(TxExchange, WriteToEitherPageAbortsBoth)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on(1.0));
    m.prefault_range(0, 12);
    ASSERT_TRUE(m.exchange(0, 4).pending());
    // A write to the peer kills the whole pair transaction.
    EXPECT_EQ(m.access(4), Tier::kSlow);
    EXPECT_FALSE(m.tx_page_inflight(0));
    EXPECT_FALSE(m.tx_page_inflight(4));
    EXPECT_EQ(m.tx_inflight_count(), 0u);
    EXPECT_EQ(m.totals().tx_aborted, 1u);
    EXPECT_EQ(m.tier_of(0), Tier::kFast);
    EXPECT_EQ(m.tier_of(4), Tier::kSlow);
    // Both pages carry the aborted mark: the reopen retries both.
    ASSERT_TRUE(m.exchange(0, 4).pending());
    EXPECT_EQ(m.totals().tx_retries, 2u);
}

// --- resolution callback ---------------------------------------------

TEST(TxHandler, CommitEventsArriveInOpenOrder)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on());
    m.prefault_range(0, 12);
    std::vector<std::pair<PageId, bool>> events;
    m.set_tx_handler([&](PageId page, Tier, Tier, bool committed) {
        events.emplace_back(page, committed);
    });
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    ASSERT_TRUE(m.migrate(1, Tier::kSlow).pending());
    ASSERT_TRUE(m.migrate(2, Tier::kSlow).pending());
    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 3u);
    ASSERT_EQ(events.size(), 3u);
    // Same cost -> same commit_time; seq (open order) breaks the tie.
    EXPECT_EQ(events[0], (std::pair<PageId, bool>{0, true}));
    EXPECT_EQ(events[1], (std::pair<PageId, bool>{1, true}));
    EXPECT_EQ(events[2], (std::pair<PageId, bool>{2, true}));
}

TEST(TxHandler, AbortEventPrecedesLaterCommit)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on(1.0));
    m.prefault_range(0, 12);
    std::vector<std::pair<PageId, bool>> events;
    m.set_tx_handler([&](PageId page, Tier, Tier, bool committed) {
        events.emplace_back(page, committed);
    });
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    ASSERT_TRUE(m.migrate(1, Tier::kSlow).pending());
    m.access(0);  // write -> abort page 0's transaction
    m.advance(kWholeWindow);
    EXPECT_EQ(m.poll_tx(), 1u);  // page 1 commits
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0], (std::pair<PageId, bool>{0, false}));
    EXPECT_EQ(events[1], (std::pair<PageId, bool>{1, true}));
}

TEST(TxHandler, HandlerMayReopenTransactions)
{
    TieredMachine m(small_machine(4, 12));
    m.install_tx(tx_on(1.0));
    m.prefault_range(0, 12);
    int reopened = 0;
    m.set_tx_handler([&](PageId page, Tier, Tier dst, bool committed) {
        if (!committed && reopened == 0) {
            ++reopened;
            EXPECT_TRUE(m.migrate(page, dst).pending());
        }
    });
    ASSERT_TRUE(m.migrate(0, Tier::kSlow).pending());
    m.access(0);  // abort; resolution is queued for the next poll
    EXPECT_EQ(m.poll_tx(), 0u);
    EXPECT_EQ(reopened, 1);
    EXPECT_TRUE(m.tx_page_inflight(0));
    EXPECT_EQ(m.totals().tx_retries, 1u);
}

// --- abort-storm scenario interplay ----------------------------------

TEST(TxStorm, StormRateOverridesBaselineWriteRatio)
{
    // abort_storm drives the write rate to 0.75 during bursts even
    // when the baseline ratio is zero, so in-flight pages do consume
    // draws and do abort under the storm.
    TieredMachine m(small_machine(4, 12));
    m.install_faults(make_fault_scenario("abort_storm", 3));
    m.install_tx(tx_on());
    m.prefault_range(0, 12);
    std::uint64_t aborted = 0;
    for (int round = 0; round < 400 && aborted == 0; ++round) {
        // Keep a transaction open on page 0 whenever possible: dual
        // copies free-flip until a storm write drops the secondary,
        // after which the reopen is a real in-flight window.
        if (!m.tx_page_inflight(0))
            (void)m.migrate(0, other_tier(m.tier_of(0)));
        m.access(0);
        m.advance(100'000);  // walk across storm bursts
        (void)m.poll_tx();
        aborted = m.totals().tx_aborted;
    }
    EXPECT_GT(aborted, 0u);
    EXPECT_GT(m.tx_write_draws(), 0u);
}

// --- engine-level determinism ----------------------------------------

TEST(TxEngine, AbortStormRunsAreReproducible)
{
    auto run = [] {
        sim::RunSpec spec;
        spec.workload = "ycsb";
        spec.policy = "artmem";
        spec.ratio = {1, 4};
        spec.accesses = 800000;
        spec.seed = 42;
        spec.engine.faults = make_fault_scenario("abort_storm", 1);
        spec.engine.tx.enabled = true;
        spec.engine.tx.write_ratio = 0.05;
        spec.engine.check_invariants = true;
        return sim::run_experiment(spec);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.fast_ratio, b.fast_ratio);
    EXPECT_EQ(a.totals.tx_opened, b.totals.tx_opened);
    EXPECT_EQ(a.totals.tx_committed, b.totals.tx_committed);
    EXPECT_EQ(a.totals.tx_aborted, b.totals.tx_aborted);
    EXPECT_EQ(a.totals.tx_retries, b.totals.tx_retries);
    // The storm must actually bite for this test to mean anything.
    EXPECT_GT(a.totals.tx_opened, 0u);
    EXPECT_GT(a.totals.tx_aborted, 0u);
}

TEST(TxEngine, AllPoliciesSurviveTxWithInvariantAudits)
{
    for (const auto policy : sim::policy_names()) {
        sim::RunSpec spec;
        spec.workload = "s2";
        spec.policy = std::string(policy);
        spec.ratio = {1, 4};
        spec.accesses = 120000;
        spec.seed = 42;
        spec.engine.tx.enabled = true;
        spec.engine.tx.write_ratio = 0.1;
        spec.engine.check_invariants = true;
        const auto r = sim::run_experiment(spec);
        EXPECT_GT(r.accesses, 0u) << policy;
        // The tx ledger must balance (audited per interval inside the
        // run); at exit the only unaccounted opens are the still
        // in-flight windows, so opened can exceed committed + aborted
        // but never fall short.
        EXPECT_GE(r.totals.tx_opened,
                  r.totals.tx_committed + r.totals.tx_aborted)
            << policy;
    }
}

}  // namespace
}  // namespace artmem::memsim
