/**
 * @file
 * Unit tests for the tiered-memory machine, ring buffer, PEBS sampler,
 * and the MLC microbench.
 */
#include <gtest/gtest.h>

#include <thread>

#include "memsim/mlc.hpp"
#include "memsim/pebs.hpp"
#include "memsim/ring_buffer.hpp"
#include "memsim/tiered_machine.hpp"

namespace artmem::memsim {
namespace {

MachineConfig
small_machine(std::size_t fast_pages, std::size_t total_pages)
{
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = total_pages * cfg.page_size;
    cfg.tiers[0].capacity = fast_pages * cfg.page_size;
    cfg.tiers[1].capacity = (total_pages + 4) * cfg.page_size;
    return cfg;
}

TEST(TieredMachine, FirstTouchFillsFastFirst)
{
    TieredMachine m(small_machine(4, 10));
    for (PageId p = 0; p < 10; ++p)
        m.access(p);
    for (PageId p = 0; p < 4; ++p)
        EXPECT_EQ(m.tier_of(p), Tier::kFast) << p;
    for (PageId p = 4; p < 10; ++p)
        EXPECT_EQ(m.tier_of(p), Tier::kSlow) << p;
    EXPECT_EQ(m.used_pages(Tier::kFast), 4u);
    EXPECT_EQ(m.used_pages(Tier::kSlow), 6u);
    EXPECT_EQ(m.free_pages(Tier::kFast), 0u);
}

TEST(TieredMachine, AccessChargesTierLatency)
{
    auto cfg = small_machine(1, 2);
    cfg.tiers[0].load_latency_ns = 92;
    cfg.tiers[1].load_latency_ns = 323;
    TieredMachine m(cfg);
    m.access(0);  // fast
    EXPECT_EQ(m.now(), 92u);
    m.access(1);  // slow
    EXPECT_EQ(m.now(), 92u + 323u);
    m.access(0);
    EXPECT_EQ(m.now(), 2 * 92u + 323u);
}

TEST(TieredMachine, CountersTrackTiers)
{
    TieredMachine m(small_machine(1, 2));
    m.access(0);
    m.access(1);
    m.access(1);
    EXPECT_EQ(m.totals().accesses[0], 1u);
    EXPECT_EQ(m.totals().accesses[1], 2u);
    EXPECT_NEAR(m.totals().fast_ratio(), 1.0 / 3.0, 1e-12);
}

TEST(TieredMachine, MigrateMovesAndCharges)
{
    TieredMachine m(small_machine(2, 4));
    for (PageId p = 0; p < 4; ++p)
        m.access(p);
    const SimTimeNs before = m.now();
    // Fast tier full: promotion must fail.
    EXPECT_FALSE(m.migrate(2, Tier::kFast));
    // Demote then promote.
    EXPECT_TRUE(m.migrate(0, Tier::kSlow));
    EXPECT_GT(m.now(), before);
    EXPECT_TRUE(m.migrate(2, Tier::kFast));
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    EXPECT_EQ(m.tier_of(2), Tier::kFast);
    EXPECT_EQ(m.totals().promoted_pages, 1u);
    EXPECT_EQ(m.totals().demoted_pages, 1u);
    EXPECT_GT(m.totals().migration_busy_ns, 0u);
}

TEST(TieredMachine, MigrateNoopCases)
{
    TieredMachine m(small_machine(2, 4));
    EXPECT_FALSE(m.migrate(0, Tier::kFast));  // unallocated
    m.access(0);
    EXPECT_FALSE(m.migrate(0, Tier::kFast));  // already there
}

TEST(TieredMachine, ExchangeSwapsTiers)
{
    TieredMachine m(small_machine(1, 2));
    m.access(0);
    m.access(1);
    EXPECT_TRUE(m.exchange(0, 1));
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    EXPECT_EQ(m.tier_of(1), Tier::kFast);
    EXPECT_EQ(m.totals().exchanges, 1u);
    // Same-tier exchange refused.
    m.access(0);
    EXPECT_FALSE(m.exchange(0, 0));
}

TEST(TieredMachine, AccessedBitSemantics)
{
    TieredMachine m(small_machine(2, 2));
    m.access(0);
    EXPECT_TRUE(m.accessed(0));
    EXPECT_TRUE(m.test_and_clear_accessed(0));
    EXPECT_FALSE(m.accessed(0));
    EXPECT_FALSE(m.test_and_clear_accessed(0));
}

TEST(TieredMachine, TrapDeliversFaultOnceAndCharges)
{
    auto cfg = small_machine(2, 2);
    cfg.hint_fault_cost_ns = 1000;
    TieredMachine m(cfg);
    m.access(0);
    int faults = 0;
    m.set_fault_handler([&](PageId page, Tier tier) {
        EXPECT_EQ(page, 0u);
        EXPECT_EQ(tier, Tier::kFast);
        ++faults;
    });
    m.set_trap(0);
    EXPECT_TRUE(m.has_trap(0));
    const SimTimeNs before = m.now();
    m.access(0);
    EXPECT_EQ(faults, 1);
    EXPECT_FALSE(m.has_trap(0));
    EXPECT_GE(m.now() - before, 1000u);
    m.access(0);  // no trap anymore
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(m.totals().hint_faults, 1u);
}

TEST(TieredMachine, WindowCountersReset)
{
    TieredMachine m(small_machine(2, 2));
    m.access(0);
    m.access(1);
    auto w1 = m.take_window();
    EXPECT_EQ(w1.total_accesses(), 2u);
    auto w2 = m.take_window();
    EXPECT_EQ(w2.total_accesses(), 0u);
    EXPECT_EQ(m.totals().total_accesses(), 2u);
}

TEST(TieredMachine, StreamChargesBandwidthTime)
{
    auto cfg = small_machine(2, 2);
    cfg.tiers[1].bandwidth_gbps = 26.0;
    TieredMachine m(cfg);
    const SimTimeNs dt = m.stream(Tier::kSlow, 26ull << 30);
    // 26 GiB at 26 GB/s ~ 1.07 s (GiB vs GB).
    EXPECT_NEAR(static_cast<double>(dt) * 1e-9, 1.07, 0.03);
}

TEST(RingBuffer, PushPopFifo)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.push(1));
    EXPECT_TRUE(rb.push(2));
    EXPECT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.pop().value(), 1);
    EXPECT_EQ(rb.pop().value(), 2);
    EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, DropsWhenFull)
{
    RingBuffer<int> rb(4);  // rounded to 4
    for (int i = 0; i < 6; ++i)
        rb.push(i);
    EXPECT_EQ(rb.dropped(), 2u);
    EXPECT_EQ(rb.size(), 4u);
}

TEST(RingBuffer, DrainCollectsUpToLimit)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 5; ++i)
        rb.push(i);
    std::vector<int> out;
    EXPECT_EQ(rb.drain(out, 3), 3u);
    EXPECT_EQ(rb.drain(out, 10), 2u);
    EXPECT_EQ(out.size(), 5u);
}

TEST(RingBuffer, SpscThreadedTransfer)
{
    // The real-thread path of the ArtMem sampling design (Section 4.4):
    // a producer thread pushes, a consumer thread drains concurrently.
    RingBuffer<std::uint64_t> rb(1024);
    constexpr std::uint64_t kItems = 200000;
    std::atomic<bool> done{false};
    std::uint64_t sum = 0, received = 0;
    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire) || rb.size() > 0) {
            if (auto v = rb.pop()) {
                sum += *v;
                ++received;
            }
        }
    });
    std::uint64_t pushed_sum = 0, pushed = 0;
    for (std::uint64_t i = 0; i < kItems; ++i) {
        if (rb.push(i)) {
            pushed_sum += i;
            ++pushed;
        }
    }
    done.store(true, std::memory_order_release);
    consumer.join();
    EXPECT_EQ(received, pushed);
    EXPECT_EQ(sum, pushed_sum);
    EXPECT_EQ(pushed + rb.dropped(), kItems);
}

TEST(RingBuffer, WraparoundPreservesFifoAcrossManyCycles)
{
    // Cycle the indices through the power-of-two mask many times over:
    // the unmasked head/tail counters must keep FIFO order and exact
    // size accounting across every wrap.
    RingBuffer<int> rb(8);
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(rb.push(next_in++));
        for (int i = 0; i < 5; ++i) {
            const auto v = rb.pop();
            ASSERT_TRUE(v.has_value());
            ASSERT_EQ(*v, next_out++);
        }
    }
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.dropped(), 0u);
}

TEST(RingBuffer, ExactDropAccountingUnderSaturation)
{
    // A saturating producer (a PEBS burst with no consumer scheduled):
    // the first `capacity` records land, every later one is dropped and
    // counted, and nothing already queued is overwritten.
    RingBuffer<int> rb(8);
    for (int i = 0; i < 100; ++i)
        rb.push(i);
    EXPECT_EQ(rb.size(), 8u);
    EXPECT_EQ(rb.dropped(), 92u);
    std::vector<int> out;
    EXPECT_EQ(rb.drain(out, 100), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(RingBuffer, RecoversAfterDrainedBlackoutBacklog)
{
    // Consumer blackout: the producer saturates the buffer, then the
    // consumer comes back and drains everything. The buffer must accept
    // new records again with no residual state from the overload.
    RingBuffer<int> rb(4);
    for (int i = 0; i < 20; ++i)
        rb.push(i);
    const auto dropped_during_blackout = rb.dropped();
    EXPECT_EQ(dropped_during_blackout, 16u);
    std::vector<int> out;
    rb.drain(out, 100);
    EXPECT_EQ(rb.size(), 0u);
    for (int i = 100; i < 104; ++i)
        EXPECT_TRUE(rb.push(i));
    EXPECT_EQ(rb.pop().value(), 100);
    // No new drops after recovery.
    EXPECT_EQ(rb.dropped(), dropped_during_blackout);
}

TEST(PebsSampler, SamplesEveryNth)
{
    PebsSampler sampler({.period = 10, .buffer_capacity = 1024});
    for (int i = 0; i < 100; ++i)
        sampler.observe(static_cast<PageId>(i), Tier::kFast);
    EXPECT_EQ(sampler.recorded(), 10u);
    std::vector<PebsSample> out;
    sampler.drain(out, 100);
    ASSERT_EQ(out.size(), 10u);
    EXPECT_EQ(out[0].page, 9u);  // the 10th access
    EXPECT_EQ(out[1].page, 19u);
}

TEST(PebsSampler, PeriodChangeTakesEffect)
{
    PebsSampler sampler({.period = 100, .buffer_capacity = 64});
    sampler.set_period(2);
    for (int i = 0; i < 10; ++i)
        sampler.observe(0, Tier::kSlow);
    EXPECT_EQ(sampler.recorded(), 5u);
    EXPECT_EQ(sampler.period(), 2u);
}

TEST(Mlc, ReproducesTable2Characteristics)
{
    MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = 64ull << 20;
    cfg.tiers[0].capacity = 32ull << 20;
    cfg.tiers[1].capacity = 128ull << 20;
    TieredMachine m(cfg);
    const auto fast = measure_tier(m, Tier::kFast, 10000, 1ull << 30);
    EXPECT_NEAR(fast.latency_ns, 92.0, 1.0);
    EXPECT_NEAR(fast.bandwidth_gbps, 81.0, 1.0);
    const auto slow = measure_tier(m, Tier::kSlow, 10000, 1ull << 30);
    EXPECT_NEAR(slow.latency_ns, 323.0, 1.0);
    EXPECT_NEAR(slow.bandwidth_gbps, 26.0, 1.0);
}

}  // namespace
}  // namespace artmem::memsim
