/**
 * @file
 * Invariant-checker tests: a healthy simulator passes every audit, and
 * each deliberately seeded corruption triggers exactly the typed
 * InvariantViolation that names it. The corruption back doors are the
 * TestPeer friends declared by TieredMachine, EmaBins, and the sharded
 * access pipeline (tests/sharded_peers.hpp); they exist only in the
 * test tree.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string_view>
#include <vector>

#include "core/artmem.hpp"
#include "memsim/fault_injector.hpp"
#include "memsim/pebs.hpp"
#include "memsim/sharded_access.hpp"
#include "memsim/tenant_ledger.hpp"
#include "memsim/tiered_machine.hpp"
#include "sharded_peers.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"
#include "verify/invariant_checker.hpp"

namespace artmem::memsim {

/** Test-only corruption back door (friend of TieredMachine). */
struct MachineTestPeer {
    /** Bump a tier's used-page count without touching the flags. */
    static void skew_used(TieredMachine& machine, Tier tier, int delta)
    {
        auto& used = machine.used_[static_cast<int>(tier)];
        used = static_cast<std::size_t>(static_cast<long long>(used) + delta);
    }

    /** Flip a page's residency bit behind the accounting's back. */
    static void flip_tier_bit(TieredMachine& machine, PageId page)
    {
        machine.flags_[page] ^= TieredMachine::kTierBit;
    }

    /** Clear a page's dual-residency flag behind the reclaim ledger. */
    static void drop_dual_flag(TieredMachine& machine, PageId page)
    {
        machine.flags_[page] &=
            static_cast<std::uint8_t>(~TieredMachine::kDualBit);
    }

    /** Double-free a dual-resident page's secondary slot: release the
     *  used count as if the copy had been reclaimed while the dual
     *  flag (and the reclaim ledger) still claim the slot. */
    static void double_free_dual_slot(TieredMachine& machine, PageId page)
    {
        const Tier secondary = other_tier(machine.tier_of(page));
        --machine.used_[static_cast<int>(secondary)];
    }

    /** Bump the write-hit counter without a matching abort or drop. */
    static void skew_write_hits(TieredMachine& machine)
    {
        ++machine.tx_->write_hits;
    }

    /** Force a tier's used count above its capacity (flags in sync). */
    static void overfill(TieredMachine& machine, Tier tier)
    {
        const std::size_t cap = machine.capacity_pages(tier);
        const std::size_t used = machine.used_pages(tier);
        // Mark additional unallocated pages resident in @p tier until
        // the count exceeds capacity.
        std::size_t added = 0;
        for (PageId page = 0;
             page < machine.page_count() && used + added <= cap; ++page) {
            if (machine.is_allocated(page))
                continue;
            machine.flags_[page] = static_cast<std::uint8_t>(
                TieredMachine::kAllocatedBit |
                (tier == Tier::kSlow ? TieredMachine::kTierBit : 0));
            ++machine.used_[static_cast<int>(tier)];
            ++added;
        }
        ASSERT_GT(machine.used_pages(tier), cap);
    }
};

/** Test-only corruption back door (friend of TenantLedger). */
struct TenantLedgerTestPeer {
    /** Bump a tenant's per-tier residency count behind the census. */
    static void skew_used(TenantLedger& ledger, std::uint32_t tenant,
                          Tier tier, int delta)
    {
        auto& slot =
            ledger.used_[tenant * kTierCount + static_cast<int>(tier)];
        slot = static_cast<std::size_t>(static_cast<long long>(slot) + delta);
    }

    /** Count a promotion that never happened on the machine. */
    static void skew_promoted(TenantLedger& ledger, std::uint32_t tenant)
    {
        ++ledger.totals_[tenant].promoted_pages;
    }
};

}  // namespace artmem::memsim

namespace artmem::stats {

/** Test-only corruption back door (friend of EmaBins). */
struct EmaBinsTestPeer {
    /** Move one page of recorded mass between bins. */
    static void shift_mass(EmaBins& bins, int from, int to)
    {
        --bins.bins_[from];
        ++bins.bins_[to];
    }

    /** Bump a page's counter without rebinning it. */
    static void skew_count(EmaBins& bins, PageId page, std::uint32_t value)
    {
        bins.counts_[page] = value;
    }
};

}  // namespace artmem::stats

namespace artmem::verify {
namespace {

using memsim::MachineConfig;
using memsim::MachineTestPeer;
using memsim::Tier;
using memsim::TieredMachine;
using stats::EmaBinsTestPeer;

MachineConfig
small_machine_config()
{
    MachineConfig config;
    config.page_size = 1ull << 20;
    config.tiers[0].capacity = 16ull << 20;   // 16 fast pages
    config.tiers[1].capacity = 64ull << 20;   // 64 slow pages
    config.address_space = 48ull << 20;       // 48 pages total
    return config;
}

TEST(InvariantNames, AreStable)
{
    EXPECT_EQ(invariant_name(Invariant::kResidencyCount), "residency_count");
    EXPECT_EQ(invariant_name(Invariant::kTierCapacity), "tier_capacity");
    EXPECT_EQ(invariant_name(Invariant::kLruStructure), "lru_structure");
    EXPECT_EQ(invariant_name(Invariant::kLruResidency), "lru_residency");
    EXPECT_EQ(invariant_name(Invariant::kEmaBinMass), "ema_bin_mass");
    EXPECT_EQ(invariant_name(Invariant::kFaultAccounting),
              "fault_accounting");
    EXPECT_EQ(invariant_name(Invariant::kQTableValue), "qtable_value");
    EXPECT_EQ(invariant_name(Invariant::kTxAccounting), "tx_accounting");
    EXPECT_EQ(invariant_name(Invariant::kTenantQuota), "tenant_quota");
}

TEST(CheckMachine, HealthyMachinePasses)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 40);
    for (PageId p = 0; p < 40; ++p)
        machine.access(p);
    EXPECT_GT(InvariantChecker::check_machine(machine), 0u);
}

TEST(CheckMachine, SkewedUsedCountFires)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 40);
    MachineTestPeer::skew_used(machine, Tier::kFast, -1);
    try {
        (void)InvariantChecker::check_machine(machine);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kResidencyCount);
        EXPECT_NE(std::string(violation.what()).find("residency_count"),
                  std::string::npos);
    }
}

TEST(CheckMachine, FlippedTierBitFires)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 40);
    // Page 0 was allocated fast; silently relocate it to the slow tier.
    MachineTestPeer::flip_tier_bit(machine, 0);
    EXPECT_THROW((void)InvariantChecker::check_machine(machine),
                 InvariantViolation);
}

TEST(CheckMachine, OverfilledTierFires)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 20);
    MachineTestPeer::overfill(machine, Tier::kFast);
    try {
        (void)InvariantChecker::check_machine(machine);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kTierCapacity);
    }
}

class CheckLru : public ::testing::Test
{
  protected:
    CheckLru() : machine_(small_machine_config()), lists_(48)
    {
        machine_.prefault_range(0, 48);  // 16 fast + 32 slow
    }

    TieredMachine machine_;
    lru::LruLists lists_;
};

TEST_F(CheckLru, HealthyListsPass)
{
    for (PageId p = 0; p < 48; ++p)
        lists_.touch(p, machine_.tier_of(p));
    for (PageId p = 0; p < 8; ++p) {
        lists_.set_referenced(p);
        lists_.touch(p, machine_.tier_of(p));  // activate
    }
    EXPECT_GT(InvariantChecker::check_lru(lists_, machine_), 0u);
}

TEST_F(CheckLru, WrongTierListFires)
{
    // Page 0 resides in the fast tier; link it on a slow list.
    lists_.insert_head(0, lru::ListId::kSlowActive);
    try {
        (void)InvariantChecker::check_lru(lists_, machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kLruResidency);
    }
}

TEST_F(CheckLru, UnallocatedLinkedPageFires)
{
    TieredMachine fresh(small_machine_config());  // nothing allocated
    lists_.insert_head(3, lru::ListId::kFastInactive);
    try {
        (void)InvariantChecker::check_lru(lists_, fresh);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kLruResidency);
    }
}

TEST_F(CheckLru, PageSpaceMismatchFires)
{
    lru::LruLists wrong(32);
    try {
        (void)InvariantChecker::check_lru(wrong, machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kLruStructure);
    }
}

TEST(CheckEma, HealthyBinsPass)
{
    stats::EmaBins bins(64);
    for (int i = 0; i < 100; ++i)
        bins.record(static_cast<PageId>(i % 8));
    bins.cool();
    EXPECT_GT(InvariantChecker::check_ema(bins), 0u);
}

TEST(CheckEma, ShiftedBinMassFires)
{
    stats::EmaBins bins(64);
    for (int i = 0; i < 100; ++i)
        bins.record(static_cast<PageId>(i % 8));
    EmaBinsTestPeer::shift_mass(bins, 0, 3);
    try {
        (void)InvariantChecker::check_ema(bins);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kEmaBinMass);
    }
}

TEST(CheckEma, SkewedPageCounterFires)
{
    stats::EmaBins bins(64);
    for (int i = 0; i < 100; ++i)
        bins.record(static_cast<PageId>(i % 8));
    // Rewrite one page's counter so it maps to a different bin than the
    // one tracking it.
    EmaBinsTestPeer::skew_count(bins, 0, 1u << 10);
    EXPECT_THROW((void)InvariantChecker::check_ema(bins),
                 InvariantViolation);
}

TEST(CheckQTable, NonFiniteEntryFires)
{
    rl::QTable table(4, 3, 0.0);
    table.at(2, 1) = std::nan("");
    try {
        (void)InvariantChecker::check_qtable(table, 100.0, "test");
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kQTableValue);
        EXPECT_NE(std::string(violation.what()).find("Q(2, 1)"),
                  std::string::npos);
    }
}

TEST(CheckQTable, OutOfBoundEntryFires)
{
    rl::QTable table(4, 3, 0.0);
    table.at(0, 0) = 1e9;
    EXPECT_THROW((void)InvariantChecker::check_qtable(table, 200.0, "test"),
                 InvariantViolation);
    table.at(0, 0) = -1e9;
    EXPECT_THROW((void)InvariantChecker::check_qtable(table, 200.0, "test"),
                 InvariantViolation);
}

TEST(CheckQTable, BoundFollowsGamma)
{
    core::ArtMemConfig config;
    const double bound = InvariantChecker::qtable_bound(config);
    EXPECT_TRUE(std::isfinite(bound));
    EXPECT_NEAR(bound, 100.0 / (1.0 - config.agent.gamma), 1e-3);
    config.agent.gamma = 1.0;  // undiscounted: no finite fixpoint bound
    EXPECT_TRUE(std::isinf(InvariantChecker::qtable_bound(config)));
}

TEST(CheckFaultAccounting, FaultFreeWithCleanCountersPasses)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 40);
    EXPECT_GT(InvariantChecker::check_fault_accounting(machine), 0u);
}

TEST(CheckFaultAccounting, TransientMismatchFires)
{
    auto fc = memsim::make_fault_scenario("migration", 7);
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 48);
    machine.install_faults(fc);
    // Consume an abort draw outside a migration: the injector now
    // claims more granted aborts than the machine recorded.
    std::uint64_t hits = 0;
    while (machine.fault_injector()->transient_aborts() == 0 &&
           hits < 10000) {
        machine.fault_injector()->migration_transient_abort();
        ++hits;
    }
    ASSERT_GT(machine.fault_injector()->transient_aborts(), 0u);
    try {
        (void)InvariantChecker::check_fault_accounting(machine);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kFaultAccounting);
    }
}

TEST(CheckFaultAccounting, SuppressedSampleMismatchFires)
{
    auto fc = memsim::make_fault_scenario("blackout", 3);
    TieredMachine machine(small_machine_config());
    machine.install_faults(fc);
    EXPECT_GT(InvariantChecker::check_fault_accounting(machine, 0), 0u);
    EXPECT_THROW((void)InvariantChecker::check_fault_accounting(machine, 5),
                 InvariantViolation);
}

TEST(Audit, CountsAuditsAndChecksArtMemInternals)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 48);
    core::ArtMem policy;
    policy.init(machine);
    InvariantChecker checker;
    EXPECT_GT(checker.audit(machine, policy), 0u);
    EXPECT_GT(checker.audit(machine, policy), 0u);
    EXPECT_EQ(checker.audits(), 2u);
}

TEST(Audit, DetectsArtMemQTableCorruption)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 48);
    core::ArtMem policy;
    policy.init(machine);
    policy.migration_agent().table().at(0, 0) =
        std::numeric_limits<double>::infinity();
    InvariantChecker checker;
    EXPECT_THROW((void)checker.audit(machine, policy), InvariantViolation);
}

// --- transactional-engine accounting -----------------------------------

/** Machine with one committed non-exclusive demotion: page 0's primary
 *  lives in the slow tier with a clean dual copy left in fast. */
class CheckTxAccounting : public ::testing::Test
{
  protected:
    CheckTxAccounting() : machine_(small_machine_config())
    {
        memsim::TxConfig tx;
        tx.enabled = true;
        machine_.install_tx(tx);
        machine_.prefault_range(0, 48);  // 16 fast + 32 slow
        EXPECT_TRUE(machine_.migrate(0, Tier::kSlow).pending());
        machine_.advance(1'000'000'000);
        EXPECT_EQ(machine_.poll_tx(), 1u);
        EXPECT_TRUE(machine_.tx_page_dual(0));
    }

    TieredMachine machine_;
};

TEST_F(CheckTxAccounting, HealthyDualResidentMachinePasses)
{
    EXPECT_GT(InvariantChecker::check_machine(machine_), 0u);
    EXPECT_GT(InvariantChecker::check_tx_accounting(machine_), 0u);
}

TEST_F(CheckTxAccounting, DoubleFreedDualSlotFires)
{
    // The dual page's secondary slot is freed a second time: the flags
    // still claim residency in both tiers, so the recount disagrees
    // with the used counter.
    MachineTestPeer::double_free_dual_slot(machine_, 0);
    try {
        (void)InvariantChecker::check_machine(machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kResidencyCount);
    }
}

TEST_F(CheckTxAccounting, DroppedDualFlagFires)
{
    // The flag disappears behind the reclaim ledger's back: the tier
    // still advertises a reclaimable copy that no page carries.
    MachineTestPeer::drop_dual_flag(machine_, 0);
    try {
        (void)InvariantChecker::check_tx_accounting(machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kTxAccounting);
        EXPECT_NE(std::string(violation.what()).find("reclaimable"),
                  std::string::npos);
    }
}

TEST_F(CheckTxAccounting, SkewedWriteHitsFire)
{
    // A write hit that neither aborted a transaction nor dropped a
    // dual copy breaks the draw-stream reconciliation.
    MachineTestPeer::skew_write_hits(machine_);
    try {
        (void)InvariantChecker::check_tx_accounting(machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kTxAccounting);
    }
}

TEST(CheckTxAccountingOff, TxOffMachinePasses)
{
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 40);
    EXPECT_GT(InvariantChecker::check_tx_accounting(machine), 0u);
}

// --- multi-tenant quota/attribution accounting -------------------------

using memsim::TenantLedger;
using memsim::TenantLedgerTestPeer;

/** Machine with a two-tenant ledger (24 pages each, no quota) fully
 *  prefaulted: 16 fast + 32 slow pages, all owned. */
class CheckTenantQuota : public ::testing::Test
{
  protected:
    CheckTenantQuota() : machine_(small_machine_config())
    {
        auto ledger = std::make_unique<TenantLedger>(2, 48);
        ledger->set_owner_span(0, 24, 0);
        ledger->set_owner_span(24, 24, 1);
        machine_.install_tenants(std::move(ledger));
        machine_.prefault_range(0, 48);
    }

    TieredMachine machine_;
};

TEST_F(CheckTenantQuota, HealthyMultiTenantMachinePasses)
{
    EXPECT_GT(InvariantChecker::check_tenant_quota(machine_), 0u);
    // The per-interval audit picks the check up automatically.
    core::ArtMem policy;
    policy.init(machine_);
    InvariantChecker checker;
    EXPECT_GT(checker.audit(machine_, policy), 0u);
}

TEST_F(CheckTenantQuota, SkewedTenantResidencyFires)
{
    TenantLedgerTestPeer::skew_used(*machine_.tenants(), 0, Tier::kFast, 1);
    try {
        (void)InvariantChecker::check_tenant_quota(machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kTenantQuota);
        EXPECT_NE(std::string(violation.what()).find("tenant_quota"),
                  std::string::npos);
    }
}

TEST_F(CheckTenantQuota, ResidencyAboveQuotaFires)
{
    // Prefault ran without quotas, so tenant 0 (low addresses) filled
    // the whole fast tier. Imposing a quota below its residency now,
    // with no over-quota allocations recorded, must trip the bound.
    ASSERT_EQ(machine_.tenants()->used_pages(0, Tier::kFast), 16u);
    machine_.tenants()->set_quota(0, 4);
    try {
        (void)InvariantChecker::check_tenant_quota(machine_);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation& violation) {
        EXPECT_EQ(violation.which(), Invariant::kTenantQuota);
        EXPECT_NE(std::string(violation.what()).find("quota"),
                  std::string::npos);
    }
}

TEST_F(CheckTenantQuota, PhantomPromotionFires)
{
    // A per-tenant promotion with no matching machine migration breaks
    // the attribution reconciliation.
    TenantLedgerTestPeer::skew_promoted(*machine_.tenants(), 1);
    EXPECT_THROW((void)InvariantChecker::check_tenant_quota(machine_),
                 InvariantViolation);
}

TEST(CheckTenantQuotaOff, SingleTenantMachineIsRejected)
{
    // The audit gates the check on tenants() != nullptr; calling it
    // directly on a single-tenant machine is a checker-usage bug.
    TieredMachine machine(small_machine_config());
    machine.prefault_range(0, 40);
    EXPECT_THROW((void)InvariantChecker::check_tenant_quota(machine),
                 InvariantViolation);
}

// --- kShardPartition: parallel-merge corruption detection --------------

/**
 * Fixture driving a parallel-merge sharded engine far enough that every
 * audited structure is populated: lanes hold pending sampler records
 * (no boundary merge has run), the folded accumulators are non-zero,
 * and the per-shard LRU segments link touched pages.
 */
class CheckShardParallel : public ::testing::Test
{
  protected:
    static constexpr std::size_t kPages = 1024;
    static constexpr unsigned kShards = 4;

    CheckShardParallel()
        : machine_(shard_machine_config()),
          engine_(machine_, {.shards = kShards,
                             .seed = 3,
                             .audit = false,
                             .parallel_merge = true}),
          sampler_({.period = 5, .buffer_capacity = 1 << 10})
    {
        machine_.prefault_range(0, kPages);
        Rng rng(17);
        std::vector<PageId> batch;
        for (int round = 0; round < 8; ++round) {
            batch.clear();
            for (int i = 0; i < 512; ++i)
                batch.push_back(
                    static_cast<PageId>(rng.next_below(kPages)));
            engine_.process(batch.data(), batch.size(), sampler_);
        }
    }

    static MachineConfig shard_machine_config()
    {
        MachineConfig config;
        config.page_size = 1ull << 20;
        config.address_space = kPages * config.page_size;
        config.tiers[0].capacity = (kPages / 4) * config.page_size;
        config.tiers[1].capacity = kPages * config.page_size;
        return config;
    }

    void expect_fires(std::string_view needle)
    {
        try {
            (void)InvariantChecker::check_shard_partition(machine_,
                                                          engine_);
            FAIL() << "expected InvariantViolation containing '" << needle
                   << "'";
        } catch (const InvariantViolation& violation) {
            EXPECT_EQ(violation.which(), Invariant::kShardPartition);
            EXPECT_NE(std::string(violation.what()).find(needle),
                      std::string::npos)
                << violation.what();
        }
    }

    TieredMachine machine_;
    memsim::ShardedAccessEngine engine_;
    memsim::PebsSampler sampler_;
};

TEST_F(CheckShardParallel, HealthyParallelEnginePasses)
{
    ASSERT_GT(engine_.parallel_merges(), 0u);
    ASSERT_GT(engine_.pending_samples(), 0u);
    ASSERT_GT(engine_.parallel_charged_ns(), 0u);
    EXPECT_GT(InvariantChecker::check_shard_partition(machine_, engine_),
              0u);
}

TEST_F(CheckShardParallel, PageOnWrongShardsLruSegmentFires)
{
    // Move a page lane 0 touched from shard 0's private LRU segment
    // onto shard 1's: the segment walk must attribute it to the wrong
    // owner and fire.
    auto& recency = memsim::ShardedEngineTestPeer::recency(engine_);
    auto& seg0 = lru::ShardedLruTestPeer::segment(recency, 0);
    PageId moved = kInvalidPage;
    for (PageId p = 0; p < kPages; ++p) {
        if (engine_.owner_of(p) == 0 &&
            seg0.where(p) != lru::ListId::kNone) {
            moved = p;
            break;
        }
    }
    ASSERT_NE(moved, kInvalidPage);
    const lru::ListId list = seg0.where(moved);
    seg0.remove(moved);
    lru::ShardedLruTestPeer::segment(recency, 1).insert_head(moved, list);
    expect_fires("LRU segment");
}

TEST_F(CheckShardParallel, LaneLatencyAccumulatorOffByOneFires)
{
    // One nanosecond of drift in a single lane's private accumulator
    // must break the reconciliation against the independently
    // recomputed batch charge.
    ASSERT_GT(engine_.lane_folded_latency_ns(2), 0u);
    memsim::ShardedEngineTestPeer::folded_lat_ns(engine_, 2) += 1;
    expect_fires("lane latency accumulators");
}

TEST_F(CheckShardParallel, LaneAccessCounterDriftFires)
{
    memsim::ShardedEngineTestPeer::folded_accesses(engine_, 1) += 1;
    expect_fires("folded access counters");
}

TEST_F(CheckShardParallel, SamplerRecordOnWrongShardFires)
{
    // Re-attribute one pending sampler record to a shard that does not
    // own its page: the boundary-merge audit must flag the attribution.
    unsigned lane = kShards;
    for (unsigned s = 0; s < kShards; ++s) {
        if (!engine_.lane_pending(s).empty()) {
            lane = s;
            break;
        }
    }
    ASSERT_LT(lane, kShards);
    auto& pending = memsim::ShardedEngineTestPeer::pending(engine_, lane);
    pending.front().shard = (lane + 1) % kShards;
    expect_fires("attributed to shard");
}

TEST_F(CheckShardParallel, PendingSeqFromTheFutureFires)
{
    unsigned lane = kShards;
    for (unsigned s = 0; s < kShards; ++s) {
        if (!engine_.lane_pending(s).empty()) {
            lane = s;
            break;
        }
    }
    ASSERT_LT(lane, kShards);
    auto& pending = memsim::ShardedEngineTestPeer::pending(engine_, lane);
    pending.back().seq = engine_.next_seq() + 1;
    expect_fires("next_seq");
}

// --- integration: full fault-scenario runs under per-interval audit ----

class InvariantCheckedRun
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(InvariantCheckedRun, FaultScenarioStaysConsistent)
{
    sim::RunSpec spec;
    spec.workload = "s2";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 400000;
    spec.engine.faults = memsim::make_fault_scenario(GetParam(), 1);
    spec.engine.check_invariants = true;
    const auto result = sim::run_experiment(spec);
#if ARTMEM_CHECK_INVARIANTS
    EXPECT_GT(result.invariant_audits, 0u);
#endif
    EXPECT_GT(result.accesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, InvariantCheckedRun,
    ::testing::Values("none", "migration", "degrade", "blackout",
                      "pressure"),
    [](const auto& suite_info) { return std::string(suite_info.param); });

}  // namespace
}  // namespace artmem::verify
