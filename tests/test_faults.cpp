/**
 * @file
 * Tests for the deterministic fault-injection layer and the policies'
 * resilience to it: the strict no-op guarantee when disabled (golden
 * run values captured before the fault layer existed), schedule
 * determinism, typed migration failures with consistent accounting,
 * PEBS blackouts driving ArtMem through its no-sample state, capacity
 * pressure, and degradation windows.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "core/artmem.hpp"
#include "memsim/fault_injector.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "workloads/masim.hpp"

namespace artmem {
namespace {

using memsim::FaultConfig;
using memsim::FaultInjector;
using memsim::MigrateStatus;
using memsim::Tier;
using memsim::TieredMachine;

constexpr Bytes kPage = 2ull << 20;

memsim::MachineConfig
small_machine(std::size_t fast_pages, std::size_t total_pages)
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = total_pages * kPage;
    cfg.tiers[0].capacity = fast_pages * kPage;
    cfg.tiers[1].capacity = (total_pages + 4) * kPage;
    return cfg;
}

/** The skewed workload used by the golden-value regression runs. */
workloads::MasimSpec
golden_spec(std::uint64_t accesses)
{
    workloads::MasimSpec spec;
    spec.name = "golden";
    spec.footprint = 512 * kPage;
    workloads::MasimPhase phase;
    phase.accesses = accesses;
    phase.regions = {
        {spec.footprint - 64 * kPage, 64 * kPage, 95.0, false},
        {0, spec.footprint, 5.0, false},
    };
    spec.phases.push_back(phase);
    return spec;
}

memsim::MachineConfig
golden_machine()
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 512 * kPage;
    cfg.tiers[0].capacity = 256 * kPage;
    cfg.tiers[1].capacity = 520 * kPage;
    return cfg;
}

sim::RunResult
golden_run(std::string_view policy_name, const FaultConfig& faults = {})
{
    auto policy = sim::make_policy(policy_name, 42);
    workloads::Masim gen(golden_spec(1000000), kPage, 13);
    TieredMachine machine(golden_machine());
    sim::EngineConfig engine;
    engine.faults = faults;
    return sim::run_simulation(gen, *policy, machine, engine);
}

// ---------------------------------------------------------------------
// The strict no-op guarantee: with every fault class disabled (the
// default), each policy must reproduce, bit for bit, the run results
// captured on this scenario before the fault layer existed. Any change
// here means the fault layer leaked into the fault-free path.
// ---------------------------------------------------------------------

struct Golden {
    std::uint64_t runtime_ns;
    double fast_ratio;
    std::uint64_t promoted;
    std::uint64_t demoted;
    std::uint64_t exchanges;
};

TEST(FaultNoOp, DisabledFaultsAreBitIdenticalToPreFaultBuild)
{
    const std::map<std::string, Golden> golden = {
        {"static", {317258957ull, 0.024853, 0ull, 0ull, 0ull}},
        {"autonuma", {319998128ull, 0.024695999999999999, 7ull, 9ull, 0ull}},
        {"tpp", {351450455ull, 0.087528999999999996, 838ull, 848ull, 0ull}},
        {"autotiering", {321840999ull, 0.024853, 0ull, 0ull, 2ull}},
        {"nimble", {317340877ull, 0.024853, 0ull, 0ull, 0ull}},
        {"multiclock", {317330637ull, 0.024853, 0ull, 0ull, 0ull}},
        {"memtis", {119198600ull, 0.94485200000000003, 266ull, 266ull, 0ull}},
        {"tiering08",
         {348711691ull, 0.19184899999999999, 1250ull, 1252ull, 0ull}},
        {"artmem", {137998925ull, 0.81598899999999996, 64ull, 64ull, 0ull}},
    };
    for (const auto policy_name : sim::policy_names()) {
        const auto it = golden.find(std::string(policy_name));
        ASSERT_NE(it, golden.end())
            << "no golden values captured for policy " << policy_name
            << "; run the probe and add them";
        const auto r = golden_run(policy_name);
        const Golden& g = it->second;
        EXPECT_EQ(r.runtime_ns, g.runtime_ns) << policy_name;
        EXPECT_EQ(r.fast_ratio, g.fast_ratio) << policy_name;
        EXPECT_EQ(r.totals.promoted_pages, g.promoted) << policy_name;
        EXPECT_EQ(r.totals.demoted_pages, g.demoted) << policy_name;
        EXPECT_EQ(r.totals.exchanges, g.exchanges) << policy_name;
        // failed_no_slot can legitimately be nonzero fault-free (it
        // predates the fault layer as a boolean false); the injected
        // classes must never fire.
        EXPECT_EQ(r.totals.failed_pinned, 0u) << policy_name;
        EXPECT_EQ(r.totals.failed_transient, 0u) << policy_name;
        EXPECT_EQ(r.totals.failed_contended, 0u) << policy_name;
        EXPECT_EQ(r.pebs_suppressed, 0u) << policy_name;
        // The transactional engine defaults to off and must leave no
        // trace at all in a plain run (DESIGN.md section 10).
        EXPECT_EQ(r.totals.tx_opened, 0u) << policy_name;
        EXPECT_EQ(r.totals.tx_committed, 0u) << policy_name;
        EXPECT_EQ(r.totals.tx_aborted, 0u) << policy_name;
        EXPECT_EQ(r.totals.tx_retries, 0u) << policy_name;
        EXPECT_EQ(r.totals.tx_free_flips, 0u) << policy_name;
        EXPECT_EQ(r.totals.tx_dual_drops, 0u) << policy_name;
        EXPECT_EQ(r.totals.tx_dual_reclaims, 0u) << policy_name;
        EXPECT_EQ(r.totals.failed_tx_busy, 0u) << policy_name;
    }
}

TEST(FaultNoOp, DefaultConfigDisablesEverything)
{
    const FaultConfig fc;
    EXPECT_FALSE(fc.any_enabled());
    TieredMachine m(small_machine(2, 4));
    m.install_faults(fc);
    EXPECT_FALSE(m.faults_enabled());
    EXPECT_EQ(m.fault_injector(), nullptr);
}

// ---------------------------------------------------------------------
// Determinism: same seed, same schedule; the injector is a pure
// function of (seed, call sequence).
// ---------------------------------------------------------------------

TEST(FaultDeterminism, SameSeedSameRun)
{
    const auto faults = memsim::make_fault_scenario("migration", 7);
    const auto a = golden_run("artmem", faults);
    const auto b = golden_run("artmem", faults);
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.fast_ratio, b.fast_ratio);
    EXPECT_EQ(a.totals.promoted_pages, b.totals.promoted_pages);
    EXPECT_EQ(a.totals.failed_pinned, b.totals.failed_pinned);
    EXPECT_EQ(a.totals.failed_transient, b.totals.failed_transient);
    EXPECT_EQ(a.totals.failed_contended, b.totals.failed_contended);
    EXPECT_GT(a.totals.migration_failures(), 0u);
}

TEST(FaultDeterminism, PinnedSetIsPureFunctionOfSeed)
{
    FaultConfig fc;
    fc.seed = 99;
    fc.pinned_fraction = 0.3;
    FaultInjector a(fc, 64);
    FaultInjector b(fc, 64);
    std::size_t pinned = 0;
    for (PageId p = 0; p < 1000; ++p) {
        EXPECT_EQ(a.page_pinned(p), b.page_pinned(p)) << p;
        pinned += a.page_pinned(p) ? 1 : 0;
    }
    // ~30% of 1000 pages; wide tolerance, only the order of magnitude
    // matters (the hash is not a statistics test subject).
    EXPECT_GT(pinned, 200u);
    EXPECT_LT(pinned, 400u);
    // Repeated queries do not consume draws.
    EXPECT_EQ(a.draws(), 0u);
}

// ---------------------------------------------------------------------
// Typed migration failures and their accounting.
// ---------------------------------------------------------------------

TEST(MigrationFaults, CallerErrorsKeepTheirStatuses)
{
    TieredMachine m(small_machine(2, 4));
    EXPECT_EQ(m.migrate(0, Tier::kFast).status, MigrateStatus::kNotAllocated);
    m.access(0);
    EXPECT_EQ(m.migrate(0, Tier::kFast).status, MigrateStatus::kSameTier);
    // Caller errors are not failure-counted: nothing was attempted.
    EXPECT_EQ(m.totals().migration_failures(), 0u);
}

TEST(MigrationFaults, NoFreeSlotCounted)
{
    TieredMachine m(small_machine(1, 3));
    m.access(0);
    m.access(1);
    const auto r = m.migrate(1, Tier::kFast);
    EXPECT_EQ(r.status, MigrateStatus::kNoFreeSlot);
    EXPECT_TRUE(r.transient());
    EXPECT_FALSE(r.faulted());
    EXPECT_EQ(m.totals().failed_no_slot, 1u);
}

TEST(MigrationFaults, PinnedPageRefusedWithoutStateChange)
{
    FaultConfig fc;
    fc.pinned_fraction = 1.0;  // every page pinned
    TieredMachine m(small_machine(1, 4));
    m.install_faults(fc);
    m.access(0);  // fast (first touch fills the one fast slot)
    m.access(2);  // slow
    const SimTimeNs t = m.now();
    const auto r = m.migrate(0, Tier::kSlow);
    EXPECT_EQ(r.status, MigrateStatus::kPagePinned);
    EXPECT_TRUE(r.pinned());
    EXPECT_FALSE(r.transient());
    EXPECT_EQ(m.tier_of(0), Tier::kFast);
    EXPECT_EQ(m.now(), t);  // refusal is free: no copy was started
    EXPECT_EQ(m.totals().failed_pinned, 1u);
    EXPECT_EQ(m.totals().demoted_pages, 0u);
    // Exchange involving a pinned page fails the same way.
    EXPECT_EQ(m.exchange(0, 2).status, MigrateStatus::kPagePinned);
}

TEST(MigrationFaults, TransientAbortChargesPartialCopy)
{
    FaultConfig fc;
    fc.transient_rate = 1.0;
    TieredMachine m(small_machine(2, 4));
    m.install_faults(fc);
    m.access(0);  // fast
    const SimTimeNs t = m.now();
    const auto r = m.migrate(0, Tier::kSlow);
    EXPECT_EQ(r.status, MigrateStatus::kCopyAborted);
    EXPECT_TRUE(r.transient());
    EXPECT_TRUE(r.faulted());
    EXPECT_EQ(m.tier_of(0), Tier::kFast);
    EXPECT_GT(m.now(), t);  // the aborted copy wasted real time
    EXPECT_GT(m.totals().aborted_migration_ns, 0u);
    EXPECT_EQ(m.totals().failed_transient, 1u);
    EXPECT_EQ(m.totals().demoted_pages, 0u);
    EXPECT_EQ(m.totals().migration_busy_ns, 0u);
}

TEST(MigrationFaults, StormKeepsResidencyAndCountersConsistent)
{
    // A heavy mixed storm: every policy attempt sees 50% transient
    // aborts, 20% contention, and a 10% pinned set. After the run the
    // machine's used_pages must still match a recount of residency, and
    // successful migrations must equal the promoted/demoted counters.
    FaultConfig fc;
    fc.seed = 3;
    fc.pinned_fraction = 0.10;
    fc.transient_rate = 0.50;
    fc.contended_rate = 0.20;

    auto policy = sim::make_policy("artmem", 42);
    workloads::Masim gen(golden_spec(400000), kPage, 13);
    TieredMachine machine(golden_machine());
    sim::EngineConfig engine;
    engine.faults = fc;
    const auto r = sim::run_simulation(gen, *policy, machine, engine);

    EXPECT_GT(r.totals.migration_failures(), 0u);
    std::size_t fast = 0, slow = 0;
    for (PageId p = 0; p < machine.page_count(); ++p) {
        if (!machine.is_allocated(p))
            continue;
        (machine.tier_of(p) == Tier::kFast ? fast : slow) += 1;
    }
    EXPECT_EQ(fast, machine.used_pages(Tier::kFast));
    EXPECT_EQ(slow, machine.used_pages(Tier::kSlow));
    EXPECT_LE(machine.used_pages(Tier::kFast),
              machine.capacity_pages(Tier::kFast));
}

TEST(MigrationFaults, TotalStormPromotesNothingButCompletes)
{
    FaultConfig fc;
    fc.transient_rate = 1.0;  // every attempted copy aborts
    for (const auto policy_name : sim::policy_names()) {
        auto policy = sim::make_policy(policy_name, 42);
        workloads::Masim gen(golden_spec(200000), kPage, 13);
        TieredMachine machine(golden_machine());
        sim::EngineConfig engine;
        engine.faults = fc;
        const auto r = sim::run_simulation(gen, *policy, machine, engine);
        // No migration can complete; the budget/limit accounting must
        // not count the failures as moved pages.
        EXPECT_EQ(r.totals.migrated_pages(), 0u) << policy_name;
        EXPECT_EQ(r.accesses, 200000u) << policy_name;
    }
}

TEST(MigrationFaults, ArtMemBackoffStopsRetryingPinnedPages)
{
    // With a substantial pinned set and no other faults, ArtMem keeps
    // migrating: failures happen, but the per-page backoff keeps the
    // candidate stream from collapsing onto unmovable pages.
    FaultConfig fc;
    fc.seed = 11;
    fc.pinned_fraction = 0.25;
    const auto r = golden_run("artmem", fc);
    EXPECT_GT(r.totals.promoted_pages, 0u);
    EXPECT_GT(r.totals.failed_pinned, 0u);
    // The backoff gives each pinned page a 256-period sentence — longer
    // than the whole run — so each of the 512 footprint pages can fail
    // at most once. Without backoff the same pinned pages are retried
    // every period and the count explodes past the footprint.
    EXPECT_LT(r.totals.failed_pinned, 512u);
}

// ---------------------------------------------------------------------
// PEBS blackouts: ArtMem must pass through the no-sample state and
// come back with finite Q-tables and a sane threshold.
// ---------------------------------------------------------------------

TEST(BlackoutFaults, ArtMemSurvivesBlackoutsWithFiniteState)
{
    core::ArtMemConfig cfg;
    cfg.seed = 42;
    core::ArtMem policy(cfg);

    FaultConfig fc;
    fc.seed = 5;
    // Aggressive: 60% of simulated time has no PEBS at all.
    fc.blackout_period_ns = 5000000;
    fc.blackout_duration_ns = 3000000;
    fc.sample_drop_rate = 0.10;

    workloads::Masim gen(golden_spec(600000), kPage, 13);
    TieredMachine machine(golden_machine());
    sim::EngineConfig engine;
    engine.faults = fc;
    const auto r = sim::run_simulation(gen, policy, machine, engine);

    EXPECT_GT(r.pebs_suppressed, 0u);
    EXPECT_GT(r.pebs_recorded, 0u);  // blackouts end; sampling resumes
    EXPECT_GE(policy.current_threshold(), cfg.min_threshold);
    EXPECT_LE(policy.current_threshold(), cfg.max_threshold);
    const auto& table = policy.migration_agent().table();
    for (int s = 0; s < table.states(); ++s)
        for (int a = 0; a < table.actions(); ++a)
            EXPECT_TRUE(std::isfinite(table.at(s, a))) << s << "," << a;
    const auto& thr = policy.threshold_agent().table();
    for (int s = 0; s < thr.states(); ++s)
        for (int a = 0; a < thr.actions(); ++a)
            EXPECT_TRUE(std::isfinite(thr.at(s, a))) << s << "," << a;
}

TEST(BlackoutFaults, SuppressionFollowsTheWindowSchedule)
{
    FaultConfig fc;
    fc.seed = 21;
    fc.blackout_period_ns = 1000;
    fc.blackout_duration_ns = 250;
    FaultInjector inj(fc, 16);
    // Over whole periods, exactly duration/period of the timeline is
    // blacked out, regardless of the seed-derived phase offset.
    std::uint64_t dark = 0;
    for (SimTimeNs t = 0; t < 10000; ++t)
        dark += inj.sampling_blackout(t) ? 1 : 0;
    EXPECT_EQ(dark, 2500u);
}

// ---------------------------------------------------------------------
// Capacity pressure and degradation windows.
// ---------------------------------------------------------------------

TEST(PressureFaults, ReservationShrinksFreePagesAndReleases)
{
    FaultConfig fc;
    fc.seed = 2;
    fc.pressure_fraction = 0.5;
    fc.pressure_period_ns = 1000;
    fc.pressure_duration_ns = 400;
    TieredMachine m(small_machine(8, 16));
    m.install_faults(fc);
    ASSERT_TRUE(m.faults_enabled());
    // Scan one full period: free_pages must alternate between the full
    // capacity and capacity minus the 4-page reservation.
    bool saw_reserved = false, saw_free = false;
    for (int t = 0; t < 1000; ++t) {
        const auto reserved = m.reserved_pages(Tier::kFast);
        EXPECT_TRUE(reserved == 0 || reserved == 4) << reserved;
        EXPECT_EQ(m.free_pages(Tier::kFast), 8 - reserved);
        saw_reserved |= reserved == 4;
        saw_free |= reserved == 0;
        m.advance(1);
    }
    EXPECT_TRUE(saw_reserved);
    EXPECT_TRUE(saw_free);
    EXPECT_EQ(m.reserved_pages(Tier::kSlow), 0u);
}

TEST(PressureFaults, MigrationIntoReservedSlotsIsContended)
{
    FaultConfig fc;
    fc.pressure_fraction = 1.0;  // co-tenant takes the whole fast tier
    fc.pressure_period_ns = 1000000;
    fc.pressure_duration_ns = 1000000;  // permanently
    TieredMachine m(small_machine(4, 8));
    m.install_faults(fc);
    m.access(0);  // lands slow: fast fully reserved, slow has room
    EXPECT_EQ(m.tier_of(0), Tier::kSlow);
    const auto r = m.migrate(0, Tier::kFast);
    EXPECT_EQ(r.status, MigrateStatus::kDstContended);
    EXPECT_EQ(m.totals().failed_contended, 1u);
}

TEST(DegradeFaults, LatencyMultipliedOnlyInsideWindows)
{
    FaultConfig fc;
    fc.seed = 17;
    fc.degrade_tier = 1;
    fc.degrade_latency_factor = 4.0;
    fc.degrade_bandwidth_factor = 2.0;
    fc.degrade_period_ns = 1000;
    fc.degrade_duration_ns = 300;
    FaultInjector inj(fc, 16);
    std::uint64_t degraded = 0;
    for (SimTimeNs t = 0; t < 10000; ++t) {
        if (inj.tier_degraded(Tier::kSlow, t)) {
            ++degraded;
            EXPECT_EQ(inj.effective_latency(Tier::kSlow, 323, t), 1292u);
            EXPECT_EQ(inj.bandwidth_penalty(Tier::kSlow, t), 2.0);
        } else {
            EXPECT_EQ(inj.effective_latency(Tier::kSlow, 323, t), 323u);
            EXPECT_EQ(inj.bandwidth_penalty(Tier::kSlow, t), 1.0);
        }
        // The fast tier is never degraded by this config.
        EXPECT_FALSE(inj.tier_degraded(Tier::kFast, t));
        EXPECT_EQ(inj.effective_latency(Tier::kFast, 92, t), 92u);
    }
    EXPECT_EQ(degraded, 3000u);
}

TEST(DegradeFaults, DegradedRunIsSlowerThanFaultFree)
{
    const auto clean = golden_run("static");
    const auto degraded =
        golden_run("static", memsim::make_fault_scenario("degrade", 1));
    EXPECT_GT(degraded.runtime_ns, clean.runtime_ns);
}

// ---------------------------------------------------------------------
// Configuration parsing and validation.
// ---------------------------------------------------------------------

TEST(FaultConfigDeathTest, RejectsOutOfRangeAndUnknown)
{
    FaultConfig bad_rate;
    bad_rate.transient_rate = 1.5;
    EXPECT_EXIT(bad_rate.validate(), ::testing::ExitedWithCode(1), "");

    FaultConfig bad_window;
    bad_window.degrade_period_ns = 100;
    bad_window.degrade_duration_ns = 200;  // duration > period
    EXPECT_EXIT(bad_window.validate(), ::testing::ExitedWithCode(1), "");

    FaultConfig zero_duration;
    zero_duration.blackout_period_ns = 100;  // enabled but zero duration
    EXPECT_EXIT(zero_duration.validate(), ::testing::ExitedWithCode(1), "");

    const auto unknown = KvConfig::parse("fault.blckout_period_ms = 50\n");
    EXPECT_EXIT(memsim::parse_fault_config(unknown),
                ::testing::ExitedWithCode(1), "");

    EXPECT_EXIT(memsim::make_fault_scenario("wat", 1),
                ::testing::ExitedWithCode(1), "");
}

TEST(FaultConfigParse, RoundTripsKnownKeys)
{
    const auto cfg = KvConfig::parse(
        "fault.seed = 9\n"
        "fault.pinned_fraction = 0.02\n"
        "fault.transient_rate = 0.2\n"
        "fault.blackout_period_ms = 50\n"
        "fault.blackout_duration_ms = 15\n"
        "fault.sample_drop_rate = 0.05\n");
    const auto fc = memsim::parse_fault_config(cfg);
    EXPECT_EQ(fc.seed, 9u);
    EXPECT_EQ(fc.pinned_fraction, 0.02);
    EXPECT_EQ(fc.transient_rate, 0.2);
    EXPECT_EQ(fc.blackout_period_ns, 50000000u);
    EXPECT_EQ(fc.blackout_duration_ns, 15000000u);
    EXPECT_EQ(fc.sample_drop_rate, 0.05);
    EXPECT_TRUE(fc.any_enabled());
}

TEST(FaultScenarios, AllNamedScenariosValidate)
{
    for (const auto name : memsim::fault_scenario_names()) {
        const auto fc = memsim::make_fault_scenario(name, 123);
        fc.validate();
        EXPECT_EQ(fc.any_enabled(), name != "none") << name;
    }
}

TEST(FaultScenarios, AbortStormValidatesButStaysOutOfTheDefaultSweep)
{
    // abort_storm only has teeth under --tx-migration, so it must build
    // and validate but stay out of fault_scenario_names(): the default
    // bench sweeps (and their byte-identical goldens) never see it.
    const auto fc = memsim::make_fault_scenario("abort_storm", 123);
    fc.validate();
    EXPECT_TRUE(fc.any_enabled());
    EXPECT_GT(fc.write_storm_rate, 0.0);
    EXPECT_GT(fc.write_storm_period_ns, 0u);
    for (const auto name : memsim::fault_scenario_names())
        EXPECT_NE(name, "abort_storm");
}

TEST(WriteStormFaults, StormRateIsAPureWindowFunction)
{
    const auto fc = memsim::make_fault_scenario("abort_storm", 5);
    FaultInjector a(fc, 64);
    FaultInjector b(fc, 64);
    bool in_storm = false;
    bool out_of_storm = false;
    for (SimTimeNs t = 0; t < 4 * fc.write_storm_period_ns; t += 500000) {
        const double rate = a.tx_write_storm_rate(t);
        // Pure function of (seed, time): a replay agrees at every point.
        EXPECT_EQ(rate, b.tx_write_storm_rate(t)) << t;
        if (rate > 0.0) {
            EXPECT_EQ(rate, fc.write_storm_rate) << t;
            in_storm = true;
        } else {
            out_of_storm = true;
        }
    }
    // Duty cycle 8/20 ms: a 500 us walk over four periods sees both.
    EXPECT_TRUE(in_storm);
    EXPECT_TRUE(out_of_storm);
    // Reading the schedule consumes no draws (replay safety).
    EXPECT_EQ(a.draws(), 0u);
}

TEST(WriteStormFaults, AbortStormReplayIsDeterministic)
{
    // Same fault seed, same tx seed, same call sequence: the storm's
    // abort schedule replays bit-for-bit, and it actually aborts.
    auto run = [] {
        TieredMachine m(small_machine(4, 12));
        m.install_faults(memsim::make_fault_scenario("abort_storm", 9));
        memsim::TxConfig tx;
        tx.enabled = true;
        tx.seed = 3;
        m.install_tx(tx);
        m.prefault_range(0, 12);
        for (int round = 0; round < 400; ++round) {
            if (!m.tx_page_inflight(0)) {
                (void)m.migrate(0,
                                memsim::other_tier(m.tier_of(0)));
            }
            m.access(0);
            m.advance(100000);
            (void)m.poll_tx();
        }
        return std::tuple{m.totals().tx_opened, m.totals().tx_committed,
                          m.totals().tx_aborted, m.totals().tx_retries,
                          m.tx_write_draws(), m.tx_write_hits(), m.now()};
    };
    const auto a = run();
    EXPECT_EQ(a, run());
    EXPECT_GT(std::get<2>(a), 0u) << "the storm never aborted anything";
}

TEST(MigrateStatusNames, AllDistinct)
{
    EXPECT_EQ(memsim::migrate_status_name(MigrateStatus::kOk), "ok");
    EXPECT_EQ(memsim::migrate_status_name(MigrateStatus::kPagePinned),
              "page_pinned");
    EXPECT_EQ(memsim::migrate_status_name(MigrateStatus::kCopyAborted),
              "copy_aborted");
    EXPECT_EQ(memsim::migrate_status_name(MigrateStatus::kDstContended),
              "dst_contended");
    EXPECT_EQ(memsim::migrate_status_name(MigrateStatus::kNoFreeSlot),
              "no_free_slot");
}

}  // namespace
}  // namespace artmem
