/**
 * @file
 * Integration tests of the simulation engine, experiment helpers, and
 * cross-module behaviour (workload -> machine -> policy -> metrics).
 */
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/registry.hpp"
#include "workloads/simple.hpp"

namespace artmem::sim {
namespace {

constexpr Bytes kPage = 2ull << 20;

TEST(Engine, RuntimeMatchesAccessLatencies)
{
    // All-fast footprint, no migrations: runtime == accesses * 92 ns.
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 16 * kPage;
    cfg.tiers[0].capacity = 32 * kPage;
    cfg.tiers[1].capacity = 32 * kPage;
    memsim::TieredMachine machine(cfg);
    workloads::SequentialScan gen(16 * kPage, kPage, 100000);
    auto policy = make_policy("static");
    EngineConfig engine;
    const auto r = run_simulation(gen, *policy, machine, engine);
    EXPECT_EQ(r.accesses, 100000u);
    EXPECT_EQ(r.runtime_ns, 100000u * 92u);
    EXPECT_DOUBLE_EQ(r.fast_ratio, 1.0);
}

TEST(Engine, PrefaultAllocatesInAddressOrder)
{
    memsim::MachineConfig cfg;
    cfg.page_size = kPage;
    cfg.address_space = 8 * kPage;
    cfg.tiers[0].capacity = 4 * kPage;
    cfg.tiers[1].capacity = 8 * kPage;
    memsim::TieredMachine machine(cfg);
    // Workload touches only high pages; with prefault the low pages
    // still claim the fast tier first.
    workloads::UniformRandom gen(8 * kPage, kPage, 1000, 1);
    auto policy = make_policy("static");
    EngineConfig engine;
    run_simulation(gen, *policy, machine, engine);
    EXPECT_EQ(machine.tier_of(0), memsim::Tier::kFast);
    EXPECT_EQ(machine.tier_of(3), memsim::Tier::kFast);
    EXPECT_EQ(machine.tier_of(4), memsim::Tier::kSlow);
}

TEST(Engine, TimelineRecordsIntervals)
{
    RunSpec spec;
    spec.workload = "s1";
    spec.policy = "static";
    spec.accesses = 500000;
    spec.engine.record_timeline = true;
    const auto r = run_experiment(spec);
    ASSERT_GT(r.timeline.size(), 2u);
    std::uint64_t total = 0;
    SimTimeNs last = 0;
    for (const auto& iv : r.timeline) {
        EXPECT_GE(iv.end_time, last);
        last = iv.end_time;
        total += iv.accesses;
    }
    EXPECT_EQ(total, r.accesses);
}

TEST(Engine, PebsSamplesProportionalToAccesses)
{
    RunSpec spec;
    spec.workload = "s3";
    spec.policy = "static";
    spec.accesses = 400000;
    const auto r = run_experiment(spec);
    EXPECT_EQ(r.pebs_recorded, 400000u / spec.engine.pebs.period);
    EXPECT_EQ(r.pebs_dropped, 0u);
}

TEST(Experiment, PaperRatiosAreSix)
{
    const auto ratios = paper_ratios();
    ASSERT_EQ(ratios.size(), 6u);
    EXPECT_EQ(ratios.front().label(), "2:1");
    EXPECT_EQ(ratios.back().label(), "1:16");
    EXPECT_NEAR(ratios[1].fast_fraction(), 0.5, 1e-12);
}

TEST(Experiment, MachineConfigSizesFromRatio)
{
    const auto cfg = make_machine_config(32ull << 30, RatioSpec{1, 1});
    EXPECT_EQ(cfg.tiers[0].capacity, 16ull << 30);
    EXPECT_GE(cfg.tiers[1].capacity, 32ull << 30);
    const auto cfg2 = make_machine_config(32ull << 30, RatioSpec{1, 16});
    // ~1.88 GiB fast tier, page aligned.
    EXPECT_NEAR(static_cast<double>(cfg2.tiers[0].capacity) / (1ull << 30),
                32.0 / 17.0, 0.01);
}

TEST(Experiment, ExplicitFastBytesOverride)
{
    const auto cfg = make_machine_config(100ull << 30, Bytes{54ull << 30});
    EXPECT_EQ(cfg.tiers[0].capacity, 54ull << 30);
}

TEST(Experiment, EndToEndArtMemBeatsStaticOnSkew)
{
    RunSpec spec;
    spec.workload = "s1";
    spec.accesses = 4000000;
    spec.policy = "static";
    const auto base = run_experiment(spec);
    spec.policy = "artmem";
    const auto art = run_experiment(spec);
    EXPECT_LT(art.runtime_ns, base.runtime_ns);
    EXPECT_GT(art.fast_ratio, base.fast_ratio + 0.3);
}

TEST(Experiment, DeterministicAcrossRepeats)
{
    RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "memtis";
    spec.accesses = 500000;
    const auto a = run_experiment(spec);
    const auto b = run_experiment(spec);
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_EQ(a.totals.migrated_pages(), b.totals.migrated_pages());
}

class EveryPolicyOnEveryPattern
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(EveryPolicyOnEveryPattern, RunsToCompletion)
{
    // Smoke matrix: no policy may hang, crash, or corrupt accounting on
    // any synthetic pattern.
    RunSpec spec;
    spec.workload = std::get<0>(GetParam());
    spec.policy = std::get<1>(GetParam());
    spec.accesses = 300000;
    const auto r = run_experiment(spec);
    EXPECT_EQ(r.accesses, 300000u);
    EXPECT_GE(r.fast_ratio, 0.0);
    EXPECT_LE(r.fast_ratio, 1.0);
    EXPECT_GT(r.runtime_ns, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryPolicyOnEveryPattern,
    ::testing::Combine(
        ::testing::Values("s1", "s2", "s3", "s4"),
        ::testing::Values("static", "autonuma", "tpp", "autotiering",
                          "nimble", "multiclock", "memtis", "tiering08",
                          "artmem")),
    [](const auto& suite_info) {
        return std::get<0>(suite_info.param) + "_" +
               std::get<1>(suite_info.param);
    });

}  // namespace
}  // namespace artmem::sim
