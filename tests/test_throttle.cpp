/**
 * @file
 * Unit tests for the adaptive scan throttle shared by the hint-fault
 * policies (the numa_scan_period adaptation analogue).
 */
#include <gtest/gtest.h>

#include "policies/scan_throttle.hpp"

namespace artmem::policies {
namespace {

TEST(ScanThrottle, StartsAtBaseFraction)
{
    ScanThrottle t(0.25, 100);
    EXPECT_DOUBLE_EQ(t.fraction(), 0.25);
}

TEST(ScanThrottle, HalvesUnderFaultStorm)
{
    ScanThrottle t(0.25, 100);
    for (int i = 0; i < 300; ++i)
        t.on_fault();
    EXPECT_DOUBLE_EQ(t.tick(), 0.125);
}

TEST(ScanThrottle, RecoversWhenQuiet)
{
    ScanThrottle t(0.25, 100);
    for (int i = 0; i < 1000; ++i)
        t.on_fault();
    t.tick();  // halved
    EXPECT_LT(t.fraction(), 0.25);
    // Quiet windows: doubles back up to (but not beyond) the base.
    for (int w = 0; w < 10; ++w)
        t.tick();
    EXPECT_DOUBLE_EQ(t.fraction(), 0.25);
}

TEST(ScanThrottle, NeverBelowFloor)
{
    ScanThrottle t(0.25, 10);
    for (int w = 0; w < 100; ++w) {
        for (int i = 0; i < 10000; ++i)
            t.on_fault();
        t.tick();
    }
    EXPECT_GE(t.fraction(), 0.25 / 4096.0);
}

TEST(ScanThrottle, StableInsideTargetBand)
{
    ScanThrottle t(0.25, 100);
    for (int w = 0; w < 20; ++w) {
        for (int i = 0; i < 100; ++i)  // exactly on target
            t.on_fault();
        EXPECT_DOUBLE_EQ(t.tick(), 0.25);
    }
}

class ThrottleConvergence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ThrottleConvergence, FaultRateSettlesNearTarget)
{
    // Property: with fault rate proportional to the scan fraction
    // (faults = fraction * population), the controller settles where
    // faults are inside [target/2, 2*target].
    const std::uint64_t population = GetParam();
    ScanThrottle t(1.0, 100);
    std::uint64_t faults = 0;
    for (int w = 0; w < 64; ++w) {
        faults = static_cast<std::uint64_t>(t.fraction() *
                                            static_cast<double>(population));
        for (std::uint64_t i = 0; i < faults; ++i)
            t.on_fault();
        t.tick();
    }
    // Either the controller floors out (population too small to ever
    // reach target, or so large even the floor exceeds the band) or the
    // fault rate sits inside the band with one doubling of slack.
    const auto floor_faults = static_cast<std::uint64_t>(
        (1.0 / 4096.0) * static_cast<double>(population));
    if (population >= 100) {
        EXPECT_LE(faults, std::max<std::uint64_t>(2 * 100u * 2,
                                                  2 * floor_faults));
    }
}

INSTANTIATE_TEST_SUITE_P(Populations, ThrottleConvergence,
                         ::testing::Values(50, 1000, 100000, 10000000));

}  // namespace
}  // namespace artmem::policies
