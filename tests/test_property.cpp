/**
 * @file
 * Property tests for the hot-path containers (DESIGN.md §9).
 *
 * LruLists and RingBuffer sit on the per-sample and per-access paths
 * and were inlined for the hot-path overhaul, so they get randomized
 * operation sequences checked against trivially correct standard-
 * library models: four std::lists (+ a referenced-bit map) for
 * LruLists, a bounded std::deque for RingBuffer. Each trial prints its
 * seed via SCOPED_TRACE so any failure is replayable by pinning
 * kBaseSeed to the reported value.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <list>
#include <vector>

#include "lru/lru_lists.hpp"
#include "memsim/ring_buffer.hpp"
#include "util/rng.hpp"

namespace artmem {
namespace {

using lru::ListId;
using lru::LruLists;
using memsim::RingBuffer;

constexpr std::uint64_t kBaseSeed = 0xa11ce5ee;

// ---------------------------------------------------------------------
// LruLists vs four std::lists.
// ---------------------------------------------------------------------

/** Naive mirror of LruLists: std::lists hold head -> tail order. */
struct LruModel {
    std::list<PageId> lists[4];
    std::vector<bool> referenced;

    explicit LruModel(std::size_t pages) : referenced(pages, false) {}

    int
    where(PageId page) const
    {
        for (int l = 0; l < 4; ++l)
            for (const PageId p : lists[l])
                if (p == page)
                    return l;
        return 4;  // kNone
    }

    void
    remove(PageId page)
    {
        const int l = where(page);
        if (l != 4)
            lists[l].remove(page);
    }

    void
    touch(PageId page, memsim::Tier tier)
    {
        const int active = tier == memsim::Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        const int current = where(page);
        if (current == 4) {
            referenced[page] = true;
            lists[inactive].push_front(page);
            return;
        }
        lists[current].remove(page);
        if (current == 0 || current == 2) {
            referenced[page] = true;
            lists[active].push_front(page);
        } else if (referenced[page]) {
            referenced[page] = false;
            lists[active].push_front(page);
        } else {
            referenced[page] = true;
            lists[inactive].push_front(page);
        }
    }

    std::size_t
    age_active(memsim::Tier tier, std::size_t scan_count)
    {
        const int active = tier == memsim::Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        std::size_t deactivated = 0;
        for (std::size_t i = 0; i < scan_count && !lists[active].empty();
             ++i) {
            const PageId page = lists[active].back();
            lists[active].pop_back();
            if (referenced[page]) {
                referenced[page] = false;
                lists[active].push_front(page);
            } else {
                lists[inactive].push_front(page);
                ++deactivated;
            }
        }
        return deactivated;
    }

    std::size_t
    scan_inactive(memsim::Tier tier, std::size_t scan_count,
                  std::vector<PageId>& candidates)
    {
        // LruLists::scan_inactive walks tail -> head via prev pointers
        // saved before any rotation; since only the visited page itself
        // can move, a tail -> head snapshot taken up front visits the
        // same pages in the same order.
        const int active = tier == memsim::Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        std::vector<PageId> order(lists[inactive].rbegin(),
                                  lists[inactive].rend());
        std::size_t produced = 0;
        for (std::size_t i = 0; i < scan_count && i < order.size(); ++i) {
            const PageId page = order[i];
            if (referenced[page]) {
                referenced[page] = false;
                lists[inactive].remove(page);
                lists[active].push_front(page);
            } else {
                candidates.push_back(page);
                ++produced;
            }
        }
        return produced;
    }
};

void
expect_lru_equal(const LruLists& lists, const LruModel& model)
{
    for (int l = 0; l < 4; ++l) {
        const auto list = static_cast<ListId>(l);
        ASSERT_EQ(lists.size(list), model.lists[l].size()) << "list " << l;
        // Forward walk head -> tail.
        PageId page = lists.head(list);
        for (const PageId expected : model.lists[l]) {
            ASSERT_EQ(page, expected) << "list " << l;
            ASSERT_EQ(lists.where(page), list);
            ASSERT_EQ(lists.referenced(page), model.referenced[page]);
            page = lists.next(page);
        }
        ASSERT_EQ(page, kInvalidPage) << "list " << l;
        // Backward walk tail -> head checks prev_ links too.
        page = lists.tail(list);
        for (auto it = model.lists[l].rbegin(); it != model.lists[l].rend();
             ++it) {
            ASSERT_EQ(page, *it) << "list " << l;
            page = lists.prev(page);
        }
        ASSERT_EQ(page, kInvalidPage) << "list " << l;
    }
}

TEST(Property, LruListsMatchStdListModel)
{
    constexpr std::size_t kPages = 96;
    for (int trial = 0; trial < 24; ++trial) {
        const std::uint64_t seed =
            derive_seed(kBaseSeed, static_cast<std::uint64_t>(trial));
        SCOPED_TRACE(testing::Message()
                     << "replay seed=" << seed << " (trial " << trial
                     << ")");
        Rng rng(seed);
        LruLists lists(kPages);
        LruModel model(kPages);
        for (int op = 0; op < 2000; ++op) {
            const auto page =
                static_cast<PageId>(rng.next_below(kPages));
            const auto tier = rng.next_bool(0.5) ? memsim::Tier::kFast
                                                 : memsim::Tier::kSlow;
            switch (rng.next_below(8)) {
            case 0:
            case 1:
            case 2:
            case 3:
                lists.touch(page, tier);
                model.touch(page, tier);
                break;
            case 4: {
                // Unlinked insert at either end of a random list.
                if (lists.where(page) != ListId::kNone)
                    break;
                const auto list =
                    static_cast<ListId>(rng.next_below(4));
                if (rng.next_bool(0.5)) {
                    lists.insert_head(page, list);
                    model.lists[static_cast<int>(list)].push_front(page);
                } else {
                    lists.insert_tail(page, list);
                    model.lists[static_cast<int>(list)].push_back(page);
                }
                break;
            }
            case 5:
                lists.remove(page);
                model.remove(page);
                break;
            case 6: {
                const std::size_t scans = 1 + rng.next_below(16);
                ASSERT_EQ(lists.age_active(tier, scans),
                          model.age_active(tier, scans));
                break;
            }
            case 7: {
                const std::size_t scans = 1 + rng.next_below(16);
                std::vector<PageId> got;
                std::vector<PageId> want;
                ASSERT_EQ(lists.scan_inactive(tier, scans, got),
                          model.scan_inactive(tier, scans, want));
                ASSERT_EQ(got, want);
                break;
            }
            }
            if (op % 250 == 249)
                expect_lru_equal(lists, model);
            if (testing::Test::HasFailure())
                return;
        }
        expect_lru_equal(lists, model);
    }
}

// ---------------------------------------------------------------------
// RingBuffer vs a bounded std::deque.
// ---------------------------------------------------------------------

TEST(Property, RingBufferMatchesDequeModel)
{
    for (int trial = 0; trial < 24; ++trial) {
        const std::uint64_t seed = derive_seed(
            kBaseSeed ^ 0x5151ull, static_cast<std::uint64_t>(trial));
        SCOPED_TRACE(testing::Message()
                     << "replay seed=" << seed << " (trial " << trial
                     << ")");
        Rng rng(seed);
        const std::size_t requested = 1 + rng.next_below(96);
        RingBuffer<std::uint64_t> ring(requested);
        std::size_t cap = 1;
        while (cap < requested)
            cap <<= 1;
        ASSERT_EQ(ring.capacity(), cap);

        std::deque<std::uint64_t> model;
        std::uint64_t model_dropped = 0;
        std::uint64_t next_value = 0;
        for (int op = 0; op < 4000; ++op) {
            switch (rng.next_below(4)) {
            case 0:
            case 1: {
                // Push burst — overflows on purpose ("blackout" drain
                // pauses leave the producer running).
                const std::size_t burst = 1 + rng.next_below(cap + 8);
                for (std::size_t i = 0; i < burst; ++i) {
                    const bool pushed = ring.push(next_value);
                    if (model.size() < cap) {
                        ASSERT_TRUE(pushed);
                        model.push_back(next_value);
                    } else {
                        ASSERT_FALSE(pushed);
                        ++model_dropped;
                    }
                    ++next_value;
                }
                break;
            }
            case 2: {
                auto got = ring.pop();
                if (model.empty()) {
                    ASSERT_FALSE(got.has_value());
                } else {
                    ASSERT_TRUE(got.has_value());
                    ASSERT_EQ(*got, model.front());
                    model.pop_front();
                }
                break;
            }
            case 3: {
                const std::size_t max_items = rng.next_below(cap + 2);
                std::vector<std::uint64_t> got;
                ring.drain(got, max_items);
                std::vector<std::uint64_t> want;
                while (want.size() < max_items && !model.empty()) {
                    want.push_back(model.front());
                    model.pop_front();
                }
                ASSERT_EQ(got, want);
                break;
            }
            }
            ASSERT_EQ(ring.size(), model.size());
            ASSERT_EQ(ring.dropped(), model_dropped);
            if (testing::Test::HasFailure())
                return;
        }
    }
}

}  // namespace
}  // namespace artmem
