/**
 * @file
 * Property tests for the hot-path containers (DESIGN.md §9).
 *
 * LruLists and RingBuffer sit on the per-sample and per-access paths
 * and were inlined for the hot-path overhaul, so they get randomized
 * operation sequences checked against trivially correct standard-
 * library models: four std::lists (+ a referenced-bit map) for
 * LruLists, a bounded std::deque for RingBuffer. The sharded access
 * pipeline (DESIGN.md §12) gets the same treatment: random batches,
 * trap storms, and transactional abort storms against the batched
 * machine as the model, fuzzed over shard counts and both merge
 * flavours (serial epoch merge vs parallel per-lane merge), plus a
 * full-run golden diff: shard-count × decision-interval draws whose
 * CSV-serialized results must match the unsharded (--shards 0) run
 * byte for byte. Each trial prints its seed via SCOPED_TRACE so any
 * failure is replayable by pinning kBaseSeed to the reported value.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <list>
#include <sstream>
#include <string>
#include <vector>

#include "lru/lru_lists.hpp"
#include "memsim/fault_injector.hpp"
#include "memsim/pebs.hpp"
#include "memsim/ring_buffer.hpp"
#include "memsim/sharded_access.hpp"
#include "memsim/tiered_machine.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"
#include "verify/invariant_checker.hpp"

namespace artmem {
namespace {

using lru::ListId;
using lru::LruLists;
using memsim::RingBuffer;

constexpr std::uint64_t kBaseSeed = 0xa11ce5ee;

// ---------------------------------------------------------------------
// LruLists vs four std::lists.
// ---------------------------------------------------------------------

/** Naive mirror of LruLists: std::lists hold head -> tail order. */
struct LruModel {
    std::list<PageId> lists[4];
    std::vector<bool> referenced;

    explicit LruModel(std::size_t pages) : referenced(pages, false) {}

    int
    where(PageId page) const
    {
        for (int l = 0; l < 4; ++l)
            for (const PageId p : lists[l])
                if (p == page)
                    return l;
        return 4;  // kNone
    }

    void
    remove(PageId page)
    {
        const int l = where(page);
        if (l != 4)
            lists[l].remove(page);
    }

    void
    touch(PageId page, memsim::Tier tier)
    {
        const int active = tier == memsim::Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        const int current = where(page);
        if (current == 4) {
            referenced[page] = true;
            lists[inactive].push_front(page);
            return;
        }
        lists[current].remove(page);
        if (current == 0 || current == 2) {
            referenced[page] = true;
            lists[active].push_front(page);
        } else if (referenced[page]) {
            referenced[page] = false;
            lists[active].push_front(page);
        } else {
            referenced[page] = true;
            lists[inactive].push_front(page);
        }
    }

    std::size_t
    age_active(memsim::Tier tier, std::size_t scan_count)
    {
        const int active = tier == memsim::Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        std::size_t deactivated = 0;
        for (std::size_t i = 0; i < scan_count && !lists[active].empty();
             ++i) {
            const PageId page = lists[active].back();
            lists[active].pop_back();
            if (referenced[page]) {
                referenced[page] = false;
                lists[active].push_front(page);
            } else {
                lists[inactive].push_front(page);
                ++deactivated;
            }
        }
        return deactivated;
    }

    std::size_t
    scan_inactive(memsim::Tier tier, std::size_t scan_count,
                  std::vector<PageId>& candidates)
    {
        // LruLists::scan_inactive walks tail -> head via prev pointers
        // saved before any rotation; since only the visited page itself
        // can move, a tail -> head snapshot taken up front visits the
        // same pages in the same order.
        const int active = tier == memsim::Tier::kFast ? 0 : 2;
        const int inactive = active + 1;
        std::vector<PageId> order(lists[inactive].rbegin(),
                                  lists[inactive].rend());
        std::size_t produced = 0;
        for (std::size_t i = 0; i < scan_count && i < order.size(); ++i) {
            const PageId page = order[i];
            if (referenced[page]) {
                referenced[page] = false;
                lists[inactive].remove(page);
                lists[active].push_front(page);
            } else {
                candidates.push_back(page);
                ++produced;
            }
        }
        return produced;
    }
};

void
expect_lru_equal(const LruLists& lists, const LruModel& model)
{
    for (int l = 0; l < 4; ++l) {
        const auto list = static_cast<ListId>(l);
        ASSERT_EQ(lists.size(list), model.lists[l].size()) << "list " << l;
        // Forward walk head -> tail.
        PageId page = lists.head(list);
        for (const PageId expected : model.lists[l]) {
            ASSERT_EQ(page, expected) << "list " << l;
            ASSERT_EQ(lists.where(page), list);
            ASSERT_EQ(lists.referenced(page), model.referenced[page]);
            page = lists.next(page);
        }
        ASSERT_EQ(page, kInvalidPage) << "list " << l;
        // Backward walk tail -> head checks prev_ links too.
        page = lists.tail(list);
        for (auto it = model.lists[l].rbegin(); it != model.lists[l].rend();
             ++it) {
            ASSERT_EQ(page, *it) << "list " << l;
            page = lists.prev(page);
        }
        ASSERT_EQ(page, kInvalidPage) << "list " << l;
    }
}

TEST(Property, LruListsMatchStdListModel)
{
    constexpr std::size_t kPages = 96;
    for (int trial = 0; trial < 24; ++trial) {
        const std::uint64_t seed =
            derive_seed(kBaseSeed, static_cast<std::uint64_t>(trial));
        SCOPED_TRACE(testing::Message()
                     << "replay seed=" << seed << " (trial " << trial
                     << ")");
        Rng rng(seed);
        LruLists lists(kPages);
        LruModel model(kPages);
        for (int op = 0; op < 2000; ++op) {
            const auto page =
                static_cast<PageId>(rng.next_below(kPages));
            const auto tier = rng.next_bool(0.5) ? memsim::Tier::kFast
                                                 : memsim::Tier::kSlow;
            switch (rng.next_below(8)) {
            case 0:
            case 1:
            case 2:
            case 3:
                lists.touch(page, tier);
                model.touch(page, tier);
                break;
            case 4: {
                // Unlinked insert at either end of a random list.
                if (lists.where(page) != ListId::kNone)
                    break;
                const auto list =
                    static_cast<ListId>(rng.next_below(4));
                if (rng.next_bool(0.5)) {
                    lists.insert_head(page, list);
                    model.lists[static_cast<int>(list)].push_front(page);
                } else {
                    lists.insert_tail(page, list);
                    model.lists[static_cast<int>(list)].push_back(page);
                }
                break;
            }
            case 5:
                lists.remove(page);
                model.remove(page);
                break;
            case 6: {
                const std::size_t scans = 1 + rng.next_below(16);
                ASSERT_EQ(lists.age_active(tier, scans),
                          model.age_active(tier, scans));
                break;
            }
            case 7: {
                const std::size_t scans = 1 + rng.next_below(16);
                std::vector<PageId> got;
                std::vector<PageId> want;
                ASSERT_EQ(lists.scan_inactive(tier, scans, got),
                          model.scan_inactive(tier, scans, want));
                ASSERT_EQ(got, want);
                break;
            }
            }
            if (op % 250 == 249)
                expect_lru_equal(lists, model);
            if (testing::Test::HasFailure())
                return;
        }
        expect_lru_equal(lists, model);
    }
}

// ---------------------------------------------------------------------
// RingBuffer vs a bounded std::deque.
// ---------------------------------------------------------------------

TEST(Property, RingBufferMatchesDequeModel)
{
    for (int trial = 0; trial < 24; ++trial) {
        const std::uint64_t seed = derive_seed(
            kBaseSeed ^ 0x5151ull, static_cast<std::uint64_t>(trial));
        SCOPED_TRACE(testing::Message()
                     << "replay seed=" << seed << " (trial " << trial
                     << ")");
        Rng rng(seed);
        const std::size_t requested = 1 + rng.next_below(96);
        RingBuffer<std::uint64_t> ring(requested);
        std::size_t cap = 1;
        while (cap < requested)
            cap <<= 1;
        ASSERT_EQ(ring.capacity(), cap);

        std::deque<std::uint64_t> model;
        std::uint64_t model_dropped = 0;
        std::uint64_t next_value = 0;
        for (int op = 0; op < 4000; ++op) {
            switch (rng.next_below(4)) {
            case 0:
            case 1: {
                // Push burst — overflows on purpose ("blackout" drain
                // pauses leave the producer running).
                const std::size_t burst = 1 + rng.next_below(cap + 8);
                for (std::size_t i = 0; i < burst; ++i) {
                    const bool pushed = ring.push(next_value);
                    if (model.size() < cap) {
                        ASSERT_TRUE(pushed);
                        model.push_back(next_value);
                    } else {
                        ASSERT_FALSE(pushed);
                        ++model_dropped;
                    }
                    ++next_value;
                }
                break;
            }
            case 2: {
                auto got = ring.pop();
                if (model.empty()) {
                    ASSERT_FALSE(got.has_value());
                } else {
                    ASSERT_TRUE(got.has_value());
                    ASSERT_EQ(*got, model.front());
                    model.pop_front();
                }
                break;
            }
            case 3: {
                const std::size_t max_items = rng.next_below(cap + 2);
                std::vector<std::uint64_t> got;
                ring.drain(got, max_items);
                std::vector<std::uint64_t> want;
                while (want.size() < max_items && !model.empty()) {
                    want.push_back(model.front());
                    model.pop_front();
                }
                ASSERT_EQ(got, want);
                break;
            }
            }
            ASSERT_EQ(ring.size(), model.size());
            ASSERT_EQ(ring.dropped(), model_dropped);
            if (testing::Test::HasFailure())
                return;
        }
    }
}

// ---------------------------------------------------------------------
// Sharded access pipeline vs the batched machine, fuzzed over shard
// counts (DESIGN.md §12).
// ---------------------------------------------------------------------

TEST(Property, ShardedPipelineMatchesBatchedMachineAcrossShardCounts)
{
    // Each trial: one batched reference machine and one machine fed
    // through ShardedAccessEngine with a randomly drawn shard count
    // and merge flavour (serial epoch merge or parallel per-lane
    // merge), random batch shapes, random trap arming (with a
    // re-entrant promoting handler, forcing legacy tails), and — on
    // half the trials — the transactional engine under an abort-storm
    // fault scenario. Full observable state must match after every
    // batch; parallel trials publish their per-shard sampler streams
    // via merge_boundary() before each drain, as the engine loop does.
    constexpr std::size_t kPages = 768;
    memsim::MachineConfig cfg;
    cfg.page_size = 2ull << 20;
    cfg.address_space = kPages * cfg.page_size;
    cfg.tiers[0].capacity = 192 * cfg.page_size;
    cfg.tiers[1].capacity = kPages * cfg.page_size;

    const unsigned shard_counts[] = {1, 2, 3, 8};
    for (int trial = 0; trial < 12; ++trial) {
        const std::uint64_t seed = derive_seed(kBaseSeed, 7000 + trial);
        SCOPED_TRACE(testing::Message()
                     << "trial=" << trial << " seed=" << seed);
        Rng rng(seed);
        const unsigned shards =
            shard_counts[rng.next_below(std::size(shard_counts))];
        const bool storm = rng.next_bool(0.5);
        const bool parallel = rng.next_bool(0.5);
        SCOPED_TRACE(testing::Message()
                     << "shards=" << shards << " storm=" << storm
                     << " parallel=" << parallel);

        memsim::TieredMachine reference(cfg);
        memsim::TieredMachine machine(cfg);
        if (storm) {
            const auto faults =
                memsim::make_fault_scenario("abort_storm", seed);
            reference.install_faults(faults);
            machine.install_faults(faults);
            memsim::TxConfig tx;
            tx.enabled = true;
            reference.install_tx(tx);
            machine.install_tx(tx);
        }
        reference.set_fault_handler([&](PageId page, memsim::Tier tier) {
            if (tier == memsim::Tier::kSlow)
                (void)reference.migrate(page, memsim::Tier::kFast);
        });
        machine.set_fault_handler([&](PageId page, memsim::Tier tier) {
            if (tier == memsim::Tier::kSlow)
                (void)machine.migrate(page, memsim::Tier::kFast);
        });
        memsim::ShardedAccessEngine engine(machine,
                                           {.shards = shards,
                                            .seed = seed,
                                            .audit = true,
                                            .parallel_merge = parallel});

        const memsim::PebsSampler::Config sampler_cfg{
            .period = 5, .buffer_capacity = 1 << 8};
        memsim::PebsSampler ref_sampler(sampler_cfg);
        memsim::PebsSampler sh_sampler(sampler_cfg);
        std::uint64_t ref_suppressed = 0;
        std::uint64_t sh_suppressed = 0;

        std::vector<PageId> batch;
        std::vector<memsim::PebsSample> ref_drained;
        std::vector<memsim::PebsSample> sh_drained;
        for (int round = 0; round < 48; ++round) {
            SCOPED_TRACE(testing::Message() << "round=" << round);
            const std::size_t n = 1 + rng.next_below(513);
            // Every fourth round draws only from already-allocated,
            // untrapped pages: with no first touches and no armed
            // traps in the batch, parallel trials take the per-lane
            // merge instead of the serial fallback (tx-marked pages
            // under a storm can still force the fallback — also worth
            // fuzzing). Both machines are identical, so querying the
            // reference is query-order neutral.
            const bool clean = round > 0 && round % 4 == 0;
            batch.clear();
            for (std::size_t i = 0; i < n; ++i) {
                const bool hot = rng.next_bool(0.6);
                auto page = static_cast<PageId>(
                    hot ? rng.next_below(96) : rng.next_below(kPages));
                if (clean) {
                    for (int tries = 0;
                         tries < 64 && (!reference.is_allocated(page) ||
                                        reference.has_trap(page));
                         ++tries)
                        page = static_cast<PageId>(rng.next_below(96));
                }
                batch.push_back(page);
            }
            if (reference.faults_enabled()) {
                reference.access_batch_faulted(batch.data(), n,
                                               ref_sampler,
                                               ref_suppressed);
                engine.process_faulted(batch.data(), n, sh_sampler,
                                       sh_suppressed);
            } else {
                reference.access_batch(batch.data(), n, ref_sampler);
                engine.process(batch.data(), n, sh_sampler);
            }

            // Inter-batch churn: migrations, trap storms, tx polls.
            for (int i = 0; i < 6; ++i) {
                const auto page =
                    static_cast<PageId>(rng.next_below(kPages));
                if (!reference.is_allocated(page))
                    continue;
                const auto dst =
                    reference.tier_of(page) == memsim::Tier::kFast
                        ? memsim::Tier::kSlow
                        : memsim::Tier::kFast;
                ASSERT_EQ(reference.migrate(page, dst).status,
                          machine.migrate(page, dst).status);
            }
            for (int i = 0; i < 12; ++i) {
                const auto page =
                    static_cast<PageId>(rng.next_below(kPages));
                reference.set_trap(page);
                machine.set_trap(page);
            }
            if (storm && round % 4 == 3) {
                ASSERT_EQ(reference.poll_tx(), machine.poll_tx());
            }

            // Boundary: publish the parallel trials' pending per-shard
            // records before any sampler accounting is compared (no-op
            // for serial trials).
            engine.merge_boundary(sh_sampler);
            ASSERT_EQ(reference.now(), machine.now());
            ASSERT_EQ(ref_suppressed, sh_suppressed);
            ASSERT_EQ(ref_sampler.recorded(), sh_sampler.recorded());
            ASSERT_EQ(ref_sampler.dropped(), sh_sampler.dropped());
            const auto& rt = reference.totals();
            const auto& mt = machine.totals();
            ASSERT_EQ(rt.accesses[0], mt.accesses[0]);
            ASSERT_EQ(rt.accesses[1], mt.accesses[1]);
            ASSERT_EQ(rt.hint_faults, mt.hint_faults);
            ASSERT_EQ(rt.tx_opened, mt.tx_opened);
            ASSERT_EQ(rt.tx_committed, mt.tx_committed);
            ASSERT_EQ(rt.tx_aborted, mt.tx_aborted);
            ASSERT_EQ(rt.tx_dual_drops, mt.tx_dual_drops);
            for (PageId p = 0; p < kPages; ++p) {
                ASSERT_EQ(reference.is_allocated(p),
                          machine.is_allocated(p))
                    << "page " << p;
                ASSERT_EQ(reference.accessed(p), machine.accessed(p))
                    << "page " << p;
                ASSERT_EQ(reference.has_trap(p), machine.has_trap(p))
                    << "page " << p;
                if (reference.is_allocated(p)) {
                    ASSERT_EQ(reference.tier_of(p), machine.tier_of(p))
                        << "page " << p;
                }
            }
            ref_drained.clear();
            sh_drained.clear();
            ref_sampler.drain(ref_drained, 1 << 12);
            sh_sampler.drain(sh_drained, 1 << 12);
            ASSERT_EQ(ref_drained.size(), sh_drained.size());
            for (std::size_t i = 0; i < ref_drained.size(); ++i) {
                ASSERT_EQ(ref_drained[i].page, sh_drained[i].page);
                ASSERT_EQ(ref_drained[i].tier, sh_drained[i].tier);
            }
            // The cross-shard partition/census invariant must hold at
            // every boundary, tx shadow/dual charges included.
            ASSERT_GT(verify::InvariantChecker::check_shard_partition(
                          machine, engine),
                      0u);
            if (testing::Test::HasFailure())
                return;
        }
        // Clean rounds guarantee all-plain batches when no tx engine
        // can mark pages, so storm-free parallel trials must have
        // exercised the per-lane merge.
        if (parallel && !storm) {
            ASSERT_GT(engine.parallel_merges(), 0u);
        }
    }
}

// ---------------------------------------------------------------------
// Full-run golden diff: shard-count × decision-interval fuzz whose
// CSV-serialized results must match --shards 0 byte for byte.
// ---------------------------------------------------------------------

/**
 * Serialize a RunResult into one CSV blob — every field the sharding
 * contract pins (runtime, counters, PEBS accounting, the per-interval
 * timeline, per-tenant summaries) — so two runs can be compared as
 * bytes, the same way scripts/ci.sh diffs whole `artmem run` outputs.
 */
std::string
result_csv(const sim::RunResult& r)
{
    std::ostringstream os;
    os.precision(17);
    const auto& t = r.totals;
    os << "runtime_ns,accesses,fast_ratio,acc_fast,acc_slow,hint_faults,"
          "promoted,demoted,exchanges,migration_busy_ns,overhead_ns,"
          "failed_no_slot,failed_pinned,failed_transient,failed_contended,"
          "aborted_migration_ns,tx_opened,tx_committed,tx_aborted,"
          "tx_retries,tx_free_flips,tx_dual_drops,tx_dual_reclaims,"
          "failed_tx_busy,pebs_recorded,pebs_dropped,pebs_suppressed\n";
    os << r.runtime_ns << ',' << r.accesses << ',' << r.fast_ratio << ','
       << t.accesses[0] << ',' << t.accesses[1] << ',' << t.hint_faults
       << ',' << t.promoted_pages << ',' << t.demoted_pages << ','
       << t.exchanges << ',' << t.migration_busy_ns << ','
       << t.overhead_ns << ',' << t.failed_no_slot << ','
       << t.failed_pinned << ',' << t.failed_transient << ','
       << t.failed_contended << ',' << t.aborted_migration_ns << ','
       << t.tx_opened << ',' << t.tx_committed << ',' << t.tx_aborted
       << ',' << t.tx_retries << ',' << t.tx_free_flips << ','
       << t.tx_dual_drops << ',' << t.tx_dual_reclaims << ','
       << t.failed_tx_busy << ',' << r.pebs_recorded << ','
       << r.pebs_dropped << ',' << r.pebs_suppressed << '\n';
    for (const auto& iv : r.timeline) {
        os << "interval," << iv.end_time << ',' << iv.accesses << ','
           << iv.fast_ratio << ',' << iv.promoted << ',' << iv.demoted
           << ',' << iv.exchanges << ',' << iv.failed_migrations << ','
           << (iv.sampling_blackout ? 1 : 0) << '\n';
    }
    for (const auto& ten : r.tenants) {
        os << "tenant," << ten.accesses[0] << ',' << ten.accesses[1]
           << ',' << ten.fast_ratio << ',' << ten.samples << ','
           << ten.promoted << ',' << ten.demoted << ','
           << ten.quota_denied << ',' << ten.admission_denied << ','
           << ten.admission_grants << ',' << ten.over_quota_allocs << ','
           << ten.used_fast << ',' << ten.quota << '\n';
    }
    return os.str();
}

TEST(Property, ShardedGoldenCsvMatchesUnshardedAcrossIntervals)
{
    // Fuzz the shard count × decision interval plane under the
    // parallel merge: each trial draws a shard count, a decision
    // interval (which moves the merge/splice boundaries relative to
    // the batch stream), and a policy, cycles through the fault
    // scenarios the merge must survive — none, a transactional abort
    // storm, a PEBS blackout — and requires the CSV-serialized result
    // to match the unsharded (--shards 0) run byte for byte.
    const unsigned shard_counts[] = {1, 2, 3, 5, 8};
    const SimTimeNs intervals[] = {2000000, 5000000, 10000000, 20000000};
    const char* const policies[] = {"artmem", "memtis", "tpp"};
    for (int trial = 0; trial < 9; ++trial) {
        const std::uint64_t seed = derive_seed(kBaseSeed, 9100 + trial);
        Rng rng(seed);
        const unsigned shards =
            shard_counts[rng.next_below(std::size(shard_counts))];
        const SimTimeNs interval =
            intervals[rng.next_below(std::size(intervals))];
        const char* policy = policies[rng.next_below(std::size(policies))];
        const int scenario = trial % 3;  // cycle: every scenario covered
        SCOPED_TRACE(testing::Message()
                     << "trial=" << trial << " seed=" << seed
                     << " shards=" << shards << " interval=" << interval
                     << " policy=" << policy << " scenario=" << scenario);

        sim::RunSpec spec;
        spec.workload = "ycsb";
        spec.policy = policy;
        spec.ratio = {1, 4};
        spec.accesses = 150000;
        spec.seed = seed;
        spec.engine.decision_interval = interval;
        spec.engine.record_timeline = true;
        spec.engine.check_invariants = true;
        if (scenario == 1) {
            spec.engine.faults =
                memsim::make_fault_scenario("abort_storm", seed);
            spec.engine.tx.enabled = true;
        } else if (scenario == 2) {
            spec.engine.faults =
                memsim::make_fault_scenario("blackout", seed);
        }

        auto baseline = spec;
        baseline.engine.shards = 0;
        const auto base_result = sim::run_experiment(baseline);
        if (scenario == 1) {
            ASSERT_GT(base_result.totals.tx_opened, 0u);
        }
        if (scenario == 2) {
            ASSERT_GT(base_result.pebs_suppressed, 0u);
        }

        auto sharded = spec;
        sharded.engine.shards = shards;
        sharded.engine.parallel_merge = true;
        ASSERT_EQ(result_csv(base_result),
                  result_csv(sim::run_experiment(sharded)));
        if (testing::Test::HasFailure())
            return;
    }
}

}  // namespace
}  // namespace artmem
