/**
 * @file
 * Multi-tenant serving tests (DESIGN.md §13): seed-domain isolation,
 * TenantSet layout and scheduling, quota enforcement at the boundary,
 * admission-controller decisions under a seeded hit-ratio drop,
 * per-tenant metric reconciliation against the machine's global
 * totals, and byte-level determinism across --shards.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "memsim/tenant_ledger.hpp"
#include "memsim/tiered_machine.hpp"
#include "sim/experiment.hpp"
#include "tenancy/admission.hpp"
#include "tenancy/tenancy.hpp"
#include "tenancy/tenant_set.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "verify/invariant_checker.hpp"
#include "workloads/simple.hpp"

namespace artmem {
namespace {

using memsim::MachineConfig;
using memsim::MigrateStatus;
using memsim::TenantDecision;
using memsim::TenantLedger;
using memsim::Tier;
using memsim::TieredMachine;
using tenancy::TenancyConfig;
using tenancy::TenantSet;

constexpr Bytes kTestPage = 1ull << 20;

std::unique_ptr<workloads::AccessGenerator>
uniform(Bytes pages, std::uint64_t accesses, std::uint64_t seed)
{
    return std::make_unique<workloads::UniformRandom>(pages * kTestPage,
                                                      kTestPage, accesses,
                                                      seed);
}

std::unique_ptr<workloads::AccessGenerator>
sequential(Bytes pages, std::uint64_t accesses)
{
    return std::make_unique<workloads::SequentialScan>(pages * kTestPage,
                                                       kTestPage, accesses);
}

/** Drain a generator completely. */
std::vector<PageId>
drain(workloads::AccessGenerator& gen)
{
    std::vector<PageId> all;
    std::vector<PageId> buf(97);  // deliberately odd batch size
    std::size_t n = 0;
    while ((n = gen.fill(buf)) > 0)
        all.insert(all.end(), buf.begin(), buf.begin() + n);
    return all;
}

TEST(TenantSeeds, DomainDisjointFromJobsAndShards)
{
    const std::uint64_t base = 42;
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const auto tenant = derive_seed(base, SeedDomain::kTenant, i);
        EXPECT_NE(tenant, derive_seed(base, SeedDomain::kJob, i));
        EXPECT_NE(tenant, derive_seed(base, SeedDomain::kShard, i));
        seen.insert(tenant);
    }
    EXPECT_EQ(seen.size(), 64u);  // no collisions inside the domain
}

TEST(TenantSetLayout, SpansStackDisjointAndAligned)
{
    std::vector<std::unique_ptr<workloads::AccessGenerator>> gens;
    gens.push_back(uniform(3, 100, 1));
    gens.push_back(uniform(5, 200, 2));
    gens.push_back(uniform(7, 300, 3));
    TenantSet set(std::move(gens), {1, 1, 1}, kTestPage, 4, 0);
    EXPECT_EQ(set.tenant_count(), 3u);
    EXPECT_EQ(set.first_page(0), 0u);
    EXPECT_EQ(set.span_pages(0), 3u);
    EXPECT_EQ(set.first_page(1), 3u);
    EXPECT_EQ(set.span_pages(1), 5u);
    EXPECT_EQ(set.first_page(2), 8u);
    EXPECT_EQ(set.span_pages(2), 7u);
    EXPECT_EQ(set.footprint(), 15 * kTestPage);
    EXPECT_EQ(set.total_accesses(), 600u);
    // Every produced access lands inside its tenant's span.
    const auto all = drain(set);
    EXPECT_EQ(all.size(), 600u);
    for (PageId page : all)
        EXPECT_LT(page, 15u);
}

TEST(TenantSetSchedule, WeightedRoundRobinIsDeterministic)
{
    auto build = [] {
        std::vector<std::unique_ptr<workloads::AccessGenerator>> gens;
        gens.push_back(uniform(4, 400, 7));
        gens.push_back(uniform(4, 400, 8));
        return std::make_unique<TenantSet>(std::move(gens),
                                           std::vector<std::size_t>{1, 3},
                                           kTestPage, 4, 0);
    };
    auto a = build();
    auto b = build();
    const auto sa = drain(*a);
    const auto sb = drain(*b);
    EXPECT_EQ(sa, sb);  // identical construction, identical stream
    // The weighted quanta shape the head of the stream: 4 accesses from
    // tenant 0's span [0, 4), then 12 from tenant 1's span [4, 8).
    ASSERT_GE(sa.size(), 16u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_LT(sa[i], 4u) << "position " << i;
    for (std::size_t i = 4; i < 16; ++i) {
        EXPECT_GE(sa[i], 4u) << "position " << i;
        EXPECT_LT(sa[i], 8u) << "position " << i;
    }
}

TEST(TenantSetSchedule, PhaseStrideDephasesTenants)
{
    std::vector<std::unique_ptr<workloads::AccessGenerator>> gens;
    gens.push_back(sequential(8, 64));
    gens.push_back(sequential(8, 64));
    TenantSet set(std::move(gens), {1, 1}, kTestPage, 2, 5);
    // Tenant 0 starts at its page 0; tenant 1 discarded 5 accesses, so
    // its first emission is page 5 of its span (global page 13).
    std::vector<PageId> buf(4);
    ASSERT_EQ(set.fill(buf), 4u);
    EXPECT_EQ(buf[0], 0u);
    EXPECT_EQ(buf[1], 1u);
    EXPECT_EQ(buf[2], 13u);
    EXPECT_EQ(buf[3], 14u);
    // The discarded head shrinks the set's actual production.
    EXPECT_EQ(set.total_accesses(), 64u + 59u);
}

MachineConfig
tenant_machine_config()
{
    MachineConfig config;
    config.page_size = kTestPage;
    config.tiers[0].capacity = 16ull << 20;  // 16 fast pages
    config.tiers[1].capacity = 64ull << 20;  // 64 slow pages
    config.address_space = 48ull << 20;      // 48 pages total
    return config;
}

/** Two tenants, 24 pages each, quota of 4 fast pages apiece. */
std::unique_ptr<TenantLedger>
two_tenant_ledger(std::size_t quota = 4)
{
    auto ledger = std::make_unique<TenantLedger>(2, 48);
    ledger->set_owner_span(0, 24, 0);
    ledger->set_owner_span(24, 24, 1);
    ledger->set_quota(0, quota);
    ledger->set_quota(1, quota);
    return ledger;
}

TEST(TenantQuota, AllocationSteersToSlowAtQuota)
{
    TieredMachine machine(tenant_machine_config());
    machine.install_tenants(two_tenant_ledger());
    machine.prefault_range(0, 48);
    const TenantLedger* ledger = machine.tenants();
    ASSERT_NE(ledger, nullptr);
    // Each tenant allocated exactly its quota in fast, the rest slow.
    EXPECT_EQ(ledger->used_pages(0, Tier::kFast), 4u);
    EXPECT_EQ(ledger->used_pages(0, Tier::kSlow), 20u);
    EXPECT_EQ(ledger->used_pages(1, Tier::kFast), 4u);
    EXPECT_EQ(ledger->used_pages(1, Tier::kSlow), 20u);
    EXPECT_EQ(ledger->totals(0).over_quota_allocs, 0u);
    EXPECT_EQ(machine.used_pages(Tier::kFast), 8u);
    EXPECT_GT(verify::InvariantChecker::check_tenant_quota(machine), 0u);
}

TEST(TenantQuota, MigrationDeniedExactlyAtBoundary)
{
    TieredMachine machine(tenant_machine_config());
    machine.install_tenants(two_tenant_ledger());
    machine.prefault_range(0, 48);
    // Tenant 0 sits exactly at quota (4 fast pages): one more promotion
    // must be refused with kQuotaDenied and counted, touching no state.
    const auto denied = machine.migrate(4, Tier::kFast);
    EXPECT_EQ(denied.status, MigrateStatus::kQuotaDenied);
    EXPECT_FALSE(denied.ok());
    EXPECT_TRUE(denied.denied());
    EXPECT_TRUE(denied.transient());
    EXPECT_FALSE(denied.faulted());
    EXPECT_EQ(machine.totals().failed_quota, 1u);
    EXPECT_EQ(machine.tenants()->totals(0).quota_denied, 1u);
    EXPECT_EQ(machine.tier_of(4), Tier::kSlow);
    // Demotion frees one slot below quota; the same promotion now lands.
    EXPECT_TRUE(machine.migrate(0, Tier::kSlow).ok());
    EXPECT_EQ(machine.tenants()->used_pages(0, Tier::kFast), 3u);
    EXPECT_TRUE(machine.migrate(4, Tier::kFast).ok());
    EXPECT_EQ(machine.tenants()->used_pages(0, Tier::kFast), 4u);
    // Tenant 1 sits at its own quota independently: its next promotion
    // is denied and attributed to tenant 1, not tenant 0.
    EXPECT_EQ(machine.migrate(24 + 4, Tier::kFast).status,
              MigrateStatus::kQuotaDenied);
    EXPECT_EQ(machine.tenants()->totals(1).quota_denied, 1u);
    EXPECT_EQ(machine.totals().failed_quota, 2u);
    EXPECT_GT(verify::InvariantChecker::check_tenant_quota(machine), 0u);
}

TEST(TenantQuota, ExchangeQuotaAppliesAcrossTenantsOnly)
{
    auto ledger = two_tenant_ledger();
    // Fill tenant 0 to quota by hand: pages 0-3 fast, 4 slow.
    for (PageId p = 0; p < 4; ++p)
        ledger->charge(p, Tier::kFast, +1);
    ledger->charge(4, Tier::kSlow, +1);
    ledger->charge(24, Tier::kFast, +1);
    // Same-tenant swap is fast-usage neutral: admitted at quota.
    EXPECT_EQ(ledger->check_exchange(/*promoted=*/4, /*demoted=*/0),
              TenantDecision::kAdmit);
    // Cross-tenant: tenant 0 would gain a fast page while at quota.
    EXPECT_EQ(ledger->check_exchange(/*promoted=*/4, /*demoted=*/24),
              TenantDecision::kQuotaDenied);
    EXPECT_EQ(ledger->totals(0).quota_denied, 1u);
}

TEST(Admission, StaticRateLimitsPerInterval)
{
    auto ledger = two_tenant_ledger(TenantLedger::kNoQuota);
    ledger->set_admission(
        tenancy::make_admission("static", 2, /*rate=*/2, 0.5, 8));
    ASSERT_NE(ledger->admission(), nullptr);
    EXPECT_EQ(ledger->admission()->name(), "static");
    // Two grants per tenant per interval; the third is refused.
    EXPECT_EQ(ledger->check_migration(0, Tier::kFast, true),
              TenantDecision::kAdmit);
    EXPECT_EQ(ledger->check_migration(1, Tier::kFast, true),
              TenantDecision::kAdmit);
    EXPECT_EQ(ledger->check_migration(2, Tier::kFast, true),
              TenantDecision::kAdmissionDenied);
    // Demotions never consult admission.
    EXPECT_EQ(ledger->check_migration(3, Tier::kSlow, true),
              TenantDecision::kAdmit);
    // The other tenant has its own budget.
    EXPECT_EQ(ledger->check_migration(24, Tier::kFast, true),
              TenantDecision::kAdmit);
    EXPECT_EQ(ledger->totals(0).admission_grants, 2u);
    EXPECT_EQ(ledger->totals(0).admission_denied, 1u);
    EXPECT_EQ(ledger->totals(1).admission_grants, 1u);
    // The decision boundary refills the budget.
    ledger->interval_feedback();
    EXPECT_EQ(ledger->check_migration(0, Tier::kFast, true),
              TenantDecision::kAdmit);
}

TEST(Admission, FeedbackHalvesLaggardsUnderAggregateDrop)
{
    auto ledger = two_tenant_ledger(TenantLedger::kNoQuota);
    ledger->set_admission(tenancy::make_admission(
        "feedback", 2, 64, /*target=*/0.9, /*max_grants=*/8));
    // Seed a window where the aggregate hit ratio (0.45) sits below
    // target and tenant 0 (0.10) drags it down while tenant 1 (0.80)
    // performs above the aggregate.
    for (int i = 0; i < 1; ++i)
        ledger->note_access(0, 0);
    for (int i = 0; i < 9; ++i)
        ledger->note_access(0, 1);
    for (int i = 0; i < 8; ++i)
        ledger->note_access(24, 0);
    for (int i = 0; i < 2; ++i)
        ledger->note_access(24, 1);
    EXPECT_NEAR(ledger->window_fast_ratio(0), 0.10, 1e-9);
    EXPECT_NEAR(ledger->window_fast_ratio(1), 0.80, 1e-9);
    EXPECT_NEAR(ledger->aggregate_window_fast_ratio(), 0.45, 1e-9);
    ledger->interval_feedback();
    // Tenant 0's budget was halved (8 -> 4); tenant 1 stays at the cap.
    int grants0 = 0;
    while (ledger->check_migration(0, Tier::kFast, true) ==
           TenantDecision::kAdmit)
        ++grants0;
    int grants1 = 0;
    while (ledger->check_migration(24, Tier::kFast, true) ==
           TenantDecision::kAdmit)
        ++grants1;
    EXPECT_EQ(grants0, 4);
    EXPECT_EQ(grants1, 8);
    // A healthy window recovers the laggard additively (4 + 8 -> 8 cap).
    for (int i = 0; i < 10; ++i) {
        ledger->note_access(0, 0);
        ledger->note_access(24, 0);
    }
    ledger->interval_feedback();
    grants0 = 0;
    while (ledger->check_migration(0, Tier::kFast, true) ==
           TenantDecision::kAdmit)
        ++grants0;
    EXPECT_EQ(grants0, 8);
}

TEST(Admission, AllowAllAndUnknownNames)
{
    auto all = tenancy::make_admission("allow_all", 4, 1, 0.5, 1);
    ASSERT_NE(all, nullptr);
    EXPECT_EQ(all->name(), "allow_all");
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(all->admit(0, Tier::kFast));
    EXPECT_EQ(tenancy::make_admission("none", 4, 1, 0.5, 1), nullptr);
    EXPECT_EXIT((void)tenancy::make_admission("bogus", 4, 1, 0.5, 1),
                ::testing::ExitedWithCode(1), "unknown admission policy");
}

TEST(TenancyConfigParse, KvRoundTripAndUnknownKey)
{
    const auto kv = KvConfig::parse(
        "tenancy.tenants = 8\n"
        "tenancy.mix = s2,ycsb\n"
        "tenancy.weights = 1,2\n"
        "tenancy.quantum = 128\n"
        "tenancy.phase_stride = 1000\n"
        "tenancy.quota_share = 0.25\n"
        "tenancy.admission = feedback\n"
        "tenancy.admission_target = 0.7\n");
    const auto tc = tenancy::parse_tenancy_config(kv);
    EXPECT_TRUE(tc.enabled());
    EXPECT_EQ(tc.tenants, 8u);
    ASSERT_EQ(tc.mix.size(), 2u);
    EXPECT_EQ(tc.mix[0], "s2");
    EXPECT_EQ(tc.mix[1], "ycsb");
    ASSERT_EQ(tc.weights.size(), 2u);
    EXPECT_EQ(tc.weights[1], 2u);
    EXPECT_EQ(tc.quantum, 128u);
    EXPECT_EQ(tc.phase_stride, 1000u);
    EXPECT_DOUBLE_EQ(tc.quota_share, 0.25);
    EXPECT_EQ(tc.admission, "feedback");
    EXPECT_DOUBLE_EQ(tc.admission_target, 0.7);
    EXPECT_EXIT((void)tenancy::parse_tenancy_config(
                    KvConfig::parse("tenancy.quotta = 3\n")),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(TenancyConfigParse, KnobsWithoutTenantsAreFatal)
{
    TenancyConfig tc;
    tc.admission = "static";
    EXPECT_EXIT(tc.validate(), ::testing::ExitedWithCode(1),
                "require");
    TenancyConfig ok;  // defaults are the inert single-tenant shape
    ok.validate();
    EXPECT_FALSE(ok.enabled());
}

sim::RunSpec
tenant_run_spec(unsigned shards)
{
    sim::RunSpec spec;
    spec.workload = "s2";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 200000;
    spec.seed = 42;
    spec.engine.shards = shards;
    spec.engine.check_invariants = true;
    spec.tenancy.tenants = 4;
    spec.tenancy.mix = {"s2", "ycsb"};
    spec.tenancy.quota_share = 0.3;
    spec.tenancy.admission = "static";
    spec.tenancy.admission_rate = 8;
    return spec;
}

TEST(TenantIntegration, PerTenantTotalsReconcileWithMachine)
{
    const auto result = sim::run_experiment(tenant_run_spec(0));
    ASSERT_EQ(result.tenants.size(), 4u);
    std::uint64_t fast = 0;
    std::uint64_t slow = 0;
    std::uint64_t samples = 0;
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    for (const auto& tenant : result.tenants) {
        fast += tenant.accesses[0];
        slow += tenant.accesses[1];
        samples += tenant.samples;
        promoted += tenant.promoted;
        demoted += tenant.demoted;
    }
    // Attribution is complete: every machine access and every drained
    // PEBS sample lands in exactly one tenant's totals, and per-tenant
    // migration counts reconcile with the machine's (exchanges count
    // one promotion and one demotion each).
    EXPECT_EQ(fast, result.totals.accesses[0]);
    EXPECT_EQ(slow, result.totals.accesses[1]);
    EXPECT_EQ(samples, result.pebs_recorded - result.pebs_dropped);
    EXPECT_EQ(promoted,
              result.totals.promoted_pages + result.totals.exchanges);
    EXPECT_EQ(demoted,
              result.totals.demoted_pages + result.totals.exchanges);
    EXPECT_GT(result.invariant_audits, 0u);
}

TEST(TenantIntegration, ByteIdenticalAcrossShards)
{
    const auto serial = sim::run_experiment(tenant_run_spec(0));
    const auto sharded = sim::run_experiment(tenant_run_spec(4));
    EXPECT_EQ(serial.runtime_ns, sharded.runtime_ns);
    EXPECT_EQ(serial.accesses, sharded.accesses);
    EXPECT_DOUBLE_EQ(serial.fast_ratio, sharded.fast_ratio);
    EXPECT_EQ(serial.totals.promoted_pages, sharded.totals.promoted_pages);
    EXPECT_EQ(serial.totals.demoted_pages, sharded.totals.demoted_pages);
    EXPECT_EQ(serial.totals.failed_quota, sharded.totals.failed_quota);
    EXPECT_EQ(serial.totals.failed_admission,
              sharded.totals.failed_admission);
    ASSERT_EQ(serial.tenants.size(), sharded.tenants.size());
    for (std::size_t t = 0; t < serial.tenants.size(); ++t) {
        EXPECT_EQ(serial.tenants[t].accesses[0],
                  sharded.tenants[t].accesses[0]);
        EXPECT_EQ(serial.tenants[t].accesses[1],
                  sharded.tenants[t].accesses[1]);
        EXPECT_EQ(serial.tenants[t].samples, sharded.tenants[t].samples);
        EXPECT_EQ(serial.tenants[t].promoted, sharded.tenants[t].promoted);
        EXPECT_EQ(serial.tenants[t].demoted, sharded.tenants[t].demoted);
        EXPECT_EQ(serial.tenants[t].used_fast,
                  sharded.tenants[t].used_fast);
    }
}

TEST(TenantIntegration, SingleTenantSpecMatchesPlainRun)
{
    auto plain = tenant_run_spec(0);
    plain.tenancy = tenancy::TenancyConfig{};  // tenants = 1, all knobs off
    const auto a = sim::run_experiment(plain);
    const auto b = sim::run_experiment(plain);
    EXPECT_TRUE(a.tenants.empty());
    EXPECT_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_DOUBLE_EQ(a.fast_ratio, b.fast_ratio);
}

TEST(TenantIntegration, FeedbackChangesGrantCountsUnderContention)
{
    // The headline ISSUE acceptance check in miniature: under the same
    // contended multi-tenant load, the feedback controller must arrive
    // at a different migration-grant schedule than the static limiter
    // (it reacts to the observed hit-ratio drop; the limiter cannot).
    auto spec = tenant_run_spec(0);
    spec.accesses = 2000000;  // enough decision intervals for ArtMem to act
    spec.engine.check_invariants = false;
    spec.tenancy.admission = "static";
    const auto stat = sim::run_experiment(spec);
    spec.tenancy.admission = "feedback";
    spec.tenancy.admission_max = 8;
    spec.tenancy.admission_target = 0.95;
    const auto feed = sim::run_experiment(spec);
    std::uint64_t static_grants = 0;
    std::uint64_t feedback_grants = 0;
    for (std::size_t t = 0; t < 4; ++t) {
        static_grants += stat.tenants[t].admission_grants;
        feedback_grants += feed.tenants[t].admission_grants;
    }
    EXPECT_GT(static_grants, 0u);
    EXPECT_GT(feedback_grants, 0u);
    EXPECT_NE(static_grants, feedback_grants);
}

}  // namespace
}  // namespace artmem
