#!/usr/bin/env bash
# Perf-regression smoke for the batched hot path (DESIGN.md §9).
#
# Runs the end-to-end throughput benchmarks (bench_overheads --quick,
# i.e. BM_SimThroughput at one short google-benchmark repetition) and
# compares accesses/sec per workload against the committed baseline in
# BENCH_hotpath.json. The tolerance is deliberately generous (a 30%
# drop fails): CI machines are noisy, and this gate exists to catch
# real regressions — an accidental O(n) slip or a de-inlined hot
# function — without flaking on scheduler jitter.
#
# The baseline also carries BM_SimThroughputSharded entries (the
# --shards pipeline, DESIGN.md §12); bench_overheads --quick filters on
# the "BM_SimThroughput" prefix, which matches them automatically, so
# they are gated here with no extra plumbing.
#
#   scripts/check_perf.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
baseline="BENCH_hotpath.json"
bench="${build}/bench/bench_overheads"

if [[ ! -x "${bench}" ]]; then
    echo "check_perf: ${bench} not built" >&2
    exit 2
fi
if [[ ! -f "${baseline}" ]]; then
    echo "check_perf: ${baseline} missing" >&2
    exit 2
fi

out="${build}/bench_hotpath_current.json"
"${bench}" --quick --benchmark_format=json 2> /dev/null > "${out}"

python3 - "${baseline}" "${out}" << 'EOF'
import json
import sys

TOLERANCE = 0.30

with open(sys.argv[1]) as f:
    baseline = {b["name"]: b["items_per_second"]
                for b in json.load(f)["benchmarks"]}
with open(sys.argv[2]) as f:
    current = {b["name"]: b["items_per_second"]
               for b in json.load(f)["benchmarks"]}

failed = False
for name, base in sorted(baseline.items()):
    now = current.get(name)
    if now is None:
        print(f"check_perf: FAIL {name}: benchmark missing from run")
        failed = True
        continue
    floor = base * (1.0 - TOLERANCE)
    verdict = "ok" if now >= floor else "FAIL"
    print(f"check_perf: {verdict} {name}: {now / 1e6:.1f}M acc/s "
          f"(baseline {base / 1e6:.1f}M, floor {floor / 1e6:.1f}M)")
    if now < floor:
        failed = True

sys.exit(1 if failed else 0)
EOF

echo "check_perf: hot-path throughput within tolerance of ${baseline}"
