#!/usr/bin/env bash
# Lint gate, two halves:
#
#   1. detlint (tools/detlint) — the repo's rule-coded determinism &
#      concurrency analyzer. Replaces the old grep lint: every ban is a
#      numbered rule (DL001..DL007, catalog in DESIGN.md §11) with
#      per-rule "// lint:allow(DLxxx) reason" suppressions and the path
#      allowlists checked in as configs/detlint.toml. Findings print as
#      file:line text here; pass --json to get the machine-readable
#      report CI archives.
#   2. clang-tidy over the compile database (.clang-tidy at the root).
#      When clang-tidy is absent the step prints an explicit SKIPPED
#      marker and the script still succeeds — unless --require-clang-tidy
#      is given (CI passes it), in which case absence is a failure
#      instead of a silently green job.
#
#   scripts/check_lint.sh [--require-clang-tidy] [--json] [build-dir]
#
# The build dir (default: build) only needs a configured CMake tree;
# CMAKE_EXPORT_COMPILE_COMMANDS is on by default so compile_commands.json
# is already there. Set CLANG_TIDY to pin a specific binary (CI pins
# clang-tidy-15). Exits non-zero on any finding.
set -euo pipefail

cd "$(dirname "$0")/.."
require_clang_tidy=0
json_out=""
build_dir="build"
for arg in "$@"; do
    case "${arg}" in
    --require-clang-tidy) require_clang_tidy=1 ;;
    --json) json_out="detlint.json" ;;
    --json=*) json_out="${arg#--json=}" ;;
    -*)
        echo "usage: scripts/check_lint.sh [--require-clang-tidy]" \
             "[--json[=FILE]] [build-dir]" >&2
        exit 2
        ;;
    *) build_dir="${arg}" ;;
    esac
done
fail=0

# ---------------------------------------------------------------------
# 1) detlint: determinism & concurrency rules.
#
# Built standalone (two TUs, no dependencies) so the lint stage works
# before — and even without — a configured build tree. Reuses the
# build-tree binary when it is already newer than the sources.
# ---------------------------------------------------------------------
echo "==> detlint (determinism & concurrency rules, configs/detlint.toml)"
detlint="${build_dir}/tools/detlint/detlint"
if [[ ! -x "${detlint}" ||
      "tools/detlint/detlint.cpp" -nt "${detlint}" ||
      "tools/detlint/main.cpp" -nt "${detlint}" ]]; then
    detlint="${build_dir}/detlint-standalone"
    mkdir -p "${build_dir}"
    c++ -std=c++20 -O1 -o "${detlint}" \
        tools/detlint/detlint.cpp tools/detlint/main.cpp
fi
lint_paths=(src tools bench examples tests)
if [[ -n "${json_out}" ]]; then
    "${detlint}" --config configs/detlint.toml --json \
        "${lint_paths[@]}" > "${json_out}" || fail=1
    echo "detlint JSON report: ${json_out}"
    # Still show the human-readable findings on a failure.
    if [[ "${fail}" -ne 0 ]]; then
        "${detlint}" --config configs/detlint.toml "${lint_paths[@]}" || true
    fi
else
    "${detlint}" --config configs/detlint.toml "${lint_paths[@]}" || fail=1
fi

# ---------------------------------------------------------------------
# 2) clang-tidy over the compile database (.clang-tidy at the root).
# ---------------------------------------------------------------------
clang_tidy="${CLANG_TIDY:-clang-tidy}"
if command -v "${clang_tidy}" > /dev/null 2>&1; then
    if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
        echo "==> configuring ${build_dir} for compile_commands.json"
        cmake -B "${build_dir}" -S . > /dev/null
    fi
    echo "==> clang-tidy ($("${clang_tidy}" --version | head -n 1))"
    mapfile -t sources < <(git ls-files \
        'src/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
    if command -v run-clang-tidy > /dev/null 2>&1; then
        run-clang-tidy -clang-tidy-binary "${clang_tidy}" -quiet \
            -p "${build_dir}" "${sources[@]}" || fail=1
    else
        for f in "${sources[@]}"; do
            "${clang_tidy}" --quiet -p "${build_dir}" "$f" || fail=1
        done
    fi
elif [[ "${require_clang_tidy}" -eq 1 ]]; then
    echo "clang-tidy SKIPPED: '${clang_tidy}' not installed" \
         "(--require-clang-tidy: treating as failure)"
    fail=1
else
    echo "clang-tidy SKIPPED: '${clang_tidy}' not installed" \
         "(detlint still ran; pass --require-clang-tidy to fail instead)"
fi

if [[ "${fail}" -ne 0 ]]; then
    echo "lint FAILED"
    exit 1
fi
echo "lint OK"
