#!/usr/bin/env bash
# Lint gate: clang-tidy over the compile database (when clang-tidy is
# installed) plus a grep-based custom lint banning nondeterminism
# hazards that would break the golden bit-identity regression
# (tests/test_faults.cpp) — wall-clock time sources, unseeded or
# platform-seeded RNG, and hash-order-dependent iteration feeding
# output.
#
#   scripts/check_lint.sh [build-dir]
#
# The build dir (default: build) only needs a configured CMake tree;
# CMAKE_EXPORT_COMPILE_COMMANDS is on by default so compile_commands.json
# is already there. Exits non-zero on any finding.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
fail=0

# ---------------------------------------------------------------------
# 1) Custom nondeterminism lint.
#
# Sources of nondeterminism are banned from the library, tools, benches
# and examples (tests may use gtest's own machinery but not these
# either). Suppress a deliberate use with a trailing
# "// lint:allow(<token>) <reason>" on the same line, or — for a file
# whose whole purpose is the banned construct — a path allowlist passed
# as ban()'s fourth argument (used for the telemetry phase profiler,
# the one translation unit allowed to read a wall clock).
# ---------------------------------------------------------------------
echo "==> custom lint (nondeterminism hazards)"

lint_paths=(src tools bench examples tests)

ban() {
    local pattern="$1" token="$2" why="$3" allow_path="${4:-}"
    local hits
    hits="$(grep -RnE "${pattern}" "${lint_paths[@]}" \
                --include='*.cpp' --include='*.hpp' \
            | grep -v "lint:allow(${token})" || true)"
    if [[ -n "${allow_path}" && -n "${hits}" ]]; then
        hits="$(grep -v "^${allow_path}:" <<< "${hits}" || true)"
    fi
    if [[ -n "${hits}" ]]; then
        echo "lint: banned ${token} (${why}):"
        echo "${hits}"
        fail=1
    fi
}

# Wall-clock phase profiling (telemetry --profile) is excluded from
# every determinism check; its clock reads live in exactly one file.
wallclock_allow='src/telemetry/phase_timer.cpp'

# Wall-clock and CPU-clock time: simulated time must come from
# TieredMachine::now() only.
ban '\brand\(\)|\bsrand\(' 'rand' 'unseeded C RNG breaks reproducibility'
ban '\btime\(' 'time' 'wall-clock seeding breaks bit-identity'
ban '\bgettimeofday\(|\bclock\(\)' 'clock' 'wall-clock in simulation code' \
    "${wallclock_allow}"
ban 'std::chrono::(system_clock|steady_clock|high_resolution_clock)' \
    'chrono' 'wall-clock in simulation code (benchmark lib handles timing)' \
    "${wallclock_allow}"
# Platform-entropy seeding: every Rng/mt19937 must take an explicit
# deterministic seed.
ban 'std::random_device' 'random_device' 'platform entropy breaks replays'
ban 'std::mt19937[^(]*\(\s*\)' 'mt19937' 'default-seeded mt19937'
# Hash-order iteration: unordered_{map,set} iteration order is
# implementation-defined; ranging over one feeds that order into
# results/output. The flat arrays + intrusive lists used everywhere
# else are both faster and deterministic.
ban 'std::unordered_(map|set|multimap|multiset)' 'unordered' \
    'hash iteration order is nondeterministic; use flat arrays'

if [[ "${fail}" -eq 0 ]]; then
    echo "custom lint clean"
fi

# ---------------------------------------------------------------------
# 2) clang-tidy over the compile database (.clang-tidy at the root).
#    Skipped with a notice when clang-tidy is not installed (the
#    container used for CI bakes only the GCC toolchain).
# ---------------------------------------------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
    if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
        echo "==> configuring ${build_dir} for compile_commands.json"
        cmake -B "${build_dir}" -S . > /dev/null
    fi
    echo "==> clang-tidy ($(clang-tidy --version | head -n 1))"
    mapfile -t sources < <(git ls-files \
        'src/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
    if command -v run-clang-tidy > /dev/null 2>&1; then
        run-clang-tidy -quiet -p "${build_dir}" "${sources[@]}" || fail=1
    else
        for f in "${sources[@]}"; do
            clang-tidy --quiet -p "${build_dir}" "$f" || fail=1
        done
    fi
else
    echo "==> clang-tidy not installed; skipping (custom lint still ran)"
fi

if [[ "${fail}" -ne 0 ]]; then
    echo "lint FAILED"
    exit 1
fi
echo "lint OK"
