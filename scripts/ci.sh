#!/usr/bin/env bash
# The full local CI gauntlet, in the order .github/workflows/ci.yml runs
# it remotely:
#
#   1. default build + ctest (tier-1 gate),
#   2. strict build: ARTMEM_STRICT=ON (-Wpedantic -Wconversion -Wshadow
#      -Wold-style-cast -Werror) must compile every target warning-free,
#   3. lint: scripts/check_lint.sh (clang-tidy when available + custom
#      nondeterminism lint),
#   4. invariant-checked fault sweep: every built-in --fault-scenario
#      under --check-invariants must finish with zero violations,
#   5. sweep determinism: bench_fig7_main --csv run twice, --jobs 1 vs
#      --jobs 4, and the outputs diffed byte-for-byte (the parallel
#      sweep runner must not change a single emitted number),
#   6. shard determinism: the same fig7 sweep with --shards 1 vs
#      --shards 4 diffed byte-for-byte against the --jobs baseline from
#      step 5, plus a traced artmem abort-storm run at --shards=1 vs
#      --shards=4 with stdout, metrics and both trace files compared
#      (the sharded access pipeline must not change a single emitted
#      byte, DESIGN.md §12),
#   7. parallel-merge determinism: the default per-lane parallel merge
#      at --shards=4 diffed byte-for-byte against the unsharded
#      --shards=0 engine on a traced transactional abort-storm run and
#      on an 8-tenant contention run, plus a --merge=serial cross-check
#      (phase-2 parallel merge, DESIGN.md §12),
#   8. telemetry smoke: a traced masim_runner run on
#      configs/telemetry_smoke.cfg; the Chrome trace and metrics files
#      must be valid JSON (python3 -m json.tool) and a second identical
#      seeded run must reproduce the metrics and trace byte-for-byte,
#   9. transactional-migration smoke: a traced --tx-migration run under
#      --fault-scenario=abort_storm with --check-invariants executed
#      twice and diffed byte-for-byte (stdout + both trace files), plus
#      a plain run diffed against an explicit --tx-migration=false run
#      (the disabled engine must be a strict no-op through the whole
#      CLI path),
#  10. multi-tenant smoke: an explicit --tenants=1 run diffed
#      byte-for-byte against a plain run (the disabled tenancy layer
#      must be a strict no-op through the whole CLI path), plus a
#      traced --tenant-config=configs/tenancy_smoke.cfg run (8
#      heterogeneous tenants, contending quotas, feedback admission,
#      --check-invariants) executed twice with stdout, metrics and both
#      trace files compared (DESIGN.md §13),
#  11. perf-regression smoke: scripts/check_perf.sh runs the end-to-end
#      hot-path throughput benchmarks (bench_overheads --quick) and
#      compares accesses/sec against BENCH_hotpath.json with a 30%
#      tolerance,
#  12. (optional, slow) sanitizers: pass --sanitizers to append
#      scripts/check_sanitizers.sh,
#  13. (optional, slow) coverage: pass --coverage to append
#      scripts/check_coverage.sh (instrumented build + line-coverage
#      floor on src/memsim and src/lru).
#
#   scripts/ci.sh [--sanitizers] [--coverage]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 2)"
run_sanitizers=0
run_coverage=0
for arg in "$@"; do
    case "${arg}" in
    --sanitizers) run_sanitizers=1 ;;
    --coverage) run_coverage=1 ;;
    *)
        echo "usage: scripts/ci.sh [--sanitizers] [--coverage]" >&2
        exit 2
        ;;
    esac
done

echo "==> [1/11] default build + tests"
cmake -B build -S . > /dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "==> [2/11] strict build (ARTMEM_STRICT=ON)"
cmake -B build-strict -S . -DARTMEM_STRICT=ON > /dev/null
cmake --build build-strict -j "${jobs}"

echo "==> [3/11] lint"
# In CI (GitHub Actions sets CI=true) a missing clang-tidy is a
# failure, not a silent skip; locally the detlint half alone passes.
if [[ -n "${CI:-}" ]]; then
    scripts/check_lint.sh --require-clang-tidy build
else
    scripts/check_lint.sh build
fi

echo "==> [4/11] invariant-checked fault sweep"
for scenario in none migration degrade blackout pressure; do
    echo "--- scenario ${scenario}"
    ./build/tools/artmem run --workload=s2 --policy=artmem --ratio=1:4 \
        --accesses=1000000 --fault-scenario="${scenario}" \
        --check-invariants
done

echo "==> [5/11] sweep determinism (--jobs 1 vs --jobs 4, byte-for-byte)"
./build/bench/bench_fig7_main --csv --accesses=200000 --jobs=1 \
    > build/fig7_jobs1.csv
./build/bench/bench_fig7_main --csv --accesses=200000 --jobs=4 \
    > build/fig7_jobs4.csv
cmp build/fig7_jobs1.csv build/fig7_jobs4.csv
echo "sweep output identical across --jobs 1 and --jobs 4"

echo "==> [6/11] shard determinism (--shards 1 vs --shards 4, byte-for-byte)"
# The sharded access pipeline (DESIGN.md §12) carries the same contract
# as the parallel sweep runner: every shard count must reproduce the
# legacy loop byte-for-byte. Diff the whole fig7 sweep across shard
# counts AND against the unsharded baseline from step 5.
./build/bench/bench_fig7_main --csv --accesses=200000 --shards=1 \
    > build/fig7_shards1.csv
./build/bench/bench_fig7_main --csv --accesses=200000 --shards=4 \
    > build/fig7_shards4.csv
cmp build/fig7_shards1.csv build/fig7_shards4.csv
cmp build/fig7_jobs1.csv build/fig7_shards4.csv
# A traced abort-storm run is the nastiest single-run case (faults,
# transactions, handler-driven migrations, full telemetry): stdout,
# metrics and both trace files must match across shard counts.
shard_run=(./build/tools/artmem run --workload=ycsb --policy=artmem
    --ratio=1:4 --accesses=800000 --check-invariants --tx-migration
    --tx-write-ratio=0.05 --fault-scenario=abort_storm)
"${shard_run[@]}" --shards=1 --metrics-out=build/shards_a.metrics.json \
    --trace-out=build/shards_a > build/shards_a.out
"${shard_run[@]}" --shards=4 --metrics-out=build/shards_b.metrics.json \
    --trace-out=build/shards_b > build/shards_b.out
cmp build/shards_a.out build/shards_b.out
cmp build/shards_a.metrics.json build/shards_b.metrics.json
cmp build/shards_a.jsonl build/shards_b.jsonl
cmp build/shards_a.json build/shards_b.json
echo "output identical across --shards 1 and --shards 4"

echo "==> [7/11] parallel-merge determinism (--shards 4 vs --shards 0, byte-for-byte)"
# Phase 2 of all-plain sharded batches runs as per-lane parallel work
# (per-lane latency accumulators, per-shard PEBS streams, per-shard LRU
# segments) merged deterministically at decision boundaries (DESIGN.md
# §12). The parallel merge is the default; its output must match the
# unsharded engine byte-for-byte on the nastiest cases: the traced
# transactional abort storm from step 6 and an 8-tenant contention run.
# --merge=serial is the oracle escape hatch and must agree too.
pm_run=(./build/tools/artmem run --workload=ycsb --policy=artmem
    --ratio=1:4 --accesses=800000 --check-invariants --tx-migration
    --tx-write-ratio=0.05 --fault-scenario=abort_storm)
"${pm_run[@]}" --shards=0 --metrics-out=build/pm_a.metrics.json \
    --trace-out=build/pm_a > build/pm_a.out
"${pm_run[@]}" --shards=4 --merge=parallel \
    --metrics-out=build/pm_b.metrics.json \
    --trace-out=build/pm_b > build/pm_b.out
"${pm_run[@]}" --shards=4 --merge=serial > build/pm_c.out
cmp build/pm_a.out build/pm_b.out
cmp build/pm_a.metrics.json build/pm_b.metrics.json
cmp build/pm_a.jsonl build/pm_b.jsonl
cmp build/pm_a.json build/pm_b.json
cmp build/pm_a.out build/pm_c.out
mt8_run=(./build/tools/artmem run --workload=s2 --policy=artmem
    --ratio=1:4 --accesses=800000 --check-invariants
    --tenant-config=configs/tenancy_smoke.cfg)
"${mt8_run[@]}" --shards=0 > build/pm_mt0.out
"${mt8_run[@]}" --shards=4 --merge=parallel > build/pm_mt4.out
cmp build/pm_mt0.out build/pm_mt4.out
echo "parallel merge byte-identical to --shards 0 (abort storm + 8 tenants)"

echo "==> [8/11] telemetry smoke (traced run, JSON validity, byte-identity)"
./build/examples/masim_runner configs/telemetry_smoke.cfg \
    --policy=artmem --ratio=1:4 \
    --metrics-out=build/telemetry_a.metrics.json \
    --trace-out=build/telemetry_a --profile
python3 -m json.tool build/telemetry_a.metrics.json > /dev/null
python3 -m json.tool build/telemetry_a.json > /dev/null
./build/examples/masim_runner configs/telemetry_smoke.cfg \
    --policy=artmem --ratio=1:4 \
    --metrics-out=build/telemetry_b.metrics.json \
    --trace-out=build/telemetry_b
cmp build/telemetry_a.metrics.json build/telemetry_b.metrics.json
cmp build/telemetry_a.jsonl build/telemetry_b.jsonl
cmp build/telemetry_a.json build/telemetry_b.json
echo "telemetry outputs valid JSON and byte-identical across reruns"

echo "==> [9/11] transactional-migration smoke (abort storm, byte-identity)"
tx_run=(./build/tools/artmem run --workload=ycsb --policy=artmem
    --ratio=1:4 --accesses=800000 --check-invariants)
"${tx_run[@]}" --tx-migration --tx-write-ratio=0.05 \
    --fault-scenario=abort_storm --trace-out=build/tx_a > build/tx_a.out
"${tx_run[@]}" --tx-migration --tx-write-ratio=0.05 \
    --fault-scenario=abort_storm --trace-out=build/tx_b > build/tx_b.out
cmp build/tx_a.out build/tx_b.out
cmp build/tx_a.jsonl build/tx_b.jsonl
cmp build/tx_a.json build/tx_b.json
"${tx_run[@]}" > build/tx_off_a.out
"${tx_run[@]}" --tx-migration=false > build/tx_off_b.out
cmp build/tx_off_a.out build/tx_off_b.out
echo "abort-storm reruns byte-identical; disabled engine is a no-op"

echo "==> [10/11] multi-tenant smoke (no-op diff, traced run, byte-identity)"
# --tenants=1 must be a strict no-op through the whole CLI path: the
# single-tenant run takes the plain engine loop and every tenancy hook
# is a never-taken null branch (DESIGN.md §13).
mt_base=(./build/tools/artmem run --workload=s2 --policy=artmem
    --ratio=1:4 --accesses=800000 --check-invariants)
"${mt_base[@]}" > build/mt_off_a.out
"${mt_base[@]}" --tenants=1 > build/mt_off_b.out
cmp build/mt_off_a.out build/mt_off_b.out
# Traced smoke on configs/tenancy_smoke.cfg (8 heterogeneous tenants,
# contending quotas, feedback admission): metrics must be valid JSON
# and a second identical seeded run must reproduce stdout, metrics and
# both trace files byte-for-byte.
mt_run=(./build/tools/artmem run --workload=s2 --policy=artmem
    --ratio=1:4 --accesses=800000 --check-invariants
    --tenant-config=configs/tenancy_smoke.cfg)
"${mt_run[@]}" --metrics-out=build/mt_a.metrics.json \
    --trace-out=build/mt_a > build/mt_a.out
"${mt_run[@]}" --metrics-out=build/mt_b.metrics.json \
    --trace-out=build/mt_b > build/mt_b.out
python3 -m json.tool build/mt_a.metrics.json > /dev/null
cmp build/mt_a.out build/mt_b.out
cmp build/mt_a.metrics.json build/mt_b.metrics.json
cmp build/mt_a.jsonl build/mt_b.jsonl
cmp build/mt_a.json build/mt_b.json
echo "--tenants=1 is a no-op; tenancy smoke byte-identical across reruns"

echo "==> [11/11] perf-regression smoke (hot-path throughput)"
scripts/check_perf.sh build

if [[ "${run_sanitizers}" -eq 1 ]]; then
    echo "==> [extra] sanitizers"
    scripts/check_sanitizers.sh
fi

if [[ "${run_coverage}" -eq 1 ]]; then
    echo "==> [extra] coverage floor"
    scripts/check_coverage.sh
fi

echo "==> CI OK"
