#!/usr/bin/env bash
# Line-coverage floor on the hot-path libraries (DESIGN.md §9).
#
# Builds an instrumented tree (ARTMEM_COVERAGE=ON), runs the test
# binaries that exercise the overhauled hot path (memsim, lru, sim,
# plus the §9 differential-model and property suites), and enforces a
# line-coverage floor on src/memsim and src/lru. Uses gcovr when
# installed; otherwise falls back to parsing raw `gcov` output, so the
# gate runs even on minimal containers.
#
#   scripts/check_coverage.sh [build-dir]   (default: build-cov)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build-cov}"
jobs="$(nproc 2>/dev/null || echo 2)"
floor=75  # percent, over src/memsim + src/lru combined

targets=(test_memsim test_lru test_sim test_diff_model test_property)

echo "==> coverage build (${build})"
cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DARTMEM_COVERAGE=ON > /dev/null
cmake --build "${build}" -j "${jobs}" --target "${targets[@]}"

echo "==> coverage test run"
find "${build}" -name '*.gcda' -delete
for t in "${targets[@]}"; do
    "./${build}/tests/${t}" > /dev/null
done

if command -v gcovr > /dev/null 2>&1; then
    echo "==> gcovr (floor: ${floor}% lines on src/memsim + src/lru)"
    gcovr --root . --object-directory "${build}" \
        --filter 'src/memsim/.*' --filter 'src/lru/.*' \
        --fail-under-line "${floor}" --print-summary
else
    echo "==> gcovr not installed; falling back to raw gcov"
    covdir="${build}/gcov-report"
    rm -rf "${covdir}"
    mkdir -p "${covdir}"
    find "$(pwd)/${build}" -name '*.gcda' \
        \( -path '*memsim*' -o -path '*lru*' \) -print0 |
        (cd "${covdir}" && xargs -0 gcov --preserve-paths > /dev/null)
    python3 - "${covdir}" "${floor}" << 'EOF'
import glob
import os
import sys

covdir, floor = sys.argv[1], float(sys.argv[2])
per_file = {}
for path in glob.glob(os.path.join(covdir, "*.gcov")):
    source = None
    covered = total = 0
    with open(path) as f:
        for line in f:
            fields = line.split(":", 2)
            if len(fields) < 3:
                continue
            count = fields[0].strip()
            if fields[1].strip() == "0" and fields[2].startswith("Source:"):
                source = fields[2][len("Source:"):].strip()
                continue
            if count == "-":
                continue
            total += 1
            if count != "#####" and count != "=====":
                covered += 1
    if source is None or total == 0:
        continue
    norm = os.path.normpath(source)
    if "src/memsim" not in norm and "src/lru" not in norm:
        continue
    # The same source can be instrumented by several test binaries;
    # keep the best-covered instance (gcov reports per object file).
    prev = per_file.get(norm)
    if prev is None or covered / total > prev[0] / prev[1]:
        per_file[norm] = (covered, total)

if not per_file:
    print("check_coverage: no gcov data for src/memsim or src/lru")
    sys.exit(1)

grand_covered = grand_total = 0
for norm in sorted(per_file):
    covered, total = per_file[norm]
    grand_covered += covered
    grand_total += total
    print(f"  {norm}: {100.0 * covered / total:.1f}% ({covered}/{total})")
pct = 100.0 * grand_covered / grand_total
print(f"check_coverage: {pct:.1f}% lines covered "
      f"(floor {floor:.0f}%) over {len(per_file)} files")
sys.exit(0 if pct >= floor else 1)
EOF
fi

echo "==> coverage floor met"
