#!/usr/bin/env bash
# Sanitizer CI: build and run the test suite under ASan+UBSan — the
# full ctest run includes the memsim/lru/sim suites plus the hot-path
# differential-model (test_diff_model) and property (test_property)
# harnesses — then the threaded tests (ring buffer / async sampler)
# under TSan. Any sanitizer report fails the run (halt_on_error /
# abort_on_error below).
#
#   scripts/check_sanitizers.sh [build-dir-prefix]
#
# Build trees land in <prefix>-asan-ubsan/ and <prefix>-tsan/
# (default prefix: build-san).
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "==> ASan+UBSan build (${prefix}-asan-ubsan)"
cmake -B "${prefix}-asan-ubsan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DARTMEM_SANITIZE=address,undefined > /dev/null
cmake --build "${prefix}-asan-ubsan" -j "${jobs}"

echo "==> ASan+UBSan test run"
ASAN_OPTIONS=detect_leaks=1:abort_on_error=0 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "${prefix}-asan-ubsan" --output-on-failure -j "${jobs}"

echo "==> TSan build (${prefix}-tsan)"
cmake -B "${prefix}-tsan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DARTMEM_SANITIZE=thread > /dev/null
cmake --build "${prefix}-tsan" -j "${jobs}" \
    --target test_async test_memsim

echo "==> TSan test run (threaded suites)"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_async"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_memsim" \
    --gtest_filter='RingBuffer.*'

echo "==> sanitizers clean"
