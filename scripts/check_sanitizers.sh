#!/usr/bin/env bash
# Sanitizer CI: build and run the test suite under ASan+UBSan — the
# full ctest run includes the memsim/lru/sim suites plus the hot-path
# differential-model (test_diff_model) and property (test_property)
# harnesses — then every suite that spawns threads (ring buffer /
# async sampler, sweep thread pool, telemetry merge, transactional
# migration, sharded access pipeline) plus a real parallel --jobs 4
# sweep and a --shards 2 sharded sweep under TSan. Any
# sanitizer report fails the run (halt_on_error / abort_on_error
# below). The TSan half is the runtime complement of the compile-time
# Clang -Wthread-safety annotations (DESIGN.md §11): the annotations
# prove lock discipline, TSan catches what they cannot see (lock-free
# SPSC handoffs, join lifecycles).
#
#   scripts/check_sanitizers.sh [build-dir-prefix]
#
# Build trees land in <prefix>-asan-ubsan/ and <prefix>-tsan/
# (default prefix: build-san).
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "==> ASan+UBSan build (${prefix}-asan-ubsan)"
cmake -B "${prefix}-asan-ubsan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DARTMEM_SANITIZE=address,undefined > /dev/null
cmake --build "${prefix}-asan-ubsan" -j "${jobs}"

echo "==> ASan+UBSan test run"
ASAN_OPTIONS=detect_leaks=1:abort_on_error=0 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "${prefix}-asan-ubsan" --output-on-failure -j "${jobs}"

echo "==> TSan build (${prefix}-tsan)"
cmake -B "${prefix}-tsan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DARTMEM_SANITIZE=thread > /dev/null
cmake --build "${prefix}-tsan" -j "${jobs}" \
    --target test_async test_memsim test_sweep test_telemetry \
             test_tx_migration test_sharded test_diff_model \
             test_property bench_fig7_main

echo "==> TSan test run (threaded suites)"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_async"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_memsim" \
    --gtest_filter='RingBuffer.*'
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_sweep"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_telemetry"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_tx_migration"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_sharded"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_diff_model"
TSAN_OPTIONS=halt_on_error=1 "${prefix}-tsan/tests/test_property"

echo "==> TSan parallel sweep (--jobs 4, real thread-pool contention)"
TSAN_OPTIONS=halt_on_error=1 \
    "${prefix}-tsan/bench/bench_fig7_main" --csv --accesses=50000 --jobs=4 \
    > "${prefix}-tsan/fig7_tsan.csv"

echo "==> TSan sharded sweep (--shards 2, parallel + serial merge)"
# The default parallel per-lane merge exercises concurrent lane walks;
# the explicit --merge=serial run keeps the oracle path covered. Both
# must also agree byte-for-byte even under TSan's scheduling jitter.
TSAN_OPTIONS=halt_on_error=1 \
    "${prefix}-tsan/bench/bench_fig7_main" --csv --accesses=50000 \
    --shards=2 --merge=parallel > "${prefix}-tsan/fig7_tsan_shards.csv"
TSAN_OPTIONS=halt_on_error=1 \
    "${prefix}-tsan/bench/bench_fig7_main" --csv --accesses=50000 \
    --shards=2 --merge=serial \
    > "${prefix}-tsan/fig7_tsan_shards_serial.csv"
cmp "${prefix}-tsan/fig7_tsan_shards.csv" \
    "${prefix}-tsan/fig7_tsan_shards_serial.csv"

echo "==> sanitizers clean"
