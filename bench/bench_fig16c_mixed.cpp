/**
 * @file
 * Figure 16c + Section 6.3.10 reproduction: adaptability to highly
 * irregular access patterns, produced by co-running workloads from
 * different domains. Two-workload mixes get 32 GiB of DRAM, the
 * three-workload mix 64 GiB. Paper: ArtMem beats the second-best
 * system by ~11% on average thanks to accurate page classification.
 */
#include "bench_common.hpp"
#include "workloads/factory.hpp"
#include "workloads/mixer.hpp"

namespace {

using namespace artmem;

std::unique_ptr<workloads::AccessGenerator>
make_mix(const std::vector<std::string>& names, Bytes page,
         std::uint64_t accesses, std::uint64_t seed)
{
    std::vector<std::unique_ptr<workloads::AccessGenerator>> children;
    for (std::size_t i = 0; i < names.size(); ++i) {
        children.push_back(workloads::make_workload(
            names[i], page, accesses / names.size(), seed + i));
    }
    return std::make_unique<workloads::Mixer>(std::move(children), page);
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    constexpr Bytes kPage = 2ull << 20;
    const std::vector<std::string> systems = {
        "memtis",     "autotiering", "tpp",      "autonuma",
        "multiclock", "nimble",      "tiering08", "artmem"};

    struct Mix {
        std::vector<std::string> names;
        Bytes dram;
    };
    const Mix mixes[] = {
        {{"sssp", "xsbench"}, 32ull << 30},
        {{"sssp", "ycsb"}, 32ull << 30},
        {{"sssp", "xsbench", "ycsb"}, 64ull << 30},
    };

    std::cout << "Figure 16c: mixed-workload adaptability (runtime "
                 "normalized to static; lower is better)\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n\n";

    sweep::SweepSpec sweepspec;
    for (const auto& mix : mixes) {
        std::string label = mix.names[0];
        for (std::size_t i = 1; i < mix.names.size(); ++i)
            label += "+" + mix.names[i];
        auto add_job = [&](const std::string& system) {
            sweepspec.add_run(
                {label, system},
                [mix, system, &opt] {
                    auto gen =
                        make_mix(mix.names, kPage, opt.accesses, opt.seed);
                    auto mc = sim::make_machine_config(gen->footprint(),
                                                       mix.dram, kPage);
                    memsim::TieredMachine machine(mc);
                    auto policy = sim::make_policy(system, opt.seed);
                    sim::EngineConfig engine;
                    return sim::run_simulation(*gen, *policy, machine,
                                               engine);
                });
        };
        add_job("static");
        for (const auto& system : systems)
            add_job(system);
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::vector<std::string> headers = {"mix", "dram"};
    for (const auto& s : systems)
        headers.push_back(s);
    sweep::ResultSink table(std::move(headers));

    std::size_t job = 0;
    for (const auto& mix : mixes) {
        const auto& base = runs[job++];
        std::string label = mix.names[0];
        for (std::size_t i = 1; i < mix.names.size(); ++i)
            label += "+" + mix.names[i];
        auto& row = table.row().cell(label).cell(
            std::to_string(mix.dram >> 30) + "G");
        for (std::size_t s = 0; s < systems.size(); ++s)
            row.cell(normalized_runtime(runs[job++], base), 3);
    }
    emit(table, opt);
    std::cout << "\nExpected: ArtMem lowest (paper: ~11% ahead of the "
                 "second-best method).\n";
    return 0;
}
