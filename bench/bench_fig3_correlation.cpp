/**
 * @file
 * Figure 3 reproduction: correlation between performance and DRAM
 * access ratio. Each point is one workload run under one tiering
 * system; performance is normalized to DRAM-only execution (all
 * accesses at fast latency). The paper reports Pearson coefficients of
 * 0.89, 0.81 and 0.87 for three recent systems — the reproduction
 * target is "strong positive correlation", not the exact values.
 */
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 4000000);

    const std::vector<std::string> systems = {"memtis", "tpp", "multiclock"};
    const std::vector<std::string> points = {"s1", "s2",  "s3",    "s4",
                                             "ycsb", "btree", "xsbench",
                                             "liblinear"};

    sweep::SweepSpec sweepspec;
    for (const auto& system : systems)
        for (const auto& workload : points)
            sweepspec.add(make_spec(opt, workload, system, {1, 1}),
                          {workload, system, "1:1"});
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Figure 3: performance vs DRAM access ratio "
              << "(performance normalized to DRAM-only; 1:1 ratio)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    std::size_t job = 0;
    for (const auto& system : systems) {
        sweep::ResultSink table({"workload", "dram_ratio",
                                 "perf_vs_dram_only"});
        std::vector<double> xs, ys;
        for (const auto& workload : points) {
            const auto& r = runs[job++];
            // DRAM-only: every access at the fast latency.
            const double dram_only_ns =
                static_cast<double>(r.accesses) * 92.0;
            const double perf =
                dram_only_ns / static_cast<double>(r.runtime_ns);
            xs.push_back(r.fast_ratio);
            ys.push_back(perf);
            table.row().cell(workload).cell(r.fast_ratio, 3).cell(perf, 3);
        }
        std::cout << "System: " << system << "\n";
        emit(table, opt);
        std::cout << "Pearson correlation = "
                  << format_fixed(pearson(xs, ys), 2)
                  << "  (paper: 0.81-0.89)\n\n";
    }
    return 0;
}
