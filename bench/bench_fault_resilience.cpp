/**
 * @file
 * Fault-resilience comparison: every policy runs the same workload under
 * each built-in fault scenario (memsim/fault_injector.hpp) —
 *
 *   none       fault-free baseline,
 *   migration  pinned pages + transient copy aborts + contention,
 *   degrade    periodic slow-tier latency/bandwidth degradation,
 *   blackout   periodic PEBS outages + sample drop bursts,
 *   pressure   a co-tenant periodically reserving fast-tier slots —
 *
 * and reports runtime (plus the slowdown against that policy's own
 * fault-free run), fast-tier access ratio, migration volume, per-reason
 * failure counts, and suppressed samples. The fault schedule is seeded
 * and fully deterministic, so runs are reproducible bit-for-bit.
 *
 * With --tx the sweep additionally runs every scenario (plus the
 * abort_storm write-storm scenario) under the transactional migration
 * engine and appends its abort/retry columns; without the flag the
 * output is byte-identical to what it was before the engine existed.
 *
 * Usage: bench_fault_resilience [--workload=ycsb] [--fault-seed=1] [--tx]
 *                               [--accesses=N] [--seed=N] [--quick] [--csv]
 */
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "memsim/fault_injector.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 4000000,
                                         {"workload", "fault-seed", "tx"});
    const auto args = CliArgs::parse(argc, argv);
    const std::string workload = args.get_string("workload", "ycsb");
    const auto fault_seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
    const bool with_tx = args.get_bool("tx", false);

    std::vector<std::string_view> scenarios;
    for (const auto scenario : memsim::fault_scenario_names())
        scenarios.push_back(scenario);
    if (with_tx)
        scenarios.push_back("abort_storm");

    std::cout << "Fault resilience: workload=" << workload
              << " ratio=1:4 accesses=" << opt.accesses
              << " seed=" << opt.seed << " fault-seed=" << fault_seed;
    if (with_tx)
        std::cout << " tx=on";
    std::cout << "\n";

    // Every scenario x policy cell is independent; the "vs clean"
    // column is derived after the sweep from the "none" scenario's
    // results, so parallel execution cannot reorder the arithmetic.
    sweep::SweepSpec sweepspec;
    for (const auto scenario : scenarios) {
        for (const auto policy : sim::policy_names()) {
            auto spec =
                make_spec(opt, workload, std::string(policy), {1, 4});
            spec.engine.faults =
                memsim::make_fault_scenario(scenario, fault_seed);
            if (with_tx) {
                spec.engine.tx.enabled = true;
                spec.engine.tx.write_ratio = 0.02;
                spec.engine.check_invariants = true;
            }
            sweepspec.add(std::move(spec),
                          {std::string(scenario), std::string(policy)});
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    // Fault-free reference runtime per policy, for the slowdown column.
    std::map<std::string, std::uint64_t> clean_runtime;

    std::size_t job = 0;
    for (const auto scenario : scenarios) {
        std::cout << "\nScenario: " << scenario << "\n";
        std::vector<std::string> headers = {
            "policy",    "runtime (ms)", "vs clean", "fast ratio",
            "migrated",  "pinned",       "transient", "contended",
            "no_slot",   "pebs lost"};
        if (with_tx) {
            headers.insert(headers.end(), {"tx aborts", "tx retries"});
        }
        sweep::ResultSink table(std::move(headers));
        for (const auto policy : sim::policy_names()) {
            const auto& r = runs[job++];
            if (scenario == "none")
                clean_runtime[std::string(policy)] = r.runtime_ns;
            const double clean = static_cast<double>(
                clean_runtime[std::string(policy)]);
            auto& row = table.row();
            row.cell(std::string(policy))
                .cell(r.seconds() * 1e3, 1)
                .cell(static_cast<double>(r.runtime_ns) / clean, 3)
                .cell(r.fast_ratio, 3)
                .cell(r.totals.migrated_pages())
                .cell(r.totals.failed_pinned)
                .cell(r.totals.failed_transient)
                .cell(r.totals.failed_contended)
                .cell(r.totals.failed_no_slot)
                .cell(r.pebs_suppressed);
            if (with_tx)
                row.cell(r.totals.tx_aborted).cell(r.totals.tx_retries);
        }
        emit(table, opt);
    }
    return 0;
}
