/**
 * @file
 * Developer utility: run one (workload, policy, ratio) combination with
 * a timeline dump. Not part of the paper reproduction; used to inspect
 * policy behaviour interval by interval.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto args = CliArgs::parse(argc, argv);
    const auto opt = BenchOptions::parse(argc, argv, 8000000,
                                         {"workload", "policy", "timeline"});

    sim::RunSpec spec = make_spec(opt, args.get_string("workload", "s1"),
                                  args.get_string("policy", "artmem"),
                                  {1, 1});
    spec.engine.record_timeline = true;

    // A single job, but routed through the sweep runner so this utility
    // exercises the same dispatch path as every figure harness.
    sweep::SweepSpec sweepspec;
    sweepspec.add(std::move(spec));
    const auto runs = make_runner(opt).run(sweepspec);
    const auto& r = runs[0];

    std::cout << "runtime_ms=" << r.seconds() * 1e3
              << " ratio=" << r.fast_ratio
              << " migrated_pages=" << r.totals.migrated_pages()
              << " hint_faults=" << r.totals.hint_faults
              << " pebs=" << r.pebs_recorded << "/" << r.pebs_dropped
              << "\n";
    if (args.get_bool("timeline", false)) {
        sweep::ResultSink t({"t_ms", "accesses", "ratio", "promoted",
                             "demoted", "exchanges"});
        for (const auto& iv : r.timeline) {
            t.row()
                .cell(static_cast<double>(iv.end_time) * 1e-6, 1)
                .cell(iv.accesses)
                .cell(iv.fast_ratio, 3)
                .cell(iv.promoted)
                .cell(iv.demoted)
                .cell(iv.exchanges);
        }
        if (!t.emit(std::cout, sweep::Format::kTable))
            fatal("result emission failed: output stream went bad");
    }
    return 0;
}
