/**
 * @file
 * Figure 11 reproduction: page migration volume of every system on CC
 * and DLRM (1:1 ratio). Paper shape: MEMTIS migrates far more than
 * everyone else (its capacity-derived threshold fluctuates, ~10x CPU
 * overhead); ArtMem and AutoNUMA stay low; ArtMem migrates orders of
 * magnitude less on DLRM (largely unskewed) than on CC.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    const std::vector<std::string> systems = {
        "memtis",     "autotiering", "tpp",      "autonuma",
        "multiclock", "nimble",      "tiering08", "artmem"};
    const std::vector<std::string> apps = {"cc", "dlrm"};

    sweep::SweepSpec sweepspec;
    for (const auto& system : systems)
        for (const auto& workload : apps)
            sweepspec.add(make_spec(opt, workload, system, {1, 1}),
                          {workload, system, "1:1"});
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Figure 11: page migration volume (1:1 ratio)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    sweep::ResultSink table({"system", "cc pages", "cc GiB", "cc cpu%",
                             "dlrm pages", "dlrm GiB", "dlrm cpu%"});
    std::size_t job = 0;
    for (const auto& system : systems) {
        auto& row = table.row().cell(system);
        for (std::size_t w = 0; w < apps.size(); ++w) {
            const auto& r = runs[job++];
            row.cell(r.totals.migrated_pages())
                .cell(r.migrated_gib(2ull << 20), 2)
                .cell(100.0 * static_cast<double>(r.totals.overhead_ns) /
                          static_cast<double>(r.runtime_ns),
                      2);
        }
    }
    emit(table, opt);
    std::cout << "\nExpected shape: MEMTIS highest volume and ~10x "
                 "ArtMem's migration-thread CPU overhead; ArtMem and "
                 "AutoNUMA low; ArtMem's DLRM volume far below its CC "
                 "volume.\n";
    return 0;
}
