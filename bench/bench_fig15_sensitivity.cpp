/**
 * @file
 * Figure 15 reproduction: sensitivity of ArtMem to its RL and system
 * hyperparameters — (a) learning rate alpha, (b) discount factor
 * gamma, (c) exploration epsilon, (d) PEBS sampling period, (e) reward
 * target beta, (f) migration/decision interval. Each sweep reports the
 * speedup over static tiering averaged across ratios {1:1, 1:4, 1:8}
 * on a skewed workload. Paper optima: alpha=e^-2, gamma=e^-1,
 * epsilon=0.3, beta in 8-10, interval in the moderate band.
 *
 * This figure always prints tables (the sweeps have heterogeneous
 * axes), matching the pre-sweep-runner behaviour.
 */
#include <cmath>
#include <functional>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace artmem;
using namespace artmem::bench;

using Apply =
    std::function<void(core::ArtMemConfig&, sim::EngineConfig&)>;

struct Sweep {
    std::string name;
    std::vector<std::pair<std::string, Apply>> settings;
};

const std::vector<sim::RatioSpec> kRatios = {{1, 1}, {1, 4}, {1, 8}};

}  // namespace

int
main(int argc, char** argv)
{
    const auto opt = BenchOptions::parse(argc, argv, 4000000);

    std::cout << "Figure 15: hyperparameter sensitivity (speedup over "
                 "static on pattern S3, averaged over 1:1/1:4/1:8)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n";

    const std::vector<Sweep> sweeps = {
        {"a. learning rate alpha",
         {{"e^-1", [](auto& c, auto&) { c.agent.alpha = std::exp(-1.0); }},
          {"e^-2 (paper)",
           [](auto& c, auto&) { c.agent.alpha = std::exp(-2.0); }},
          {"e^-3", [](auto& c, auto&) { c.agent.alpha = std::exp(-3.0); }},
          {"e^-4",
           [](auto& c, auto&) { c.agent.alpha = std::exp(-4.0); }}}},
        {"b. discount factor gamma",
         {{"e^-1 (paper)",
           [](auto& c, auto&) { c.agent.gamma = std::exp(-1.0); }},
          {"e^-2", [](auto& c, auto&) { c.agent.gamma = std::exp(-2.0); }},
          {"e^-3", [](auto& c, auto&) { c.agent.gamma = std::exp(-3.0); }},
          {"0.9", [](auto& c, auto&) { c.agent.gamma = 0.9; }}}},
        {"c. exploration epsilon",
         {{"0.1", [](auto& c, auto&) { c.agent.epsilon = 0.1; }},
          {"0.3 (paper)", [](auto& c, auto&) { c.agent.epsilon = 0.3; }},
          {"0.5", [](auto& c, auto&) { c.agent.epsilon = 0.5; }},
          {"0.7", [](auto& c, auto&) { c.agent.epsilon = 0.7; }}}},
        {"d. PEBS sampling period",
         {{"5", [](auto&, auto& e) { e.pebs.period = 5; }},
          {"10 (default)", [](auto&, auto& e) { e.pebs.period = 10; }},
          {"20", [](auto&, auto& e) { e.pebs.period = 20; }},
          {"50", [](auto&, auto& e) { e.pebs.period = 50; }}}},
        {"e. reward target beta",
         {{"6", [](auto& c, auto&) { c.beta = 6.0; }},
          {"8", [](auto& c, auto&) { c.beta = 8.0; }},
          {"9 (paper 8-10)", [](auto& c, auto&) { c.beta = 9.0; }},
          {"10", [](auto& c, auto&) { c.beta = 10.0; }},
          {"12", [](auto& c, auto&) { c.beta = 12.0; }}}},
        {"f. migration interval",
         {{"2ms", [](auto&, auto& e) { e.decision_interval = 2000000; }},
          {"5ms", [](auto&, auto& e) { e.decision_interval = 5000000; }},
          {"10ms (default)",
           [](auto&, auto& e) { e.decision_interval = 10000000; }},
          {"25ms",
           [](auto&, auto& e) { e.decision_interval = 25000000; }},
          {"80ms",
           [](auto&, auto& e) { e.decision_interval = 80000000; }}}}};

    // Flatten every sweep into one job list in the old serial order:
    // sweep -> setting -> ratio -> {static, artmem}.
    sweep::SweepSpec sweepspec;
    for (const auto& sw : sweeps) {
        for (const auto& [label, apply] : sw.settings) {
            core::ArtMemConfig cfg;
            cfg.seed = opt.seed;
            sim::EngineConfig engine;
            apply(cfg, engine);
            for (const auto& ratio : kRatios) {
                auto static_spec = make_spec(opt, "s3", "static", ratio);
                static_spec.engine = engine;
                sweepspec.add(std::move(static_spec),
                              {sw.name, label, "static", ratio.label()});
                auto spec = make_spec(opt, "s3", "artmem", ratio);
                spec.engine = engine;
                sweepspec.add_with_policy(
                    std::move(spec),
                    {sw.name, label, "artmem", ratio.label()},
                    [cfg] { return sim::make_artmem(cfg); });
            }
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::size_t job = 0;
    for (const auto& sw : sweeps) {
        Table table({sw.name, "speedup vs static"});
        for (const auto& [label, apply] : sw.settings) {
            OnlineStats speedup;
            for (std::size_t r = 0; r < kRatios.size(); ++r) {
                const auto& base = runs[job++];
                const auto& artmem = runs[job++];
                speedup.add(static_cast<double>(base.runtime_ns) /
                            static_cast<double>(artmem.runtime_ns));
            }
            table.row().cell(label).cell(speedup.mean(), 3);
        }
        std::cout << "\n(" << sw.name << ")\n";
        table.print(std::cout);
    }

    std::cout << "\nThe paper's migration interval of 10 s wall-clock "
                 "maps to the 10 ms simulated default here; the sweep "
                 "covers the same too-short..too-long band.\n";
    return 0;
}
