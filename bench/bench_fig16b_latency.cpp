/**
 * @file
 * Figure 16b reproduction: sensitivity to the relative latency of the
 * slow tier. The capacity tier is configured as remote-socket DRAM
 * (152 ns), local PM (323 ns) and remote PM (410 ns); SSSP with 32 GiB
 * of local DRAM; all systems normalized to AutoNUMA at 152 ns. Paper:
 * the gap between systems widens with the latency gap, and ArtMem
 * stays best across all three.
 */
#include "bench_common.hpp"
#include "workloads/factory.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    constexpr Bytes kPage = 2ull << 20;
    constexpr Bytes kFast = 32ull << 30;

    struct SlowTier {
        const char* label;
        SimTimeNs latency_ns;
        double bandwidth_gbps;
    };
    const SlowTier tiers[] = {
        {"remote DRAM (152ns)", 152, 40.0},
        {"local PM (323ns)", 323, 26.0},
        {"remote PM (410ns)", 410, 18.0},
    };
    const std::vector<std::string> systems = {
        "memtis", "autotiering", "tpp",      "autonuma",
        "nimble", "tiering08",   "artmem"};

    std::cout << "Figure 16b: sensitivity to slow-tier latency (SSSP, "
                 "32 GiB local DRAM; normalized to AutoNUMA at 152ns; "
                 "Multi-clock omitted as in the paper)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    auto add_job = [&](sweep::SweepSpec& spec, const std::string& system,
                       const SlowTier& slow) {
        return spec.add_run(
            {system, slow.label},
            [system, slow, &opt] {
                auto gen = workloads::make_workload("sssp", kPage,
                                                    opt.accesses, opt.seed);
                auto mc = sim::make_machine_config(gen->footprint(), kFast,
                                                   kPage);
                mc.tiers[1].load_latency_ns = slow.latency_ns;
                mc.tiers[1].bandwidth_gbps = slow.bandwidth_gbps;
                memsim::TieredMachine machine(mc);
                auto policy = sim::make_policy(system, opt.seed);
                sim::EngineConfig engine;
                return sim::run_simulation(*gen, *policy, machine, engine);
            });
    };

    sweep::SweepSpec sweepspec;
    const std::size_t base_job = add_job(sweepspec, "autonuma", tiers[0]);
    for (const auto& system : systems)
        for (const auto& tier : tiers)
            add_job(sweepspec, system, tier);
    const auto runs = make_runner(opt).run(sweepspec);
    const auto& base = runs[base_job];

    std::vector<std::string> headers = {"system"};
    for (const auto& t : tiers)
        headers.push_back(t.label);
    sweep::ResultSink table(std::move(headers));
    std::size_t job = base_job + 1;
    for (const auto& system : systems) {
        auto& row = table.row().cell(system);
        for (std::size_t t = 0; t < std::size(tiers); ++t)
            row.cell(normalized_runtime(runs[job++], base), 3);
    }
    emit(table, opt);
    return 0;
}
