/**
 * @file
 * Figure 16a reproduction: memory-size scalability. CC's footprint is
 * grown from 69 GiB to 290 GiB by scaling the input graph while the
 * fast tier stays fixed at 54 GiB; ArtMem vs the strongest baselines.
 * Paper: ArtMem keeps improving (>= 6%) as the footprint grows.
 */
#include "bench_common.hpp"
#include "workloads/graph.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    constexpr Bytes kPage = 2ull << 20;
    constexpr Bytes kFast = 54ull << 30;
    const std::vector<Bytes> footprints = {69ull << 30, 120ull << 30,
                                           200ull << 30, 290ull << 30};
    const std::vector<std::string> systems = {"memtis", "autonuma",
                                              "multiclock", "artmem"};

    std::cout << "Figure 16a: CC memory-size scalability, fast tier "
                 "fixed at 54 GiB (runtime normalized to static)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    // Custom machines (fixed fast tier, scaled footprint), so each job
    // carries its own run lambda instead of a RunSpec.
    sweep::SweepSpec sweepspec;
    for (const Bytes footprint : footprints) {
        auto params = workloads::GraphWorkload::cc(opt.accesses);
        params.footprint = footprint;
        auto add_job = [&](const std::string& system) {
            sweepspec.add_run(
                {std::to_string(footprint >> 30) + " GiB", system},
                [params, footprint, system, &opt] {
                    workloads::GraphWorkload gen(params, kPage, opt.seed);
                    auto mc =
                        sim::make_machine_config(footprint, kFast, kPage);
                    memsim::TieredMachine machine(mc);
                    auto policy = sim::make_policy(system, opt.seed);
                    sim::EngineConfig engine;
                    return sim::run_simulation(gen, *policy, machine,
                                               engine);
                });
        };
        add_job("static");
        for (const auto& system : systems)
            add_job(system);
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::vector<std::string> headers = {"footprint"};
    for (const auto& s : systems)
        headers.push_back(s);
    sweep::ResultSink table(std::move(headers));

    std::size_t job = 0;
    for (const Bytes footprint : footprints) {
        const auto& base = runs[job++];
        auto& row = table.row().cell(
            std::to_string(footprint >> 30) + " GiB");
        for (std::size_t s = 0; s < systems.size(); ++s)
            row.cell(normalized_runtime(runs[job++], base), 3);
    }
    emit(table, opt);
    std::cout << "\nExpected: ArtMem stays below 1.0 at every footprint "
                 "(the paper reports >= 6% improvement up to 290 GiB).\n";
    return 0;
}
