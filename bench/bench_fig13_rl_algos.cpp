/**
 * @file
 * Figure 13 + Section 6.3.5 reproduction: Q-learning vs SARSA inside
 * ArtMem. Four workload scenarios x six memory ratios; normalized
 * improvement over static tiering, averaged per workload. Paper
 * finding: the two algorithms perform similarly.
 */
#include "bench_common.hpp"
#include "util/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 4000000);

    const std::vector<std::string> workloads = {"s1", "ycsb", "xsbench",
                                                "cc"};
    const auto ratios = sim::paper_ratios();

    std::cout << "Figure 13: Q-learning vs SARSA (speedup over static, "
                 "averaged across the six ratios)\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n\n";

    Table table({"workload", "q-learning", "sarsa"});
    for (const auto& workload : workloads) {
        auto& row = table.row().cell(workload);
        for (const auto algo :
             {rl::Algorithm::kQLearning, rl::Algorithm::kSarsa}) {
            OnlineStats speedup;
            for (const auto& ratio : ratios) {
                auto static_spec = make_spec(opt, workload, "static", ratio);
                const auto base = sim::run_experiment(static_spec);
                core::ArtMemConfig cfg;
                cfg.seed = opt.seed;
                cfg.agent.algorithm = algo;
                auto policy = sim::make_artmem(cfg);
                auto spec = make_spec(opt, workload, "artmem", ratio);
                const auto r = sim::run_experiment(spec, *policy);
                speedup.add(static_cast<double>(base.runtime_ns) /
                            static_cast<double>(r.runtime_ns));
            }
            row.cell(speedup.mean(), 3);
        }
    }
    emit(table, opt);
    std::cout << "\nExpected: both columns close to each other "
                 "(paper: similar performance).\n";
    return 0;
}
