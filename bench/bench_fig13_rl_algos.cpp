/**
 * @file
 * Figure 13 + Section 6.3.5 reproduction: Q-learning vs SARSA inside
 * ArtMem. Four workload scenarios x six memory ratios; normalized
 * improvement over static tiering, averaged per workload. Paper
 * finding: the two algorithms perform similarly.
 */
#include "bench_common.hpp"
#include "util/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 4000000);

    const std::vector<std::string> workloads = {"s1", "ycsb", "xsbench",
                                                "cc"};
    const std::vector<rl::Algorithm> algos = {rl::Algorithm::kQLearning,
                                              rl::Algorithm::kSarsa};
    const auto ratios = sim::paper_ratios();

    // Old serial order: workload -> algorithm -> ratio -> {static,
    // artmem}; the static baseline is re-run per cell exactly as the
    // serial harness did, so the emitted numbers stay bit-identical.
    sweep::SweepSpec sweepspec;
    for (const auto& workload : workloads) {
        for (const auto algo : algos) {
            for (const auto& ratio : ratios) {
                sweepspec.add(make_spec(opt, workload, "static", ratio),
                              {workload, "static", ratio.label()});
                core::ArtMemConfig cfg;
                cfg.seed = opt.seed;
                cfg.agent.algorithm = algo;
                sweepspec.add_with_policy(
                    make_spec(opt, workload, "artmem", ratio),
                    {workload,
                     algo == rl::Algorithm::kQLearning ? "q-learning"
                                                       : "sarsa",
                     ratio.label()},
                    [cfg] { return sim::make_artmem(cfg); });
            }
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Figure 13: Q-learning vs SARSA (speedup over static, "
                 "averaged across the six ratios)\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n\n";

    sweep::ResultSink table({"workload", "q-learning", "sarsa"});
    std::size_t job = 0;
    for (const auto& workload : workloads) {
        auto& row = table.row().cell(workload);
        for (std::size_t a = 0; a < algos.size(); ++a) {
            OnlineStats speedup;
            for (std::size_t r = 0; r < ratios.size(); ++r) {
                const auto& base = runs[job++];
                const auto& artmem = runs[job++];
                speedup.add(static_cast<double>(base.runtime_ns) /
                            static_cast<double>(artmem.runtime_ns));
            }
            row.cell(speedup.mean(), 3);
        }
    }
    emit(table, opt);
    std::cout << "\nExpected: both columns close to each other "
                 "(paper: similar performance).\n";
    return 0;
}
