/**
 * @file
 * Figure 2 reproduction: the seven tiering systems (plus ArtMem) on the
 * four synthetic access patterns S1-S4, 16 GiB DRAM + 16 GiB PM,
 * normalized execution time (static tiering = 1.0; lower is better)
 * and the per-run DRAM access ratio.
 *
 * Expected shape (paper Section 3.1):
 *  - S1: AutoTiering/Multi-clock strong; MEMTIS good but migrates ~15GB;
 *  - S2: everything struggles; MEMTIS and Nimble worst (frequency lags
 *    recency); several systems barely beat static;
 *  - S3: Multi-clock's gap narrows; Nimble's weakness amplified;
 *  - S4: AutoNUMA/TPP best; Multi-clock stuck; MEMTIS thrashes.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv);

    std::cout << "Figure 2: normalized runtime on synthetic patterns "
                 "(static = 1.00, lower is better)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "  [16 GiB fast : 16 GiB slow]\n\n";

    const std::vector<std::string> systems = {
        "memtis", "autotiering", "tpp",       "autonuma",
        "multiclock", "nimble",  "tiering08", "artmem"};

    // Per pattern: the static baseline followed by every system.
    sweep::SweepSpec sweepspec;
    std::vector<std::size_t> base_jobs;
    std::vector<std::vector<std::size_t>> system_jobs;
    for (int k = 1; k <= 4; ++k) {
        std::string pattern = "s";  // built up to dodge gcc-12 PR105651
        pattern += std::to_string(k);
        base_jobs.push_back(
            sweepspec.add(make_spec(opt, pattern, "static", {1, 1}),
                          {pattern, "static", "1:1"}));
        auto& jobs = system_jobs.emplace_back();
        for (const auto& system : systems) {
            jobs.push_back(
                sweepspec.add(make_spec(opt, pattern, system, {1, 1}),
                              {pattern, system, "1:1"}));
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    sweep::ResultSink runtime({"pattern", "static", "memtis",
                               "autotiering", "tpp", "autonuma",
                               "multiclock", "nimble", "tiering08",
                               "artmem"});
    sweep::ResultSink ratio({"pattern", "static", "memtis", "autotiering",
                             "tpp", "autonuma", "multiclock", "nimble",
                             "tiering08", "artmem"});
    sweep::ResultSink volume({"pattern", "memtis", "autotiering", "tpp",
                              "autonuma", "multiclock", "nimble",
                              "tiering08", "artmem"});

    for (std::size_t k = 0; k < 4; ++k) {
        std::string pattern = "s";  // built up to dodge gcc-12 PR105651
        pattern += std::to_string(k + 1);
        const auto& base = runs[base_jobs[k]];

        auto& rt = runtime.row().cell(pattern).cell(1.0, 2);
        auto& ra = ratio.row().cell(pattern).cell(base.fast_ratio, 3);
        auto& vol = volume.row().cell(pattern);
        for (std::size_t s = 0; s < systems.size(); ++s) {
            const auto& r = runs[system_jobs[k][s]];
            rt.cell(normalized_runtime(r, base), 2);
            ra.cell(r.fast_ratio, 3);
            vol.cell(r.migrated_gib(2ull << 20), 2);
        }
    }

    emit(runtime, opt);
    std::cout << "\nDRAM access ratio (fraction of accesses served by the "
                 "fast tier):\n";
    emit(ratio, opt);
    std::cout << "\nMigrated volume (GiB):\n";
    emit(volume, opt);
    return 0;
}
