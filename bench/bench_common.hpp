/**
 * @file
 * Shared plumbing for the figure/table bench harnesses: common CLI
 * flags (--accesses, --seed, --quick, --csv, --json, --jobs,
 * --shards), the sweep-runner construction, result emission, and the
 * normalization helpers the figures share.
 */
#ifndef ARTMEM_BENCH_COMMON_HPP
#define ARTMEM_BENCH_COMMON_HPP

#include <algorithm>
#include <initializer_list>
#include <iostream>
#include <string>
#include <string_view>

#include "sim/experiment.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace artmem::bench {

/**
 * Flags every harness accepts.
 *
 * --quick divides the harness's *default* access count by 4 for a fast
 * smoke run; an explicit --accesses=N is always taken verbatim, with
 * or without --quick (so --quick cannot silently shrink a count the
 * user asked for).
 */
struct BenchOptions {
    std::uint64_t accesses = 8000000;
    std::uint64_t seed = 42;
    bool csv = false;
    bool json = false;
    /** Sweep worker threads (--jobs); 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Access-path shards per run (--shards); 0 = legacy loop.
     *  Byte-identical output for every value, like --jobs
     *  (scripts/ci.sh diffs a two-way fig7 run). */
    unsigned shards = 0;
    /** Phase-2 merge for sharded runs (--merge=parallel|serial);
     *  parallel is the default, serial the oracle. Byte-identical
     *  either way. */
    bool parallel_merge = true;

    /**
     * Parse the shared flag set; @p extra_flags names any harness-
     * specific flags. Anything else is a typo — fatal() naming the
     * offending flag rather than silently running the default
     * configuration.
     */
    static BenchOptions
    parse(int argc, char** argv, std::uint64_t default_accesses = 8000000,
          std::initializer_list<std::string_view> extra_flags = {})
    {
        const auto args = CliArgs::parse(argc, argv);
        static constexpr std::string_view kShared[] = {
            "accesses", "seed", "quick", "csv", "json", "jobs", "shards",
            "merge"};
        for (const auto& name : args.flag_names()) {
            const bool known =
                std::find(std::begin(kShared), std::end(kShared), name) !=
                    std::end(kShared) ||
                std::find(extra_flags.begin(), extra_flags.end(), name) !=
                    extra_flags.end();
            if (!known)
                fatal("unknown flag --", name, " (known flags: --accesses ",
                      "--seed --quick --csv --json --jobs --shards and ",
                      "harness-specific ones; see the file header of this ",
                      "bench)");
        }
        BenchOptions opt;
        if (args.has("accesses")) {
            opt.accesses = static_cast<std::uint64_t>(args.get_int(
                "accesses", static_cast<long long>(default_accesses)));
        } else {
            opt.accesses = default_accesses;
            if (args.get_bool("quick", false))
                opt.accesses /= 4;
        }
        opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
        opt.csv = args.get_bool("csv", false);
        opt.json = args.get_bool("json", false);
        opt.jobs = static_cast<unsigned>(args.get_int("jobs", 0));
        opt.shards = static_cast<unsigned>(args.get_int("shards", 0));
        const std::string merge = args.get_string("merge", "parallel");
        if (merge == "parallel")
            opt.parallel_merge = true;
        else if (merge == "serial")
            opt.parallel_merge = false;
        else
            fatal("--merge must be 'parallel' or 'serial', got '", merge,
                  "'");
        return opt;
    }

    /** Output format selected by --csv / --json (table otherwise). */
    sweep::Format format() const
    {
        if (json)
            return sweep::Format::kJson;
        return csv ? sweep::Format::kCsv : sweep::Format::kTable;
    }
};

/** Print a finished result sink in the selected format; dies if the
 *  stream goes bad (a truncated result file must not look like a
 *  completed run to the golden diff). */
inline void
emit(sweep::ResultSink& sink, const BenchOptions& opt)
{
    if (!sink.emit(std::cout, opt.format()))
        fatal("result emission failed: output stream went bad");
}

/** Build the sweep runner configured by --jobs. */
inline sweep::SweepRunner
make_runner(const BenchOptions& opt)
{
    return sweep::SweepRunner({.jobs = opt.jobs, .progress = true});
}

/** Build a RunSpec with the harness-wide defaults applied. */
inline sim::RunSpec
make_spec(const BenchOptions& opt, std::string workload, std::string policy,
          sim::RatioSpec ratio)
{
    sim::RunSpec spec;
    spec.workload = std::move(workload);
    spec.policy = std::move(policy);
    spec.ratio = ratio;
    spec.accesses = opt.accesses;
    spec.seed = opt.seed;
    spec.engine.shards = opt.shards;
    spec.engine.parallel_merge = opt.parallel_merge;
    return spec;
}

/**
 * Runtime of @p r relative to @p base — the figures' "normalized to
 * AutoNUMA at 1:16" / "normalized to static" convention (lower is
 * better).
 */
inline double
normalized_runtime(const sim::RunResult& r, const sim::RunResult& base)
{
    return static_cast<double>(r.runtime_ns) /
           static_cast<double>(base.runtime_ns);
}

/**
 * Append the Figure 7 / Table 3 baseline job — AutoNUMA at 1:16 on
 * @p workload — to @p spec and return its index, so every harness that
 * normalizes to that baseline computes it once per workload and reuses
 * the result.
 */
inline std::size_t
add_autonuma_baseline_job(sweep::SweepSpec& spec, const BenchOptions& opt,
                          const std::string& workload)
{
    return spec.add(make_spec(opt, workload, "autonuma", {1, 16}),
                    {workload, "autonuma", "1:16"});
}

}  // namespace artmem::bench

#endif  // ARTMEM_BENCH_COMMON_HPP
