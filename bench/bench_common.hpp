/**
 * @file
 * Shared plumbing for the figure/table bench harnesses: common CLI
 * flags (--accesses, --seed, --quick, --csv) and run helpers.
 */
#ifndef ARTMEM_BENCH_COMMON_HPP
#define ARTMEM_BENCH_COMMON_HPP

#include <iostream>
#include <string>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace artmem::bench {

/** Flags every harness accepts. */
struct BenchOptions {
    std::uint64_t accesses = 8000000;
    std::uint64_t seed = 42;
    bool csv = false;

    static BenchOptions
    parse(int argc, char** argv, std::uint64_t default_accesses = 8000000)
    {
        const auto args = CliArgs::parse(argc, argv);
        BenchOptions opt;
        opt.accesses = static_cast<std::uint64_t>(
            args.get_int("accesses", static_cast<long long>(
                                         default_accesses)));
        if (args.get_bool("quick", false))
            opt.accesses /= 4;
        opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
        opt.csv = args.get_bool("csv", false);
        return opt;
    }
};

/** Print a finished table in the selected format. */
inline void
emit(Table& table, const BenchOptions& opt)
{
    if (opt.csv)
        table.print_csv(std::cout);
    else
        table.print(std::cout);
}

/** Build a RunSpec with the harness-wide defaults applied. */
inline sim::RunSpec
make_spec(const BenchOptions& opt, std::string workload, std::string policy,
          sim::RatioSpec ratio)
{
    sim::RunSpec spec;
    spec.workload = std::move(workload);
    spec.policy = std::move(policy);
    spec.ratio = ratio;
    spec.accesses = opt.accesses;
    spec.seed = opt.seed;
    return spec;
}

}  // namespace artmem::bench

#endif  // ARTMEM_BENCH_COMMON_HPP
