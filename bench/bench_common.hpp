/**
 * @file
 * Shared plumbing for the figure/table bench harnesses: common CLI
 * flags (--accesses, --seed, --quick, --csv) and run helpers.
 */
#ifndef ARTMEM_BENCH_COMMON_HPP
#define ARTMEM_BENCH_COMMON_HPP

#include <algorithm>
#include <initializer_list>
#include <iostream>
#include <string>
#include <string_view>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace artmem::bench {

/** Flags every harness accepts. */
struct BenchOptions {
    std::uint64_t accesses = 8000000;
    std::uint64_t seed = 42;
    bool csv = false;

    /**
     * Parse the shared flag set; @p extra_flags names any harness-
     * specific flags. Anything else is a typo — fatal() naming the
     * offending flag rather than silently running the default
     * configuration.
     */
    static BenchOptions
    parse(int argc, char** argv, std::uint64_t default_accesses = 8000000,
          std::initializer_list<std::string_view> extra_flags = {})
    {
        const auto args = CliArgs::parse(argc, argv);
        static constexpr std::string_view kShared[] = {"accesses", "seed",
                                                       "quick", "csv"};
        for (const auto& name : args.flag_names()) {
            const bool known =
                std::find(std::begin(kShared), std::end(kShared), name) !=
                    std::end(kShared) ||
                std::find(extra_flags.begin(), extra_flags.end(), name) !=
                    extra_flags.end();
            if (!known)
                fatal("unknown flag --", name, " (known flags: --accesses ",
                      "--seed --quick --csv and harness-specific ones; see ",
                      "the file header of this bench)");
        }
        BenchOptions opt;
        opt.accesses = static_cast<std::uint64_t>(
            args.get_int("accesses", static_cast<long long>(
                                         default_accesses)));
        if (args.get_bool("quick", false))
            opt.accesses /= 4;
        opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
        opt.csv = args.get_bool("csv", false);
        return opt;
    }
};

/** Print a finished table in the selected format. */
inline void
emit(Table& table, const BenchOptions& opt)
{
    if (opt.csv)
        table.print_csv(std::cout);
    else
        table.print(std::cout);
}

/** Build a RunSpec with the harness-wide defaults applied. */
inline sim::RunSpec
make_spec(const BenchOptions& opt, std::string workload, std::string policy,
          sim::RatioSpec ratio)
{
    sim::RunSpec spec;
    spec.workload = std::move(workload);
    spec.policy = std::move(policy);
    spec.ratio = ratio;
    spec.accesses = opt.accesses;
    spec.seed = opt.seed;
    return spec;
}

}  // namespace artmem::bench

#endif  // ARTMEM_BENCH_COMMON_HPP
