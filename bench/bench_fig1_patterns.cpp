/**
 * @file
 * Figure 1 reproduction: the four manually generated access patterns,
 * rendered as time x address heatmaps (access counts per address bucket
 * per time decile) so the hot regions and phase behaviour of S1-S4 are
 * visible in text form.
 */
#include <vector>

#include "bench_common.hpp"
#include "workloads/masim.hpp"
#include "workloads/patterns.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 2000000);

    constexpr Bytes kPage = 2ull << 20;
    constexpr int kTimeBuckets = 10;
    constexpr int kAddrBuckets = 16;

    std::cout << "Figure 1: four manually generated access patterns\n"
              << "(rows: time deciles; columns: 2 GiB address buckets; "
                 "cell: % of the decile's accesses)\n";

    for (int k = 1; k <= 4; ++k) {
        auto spec = workloads::pattern_spec(k, opt.accesses);
        workloads::Masim gen(spec, kPage, opt.seed);
        const auto pages =
            static_cast<PageId>(spec.footprint / kPage);

        std::vector<std::vector<std::uint64_t>> heat(
            kTimeBuckets, std::vector<std::uint64_t>(kAddrBuckets, 0));
        std::vector<PageId> buf(8192);
        std::uint64_t emitted = 0;
        std::size_t n;
        while ((n = gen.fill(buf)) > 0) {
            for (std::size_t i = 0; i < n; ++i) {
                const auto t = static_cast<int>(
                    emitted * kTimeBuckets / opt.accesses);
                const auto a = static_cast<int>(
                    static_cast<std::uint64_t>(buf[i]) * kAddrBuckets /
                    pages);
                ++heat[std::min(t, kTimeBuckets - 1)]
                      [std::min(a, kAddrBuckets - 1)];
                ++emitted;
            }
        }

        std::cout << "\nPattern S" << k << " (" << spec.phases.size()
                  << " phase(s), 32 GiB footprint):\n";
        std::vector<std::string> headers = {"time"};
        for (int a = 0; a < kAddrBuckets; ++a)
            headers.push_back(std::to_string(a * 2) + "G");
        Table table(std::move(headers));
        for (int t = 0; t < kTimeBuckets; ++t) {
            std::uint64_t row_total = 0;
            for (int a = 0; a < kAddrBuckets; ++a)
                row_total += heat[t][a];
            auto& row = table.row().cell(std::to_string(t * 10) + "%");
            for (int a = 0; a < kAddrBuckets; ++a) {
                const double pct =
                    row_total == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(heat[t][a]) /
                              static_cast<double>(row_total);
                row.cell(pct, 1);
            }
        }
        emit(table, opt);
    }
    return 0;
}
