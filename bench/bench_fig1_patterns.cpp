/**
 * @file
 * Figure 1 reproduction: the four manually generated access patterns,
 * rendered as time x address heatmaps (access counts per address bucket
 * per time decile) so the hot regions and phase behaviour of S1-S4 are
 * visible in text form.
 */
#include <vector>

#include "bench_common.hpp"
#include "workloads/masim.hpp"
#include "workloads/patterns.hpp"

namespace {

constexpr artmem::Bytes kPage = 2ull << 20;
constexpr int kTimeBuckets = 10;
constexpr int kAddrBuckets = 16;

/** Per-pattern product of the sweep: the bucketed access counts. */
struct Heatmap {
    std::vector<std::vector<std::uint64_t>> heat;
};

}  // namespace

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 2000000);

    std::cout << "Figure 1: four manually generated access patterns\n"
              << "(rows: time deciles; columns: 2 GiB address buckets; "
                 "cell: % of the decile's accesses)\n";

    // Heatmaps are not RunResults, so this sweep goes through the
    // runner's generic map(): one job per pattern, results by index.
    auto runner = make_runner(opt);
    const auto maps = runner.map<Heatmap>(4, [&opt](std::size_t idx) {
        const int k = static_cast<int>(idx) + 1;
        auto spec = workloads::pattern_spec(k, opt.accesses);
        workloads::Masim gen(spec, kPage, opt.seed);
        const auto pages = static_cast<PageId>(spec.footprint / kPage);

        Heatmap out;
        out.heat.assign(static_cast<std::size_t>(kTimeBuckets),
                        std::vector<std::uint64_t>(
                            static_cast<std::size_t>(kAddrBuckets), 0));
        std::vector<PageId> buf(8192);
        std::uint64_t emitted = 0;
        std::size_t n;
        while ((n = gen.fill(buf)) > 0) {
            for (std::size_t i = 0; i < n; ++i) {
                const auto t = static_cast<int>(
                    emitted * kTimeBuckets / opt.accesses);
                const auto a = static_cast<int>(
                    static_cast<std::uint64_t>(buf[i]) * kAddrBuckets /
                    pages);
                ++out.heat[static_cast<std::size_t>(
                    std::min(t, kTimeBuckets - 1))][static_cast<std::size_t>(
                    std::min(a, kAddrBuckets - 1))];
                ++emitted;
            }
        }
        return out;
    });

    for (int k = 1; k <= 4; ++k) {
        const auto spec = workloads::pattern_spec(k, opt.accesses);
        const auto& heat = maps[static_cast<std::size_t>(k - 1)].heat;

        std::cout << "\nPattern S" << k << " (" << spec.phases.size()
                  << " phase(s), 32 GiB footprint):\n";
        std::vector<std::string> headers = {"time"};
        for (int a = 0; a < kAddrBuckets; ++a)
            headers.push_back(std::to_string(a * 2) + "G");
        sweep::ResultSink table(std::move(headers));
        for (int t = 0; t < kTimeBuckets; ++t) {
            std::uint64_t row_total = 0;
            for (int a = 0; a < kAddrBuckets; ++a)
                row_total += heat[static_cast<std::size_t>(t)]
                                 [static_cast<std::size_t>(a)];
            auto& row = table.row().cell(std::to_string(t * 10) + "%");
            for (int a = 0; a < kAddrBuckets; ++a) {
                const auto count = heat[static_cast<std::size_t>(t)]
                                       [static_cast<std::size_t>(a)];
                const double pct =
                    row_total == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(count) /
                              static_cast<double>(row_total);
                row.cell(pct, 1);
            }
        }
        emit(table, opt);
    }
    return 0;
}
