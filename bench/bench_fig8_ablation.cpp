/**
 * @file
 * Figure 8 reproduction: ablation of ArtMem's three key components —
 * the RL scope control, the LRU page sorting, and the dynamic hotness
 * threshold — against the full system and the DRAM-only lower bound.
 * The paper finds RL contributes most, with its advantage growing as
 * the DRAM share shrinks; page sorting adds >10% on PR/XSBench-like
 * workloads.
 */
#include "bench_common.hpp"
#include "util/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    struct Variant {
        const char* label;
        bool use_rl;
        bool use_sorting;
        bool use_dynamic_threshold;
    };
    const std::vector<Variant> variants = {
        {"artmem (full)", true, true, true},
        {"-rl (heuristic scope)", false, true, true},
        {"-sorting (freq only)", true, false, true},
        {"-dyn-threshold", true, true, false},
    };
    const std::vector<std::string> workloads = {"ycsb", "cc", "xsbench",
                                                "pr"};
    const std::vector<sim::RatioSpec> ratios = {{1, 1}, {1, 4}, {1, 8}};

    // Per ratio: the full-system reference per workload, then every
    // ablation variant x workload (the old serial loop order).
    sweep::SweepSpec sweepspec;
    auto add_variant_job = [&](const Variant& variant,
                               const std::string& workload,
                               const sim::RatioSpec& ratio) {
        core::ArtMemConfig cfg;
        cfg.seed = opt.seed;
        cfg.use_rl = variant.use_rl;
        cfg.use_sorting = variant.use_sorting;
        cfg.use_dynamic_threshold = variant.use_dynamic_threshold;
        return sweepspec.add_with_policy(
            make_spec(opt, workload, "artmem", ratio),
            {workload, variant.label, ratio.label()},
            [cfg] { return sim::make_artmem(cfg); });
    };
    std::vector<std::vector<std::size_t>> full_jobs;
    std::vector<std::vector<std::vector<std::size_t>>> variant_jobs;
    for (const auto& ratio : ratios) {
        auto& full = full_jobs.emplace_back();
        for (const auto& workload : workloads)
            full.push_back(add_variant_job(variants[0], workload, ratio));
        auto& by_variant = variant_jobs.emplace_back();
        for (const auto& variant : variants) {
            auto& jobs = by_variant.emplace_back();
            for (const auto& workload : workloads)
                jobs.push_back(add_variant_job(variant, workload, ratio));
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Figure 8: ArtMem component ablation, runtime "
                 "normalized to the full system (lower is better;\n"
              << "'dram-only' shows the remaining gap to all-fast "
                 "execution).\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n";

    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
        std::cout << "\nDRAM:PM = " << ratios[ri].label() << "\n";
        std::vector<std::string> headers = {"variant"};
        for (const auto& w : workloads)
            headers.push_back(w);
        headers.push_back("geomean");
        sweep::ResultSink table(std::move(headers));

        std::vector<double> full(workloads.size());
        for (std::size_t i = 0; i < workloads.size(); ++i)
            full[i] =
                static_cast<double>(runs[full_jobs[ri][i]].runtime_ns);

        for (std::size_t v = 0; v < variants.size(); ++v) {
            auto& row = table.row().cell(variants[v].label);
            std::vector<double> normalized;
            for (std::size_t i = 0; i < workloads.size(); ++i) {
                const auto& r = runs[variant_jobs[ri][v][i]];
                const double value =
                    static_cast<double>(r.runtime_ns) / full[i];
                normalized.push_back(value);
                row.cell(value, 3);
            }
            row.cell(geomean(normalized), 3);
        }

        // DRAM-only lower bound: accesses * fast latency.
        auto& dram_row = table.row().cell("dram-only");
        std::vector<double> dram_norm;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const double bound =
                static_cast<double>(opt.accesses) * 92.0 / full[i];
            dram_norm.push_back(bound);
            dram_row.cell(bound, 3);
        }
        dram_row.cell(geomean(dram_norm), 3);
        emit(table, opt);
    }
    return 0;
}
