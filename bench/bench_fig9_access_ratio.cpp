/**
 * @file
 * Figure 9 reproduction: DRAM access ratio of SSSP and CC as the
 * DRAM:PM ratio varies, comparing the heuristic scope adjustment
 * (ArtMem with use_rl = false) against the full RL-based system.
 * Paper shape: RL >= heuristic everywhere; for CC both converge once
 * the compact hot set fits (>= 1:4 in the paper), while SSSP's broad
 * hot set keeps improving with more DRAM and RL stays ahead.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);
    const auto ratios = sim::paper_ratios();

    std::cout << "Figure 9: DRAM access ratio, heuristic vs RL scope "
                 "adjustment\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n";

    for (const std::string workload : {"sssp", "cc"}) {
        std::vector<std::string> headers = {"method"};
        for (const auto& ratio : ratios)
            headers.push_back(ratio.label());
        Table ratio_table(headers);
        Table runtime_table(headers);

        for (const bool use_rl : {false, true}) {
            auto& ratio_row =
                ratio_table.row().cell(use_rl ? "RL" : "heuristic");
            auto& runtime_row =
                runtime_table.row().cell(use_rl ? "RL" : "heuristic");
            for (const auto& ratio : ratios) {
                core::ArtMemConfig cfg;
                cfg.seed = opt.seed;
                cfg.use_rl = use_rl;
                auto policy = sim::make_artmem(cfg);
                auto spec = make_spec(opt, workload, "artmem", ratio);
                const auto r = sim::run_experiment(spec, *policy);
                ratio_row.cell(r.fast_ratio, 3);
                runtime_row.cell(r.seconds() * 1e3, 1);
            }
        }
        std::cout << "\nWorkload: " << workload << " — DRAM access ratio\n";
        emit(ratio_table, opt);
        std::cout << "Workload: " << workload << " — runtime (ms; the "
                     "heuristic buys its ratio with far more migration "
                     "traffic)\n";
        emit(runtime_table, opt);
    }
    return 0;
}
