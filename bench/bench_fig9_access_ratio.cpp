/**
 * @file
 * Figure 9 reproduction: DRAM access ratio of SSSP and CC as the
 * DRAM:PM ratio varies, comparing the heuristic scope adjustment
 * (ArtMem with use_rl = false) against the full RL-based system.
 * Paper shape: RL >= heuristic everywhere; for CC both converge once
 * the compact hot set fits (>= 1:4 in the paper), while SSSP's broad
 * hot set keeps improving with more DRAM and RL stays ahead.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);
    const auto ratios = sim::paper_ratios();
    const std::vector<std::string> apps = {"sssp", "cc"};

    sweep::SweepSpec sweepspec;
    for (const auto& workload : apps) {
        for (const bool use_rl : {false, true}) {
            for (const auto& ratio : ratios) {
                core::ArtMemConfig cfg;
                cfg.seed = opt.seed;
                cfg.use_rl = use_rl;
                sweepspec.add_with_policy(
                    make_spec(opt, workload, "artmem", ratio),
                    {workload, use_rl ? "RL" : "heuristic", ratio.label()},
                    [cfg] { return sim::make_artmem(cfg); });
            }
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Figure 9: DRAM access ratio, heuristic vs RL scope "
                 "adjustment\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n";

    std::size_t job = 0;
    for (const auto& workload : apps) {
        std::vector<std::string> headers = {"method"};
        for (const auto& ratio : ratios)
            headers.push_back(ratio.label());
        sweep::ResultSink ratio_table(headers);
        sweep::ResultSink runtime_table(headers);

        for (const bool use_rl : {false, true}) {
            auto& ratio_row =
                ratio_table.row().cell(use_rl ? "RL" : "heuristic");
            auto& runtime_row =
                runtime_table.row().cell(use_rl ? "RL" : "heuristic");
            for (std::size_t r = 0; r < ratios.size(); ++r) {
                const auto& run = runs[job++];
                ratio_row.cell(run.fast_ratio, 3);
                runtime_row.cell(run.seconds() * 1e3, 1);
            }
        }
        std::cout << "\nWorkload: " << workload << " — DRAM access ratio\n";
        emit(ratio_table, opt);
        std::cout << "Workload: " << workload << " — runtime (ms; the "
                     "heuristic buys its ratio with far more migration "
                     "traffic)\n";
        emit(runtime_table, opt);
    }
    return 0;
}
