/**
 * @file
 * Transactional-migration study: every policy runs the write-heavy
 * YCSB mix (ycsb_w) under three migration engines —
 *
 *   off          the classic atomic engine (baseline),
 *   tx           transactional copy-then-commit with a baseline write
 *                ratio hitting in-flight pages,
 *   abort_storm  the same engine under the seeded write-storm fault
 *                scenario (75% write probability at 40% duty),
 *
 * and reports runtime (plus the slowdown against that policy's own
 * atomic-engine run), fast-tier access ratio, and the transaction
 * ledger: opens, commits, aborts, retries, free demotion flips, and
 * dual-copy reclaims. Every cell is invariant-audited; the schedule is
 * seeded and bit-for-bit reproducible.
 *
 * Usage: bench_tx_migration [--workload=ycsb_w] [--write-ratio=0.02]
 *                           [--tx-seed=1] [--fault-seed=1]
 *                           [--accesses=N] [--seed=N] [--quick] [--csv]
 */
#include <map>

#include "bench_common.hpp"
#include "memsim/fault_injector.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(
        argc, argv, 4000000,
        {"workload", "write-ratio", "tx-seed", "fault-seed"});
    const auto args = CliArgs::parse(argc, argv);
    const std::string workload = args.get_string("workload", "ycsb_w");
    const double write_ratio = args.get_double("write-ratio", 0.02);
    const auto tx_seed =
        static_cast<std::uint64_t>(args.get_int("tx-seed", 1));
    const auto fault_seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed", 1));

    std::cout << "Transactional migration: workload=" << workload
              << " ratio=1:4 accesses=" << opt.accesses
              << " seed=" << opt.seed << " write-ratio=" << write_ratio
              << " tx-seed=" << tx_seed << " fault-seed=" << fault_seed
              << "\n";

    memsim::TxConfig tx;
    tx.enabled = true;
    tx.seed = tx_seed;
    tx.write_ratio = write_ratio;

    const std::string_view engines[] = {"off", "tx", "abort_storm"};
    sweep::SweepSpec sweepspec;
    for (const auto engine : engines) {
        for (const auto policy : sim::policy_names()) {
            auto spec =
                make_spec(opt, workload, std::string(policy), {1, 4});
            if (engine != "off")
                spec.engine.tx = tx;
            if (engine == "abort_storm") {
                spec.engine.faults = memsim::make_fault_scenario(
                    "abort_storm", fault_seed);
            }
            spec.engine.check_invariants = true;
            sweepspec.add(std::move(spec),
                          {std::string(engine), std::string(policy)});
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    // Atomic-engine reference runtime per policy, for the slowdown column.
    std::map<std::string, std::uint64_t> atomic_runtime;

    std::size_t job = 0;
    for (const auto engine : engines) {
        std::cout << "\nEngine: " << engine << "\n";
        sweep::ResultSink table({"policy", "runtime (ms)", "vs atomic",
                                 "fast ratio", "opened", "committed",
                                 "aborted", "retries", "busy", "free flips",
                                 "dual reclaims"});
        for (const auto policy : sim::policy_names()) {
            const auto& r = runs[job++];
            if (engine == "off")
                atomic_runtime[std::string(policy)] = r.runtime_ns;
            const double atomic = static_cast<double>(
                atomic_runtime[std::string(policy)]);
            table.row()
                .cell(std::string(policy))
                .cell(r.seconds() * 1e3, 1)
                .cell(static_cast<double>(r.runtime_ns) / atomic, 3)
                .cell(r.fast_ratio, 3)
                .cell(r.totals.tx_opened)
                .cell(r.totals.tx_committed)
                .cell(r.totals.tx_aborted)
                .cell(r.totals.tx_retries)
                .cell(r.totals.failed_tx_busy)
                .cell(r.totals.tx_free_flips)
                .cell(r.totals.tx_dual_reclaims);
        }
        emit(table, opt);
    }
    return 0;
}
