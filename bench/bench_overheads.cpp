/**
 * @file
 * Section 6.4 reproduction (google-benchmark): ArtMem's overheads.
 *
 *  - sampling: cost of the per-access PEBS observe path and of
 *    processing one drained sample (bins + LRU + ratio tracking);
 *    the paper bounds sampling at <= 3% CPU;
 *  - Q-table computation: one TD update; the paper reports <= 0.07%
 *    CPU for the whole decision cadence;
 *  - Q-table memory: both tables fit in < 10 KB (checked and printed);
 *  - sweep dispatch: per-job cost of the thread pool and SweepRunner
 *    (must be negligible against a multi-millisecond simulation job);
 *  - telemetry: the same simulation with telemetry fully off vs fully
 *    on (metrics + all trace categories + profiling). The off arm
 *    measures the zero-cost contract (every instrumentation site is a
 *    branch on a null pointer); the on/off delta is the subsystem's
 *    whole-stack overhead, recorded in EXPERIMENTS.md (< 2% target).
 */
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "core/artmem.hpp"
#include "lru/lru_lists.hpp"
#include "memsim/pebs.hpp"
#include "rl/agent.hpp"
#include "sim/experiment.hpp"
#include "stats/access_ratio.hpp"
#include "stats/ema_bins.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace artmem;

void
BM_PebsObserve(benchmark::State& state)
{
    memsim::PebsSampler sampler({.period = 10, .buffer_capacity = 1 << 14});
    std::vector<memsim::PebsSample> sink;
    PageId page = 0;
    for (auto _ : state) {
        sampler.observe(page, memsim::Tier::kFast);
        page = (page + 1) & 0x3fff;
        if (sampler.recorded() % 1024 == 0) {
            sink.clear();
            sampler.drain(sink, 4096);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PebsObserve);

void
BM_SampleProcessing(benchmark::State& state)
{
    // One drained sample through ArtMem's bookkeeping: EMA bins,
    // LRU touch, and access-ratio tracking.
    constexpr std::size_t kPages = 16384;
    stats::EmaBins bins(kPages, 0);
    lru::LruLists lists(kPages);
    stats::AccessRatioTracker tracker(10);
    Rng rng(7);
    for (auto _ : state) {
        const auto page = static_cast<PageId>(rng.next_below(kPages));
        const auto tier =
            page < kPages / 2 ? memsim::Tier::kFast : memsim::Tier::kSlow;
        bins.record(page);
        lists.touch(page, tier);
        tracker.record(tier);
        benchmark::DoNotOptimize(bins.count(page));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleProcessing);

void
BM_QTableUpdate(benchmark::State& state)
{
    rl::AgentConfig cfg;
    rl::TdAgent agent(12, 10, cfg, 3);
    Rng rng(5);
    int action = agent.step(0.0, 10);
    for (auto _ : state) {
        const int tau = static_cast<int>(rng.next_below(12));
        const double reward = static_cast<double>(tau) - 9.0;
        action = agent.step(reward, tau);
        benchmark::DoNotOptimize(action);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QTableUpdate);

void
BM_EmaCooling(benchmark::State& state)
{
    const auto pages = static_cast<std::size_t>(state.range(0));
    stats::EmaBins bins(pages, 0);
    Rng rng(9);
    for (std::size_t i = 0; i < pages * 4; ++i)
        bins.record(static_cast<PageId>(rng.next_below(pages)));
    for (auto _ : state)
        bins.cool();
    state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_EmaCooling)->Arg(16384)->Arg(147456);

void
BM_MigrationPlanning(benchmark::State& state)
{
    // One full ArtMem decision interval against a populated machine.
    constexpr Bytes kPage = 2ull << 20;
    memsim::MachineConfig mc;
    mc.page_size = kPage;
    mc.address_space = 16384 * kPage;
    mc.tiers[0].capacity = 8192 * kPage;
    mc.tiers[1].capacity = 17000 * kPage;
    memsim::TieredMachine machine(mc);
    machine.prefault_range(0, 16384);
    core::ArtMem policy;
    policy.init(machine);
    Rng rng(11);
    std::vector<memsim::PebsSample> samples(512);
    SimTimeNs now = 0;
    for (auto _ : state) {
        for (auto& s : samples) {
            s.page = static_cast<PageId>(rng.next_below(16384));
            s.tier = machine.tier_of(s.page);
        }
        policy.on_samples(samples);
        now += 10000000;
        policy.on_interval(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MigrationPlanning);

void
BM_ThreadPoolDispatch(benchmark::State& state)
{
    // Raw submit+wait cost per task on the sweep subsystem's pool.
    const auto tasks = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(2);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < tasks; ++i)
            pool.submit([&sink, i] {
                benchmark::DoNotOptimize(sink += i);
            });
        pool.wait();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(64)->Arg(1024);

void
BM_SweepRunnerMap(benchmark::State& state)
{
    // End-to-end SweepRunner dispatch: result-slot allocation, pool
    // round trip, and index-ordered collection for trivial jobs.
    const auto n = static_cast<std::size_t>(state.range(0));
    sweep::SweepRunner runner({.jobs = 2, .progress = false});
    for (auto _ : state) {
        auto out = runner.map<std::uint64_t>(n, [](std::size_t i) {
            return derive_seed(42, static_cast<std::uint64_t>(i));
        });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SweepRunnerMap)->Arg(64)->Arg(1024);

void
BM_SimTelemetry(benchmark::State& state)
{
    // Whole-stack telemetry overhead: one seeded simulation, telemetry
    // off (state.range(0) == 0) vs everything on (metrics + all trace
    // categories + phase profiling). Results are discarded each
    // iteration; only host time differs between the two arms.
    const bool on = state.range(0) != 0;
    sim::RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 200000;
    // Both arms must simulate the *same* run: an explicit shared seed
    // guarantees identical access streams and decisions, so the on/off
    // delta is telemetry cost alone, not run-to-run divergence.
    spec.seed = 42;
    if (on) {
        spec.engine.telemetry.metrics = true;
        spec.engine.telemetry.trace_categories = telemetry::kAllCategories;
        spec.engine.telemetry.profile = true;
    }
    for (auto _ : state) {
        const auto r = sim::run_experiment(spec);
        benchmark::DoNotOptimize(r.fast_ratio);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(spec.accesses));
    state.SetLabel(on ? "telemetry=on" : "telemetry=off");
}
BENCHMARK(BM_SimTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_SimThroughput(benchmark::State& state, const char* workload)
{
    // End-to-end accesses/sec through the batched hot path (DESIGN.md
    // §9): workload generation, TieredMachine::access_batch, PEBS
    // drain, and the full policy decision cadence. items_per_second is
    // the headline number tracked in BENCH_hotpath.json and guarded by
    // scripts/check_perf.sh.
    sim::RunSpec spec;
    spec.workload = workload;
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 2000000;
    spec.seed = 42;
    for (auto _ : state) {
        const auto r = sim::run_experiment(spec);
        benchmark::DoNotOptimize(r.fast_ratio);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(spec.accesses));
}
BENCHMARK_CAPTURE(BM_SimThroughput, ycsb, "ycsb")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimThroughput, s2, "s2")
    ->Unit(benchmark::kMillisecond);

void
BM_SimThroughputTxOff(benchmark::State& state)
{
    // The transactional engine left at its default (off) must cost the
    // batched hot path nothing: the machine never allocates a TxState
    // and every tx hook reduces to a never-taken flag test. This entry
    // is gated in BENCH_hotpath.json at the same floor as the plain
    // ycsb run — a disabled-engine overhead would fail the gate.
    sim::RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 2000000;
    spec.seed = 42;
    spec.engine.tx = memsim::TxConfig{};
    for (auto _ : state) {
        const auto r = sim::run_experiment(spec);
        benchmark::DoNotOptimize(r.fast_ratio);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(spec.accesses));
}
BENCHMARK(BM_SimThroughputTxOff)->Unit(benchmark::kMillisecond);

void
BM_SimThroughputSharded(benchmark::State& state, unsigned shards)
{
    // Sharded access pipeline (DESIGN.md §12): the same end-to-end run
    // as BM_SimThroughput/ycsb but with the hot path partitioned
    // across `shards` worker lanes plus the deterministic epoch merge.
    // shards=1 measures the pipeline's fixed overhead (two-phase scan
    // + merge, no extra threads); shards=4 adds the thread fan-out.
    // Output is byte-identical to the legacy loop for every shard
    // count, so the only thing these entries can regress is speed —
    // both are gated in BENCH_hotpath.json.
    sim::RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 2000000;
    spec.seed = 42;
    spec.engine.shards = shards;
    for (auto _ : state) {
        const auto r = sim::run_experiment(spec);
        benchmark::DoNotOptimize(r.fast_ratio);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(spec.accesses));
}
BENCHMARK_CAPTURE(BM_SimThroughputSharded, shards1, 1u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimThroughputSharded, shards4, 4u)
    ->Unit(benchmark::kMillisecond);

void
BM_SimThroughputTenants(benchmark::State& state, std::uint32_t tenants)
{
    // Multi-tenant serving (DESIGN.md §13): tenants=1 measures the
    // off-state contract — the run takes the plain single-tenant path
    // and every tenancy hook is a never-taken null-pointer branch, so
    // it is gated at the same floor as the plain ycsb run. tenants=16
    // is the same aggregate access budget interleaved across 16
    // kTenant-seeded ycsb streams with quotas and static admission: the
    // attribution + ledger cost of a real multi-tenant run.
    sim::RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "artmem";
    spec.ratio = {1, 4};
    spec.accesses = 2000000;
    spec.seed = 42;
    if (tenants > 1) {
        spec.tenancy.tenants = tenants;
        spec.tenancy.quota_share = 0.25;
        spec.tenancy.admission = "static";
        spec.tenancy.admission_rate = 8;
    }
    for (auto _ : state) {
        const auto r = sim::run_experiment(spec);
        benchmark::DoNotOptimize(r.fast_ratio);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(spec.accesses));
}
BENCHMARK_CAPTURE(BM_SimThroughputTenants, tenants1, 1u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimThroughputTenants, tenants16, 16u)
    ->Unit(benchmark::kMillisecond);

/** Prints the Section 6.4 summary around the google-benchmark run. */
class OverheadReporter : public benchmark::ConsoleReporter
{
  public:
    void
    Finalize() override
    {
        ConsoleReporter::Finalize();
        rl::QTable migration(12, 10);
        rl::QTable threshold(12, 5);
        const auto bytes =
            migration.memory_bytes() + threshold.memory_bytes();
        GetErrorStream()
            << "\nSection 6.4 summary:\n"
            << "  Q-tables memory: " << bytes
            << " bytes (paper: < 10 KB)\n"
            << "  Sampling budget check: at PEBS period 10 and ~5M "
               "accesses/s simulated,\n"
            << "  the observe+processing paths above must stay below "
               "3% of CPU;\n"
            << "  one TD update per 10 ms decision interval bounds the "
               "Q-table cost (paper: 0.07%).\n";
    }
};

}  // namespace

int
main(int argc, char** argv)
{
    // --quick (scripts/check_perf.sh): restrict the run to the
    // end-to-end throughput benchmarks at one iteration each, mirroring
    // the fig-harness --quick convention. Expanded into native
    // google-benchmark flags so the library still does all the timing.
    std::vector<char*> args;
    // lint:allow(DL006) argv storage google-benchmark mutates in place
    static char filter[] = "--benchmark_filter=BM_SimThroughput";
    // lint:allow(DL006) argv storage google-benchmark mutates in place
    static char min_time[] = "--benchmark_min_time=0.01";
    bool quick = false;
    bool custom_format = false;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick") {
            quick = true;
            continue;
        }
        if (arg.rfind("--benchmark_format", 0) == 0)
            custom_format = true;
        args.push_back(argv[i]);
    }
    if (quick) {
        args.push_back(filter);
        args.push_back(min_time);
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (custom_format) {
        // An explicit reporter would override --benchmark_format=json
        // (used by scripts/check_perf.sh), so let the library pick.
        benchmark::RunSpecifiedBenchmarks();
    } else {
        OverheadReporter reporter;
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    return 0;
}
