/**
 * @file
 * Figure 17 reproduction: migration operations and DRAM access ratio
 * over time while running the mixed SSSP+XSBench workload — ArtMem vs
 * TPP. Paper shape: ArtMem performs exploratory migrations early and
 * then stabilizes (Q-table picks action 0 once the ratio is high);
 * TPP reaches a good ratio early but keeps migrating (~17.5x more than
 * ArtMem) and fails to respond when the ratio later drops.
 */
#include "bench_common.hpp"
#include "workloads/factory.hpp"
#include "workloads/mixer.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    constexpr Bytes kPage = 2ull << 20;
    constexpr Bytes kFast = 32ull << 30;

    sweep::SweepSpec sweepspec;
    for (const std::string system : {"artmem", "tpp"}) {
        sweepspec.add_run(
            {"sssp+xsbench", system},
            [system, &opt] {
                std::vector<std::unique_ptr<workloads::AccessGenerator>>
                    children;
                children.push_back(workloads::make_workload(
                    "sssp", kPage, opt.accesses / 2, opt.seed));
                children.push_back(workloads::make_workload(
                    "xsbench", kPage, opt.accesses / 2, opt.seed + 1));
                workloads::Mixer gen(std::move(children), kPage);
                auto mc =
                    sim::make_machine_config(gen.footprint(), kFast, kPage);
                memsim::TieredMachine machine(mc);
                auto policy = sim::make_policy(system, opt.seed);
                sim::EngineConfig engine;
                engine.record_timeline = true;
                return sim::run_simulation(gen, *policy, machine, engine);
            });
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Figure 17: migrations and DRAM access ratio over time "
                 "(mixed SSSP+XSBench, 32 GiB DRAM)\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n\n";

    const auto& artmem = runs[0];
    const auto& tpp = runs[1];

    sweep::ResultSink table({"t (ms)", "artmem migrations", "artmem ratio",
                             "tpp migrations", "tpp ratio"});
    const std::size_t rows =
        std::min(artmem.timeline.size(), tpp.timeline.size());
    for (std::size_t i = 0; i < rows; i += 4) {
        const auto& a = artmem.timeline[i];
        const auto& b = tpp.timeline[i];
        table.row()
            .cell(static_cast<double>(a.end_time) * 1e-6, 0)
            .cell(a.promoted + a.demoted + 2 * a.exchanges)
            .cell(a.fast_ratio, 3)
            .cell(b.promoted + b.demoted + 2 * b.exchanges)
            .cell(b.fast_ratio, 3);
    }
    emit(table, opt);

    std::cout << "\ntotals: artmem migrated "
              << artmem.totals.migrated_pages() << " pages, tpp migrated "
              << tpp.totals.migrated_pages() << " pages ("
              << format_fixed(
                     static_cast<double>(tpp.totals.migrated_pages()) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, artmem.totals.migrated_pages())),
                     1)
              << "x; paper: 17.5x)\n";
    return 0;
}
