/**
 * @file
 * Table 2 reproduction: per-tier latency and bandwidth measured with
 * the Intel MLC-style microbench against the simulated machine.
 *
 * Paper values (DRAM + Optane testbed):
 *   fast memory: 92 ns, 81 GB/s
 *   slow memory: 323 ns, 26 GB/s
 */
#include <iostream>

#include "bench_common.hpp"
#include "memsim/mlc.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 200000);

    std::cout << "Table 2: hardware overview of the simulated system\n"
              << "(paper: fast 92 ns / 81 GB/s, slow 323 ns / 26 GB/s)\n\n";

    // The per-tier probes are not RunResults, so this harness uses the
    // runner's generic map(): one MLC probe per tier, its own machine.
    const memsim::Tier tiers[] = {memsim::Tier::kFast, memsim::Tier::kSlow};
    auto runner = make_runner(opt);
    const auto probes = runner.map<memsim::MlcResult>(
        std::size(tiers), [&](std::size_t idx) {
            memsim::MachineConfig config;
            config.address_space = 256ull << 20;
            config.tiers[0].capacity = 128ull << 20;
            config.tiers[1].capacity = 512ull << 20;
            memsim::TieredMachine machine(config);
            return memsim::measure_tier(machine, tiers[idx], opt.accesses,
                                        8ull << 30);
        });

    sweep::ResultSink table(
        {"Memory Tier", "Latency (ns)", "Bandwidth (GB/s)"});
    for (std::size_t i = 0; i < std::size(tiers); ++i) {
        table.row()
            .cell(std::string(tiers[i] == memsim::Tier::kFast
                                  ? "Fast Memory"
                                  : "Slow Memory"))
            .cell(probes[i].latency_ns, 1)
            .cell(probes[i].bandwidth_gbps, 1);
    }
    emit(table, opt);
    return 0;
}
