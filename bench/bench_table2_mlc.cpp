/**
 * @file
 * Table 2 reproduction: per-tier latency and bandwidth measured with
 * the Intel MLC-style microbench against the simulated machine.
 *
 * Paper values (DRAM + Optane testbed):
 *   fast memory: 92 ns, 81 GB/s
 *   slow memory: 323 ns, 26 GB/s
 */
#include <iostream>

#include "memsim/mlc.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    const auto args = CliArgs::parse(argc, argv);
    const auto accesses =
        static_cast<std::uint64_t>(args.get_int("accesses", 200000));

    memsim::MachineConfig config;
    config.address_space = 256ull << 20;
    config.tiers[0].capacity = 128ull << 20;
    config.tiers[1].capacity = 512ull << 20;

    std::cout << "Table 2: hardware overview of the simulated system\n"
              << "(paper: fast 92 ns / 81 GB/s, slow 323 ns / 26 GB/s)\n\n";

    Table table({"Memory Tier", "Latency (ns)", "Bandwidth (GB/s)"});
    for (auto tier : {memsim::Tier::kFast, memsim::Tier::kSlow}) {
        memsim::TieredMachine machine(config);
        const auto r =
            memsim::measure_tier(machine, tier, accesses, 8ull << 30);
        table.row()
            .cell(std::string(tier == memsim::Tier::kFast ? "Fast Memory"
                                                          : "Slow Memory"))
            .cell(r.latency_ns, 1)
            .cell(r.bandwidth_gbps, 1);
    }
    table.print(std::cout);
    return 0;
}
