/**
 * @file
 * Figure 7 + Table 3 reproduction: the main evaluation. Eight
 * memory-intensive workloads x six DRAM:PM ratios x the seven baseline
 * systems plus ArtMem, normalized to AutoNUMA at 1:16 (lower is
 * better), followed by the paper's summary statistics (average ArtMem
 * improvement per ratio; headline 35%-172% / 114% average).
 */
#include <map>

#include "bench_common.hpp"
#include "util/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    const auto workloads = workloads::app_workload_names();
    const std::vector<std::string> systems = {
        "memtis",     "autotiering", "tpp",      "autonuma",
        "multiclock", "nimble",      "tiering08", "artmem"};
    const auto ratios = sim::paper_ratios();

    std::cout << "Table 3 workloads: ";
    for (auto w : workloads)
        std::cout << w << " ";
    std::cout << "\nFigure 7: runtime normalized to AutoNUMA at 1:16 "
                 "(lower is better)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n";

    // improvement[ratio] accumulates (baseline / artmem - 1) per system.
    std::map<std::string, OnlineStats> improvement_by_ratio;
    OnlineStats improvement_all;
    std::map<std::string, OnlineStats> improvement_by_system;

    for (const auto workload : workloads) {
        auto base_spec =
            make_spec(opt, std::string(workload), "autonuma", {1, 16});
        const auto base = sim::run_experiment(base_spec);
        const auto norm = [&](const sim::RunResult& r) {
            return static_cast<double>(r.runtime_ns) /
                   static_cast<double>(base.runtime_ns);
        };

        std::vector<std::string> headers = {"system"};
        for (const auto& ratio : ratios)
            headers.push_back(ratio.label());
        Table table(std::move(headers));

        std::map<std::string, std::vector<double>> results;
        for (const auto& system : systems) {
            auto& row = table.row().cell(system);
            for (const auto& ratio : ratios) {
                auto spec =
                    make_spec(opt, std::string(workload), system, ratio);
                const auto r = sim::run_experiment(spec);
                const double value = norm(r);
                results[system].push_back(value);
                row.cell(value, 3);
            }
        }
        for (std::size_t i = 0; i < ratios.size(); ++i) {
            const double artmem = results["artmem"][i];
            for (const auto& system : systems) {
                if (system == "artmem")
                    continue;
                const double gain = results[system][i] / artmem - 1.0;
                improvement_by_ratio[ratios[i].label()].add(gain);
                improvement_by_system[system].add(gain);
                improvement_all.add(gain);
            }
        }

        std::cout << "\nWorkload: " << workload << "\n";
        emit(table, opt);
    }

    std::cout << "\nSummary: average ArtMem improvement over the seven "
                 "baselines per DRAM:PM ratio\n"
              << "(paper: 132%, 124%, 104%, 91%, 72%, 67%)\n";
    Table summary({"ratio", "avg improvement %"});
    for (const auto& ratio : ratios) {
        summary.row()
            .cell(ratio.label())
            .cell(improvement_by_ratio[ratio.label()].mean() * 100.0, 1);
    }
    emit(summary, opt);

    std::cout << "\nAverage ArtMem improvement per baseline system "
                 "(paper: 10.4% - 43.65% vs the best baseline; "
                 "114% on average over all)\n";
    Table per_system({"baseline", "avg improvement %"});
    for (const auto& system : systems) {
        if (system == "artmem")
            continue;
        per_system.row().cell(system).cell(
            improvement_by_system[system].mean() * 100.0, 1);
    }
    emit(per_system, opt);
    std::cout << "\nOverall average improvement: "
              << format_fixed(improvement_all.mean() * 100.0, 1)
              << "% (paper: 114%)\n";
    return 0;
}
