/**
 * @file
 * Figure 7 + Table 3 reproduction: the main evaluation. Eight
 * memory-intensive workloads x six DRAM:PM ratios x the seven baseline
 * systems plus ArtMem, normalized to AutoNUMA at 1:16 (lower is
 * better), followed by the paper's summary statistics (average ArtMem
 * improvement per ratio; headline 35%-172% / 114% average).
 *
 * All 8 x (1 + 8 x 6) runs execute as one deterministic sweep
 * (--jobs N); output is bit-identical for any worker count.
 */
#include <map>

#include "bench_common.hpp"
#include "util/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    const auto workloads = workloads::app_workload_names();
    const std::vector<std::string> systems = {
        "memtis",     "autotiering", "tpp",      "autonuma",
        "multiclock", "nimble",      "tiering08", "artmem"};
    const auto ratios = sim::paper_ratios();

    // One flat job list: per workload, the AutoNUMA 1:16 baseline
    // followed by the system x ratio grid (the old serial loop order).
    sweep::SweepSpec sweepspec;
    std::vector<std::size_t> base_jobs;
    std::vector<std::vector<std::vector<std::size_t>>> grid_jobs;
    for (const auto workload : workloads) {
        base_jobs.push_back(add_autonuma_baseline_job(
            sweepspec, opt, std::string(workload)));
        auto& by_system = grid_jobs.emplace_back();
        for (const auto& system : systems) {
            auto& by_ratio = by_system.emplace_back();
            for (const auto& ratio : ratios) {
                by_ratio.push_back(sweepspec.add(
                    make_spec(opt, std::string(workload), system, ratio),
                    {std::string(workload), system, ratio.label()}));
            }
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::cout << "Table 3 workloads: ";
    for (auto w : workloads)
        std::cout << w << " ";
    std::cout << "\nFigure 7: runtime normalized to AutoNUMA at 1:16 "
                 "(lower is better)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n";

    // improvement[ratio] accumulates (baseline / artmem - 1) per system.
    std::map<std::string, OnlineStats> improvement_by_ratio;
    OnlineStats improvement_all;
    std::map<std::string, OnlineStats> improvement_by_system;

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto& base = runs[base_jobs[w]];

        std::vector<std::string> headers = {"system"};
        for (const auto& ratio : ratios)
            headers.push_back(ratio.label());
        sweep::ResultSink table(std::move(headers));

        std::map<std::string, std::vector<double>> results;
        for (std::size_t s = 0; s < systems.size(); ++s) {
            auto& row = table.row().cell(systems[s]);
            for (std::size_t r = 0; r < ratios.size(); ++r) {
                const double value =
                    normalized_runtime(runs[grid_jobs[w][s][r]], base);
                results[systems[s]].push_back(value);
                row.cell(value, 3);
            }
        }
        for (std::size_t i = 0; i < ratios.size(); ++i) {
            const double artmem = results["artmem"][i];
            for (const auto& system : systems) {
                if (system == "artmem")
                    continue;
                const double gain = results[system][i] / artmem - 1.0;
                improvement_by_ratio[ratios[i].label()].add(gain);
                improvement_by_system[system].add(gain);
                improvement_all.add(gain);
            }
        }

        std::cout << "\nWorkload: " << workloads[w] << "\n";
        emit(table, opt);
    }

    std::cout << "\nSummary: average ArtMem improvement over the seven "
                 "baselines per DRAM:PM ratio\n"
              << "(paper: 132%, 124%, 104%, 91%, 72%, 67%)\n";
    sweep::ResultSink summary({"ratio", "avg improvement %"});
    for (const auto& ratio : ratios) {
        summary.row()
            .cell(ratio.label())
            .cell(improvement_by_ratio[ratio.label()].mean() * 100.0, 1);
    }
    emit(summary, opt);

    std::cout << "\nAverage ArtMem improvement per baseline system "
                 "(paper: 10.4% - 43.65% vs the best baseline; "
                 "114% on average over all)\n";
    sweep::ResultSink per_system({"baseline", "avg improvement %"});
    for (const auto& system : systems) {
        if (system == "artmem")
            continue;
        per_system.row().cell(system).cell(
            improvement_by_system[system].mean() * 100.0, 1);
    }
    emit(per_system, opt);
    std::cout << "\nOverall average improvement: "
              << format_fixed(improvement_all.mean() * 100.0, 1)
              << "% (paper: 114%)\n";
    return 0;
}
