/**
 * @file
 * Figure 12 + Section 6.3.4 reproduction: ArtMem with the DRAM access
 * ratio reward vs the latency-based reward on XSBench — migrations
 * over time and overall runtime. The paper finds the latency reward
 * adjusts migration decisions with a delay and ends ~3.4% slower.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    std::cout << "Figure 12: migrations over time with ratio-based vs "
                 "latency-based RL reward (XSBench, 1:2)\naccesses="
              << opt.accesses << " seed=" << opt.seed << "\n\n";

    const char* labels[2] = {"ratio-reward", "latency-reward"};
    sweep::SweepSpec sweepspec;
    for (int mode = 0; mode < 2; ++mode) {
        core::ArtMemConfig cfg;
        cfg.seed = opt.seed;
        cfg.reward_mode = mode == 0 ? core::RewardMode::kAccessRatio
                                    : core::RewardMode::kLatency;
        auto spec = make_spec(opt, "xsbench", "artmem", {1, 2});
        spec.engine.record_timeline = true;
        sweepspec.add_with_policy(
            std::move(spec), {"xsbench", labels[mode], "1:2"},
            [cfg] { return sim::make_artmem(cfg); });
    }
    const auto results = make_runner(opt).run(sweepspec);

    sweep::ResultSink table({"t (ms)", "ratio-reward migrations",
                             "latency-reward migrations"});
    const std::size_t rows =
        std::min(results[0].timeline.size(), results[1].timeline.size());
    for (std::size_t i = 0; i < rows; i += 4) {
        const auto& a = results[0].timeline[i];
        const auto& b = results[1].timeline[i];
        table.row()
            .cell(static_cast<double>(a.end_time) * 1e-6, 0)
            .cell(a.promoted + a.demoted)
            .cell(b.promoted + b.demoted);
    }
    emit(table, opt);

    const double delta =
        (static_cast<double>(results[1].runtime_ns) /
             static_cast<double>(results[0].runtime_ns) -
         1.0) *
        100.0;
    std::cout << "\nruntime: " << labels[0] << " "
              << format_fixed(results[0].seconds() * 1e3, 1)
              << " ms, " << labels[1] << " "
              << format_fixed(results[1].seconds() * 1e3, 1)
              << " ms  -> latency reward is "
              << format_fixed(delta, 1)
              << "% slower (paper: ~3.4% average)\n";
    return 0;
}
