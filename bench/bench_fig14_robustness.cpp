/**
 * @file
 * Figure 14 + Section 6.3.6 reproduction: sensitivity of the RL model
 * to its training data. Each of five applications is run once to
 * convergence and its Q-tables captured; every (train, eval) pair is
 * then evaluated by running the eval workload starting from the train
 * workload's tables. Cells show % runtime degradation relative to
 * self-training. Paper: only 7 of 25 combinations degrade > 10%.
 */
#include <sstream>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 4000000);

    const std::vector<std::string> apps = {"liblinear", "ycsb", "cc",
                                           "xsbench", "btree"};

    std::cout << "Figure 14: Q-table cross-training robustness "
                 "(% runtime degradation vs self-trained; 1:2 ratio)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    // Phase 1: train per app, capture converged Q-tables.
    std::vector<std::string> tables;
    for (const auto& app : apps) {
        core::ArtMemConfig cfg;
        cfg.seed = opt.seed;
        auto policy = sim::make_artmem(cfg);
        auto spec = make_spec(opt, app, "artmem", {1, 2});
        sim::run_experiment(spec, *policy);
        std::ostringstream os;
        policy->save_qtables(os);
        tables.push_back(os.str());
    }

    // Phase 2: evaluate every (train, eval) pair.
    std::vector<std::string> headers = {"train \\ eval"};
    for (const auto& app : apps)
        headers.push_back(app);
    Table table(std::move(headers));

    std::vector<double> self(apps.size(), 0.0);
    std::vector<std::vector<double>> runtime(
        apps.size(), std::vector<double>(apps.size(), 0.0));
    for (std::size_t train = 0; train < apps.size(); ++train) {
        for (std::size_t eval = 0; eval < apps.size(); ++eval) {
            core::ArtMemConfig cfg;
            cfg.seed = opt.seed;
            auto policy = sim::make_artmem(cfg);
            policy->set_pretrained_qtables(tables[train]);
            auto spec = make_spec(opt, apps[eval], "artmem", {1, 2});
            runtime[train][eval] = static_cast<double>(
                sim::run_experiment(spec, *policy).runtime_ns);
        }
    }
    for (std::size_t eval = 0; eval < apps.size(); ++eval)
        self[eval] = runtime[eval][eval];

    int above_10 = 0;
    for (std::size_t train = 0; train < apps.size(); ++train) {
        auto& row = table.row().cell(apps[train]);
        for (std::size_t eval = 0; eval < apps.size(); ++eval) {
            const double degradation =
                (runtime[train][eval] / self[eval] - 1.0) * 100.0;
            if (train != eval && degradation > 10.0)
                ++above_10;
            row.cell(degradation, 1);
        }
    }
    emit(table, opt);
    std::cout << "\nCombinations degrading more than 10%: " << above_10
              << " of " << apps.size() * (apps.size() - 1)
              << " cross pairs (paper: 7 of 25 incl. diagonal)\n";
    return 0;
}
