/**
 * @file
 * Figure 14 + Section 6.3.6 reproduction: sensitivity of the RL model
 * to its training data. Each of five applications is run once to
 * convergence and its Q-tables captured; every (train, eval) pair is
 * then evaluated by running the eval workload starting from the train
 * workload's tables. Cells show % runtime degradation relative to
 * self-training. Paper: only 7 of 25 combinations degrade > 10%.
 *
 * Two chained sweeps: the training phase must finish before the
 * cross-evaluation jobs (which consume the captured tables) start.
 */
#include <sstream>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 4000000);

    const std::vector<std::string> apps = {"liblinear", "ycsb", "cc",
                                           "xsbench", "btree"};

    std::cout << "Figure 14: Q-table cross-training robustness "
                 "(% runtime degradation vs self-trained; 1:2 ratio)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    auto runner = make_runner(opt);

    // Phase 1: train per app, capture converged Q-tables. Each job
    // writes only its own slot of `tables`, so the sweep stays
    // data-race-free.
    std::vector<std::string> tables(apps.size());
    sweep::SweepSpec train_spec;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        auto spec = make_spec(opt, apps[i], "artmem", {1, 2});
        train_spec.add_run(
            {apps[i], "train"}, [&tables, i, spec, &opt] {
                core::ArtMemConfig cfg;
                cfg.seed = opt.seed;
                auto policy = sim::make_artmem(cfg);
                const auto r = sim::run_experiment(spec, *policy);
                std::ostringstream os;
                policy->save_qtables(os);
                tables[i] = os.str();
                return r;
            });
    }
    runner.run(train_spec);

    // Phase 2: evaluate every (train, eval) pair from the saved tables.
    sweep::SweepSpec eval_spec;
    for (const auto& train : apps) {
        for (const auto& eval : apps) {
            const std::size_t train_idx =
                static_cast<std::size_t>(&train - apps.data());
            auto spec = make_spec(opt, eval, "artmem", {1, 2});
            eval_spec.add_run(
                {train, eval}, [&tables, train_idx, spec, &opt] {
                    core::ArtMemConfig cfg;
                    cfg.seed = opt.seed;
                    auto policy = sim::make_artmem(cfg);
                    policy->set_pretrained_qtables(tables[train_idx]);
                    return sim::run_experiment(spec, *policy);
                });
        }
    }
    const auto evals = runner.run(eval_spec);

    std::vector<std::string> headers = {"train \\ eval"};
    for (const auto& app : apps)
        headers.push_back(app);
    sweep::ResultSink table(std::move(headers));

    std::vector<double> self(apps.size(), 0.0);
    std::vector<std::vector<double>> runtime(
        apps.size(), std::vector<double>(apps.size(), 0.0));
    for (std::size_t train = 0; train < apps.size(); ++train)
        for (std::size_t eval = 0; eval < apps.size(); ++eval)
            runtime[train][eval] = static_cast<double>(
                evals[train * apps.size() + eval].runtime_ns);
    for (std::size_t eval = 0; eval < apps.size(); ++eval)
        self[eval] = runtime[eval][eval];

    int above_10 = 0;
    for (std::size_t train = 0; train < apps.size(); ++train) {
        auto& row = table.row().cell(apps[train]);
        for (std::size_t eval = 0; eval < apps.size(); ++eval) {
            const double degradation =
                (runtime[train][eval] / self[eval] - 1.0) * 100.0;
            if (train != eval && degradation > 10.0)
                ++above_10;
            row.cell(degradation, 1);
        }
    }
    emit(table, opt);
    std::cout << "\nCombinations degrading more than 10%: " << above_10
              << " of " << apps.size() * (apps.size() - 1)
              << " cross pairs (paper: 7 of 25 incl. diagonal)\n";
    return 0;
}
