/**
 * @file
 * Figure 4 reproduction: MEMTIS's DRAM-capacity-derived hotness
 * threshold vs a manually tuned threshold, on Liblinear and XSBench —
 * (a) migration volume, (b) normalized runtime. The paper's manual
 * tuning reduced Liblinear migrations dramatically and improved
 * performance by 47% (Liblinear) and 42% (XSBench).
 */
#include "bench_common.hpp"
#include "policies/memtis.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    std::cout << "Figure 4: MEMTIS default (capacity) threshold vs "
                 "manually tuned threshold (1:2 ratio)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    const std::vector<std::string> apps = {"liblinear", "xsbench"};
    const std::vector<std::uint32_t> thresholds = {8, 16, 32, 64, 128};

    // Per workload: the default-threshold run, then the tuning sweep.
    sweep::SweepSpec sweepspec;
    std::vector<std::size_t> default_jobs;
    std::vector<std::vector<std::size_t>> tuned_jobs;
    for (const auto& workload : apps) {
        auto spec = make_spec(opt, workload, "memtis", {1, 2});
        default_jobs.push_back(sweepspec.add_with_policy(
            spec, {workload, "default"},
            [] { return std::make_unique<policies::Memtis>(); }));
        auto& jobs = tuned_jobs.emplace_back();
        for (const auto threshold : thresholds) {
            jobs.push_back(sweepspec.add_with_policy(
                spec, {workload, std::to_string(threshold)},
                [threshold] {
                    policies::Memtis::Config cfg;
                    cfg.manual_threshold = threshold;
                    return std::make_unique<policies::Memtis>(cfg);
                }));
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    sweep::ResultSink table({"workload", "variant", "threshold",
                             "migrated GiB", "runtime (ms)", "vs default"});

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const auto& base = runs[default_jobs[w]];
        table.row()
            .cell(apps[w])
            .cell("default")
            .cell("capacity")
            .cell(base.migrated_gib(2ull << 20), 2)
            .cell(base.seconds() * 1e3, 1)
            .cell(1.0, 2);

        // Manual tuning sweep: count pages of the hottest bins into the
        // warm bins by raising the threshold (the paper's experiment).
        double best_runtime = static_cast<double>(base.runtime_ns);
        std::uint32_t best_threshold = 0;
        sim::RunResult best = base;
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
            const auto& r = runs[tuned_jobs[w][t]];
            if (static_cast<double>(r.runtime_ns) < best_runtime) {
                best_runtime = static_cast<double>(r.runtime_ns);
                best_threshold = thresholds[t];
                best = r;
            }
        }
        table.row()
            .cell(apps[w])
            .cell("tuned")
            .cell(std::to_string(best_threshold))
            .cell(best.migrated_gib(2ull << 20), 2)
            .cell(best.seconds() * 1e3, 1)
            .cell(static_cast<double>(base.runtime_ns) /
                      static_cast<double>(best.runtime_ns),
                  2);
    }
    emit(table, opt);
    std::cout << "\n'vs default' > 1.0 means the tuned threshold is "
                 "faster (paper: 1.47x Liblinear, 1.42x XSBench).\n";
    return 0;
}
