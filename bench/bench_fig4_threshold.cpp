/**
 * @file
 * Figure 4 reproduction: MEMTIS's DRAM-capacity-derived hotness
 * threshold vs a manually tuned threshold, on Liblinear and XSBench —
 * (a) migration volume, (b) normalized runtime. The paper's manual
 * tuning reduced Liblinear migrations dramatically and improved
 * performance by 47% (Liblinear) and 42% (XSBench).
 */
#include "bench_common.hpp"
#include "policies/memtis.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 6000000);

    std::cout << "Figure 4: MEMTIS default (capacity) threshold vs "
                 "manually tuned threshold (1:2 ratio)\n"
              << "accesses=" << opt.accesses << " seed=" << opt.seed
              << "\n\n";

    Table table({"workload", "variant", "threshold", "migrated GiB",
                 "runtime (ms)", "vs default"});

    for (const std::string workload : {"liblinear", "xsbench"}) {
        auto spec = make_spec(opt, workload, "memtis", {1, 2});
        policies::Memtis def;
        const auto base = sim::run_experiment(spec, def);
        table.row()
            .cell(workload)
            .cell("default")
            .cell("capacity")
            .cell(base.migrated_gib(2ull << 20), 2)
            .cell(base.seconds() * 1e3, 1)
            .cell(1.0, 2);

        // Manual tuning sweep: count pages of the hottest bins into the
        // warm bins by raising the threshold (the paper's experiment).
        double best_runtime = static_cast<double>(base.runtime_ns);
        std::uint32_t best_threshold = 0;
        sim::RunResult best = base;
        for (std::uint32_t threshold : {8u, 16u, 32u, 64u, 128u}) {
            policies::Memtis::Config cfg;
            cfg.manual_threshold = threshold;
            policies::Memtis tuned(cfg);
            const auto r = sim::run_experiment(spec, tuned);
            if (static_cast<double>(r.runtime_ns) < best_runtime) {
                best_runtime = static_cast<double>(r.runtime_ns);
                best_threshold = threshold;
                best = r;
            }
        }
        table.row()
            .cell(workload)
            .cell("tuned")
            .cell(std::to_string(best_threshold))
            .cell(best.migrated_gib(2ull << 20), 2)
            .cell(best.seconds() * 1e3, 1)
            .cell(static_cast<double>(base.runtime_ns) /
                      static_cast<double>(best.runtime_ns),
                  2);
    }
    emit(table, opt);
    std::cout << "\n'vs default' > 1.0 means the tuned threshold is "
                 "faster (paper: 1.47x Liblinear, 1.42x XSBench).\n";
    return 0;
}
