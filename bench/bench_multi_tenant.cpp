/**
 * @file
 * Multi-tenant serving study (DESIGN.md §13): N heterogeneous tenants
 * (a cycled workload mix, each tenant on its own SeedDomain::kTenant
 * stream) share one tiered machine under per-tenant fast-tier quotas,
 * and every policy runs under three admission regimes —
 *
 *   none      quota-only enforcement (the no-admission baseline),
 *   static    a fixed per-tenant grant budget per decision interval,
 *   feedback  TierBPF-style AIMD on the aggregate fast-tier hit ratio,
 *
 * reporting aggregate and per-tenant (min/mean/max) fast-tier hit
 * ratios plus the migration-grant/denial ledger. The questions from
 * the issue: does ArtMem's single global Q-pair degrade as tenant
 * count grows, and does admission control recover the aggregate hit
 * ratio under contention? Every cell is invariant-audited; the
 * schedule is seeded and byte-identical across --jobs and --shards.
 *
 * Usage: bench_multi_tenant [--tenants=16,64] [--mix=s2,ycsb,s3,btree]
 *                           [--quota-share=F] [--admission-rate=N]
 *                           [--admission-target=F] [--admission-max=N]
 *                           [--accesses=N] [--seed=N] [--quick] [--csv]
 */
#include <algorithm>
#include <charconv>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tenancy/tenancy.hpp"

namespace {

/** Parse a comma list of positive tenant counts. */
std::vector<std::uint32_t>
parse_counts(std::string_view text)
{
    std::vector<std::uint32_t> out;
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view item = text.substr(0, comma);
        std::uint32_t value = 0;
        const auto [ptr, ec] = std::from_chars(
            item.data(), item.data() + item.size(), value);
        if (ec != std::errc{} || ptr != item.data() + item.size() ||
            value < 2)
            artmem::fatal("--tenants entry '", std::string(item),
                          "' is not an integer >= 2");
        out.push_back(value);
        if (comma == std::string_view::npos)
            break;
        text.remove_prefix(comma + 1);
    }
    if (out.empty())
        artmem::fatal("--tenants list is empty");
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(
        argc, argv, 4000000,
        {"tenants", "mix", "quota-share", "admission-rate",
         "admission-target", "admission-max"});
    const auto args = CliArgs::parse(argc, argv);
    const auto tenant_counts =
        parse_counts(args.get_string("tenants", "16"));
    const std::string mix = args.get_string("mix", "s2,ycsb,s3,btree");
    const double quota_share = args.get_double("quota-share", 0.0);
    const auto admission_rate =
        static_cast<std::uint64_t>(args.get_int("admission-rate", 8));
    const double admission_target =
        args.get_double("admission-target", 0.6);
    const auto admission_max =
        static_cast<std::uint64_t>(args.get_int("admission-max", 64));

    std::cout << "Multi-tenant serving: mix=" << mix
              << " ratio=1:4 accesses=" << opt.accesses
              << " seed=" << opt.seed << " rate=" << admission_rate
              << " target=" << admission_target << "\n";

    const std::string_view admissions[] = {"none", "static", "feedback"};
    const std::string_view policies[] = {"artmem", "memtis", "tpp"};

    sweep::SweepSpec sweepspec;
    for (const auto tenants : tenant_counts) {
        for (const auto admission : admissions) {
            for (const auto policy : policies) {
                auto spec =
                    make_spec(opt, "s2", std::string(policy), {1, 4});
                spec.tenancy.tenants = tenants;
                spec.tenancy.mix.clear();
                for (std::size_t start = 0; start < mix.size();) {
                    const std::size_t comma = mix.find(',', start);
                    spec.tenancy.mix.push_back(mix.substr(
                        start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start));
                    start = comma == std::string::npos ? mix.size()
                                                       : comma + 1;
                }
                // Oversubscribe the fast tier ~1.5x by default so the
                // quotas actually contend (override with --quota-share).
                spec.tenancy.quota_share =
                    quota_share > 0.0
                        ? quota_share
                        : std::min(1.0, 1.5 / static_cast<double>(tenants));
                spec.tenancy.admission = std::string(admission);
                spec.tenancy.admission_rate = admission_rate;
                spec.tenancy.admission_target = admission_target;
                spec.tenancy.admission_max = admission_max;
                spec.engine.check_invariants = true;
                sweepspec.add(std::move(spec),
                              {std::to_string(tenants),
                               std::string(admission),
                               std::string(policy)});
            }
        }
    }
    const auto runs = make_runner(opt).run(sweepspec);

    std::size_t job = 0;
    for (const auto tenants : tenant_counts) {
        std::cout << "\nTenants: " << tenants << "\n";
        sweep::ResultSink table(
            {"admission", "policy", "runtime (ms)", "agg fast ratio",
             "tenant fr min", "tenant fr mean", "tenant fr max",
             "grants", "quota denied", "adm denied"});
        for (const auto admission : admissions) {
            for (const auto policy : policies) {
                const auto& r = runs[job++];
                double fr_min = 1.0;
                double fr_max = 0.0;
                double fr_sum = 0.0;
                std::uint64_t grants = 0;
                std::uint64_t quota_denied = 0;
                std::uint64_t adm_denied = 0;
                for (const auto& tenant : r.tenants) {
                    fr_min = std::min(fr_min, tenant.fast_ratio);
                    fr_max = std::max(fr_max, tenant.fast_ratio);
                    fr_sum += tenant.fast_ratio;
                    grants += tenant.admission_grants;
                    quota_denied += tenant.quota_denied;
                    adm_denied += tenant.admission_denied;
                }
                const double fr_mean =
                    r.tenants.empty()
                        ? 1.0
                        : fr_sum / static_cast<double>(r.tenants.size());
                table.row()
                    .cell(std::string(admission))
                    .cell(std::string(policy))
                    .cell(r.seconds() * 1e3, 1)
                    .cell(r.fast_ratio, 3)
                    .cell(fr_min, 3)
                    .cell(fr_mean, 3)
                    .cell(fr_max, 3)
                    .cell(grants)
                    .cell(quota_denied)
                    .cell(adm_denied);
            }
        }
        emit(table, opt);
    }
    return 0;
}
