/**
 * @file
 * Figure 10 reproduction: DAMON-style access footprints of SSSP and
 * CC, shown as time x address heatmaps. CC should show hot data
 * concentrated in a compact region with a sharp hot/cold separation;
 * SSSP a broader distribution with smaller frequency differences and a
 * moving frontier.
 */
#include <vector>

#include "bench_common.hpp"
#include "workloads/factory.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 3000000);

    constexpr Bytes kPage = 2ull << 20;
    constexpr int kTimeBuckets = 10;
    constexpr int kAddrBuckets = 20;

    std::cout << "Figure 10: access footprints measured DAMON-style\n"
              << "(rows: time deciles; columns: address 5%-buckets; "
                 "cell: % of the decile's accesses)\n";

    for (const std::string workload : {"sssp", "cc"}) {
        auto gen =
            workloads::make_workload(workload, kPage, opt.accesses, opt.seed);
        const auto pages =
            static_cast<PageId>(gen->footprint() / kPage);

        std::vector<std::vector<std::uint64_t>> heat(
            kTimeBuckets, std::vector<std::uint64_t>(kAddrBuckets, 0));
        std::vector<PageId> buf(8192);
        std::uint64_t emitted = 0;
        std::size_t n;
        while ((n = gen->fill(buf)) > 0) {
            for (std::size_t i = 0; i < n; ++i) {
                const auto t = static_cast<int>(
                    emitted * kTimeBuckets / opt.accesses);
                const auto a = static_cast<int>(
                    static_cast<std::uint64_t>(buf[i]) * kAddrBuckets /
                    pages);
                ++heat[std::min(t, kTimeBuckets - 1)]
                      [std::min(a, kAddrBuckets - 1)];
                ++emitted;
            }
        }

        std::cout << "\nWorkload: " << workload << " (footprint "
                  << gen->footprint() / (1ull << 30) << " GiB)\n";
        std::vector<std::string> headers = {"time"};
        for (int a = 0; a < kAddrBuckets; ++a)
            headers.push_back(std::to_string(a * 5) + "%");
        Table table(std::move(headers));
        for (int t = 0; t < kTimeBuckets; ++t) {
            std::uint64_t row_total = 0;
            for (int a = 0; a < kAddrBuckets; ++a)
                row_total += heat[t][a];
            auto& row = table.row().cell(std::to_string(t * 10) + "%");
            for (int a = 0; a < kAddrBuckets; ++a) {
                const double pct =
                    row_total == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(heat[t][a]) /
                              static_cast<double>(row_total);
                row.cell(pct, 1);
            }
        }
        emit(table, opt);
    }
    return 0;
}
