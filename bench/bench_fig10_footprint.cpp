/**
 * @file
 * Figure 10 reproduction: DAMON-style access footprints of SSSP and
 * CC, shown as time x address heatmaps. CC should show hot data
 * concentrated in a compact region with a sharp hot/cold separation;
 * SSSP a broader distribution with smaller frequency differences and a
 * moving frontier.
 */
#include <vector>

#include "bench_common.hpp"
#include "workloads/factory.hpp"

namespace {

constexpr artmem::Bytes kPage = 2ull << 20;
constexpr int kTimeBuckets = 10;
constexpr int kAddrBuckets = 20;

/** Per-workload product of the sweep. */
struct Heatmap {
    std::vector<std::vector<std::uint64_t>> heat;
    artmem::Bytes footprint = 0;
};

}  // namespace

int
main(int argc, char** argv)
{
    using namespace artmem;
    using namespace artmem::bench;
    const auto opt = BenchOptions::parse(argc, argv, 3000000);

    const std::vector<std::string> apps = {"sssp", "cc"};

    std::cout << "Figure 10: access footprints measured DAMON-style\n"
              << "(rows: time deciles; columns: address 5%-buckets; "
                 "cell: % of the decile's accesses)\n";

    // Heatmaps are not RunResults, so this sweep goes through the
    // runner's generic map(): one job per workload, results by index.
    auto runner = make_runner(opt);
    const auto maps =
        runner.map<Heatmap>(apps.size(), [&](std::size_t idx) {
            auto gen = workloads::make_workload(apps[idx], kPage,
                                                opt.accesses, opt.seed);
            const auto pages =
                static_cast<PageId>(gen->footprint() / kPage);

            Heatmap out;
            out.footprint = gen->footprint();
            out.heat.assign(static_cast<std::size_t>(kTimeBuckets),
                            std::vector<std::uint64_t>(
                                static_cast<std::size_t>(kAddrBuckets), 0));
            std::vector<PageId> buf(8192);
            std::uint64_t emitted = 0;
            std::size_t n;
            while ((n = gen->fill(buf)) > 0) {
                for (std::size_t i = 0; i < n; ++i) {
                    const auto t = static_cast<int>(
                        emitted * kTimeBuckets / opt.accesses);
                    const auto a = static_cast<int>(
                        static_cast<std::uint64_t>(buf[i]) * kAddrBuckets /
                        pages);
                    ++out.heat[static_cast<std::size_t>(std::min(
                        t, kTimeBuckets - 1))][static_cast<std::size_t>(
                        std::min(a, kAddrBuckets - 1))];
                    ++emitted;
                }
            }
            return out;
        });

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const auto& heat = maps[w].heat;
        std::cout << "\nWorkload: " << apps[w] << " (footprint "
                  << maps[w].footprint / (1ull << 30) << " GiB)\n";
        std::vector<std::string> headers = {"time"};
        for (int a = 0; a < kAddrBuckets; ++a)
            headers.push_back(std::to_string(a * 5) + "%");
        sweep::ResultSink table(std::move(headers));
        for (int t = 0; t < kTimeBuckets; ++t) {
            std::uint64_t row_total = 0;
            for (int a = 0; a < kAddrBuckets; ++a)
                row_total += heat[static_cast<std::size_t>(t)]
                                 [static_cast<std::size_t>(a)];
            auto& row = table.row().cell(std::to_string(t * 10) + "%");
            for (int a = 0; a < kAddrBuckets; ++a) {
                const auto count = heat[static_cast<std::size_t>(t)]
                                       [static_cast<std::size_t>(a)];
                const double pct =
                    row_total == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(count) /
                              static_cast<double>(row_total);
                row.cell(pct, 1);
            }
        }
        emit(table, opt);
    }
    return 0;
}
