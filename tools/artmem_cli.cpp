/**
 * @file
 * artmem — the command-line front end of the library.
 *
 *   artmem list                              inventory of workloads/policies
 *   artmem run --workload=cc --policy=artmem --ratio=1:4 [--timeline]
 *   artmem sweep --workload=ycsb             all policies x all ratios
 *     sweep-only: --jobs=N (parallel workers; results are bit-identical
 *     to --jobs=1), --derive-seeds (per-job seed streams via
 *     derive_seed(seed, job_index) instead of one shared seed)
 *   artmem train --workload=cc --out=q.tbl   save converged Q-tables
 *   artmem run ... --qtables=q.tbl           start from trained tables
 *   artmem trace-record --workload=s1 --out=s1.trace
 *   artmem trace-run --trace=s1.trace --policy=memtis
 *
 * Common flags: --accesses=N --seed=N --csv --json
 * Observability (run and sweep; DESIGN.md section 8):
 *   --metrics-out=FILE --trace-out=BASE --trace-categories=LIST --profile
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "memsim/fault_injector.hpp"
#include "sim/experiment.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep.hpp"
#include "sweep/telemetry_merge.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace artmem;

constexpr Bytes kPage = 2ull << 20;

sim::RatioSpec
parse_ratio(const CliArgs& args)
{
    sim::RatioSpec ratio{1, 1};
    const std::string text = args.get_string("ratio", "1:1");
    const auto colon = text.find(':');
    if (colon == std::string::npos)
        fatal("--ratio expects fast:slow, got '", text, "'");
    ratio.fast = std::stoi(text.substr(0, colon));
    ratio.slow = std::stoi(text.substr(colon + 1));
    if (ratio.fast <= 0 || ratio.slow <= 0)
        fatal("--ratio parts must be positive");
    return ratio;
}

sim::RunSpec
parse_spec(const CliArgs& args)
{
    sim::RunSpec spec;
    spec.workload = args.get_string("workload", "ycsb");
    spec.policy = args.get_string("policy", "artmem");
    spec.ratio = parse_ratio(args);
    spec.accesses =
        static_cast<std::uint64_t>(args.get_int("accesses", 6000000));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    spec.engine.check_invariants =
        args.get_bool("check-invariants", false);
    // Sharded access pipeline; 0 = legacy loop, N = N-shard epoch
    // pipeline. Byte-identical output for every value (DESIGN.md §12).
    spec.engine.shards =
        static_cast<unsigned>(args.get_int("shards", 0));
    // Phase-2 merge flavour for sharded runs: "parallel" (default)
    // runs per-lane accumulators with a deterministic fold,
    // "serial" keeps the serial epoch walk as the oracle/escape
    // hatch. Byte-identical either way (CI diffs them).
    const std::string merge = args.get_string("merge", "parallel");
    if (merge == "parallel")
        spec.engine.parallel_merge = true;
    else if (merge == "serial")
        spec.engine.parallel_merge = false;
    else
        fatal("--merge must be 'parallel' or 'serial', got '", merge, "'");

    // Fault model: a built-in scenario or a fault.* config file.
    const std::string scenario = args.get_string("fault-scenario", "");
    const std::string fault_file = args.get_string("fault-config", "");
    if (!scenario.empty() && !fault_file.empty())
        fatal("--fault-scenario and --fault-config are mutually exclusive");
    if (!scenario.empty()) {
        spec.engine.faults = memsim::make_fault_scenario(
            scenario,
            static_cast<std::uint64_t>(args.get_int("fault-seed", 1)));
    } else if (!fault_file.empty()) {
        spec.engine.faults =
            memsim::parse_fault_config(KvConfig::load(fault_file));
        if (args.has("fault-seed")) {
            spec.engine.faults.seed =
                static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
        }
    }

    // Transactional migration engine (off by default = strict no-op).
    spec.engine.tx = sim::parse_tx_cli(args);

    // Multi-tenant serving (tenants <= 1 = strict no-op).
    spec.tenancy = tenancy::parse_tenancy_cli(args);
    return spec;
}

/** Telemetry output destinations parsed alongside the run spec. */
struct TelemetryOutputs {
    std::string metrics_out;  ///< Metrics JSON file ("" = off).
    std::string trace_out;    ///< Base path; writes BASE.jsonl + BASE.json.
    bool profile = false;     ///< Phase profile table on stderr.
};

telemetry::TelemetryConfig
parse_telemetry(const CliArgs& args, TelemetryOutputs& outs)
{
    outs.metrics_out = args.get_string("metrics-out", "");
    outs.trace_out = args.get_string("trace-out", "");
    outs.profile = args.get_bool("profile", false);
    if (args.has("trace-categories") && outs.trace_out.empty())
        fatal("--trace-categories requires --trace-out");
    telemetry::TelemetryConfig config;
    config.metrics = !outs.metrics_out.empty();
    config.profile = outs.profile;
    if (!outs.trace_out.empty()) {
        config.trace_categories = telemetry::parse_categories(
            args.get_string("trace-categories", "all"));
    }
    return config;
}

std::ofstream
open_out(const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    return out;
}

void
write_run_telemetry(const sim::RunResult& r, const TelemetryOutputs& outs)
{
    if (r.telemetry == nullptr)
        return;
    if (!outs.metrics_out.empty()) {
        auto out = open_out(outs.metrics_out);
        r.telemetry->metrics_registry().write_json(out);
    }
    if (!outs.trace_out.empty()) {
        if (const auto* sink = r.telemetry->sink()) {
            auto jsonl = open_out(outs.trace_out + ".jsonl");
            sink->write_jsonl(jsonl);
            auto chrome = open_out(outs.trace_out + ".json");
            sink->write_chrome(chrome);
        }
    }
    if (outs.profile)
        r.telemetry->phase_profiler().write_table(std::cerr);
}

void
write_sweep_telemetry(const std::vector<sim::RunResult>& runs,
                      const TelemetryOutputs& outs, sweep::Format format)
{
    if (!outs.metrics_out.empty()) {
        const auto merged = sweep::merge_job_metrics(runs);
        auto out = open_out(outs.metrics_out);
        merged.write_json(out);
        sweep::ResultSink table({"metric", "value"});
        for (const auto& [name, value] : merged.summary_rows())
            table.row().cell(name).cell(value);
        std::cout << "merged metrics\n";
        if (!table.emit(std::cout, format))
            fatal("metrics emission failed: output stream went bad");
    }
    if (!outs.trace_out.empty()) {
        auto jsonl = open_out(outs.trace_out + ".jsonl");
        sweep::write_merged_jsonl(jsonl, runs);
        auto chrome = open_out(outs.trace_out + ".json");
        sweep::write_merged_chrome(chrome, runs);
    }
    if (outs.profile)
        sweep::merge_job_profiles(runs).write_table(std::cerr);
}

void
print_result(const sim::RunResult& r, const sim::RunSpec& spec)
{
    std::cout << "workload=" << spec.workload << " policy=" << spec.policy
              << " ratio=" << spec.ratio.label() << " seed=" << spec.seed
              << "\nruntime=" << format_fixed(r.seconds() * 1e3, 2)
              << "ms fast_ratio=" << format_fixed(r.fast_ratio, 3)
              << " migrated_pages=" << r.totals.migrated_pages()
              << " (promoted=" << r.totals.promoted_pages
              << " demoted=" << r.totals.demoted_pages
              << " exchanged=" << r.totals.exchanges
              << ") hint_faults=" << r.totals.hint_faults
              << " pebs=" << r.pebs_recorded;
    if (r.totals.migration_failures() > 0 || r.pebs_suppressed > 0) {
        std::cout << " migration_failures=" << r.totals.migration_failures()
                  << " (pinned=" << r.totals.failed_pinned
                  << " transient=" << r.totals.failed_transient
                  << " contended=" << r.totals.failed_contended
                  << " no_slot=" << r.totals.failed_no_slot
                  << ") pebs_suppressed=" << r.pebs_suppressed;
    }
    if (r.totals.tx_opened > 0) {
        std::cout << "\ntx_opened=" << r.totals.tx_opened
                  << " committed=" << r.totals.tx_committed
                  << " aborted=" << r.totals.tx_aborted
                  << " retries=" << r.totals.tx_retries
                  << " busy=" << r.totals.failed_tx_busy
                  << " free_flips=" << r.totals.tx_free_flips
                  << " dual_drops=" << r.totals.tx_dual_drops
                  << " dual_reclaims=" << r.totals.tx_dual_reclaims;
    }
    std::cout << "\n";
    if (!r.tenants.empty()) {
        std::cout << "tenants=" << r.tenants.size()
                  << " quota_denied=" << r.totals.failed_quota
                  << " admission_denied=" << r.totals.failed_admission
                  << "\n";
        Table table({"tenant", "fast_ratio", "accesses", "samples",
                     "promoted", "demoted", "used_fast", "quota",
                     "denied", "grants"});
        for (std::size_t t = 0; t < r.tenants.size(); ++t) {
            const auto& ts = r.tenants[t];
            const bool unlimited =
                ts.quota == memsim::TenantLedger::kNoQuota;
            table.row()
                .cell(t)
                .cell(ts.fast_ratio, 3)
                .cell(ts.accesses[0] + ts.accesses[1])
                .cell(ts.samples)
                .cell(ts.promoted)
                .cell(ts.demoted)
                .cell(ts.used_fast)
                .cell(unlimited ? std::string("-")
                                : std::to_string(ts.quota))
                .cell(ts.quota_denied + ts.admission_denied)
                .cell(ts.admission_grants);
        }
        table.print(std::cout);
    }
}

int
cmd_list()
{
    std::cout << "workloads:";
    for (auto w : workloads::workload_names())
        std::cout << " " << w;
    std::cout << "\npolicies: ";
    for (auto p : sim::policy_names())
        std::cout << " " << p;
    std::cout << "\nratios:   ";
    for (const auto& r : sim::paper_ratios())
        std::cout << " " << r.label();
    std::cout << "\n";
    return 0;
}

int
cmd_run(const CliArgs& args)
{
    auto spec = parse_spec(args);
    spec.engine.record_timeline = args.get_bool("timeline", false);
    TelemetryOutputs touts;
    spec.engine.telemetry = parse_telemetry(args, touts);

    std::unique_ptr<policies::Policy> policy;
    const std::string qtables = args.get_string("qtables", "");
    if (!qtables.empty()) {
        if (spec.policy != "artmem")
            fatal("--qtables only applies to the artmem policy");
        core::ArtMemConfig cfg;
        cfg.seed = spec.seed;
        auto artmem_policy = sim::make_artmem(cfg);
        std::ifstream in(qtables);
        if (!in)
            fatal("cannot open ", qtables);
        std::ostringstream blob;
        blob << in.rdbuf();
        artmem_policy->set_pretrained_qtables(blob.str());
        policy = std::move(artmem_policy);
    } else {
        policy = sim::make_policy(spec.policy, spec.seed);
    }

    const auto r = sim::run_experiment(spec, *policy);
    print_result(r, spec);
    write_run_telemetry(r, touts);
    if (spec.engine.record_timeline) {
        Table table({"t (ms)", "ratio", "promoted", "demoted"});
        for (const auto& iv : r.timeline) {
            table.row()
                .cell(static_cast<double>(iv.end_time) * 1e-6, 1)
                .cell(iv.fast_ratio, 3)
                .cell(iv.promoted)
                .cell(iv.demoted);
        }
        table.print(std::cout);
    }
    return 0;
}

int
cmd_sweep(const CliArgs& args)
{
    auto spec = parse_spec(args);
    TelemetryOutputs touts;
    spec.engine.telemetry = parse_telemetry(args, touts);
    const auto ratios = sim::paper_ratios();

    sweep::SweepSpec sweepspec;
    for (const auto policy : sim::policy_names()) {
        for (const auto& ratio : ratios) {
            auto job = spec;
            job.policy = std::string(policy);
            job.ratio = ratio;
            sweepspec.add(std::move(job), {spec.workload,
                                           std::string(policy),
                                           ratio.label()});
        }
    }
    // Opt-in per-job seed streams; the default (one shared seed for
    // every cell) matches the paper's evaluation convention.
    if (args.get_bool("derive-seeds", false))
        sweepspec.derive_seeds(spec.seed);

    sweep::SweepRunner runner(
        {.jobs = static_cast<unsigned>(args.get_int("jobs", 0)),
         .progress = true});
    const auto runs = runner.run(sweepspec);

    std::vector<std::string> headers = {"policy"};
    for (const auto& r : ratios)
        headers.push_back(r.label());
    sweep::ResultSink table(std::move(headers));
    std::size_t job = 0;
    for (const auto policy : sim::policy_names()) {
        auto& row = table.row().cell(std::string(policy));
        for (std::size_t r = 0; r < ratios.size(); ++r)
            row.cell(runs[job++].seconds() * 1e3, 1);
    }
    std::cout << "runtime (ms), workload=" << spec.workload << "\n";
    const auto format = args.get_bool("json", false)
                            ? sweep::Format::kJson
                            : (args.get_bool("csv", false)
                                   ? sweep::Format::kCsv
                                   : sweep::Format::kTable);
    if (!table.emit(std::cout, format))
        fatal("result emission failed: output stream went bad");
    write_sweep_telemetry(runs, touts, format);
    return 0;
}

int
cmd_train(const CliArgs& args)
{
    auto spec = parse_spec(args);
    const std::string out_path = args.get_string("out", "qtables.txt");
    core::ArtMemConfig cfg;
    cfg.seed = spec.seed;
    auto policy = sim::make_artmem(cfg);
    const auto r = sim::run_experiment(spec, *policy);
    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write ", out_path);
    policy->save_qtables(out);
    print_result(r, spec);
    std::cout << "Q-tables written to " << out_path << "\n";
    return 0;
}

int
cmd_trace_record(const CliArgs& args)
{
    auto spec = parse_spec(args);
    const std::string out = args.get_string("out", spec.workload + ".trace");
    auto inner = workloads::make_workload(spec.workload, kPage,
                                          spec.accesses, spec.seed);
    workloads::TraceWriter writer(std::move(inner), out, kPage);
    std::vector<PageId> buf(8192);
    while (writer.fill(buf) > 0) {
    }
    std::cout << "recorded " << writer.written() << " accesses of "
              << spec.workload << " to " << out << "\n";
    return 0;
}

int
cmd_trace_run(const CliArgs& args)
{
    const std::string path = args.get_string("trace", "");
    if (path.empty())
        fatal("trace-run requires --trace=<file>");
    auto spec = parse_spec(args);
    workloads::TraceReplay replay(path);
    auto machine_config = sim::make_machine_config(
        replay.footprint(), spec.ratio, replay.page_size());
    memsim::TieredMachine machine(machine_config);
    auto policy = sim::make_policy(spec.policy, spec.seed);
    sim::EngineConfig engine;
    engine.tx = spec.engine.tx;
    engine.shards = spec.engine.shards;
    engine.parallel_merge = spec.engine.parallel_merge;
    if (engine.shards > 0)
        engine.shard_seed = spec.seed;
    const auto r = sim::run_simulation(replay, *policy, machine, engine);
    spec.workload = "trace:" + path;
    print_result(r, spec);
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    const auto args = CliArgs::parse(argc, argv);
    if (args.positional().empty()) {
        std::cerr
            << "usage: artmem <list|run|sweep|train|trace-record|"
               "trace-run> [flags]\n"
               "flags: --workload= --policy= --ratio=F:S --accesses=N "
               "--seed=N --timeline --qtables= --out= --trace= --csv "
               "--json\n"
               "       --jobs=N --derive-seeds (sweep: parallel workers / "
               "per-job seed streams)\n"
               "       --shards=N (shard the access hot path across N "
               "threads; byte-identical for every N, like --jobs)\n"
               "       --merge=<parallel|serial> (phase-2 merge for "
               "sharded runs; parallel is default, serial is the "
               "oracle; byte-identical either way)\n"
               "       --fault-scenario=<none|migration|degrade|blackout|"
               "pressure|abort_storm> --fault-config=<file> --fault-seed=N\n"
               "       --tx-migration (transactional copy-then-commit "
               "migrations; DESIGN.md section 10)\n"
               "       --tx-write-ratio=R --tx-max-inflight=N --tx-seed=N "
               "--tx-exclusive (release the source slot at commit)\n"
               "       --tenants=N (interleave N tenant workloads; "
               "DESIGN.md section 13) --tenant-quota=PAGES "
               "--tenant-quota-share=F\n"
               "       --tenant-mix=w1,w2,... --tenant-weights=a,b,... "
               "--tenant-quantum=N --tenant-phase-stride=N "
               "--tenant-config=<file>\n"
               "       --admission=<none|allow_all|static|feedback> "
               "--admission-rate=N --admission-target=R --admission-max=N\n"
               "       --check-invariants (audit simulator state every "
               "interval; see DESIGN.md section 6)\n"
               "       --metrics-out=FILE --trace-out=BASE (writes "
               "BASE.jsonl + BASE.json) --profile\n"
               "       --trace-categories=<all|none|engine,migration,pebs,"
               "rl,threshold> (default all; needs --trace-out)\n";
        return 1;
    }
    const std::string& command = args.positional()[0];
    if (command == "list")
        return cmd_list();
    if (command == "run")
        return cmd_run(args);
    if (command == "sweep")
        return cmd_sweep(args);
    if (command == "train")
        return cmd_train(args);
    if (command == "trace-record")
        return cmd_trace_record(args);
    if (command == "trace-run")
        return cmd_trace_run(args);
    artmem::fatal("unknown command '", command, "'");
}
