/**
 * @file
 * detlint — the repo's rule-coded determinism & concurrency linter.
 *
 * Replaces the grep half of scripts/check_lint.sh with a real
 * analyzer: every ban is a numbered rule (DL001..DL007, catalog in
 * DESIGN.md §11), findings carry file/line/excerpt, suppressions are
 * per-rule with a mandatory reason, path allowlists live in a
 * checked-in config (configs/detlint.toml), and output is available as
 * machine-readable JSON for CI artifacts.
 *
 * The scanner is line-based over comment- and string-stripped source:
 * it is a lint, not a compiler — heuristic by design, precise enough
 * that the tree runs finding-free (the detlint_selflint ctest target),
 * and every rule is exercised in both directions by the fixture corpus
 * under tests/lint_fixtures/.
 *
 * detlint is deliberately dependency-free (not even artmem_util): it
 * must stay buildable and runnable in the lint stage before anything
 * else compiles, and it must itself pass the determinism rules it
 * enforces (sorted directory walks, no clocks, no hash containers).
 */
#ifndef ARTMEM_TOOLS_DETLINT_HPP
#define ARTMEM_TOOLS_DETLINT_HPP

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace artmem::detlint {

/** One catalog entry; --list-rules prints these. */
struct RuleInfo {
    std::string_view id;         ///< "DL001"
    std::string_view title;      ///< Short name, e.g. "wall-clock read".
    std::string_view rationale;  ///< Why the construct is banned.
};

/**
 * The rule catalog, in id order. DL000 is the meta-rule for malformed
 * suppressions (unknown rule id, or a lint:allow with no reason).
 */
const std::vector<RuleInfo>& rule_catalog();

/** True when @p id names a catalog rule (including DL000). */
bool known_rule(std::string_view id);

/** One lint finding. */
struct Finding {
    std::string rule;     ///< Rule id ("DL003").
    std::string path;     ///< File as given to the scanner.
    std::size_t line = 0; ///< 1-based line number.
    std::string message;  ///< Rule title + context.
    std::string excerpt;  ///< Offending source line, trimmed.
};

/**
 * Scanner configuration (configs/detlint.toml).
 *
 * Path lists hold repo-relative prefixes; a file matches a prefix when
 * its path starts with it or contains it at a directory boundary, so
 * both `detlint src` from the repo root and absolute-path invocations
 * resolve the same allowlists.
 */
struct Config {
    /** File extensions scanned during directory walks. */
    std::vector<std::string> extensions = {".cpp", ".hpp"};
    /** Path prefixes excluded from scanning entirely. */
    std::vector<std::string> exclude;
    /** Per-rule path allowlists: rule id -> path prefixes. */
    std::map<std::string, std::vector<std::string>> allow;
    /**
     * DL004: function names whose returned status must not be
     * discarded (the CI-side echo of the [[nodiscard]] annotations).
     */
    std::vector<std::string> status_functions;
};

/**
 * Parse the TOML subset used by configs/detlint.toml: `[lint]` with
 * `extensions`/`exclude`, and `[rules.DLxxx]` with `allow` (and
 * `functions` for DL004). Arrays are single-line, values are quoted
 * strings, `#` starts a comment. On error returns false and sets
 * @p error to "line N: what".
 */
bool parse_config(std::istream& is, Config& config, std::string& error);

/** parse_config over a file; error mentions the path. */
bool load_config(const std::string& path, Config& config,
                 std::string& error);

/**
 * Lint one in-memory source file. @p path is used for reporting and
 * allowlist matching only.
 */
std::vector<Finding> lint_text(std::string_view path,
                               std::string_view text,
                               const Config& config);

/**
 * Lint files and directory trees (recursive, extension-filtered,
 * lexicographically sorted so output order is deterministic). I/O
 * problems are reported in @p errors; scanning continues past them.
 */
std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Config& config,
                                std::vector<std::string>& errors);

/** Human-readable report, one line per finding plus a summary. */
void write_text(std::ostream& os, const std::vector<Finding>& findings);

/** Machine-readable report: {"tool","rules",...,"findings":[...]}. */
void write_json(std::ostream& os, const std::vector<Finding>& findings);

}  // namespace artmem::detlint

#endif  // ARTMEM_TOOLS_DETLINT_HPP
