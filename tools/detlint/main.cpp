/**
 * @file
 * detlint CLI.
 *
 *     detlint [--config FILE] [--json] [--list-rules] PATH...
 *
 * Exit status: 0 clean, 1 findings, 2 usage/config/I-O error — the
 * same convention scripts/check_lint.sh and CI rely on.
 */
#include "detlint.hpp"

#include <iostream>
#include <string>
#include <vector>

namespace {

int
usage(std::ostream& os, int status)
{
    os << "usage: detlint [--config FILE] [--json] [--list-rules] "
          "PATH...\n"
          "  --config FILE  load configs/detlint.toml-style config\n"
          "  --json         machine-readable findings on stdout\n"
          "  --list-rules   print the rule catalog and exit\n"
          "Scans .cpp/.hpp files (recursively for directories).\n"
          "Exit: 0 clean, 1 findings, 2 error.\n";
    return status;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace artmem::detlint;

    Config config;
    bool json = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list-rules") {
            for (const auto& rule : rule_catalog())
                std::cout << rule.id << "  " << rule.title << "\n      "
                          << rule.rationale << "\n";
            return 0;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--config") {
            if (++i >= argc) {
                std::cerr << "detlint: --config needs a file\n";
                return 2;
            }
            std::string error;
            if (!load_config(argv[i], config, error)) {
                std::cerr << "detlint: " << error << "\n";
                return 2;
            }
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "detlint: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << "detlint: no paths given\n";
        return usage(std::cerr, 2);
    }

    std::vector<std::string> errors;
    const std::vector<Finding> findings = lint_paths(paths, config, errors);
    for (const auto& error : errors)
        std::cerr << "detlint: " << error << "\n";

    if (json)
        write_json(std::cout, findings);
    else
        write_text(std::cout, findings);

    if (!errors.empty())
        return 2;
    return findings.empty() ? 0 : 1;
}
