#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <regex>
#include <sstream>

namespace artmem::detlint {

namespace {

// ---------------------------------------------------------------------
// Rule catalog.
// ---------------------------------------------------------------------

const std::vector<RuleInfo> kCatalog = {
    {"DL000", "malformed suppression",
     "a lint:allow() names an unknown rule or carries no reason; "
     "suppressions must say why the exception is sound"},
    {"DL001", "wall-clock read",
     "host time varies run to run; simulated time must come from "
     "TieredMachine::now() (golden bit-identity, tests/test_faults.cpp)"},
    {"DL002", "unseeded or platform-seeded RNG",
     "rand()/std::random_device/default-seeded engines break seeded "
     "replays; every stream must take an explicit deterministic seed"},
    {"DL003", "unordered-container iteration order",
     "std::unordered_* iteration order is implementation-defined and "
     "feeds hash order into results; use flat arrays / std::map"},
    {"DL004", "discarded status result",
     "the returned status of a [[nodiscard]]-annotated API is dropped "
     "on the floor; consume it or cast to (void) with a suppression"},
    {"DL005", "raw std synchronization primitive",
     "std::mutex has no capability attribute, so Clang thread-safety "
     "analysis cannot track it; use artmem::Mutex/CondVar "
     "(util/sync.hpp)"},
    {"DL006", "shared mutable static",
     "writable static state is shared across sweep worker threads and "
     "across runs; make it const/constexpr or move it into the job"},
    {"DL007", "order-sensitive floating-point reduction",
     "std::reduce / parallel execution policies (and float-seeded "
     "std::accumulate over parallel results) make the reduction order, "
     "and thus the rounded sum, nondeterministic; reduce in job order"},
};

// ---------------------------------------------------------------------
// Line splitting and comment/string stripping.
// ---------------------------------------------------------------------

/** One physical line, split into analyzable layers. */
struct SourceLine {
    std::string code;     ///< Comments and literal contents blanked.
    std::string comment;  ///< Concatenated comment text on this line.
};

/**
 * Lexer state carried across lines: block comments and raw string
 * literals both span lines.
 */
struct StripState {
    bool in_block_comment = false;
    bool in_raw_string = false;
    std::string raw_terminator;  ///< ")delim\"" that ends the raw string.
};

/**
 * Blank comments and the contents of string/char literals out of one
 * line (keeping the line length stable is unnecessary; findings quote
 * the raw line). Comment text is collected separately so suppression
 * markers are only honoured inside real comments — a "lint:allow"
 * inside a string literal (this file has several) is not a
 * suppression.
 */
SourceLine
strip_line(const std::string& raw, StripState& state)
{
    SourceLine out;
    std::size_t i = 0;
    const std::size_t n = raw.size();
    while (i < n) {
        if (state.in_block_comment) {
            const std::size_t end = raw.find("*/", i);
            if (end == std::string::npos) {
                out.comment.append(raw, i, n - i);
                return out;
            }
            out.comment.append(raw, i, end - i);
            out.comment.push_back(' ');
            state.in_block_comment = false;
            i = end + 2;
            continue;
        }
        if (state.in_raw_string) {
            const std::size_t end = raw.find(state.raw_terminator, i);
            if (end == std::string::npos)
                return out;  // literal continues on the next line
            state.in_raw_string = false;
            i = end + state.raw_terminator.size();
            continue;
        }
        const char c = raw[i];
        if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
            out.comment.append(raw, i + 2, n - (i + 2));
            return out;
        }
        if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
            state.in_block_comment = true;
            i += 2;
            continue;
        }
        if (c == 'R' && i + 1 < n && raw[i + 1] == '"' &&
            (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                            raw[i - 1])) &&
                        raw[i - 1] != '_'))) {
            // Raw string literal: R"delim( ... )delim"
            const std::size_t open = raw.find('(', i + 2);
            if (open == std::string::npos) {
                out.code.push_back(c);
                ++i;
                continue;
            }
            state.raw_terminator =
                ")" + raw.substr(i + 2, open - (i + 2)) + "\"";
            state.in_raw_string = true;
            out.code.append("\"\"");
            i = open + 1;
            continue;
        }
        if (c == '"') {
            out.code.push_back('"');
            ++i;
            while (i < n && raw[i] != '"') {
                if (raw[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n) {
                out.code.push_back('"');
                ++i;
            }
            continue;
        }
        if (c == '\'') {
            // Treat as a char literal only when it cannot be a C++14
            // digit separator (1'000'000) or a literal suffix.
            const bool separator =
                i > 0 && (std::isalnum(static_cast<unsigned char>(
                              raw[i - 1])) ||
                          raw[i - 1] == '_');
            if (separator) {
                out.code.push_back(c);
                ++i;
                continue;
            }
            out.code.push_back('\'');
            ++i;
            while (i < n && raw[i] != '\'') {
                if (raw[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n) {
                out.code.push_back('\'');
                ++i;
            }
            continue;
        }
        out.code.push_back(c);
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------

struct Suppressions {
    std::vector<std::string> rules;  ///< Ids with a valid reason.
    std::vector<std::string> bad;    ///< DL000 details for this line.
};

std::string
trim(std::string_view text)
{
    std::size_t b = 0, e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return std::string(text.substr(b, e - b));
}

/**
 * Parse every suppression marker in a line's comment text: the
 * "lint:allow" needle, a parenthesized comma list of rule ids, then
 * the mandatory reason. A marker with an unknown rule id or an empty
 * reason is recorded as a DL000 detail instead of a suppression.
 */
Suppressions
parse_suppressions(const std::string& comment)
{
    Suppressions out;
    static const std::string kNeedle = "lint:allow(";
    std::size_t pos = 0;
    while ((pos = comment.find(kNeedle, pos)) != std::string::npos) {
        const std::size_t open = pos + kNeedle.size();
        const std::size_t close = comment.find(')', open);
        if (close == std::string::npos) {
            out.bad.push_back("unterminated lint:allow(");
            break;
        }
        // Reason: everything after ')' up to the next marker.
        std::size_t next = comment.find(kNeedle, close);
        const std::string reason = trim(comment.substr(
            close + 1, next == std::string::npos ? std::string::npos
                                                 : next - (close + 1)));
        std::stringstream ids(comment.substr(open, close - open));
        std::string id;
        while (std::getline(ids, id, ',')) {
            id = trim(id);
            if (!known_rule(id) || id == "DL000") {
                out.bad.push_back("unknown rule '" + id +
                                  "' in lint:allow()");
                continue;
            }
            if (reason.size() < 3) {
                out.bad.push_back("lint:allow(" + id +
                                  ") carries no reason");
                continue;
            }
            out.rules.push_back(id);
        }
        pos = close + 1;
    }
    return out;
}

// ---------------------------------------------------------------------
// Rule matching.
// ---------------------------------------------------------------------

struct RegexRule {
    const char* id;
    std::regex pattern;
    const char* detail;  ///< Appended to the catalog title.
    /** Path prefix the rule is scoped to (nullptr = every file). Lets a
     *  pattern that is fine in general — e.g. drawing from the frozen
     *  SeedDomain::kJob stream — be banned inside one subsystem. */
    const char* only = nullptr;
};

const std::vector<RegexRule>&
regex_rules()
{
    static const std::vector<RegexRule> kRules = [] {
        std::vector<RegexRule> rules;
        const auto add = [&rules](const char* id, const char* pattern,
                                  const char* detail,
                                  const char* only = nullptr) {
            rules.push_back({id, std::regex(pattern), detail, only});
        };
        // DL001 — wall-clock / CPU-clock reads.
        add("DL001",
            R"(std::chrono::(system_clock|steady_clock|high_resolution_clock))",
            "std::chrono clock type");
        add("DL001", R"(\b(gettimeofday|clock_gettime)\s*\()",
            "POSIX clock call");
        add("DL001", R"(\bclock\s*\(\s*\))", "C clock() call");
        add("DL001", R"(\btime\s*\()", "C time() call");
        // DL002 — unseeded / platform-seeded RNG.
        add("DL002", R"(\bsrand\s*\()", "srand()");
        add("DL002", R"(\brand\s*\(\s*\))", "rand()");
        add("DL002", R"(std::random_device)", "std::random_device");
        add("DL002",
            R"(std::(mt19937(_64)?|default_random_engine|minstd_rand0?)\s+\w+\s*(;|\{\s*\}))",
            "default-seeded engine declaration");
        add("DL002",
            R"(std::(mt19937(_64)?|default_random_engine|minstd_rand0?)\s*\(\s*\))",
            "default-seeded engine construction");
        // DL002 (src/tenancy only) — the frozen kJob domain belongs to
        // sweep jobs; tenant streams must be tagged SeedDomain::kTenant
        // or tenant 3 collides with sweep job 3 (util/rng.hpp).
        add("DL002", R"(\bSeedDomain::kJob\b)",
            "frozen kJob seed stream in tenancy code (tenant streams "
            "must derive from SeedDomain::kTenant)",
            "src/tenancy");
        // DL003 — hash-order iteration sources.
        add("DL003", R"(std::unordered_(map|set|multimap|multiset)\b)",
            "std::unordered_* container");
        // DL005 — raw std sync primitives (use util/sync.hpp).
        add("DL005",
            R"(std::(recursive_mutex|shared_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|mutex)\b)",
            "raw std mutex type");
        add("DL005", R"(std::condition_variable(_any)?\b)",
            "raw std condition variable");
        // DL007 — order-sensitive reductions.
        add("DL007", R"(std::(reduce|transform_reduce)\s*\()",
            "unordered reduction algorithm");
        add("DL007", R"(std::execution::(par_unseq|par|unseq)\b)",
            "parallel execution policy");
        return rules;
    }();
    return kRules;
}

/** DL006: a static (or thread_local) data declaration that is not
 *  const/constexpr. Function declarations (any '(') are skipped. */
bool
matches_mutable_static(const std::string& code)
{
    static const std::regex kDecl(
        R"(^\s*(inline\s+)?(static|thread_local)(\s+thread_local|\s+static)?\b)");
    static const std::regex kImmutable(
        R"(^\s*(inline\s+)?(static|thread_local)(\s+thread_local|\s+static)?\s+(const\b|constexpr\b|constinit\s+const\b))");
    if (!std::regex_search(code, kDecl))
        return false;
    if (std::regex_search(code, kImmutable))
        return false;
    if (code.find('(') != std::string::npos)
        return false;  // function declaration / definition
    return code.find(';') != std::string::npos ||
           code.find('=') != std::string::npos;
}

/** DL007 extension: std::accumulate seeded with a float literal. */
bool
matches_float_accumulate(const std::string& code)
{
    static const std::regex kAccum(R"(std::accumulate\s*\()");
    static const std::regex kFloatLiteral(R"([0-9]\.[0-9]*f?\b|\b\.?[0-9]+f\b)");
    return std::regex_search(code, kAccum) &&
           std::regex_search(code, kFloatLiteral);
}

/**
 * DL004: a full-statement call to a status-returning function whose
 * result is discarded. Heuristic: the trimmed line is exactly a call
 * chain ending in one of the configured functions, terminated with
 * ";", with no assignment/return/branch/cast consuming the value.
 * Entries starting with '.' only match member calls (obj.fn(...)).
 * @p prev_tail is the last character of the previous code line: a
 * statement can only start after ';', '{', '}' or ')' — anything else
 * (an operator, a type name) means this line continues an expression
 * or declaration that does consume the value.
 */
bool
matches_discarded_status(const std::string& code, char prev_tail,
                         const std::vector<std::string>& functions)
{
    if (prev_tail != '\0' && prev_tail != ';' && prev_tail != '{' &&
        prev_tail != '}' && prev_tail != ')')
        return false;
    const std::string line = trim(code);
    if (line.empty() || line.back() != ';')
        return false;
    if (line.find('=') != std::string::npos)
        return false;
    if (line.find("return") != std::string::npos ||
        line.find("(void)") != std::string::npos ||
        line.find("EXPECT_") != std::string::npos ||
        line.find("ASSERT_") != std::string::npos)
        return false;
    static const std::regex kBranch(R"(^(if|while|for|switch|case|do)\b)");
    if (std::regex_search(line, kBranch))
        return false;
    for (const auto& entry : functions) {
        const bool member_only = !entry.empty() && entry.front() == '.';
        const std::string fn = member_only ? entry.substr(1) : entry;
        const std::string chain = member_only
            ? R"(^[A-Za-z_][A-Za-z0-9_]*((::|\.|->)[A-Za-z_][A-Za-z0-9_]*)*(\.|->))"
            : R"(^([A-Za-z_][A-Za-z0-9_]*(::|\.|->))*)";
        const std::regex call(chain + fn + R"(\s*\(.*\)\s*;$)");
        if (std::regex_search(line, call))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Paths and allowlists.
// ---------------------------------------------------------------------

/** Strip a leading "./" and normalize separators for matching. */
std::string
normalize(std::string_view path)
{
    std::string p(path);
    while (p.rfind("./", 0) == 0)
        p.erase(0, 2);
    return p;
}

/** True when @p path is, or sits under, @p prefix — matched at a
 *  directory boundary, anchored at the front or any component, so
 *  repo-relative allowlists also apply to absolute paths. */
bool
path_matches(std::string_view path, std::string_view prefix)
{
    const std::string p = normalize(path);
    const std::string pre = normalize(prefix);
    if (pre.empty())
        return false;
    const auto boundary_ok = [&p, &pre](std::size_t at) {
        const std::size_t end = at + pre.size();
        return end == p.size() || p[end] == '/';
    };
    if (p.rfind(pre, 0) == 0 && boundary_ok(0))
        return true;
    const std::string anchored = "/" + pre;
    for (std::size_t pos = p.find(anchored); pos != std::string::npos;
         pos = p.find(anchored, pos + 1)) {
        if (boundary_ok(pos + 1))
            return true;
    }
    return false;
}

bool
rule_allowed(const Config& config, std::string_view rule,
             std::string_view path)
{
    const auto it = config.allow.find(std::string(rule));
    if (it == config.allow.end())
        return false;
    return std::any_of(it->second.begin(), it->second.end(),
                       [&path](const std::string& prefix) {
                           return path_matches(path, prefix);
                       });
}

std::string
title_of(std::string_view rule)
{
    for (const auto& info : rule_catalog()) {
        if (info.id == rule)
            return std::string(info.title);
    }
    return std::string(rule);
}

void
json_escape(std::ostream& os, std::string_view text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
            break;
        }
    }
    os << '"';
}

}  // namespace

const std::vector<RuleInfo>&
rule_catalog()
{
    return kCatalog;
}

bool
known_rule(std::string_view id)
{
    return std::any_of(kCatalog.begin(), kCatalog.end(),
                       [id](const RuleInfo& info) { return info.id == id; });
}

std::vector<Finding>
lint_text(std::string_view path, std::string_view text,
          const Config& config)
{
    std::vector<Finding> findings;
    const std::string spath(path);

    const auto emit_finding = [&](const char* rule, std::size_t line_no,
                                  const std::string& detail,
                                  const std::string& raw_line,
                                  const Suppressions& sup) {
        if (rule_allowed(config, rule, spath))
            return;
        if (std::find(sup.rules.begin(), sup.rules.end(), rule) !=
            sup.rules.end())
            return;
        Finding f;
        f.rule = rule;
        f.path = spath;
        f.line = line_no;
        f.message = title_of(rule);
        if (!detail.empty())
            f.message += ": " + detail;
        f.excerpt = trim(raw_line);
        if (f.excerpt.size() > 160)
            f.excerpt = f.excerpt.substr(0, 157) + "...";
        findings.push_back(std::move(f));
    };

    StripState state;
    std::size_t line_no = 0;
    std::size_t start = 0;
    std::vector<std::string> carried;  // from a comment-only line above
    char prev_tail = '\0';  // last char of the previous code line
    while (start <= text.size()) {
        const std::size_t end = text.find('\n', start);
        const std::string raw(text.substr(
            start, end == std::string_view::npos ? std::string_view::npos
                                                 : end - start));
        ++line_no;
        start = end == std::string_view::npos ? text.size() + 1 : end + 1;

        const SourceLine line = strip_line(raw, state);
        Suppressions sup = parse_suppressions(line.comment);
        for (const auto& bad : sup.bad)
            emit_finding("DL000", line_no, bad, raw, sup);
        // A suppression on its own comment line covers the next line
        // of code (the NOLINTNEXTLINE idiom), so long annotations
        // don't force overlong code lines.
        sup.rules.insert(sup.rules.end(), carried.begin(), carried.end());
        if (trim(line.code).empty())
            carried = sup.rules;
        else
            carried.clear();

        for (const auto& rule : regex_rules()) {
            if (rule.only != nullptr && !path_matches(spath, rule.only))
                continue;
            if (std::regex_search(line.code, rule.pattern))
                emit_finding(rule.id, line_no, rule.detail, raw, sup);
        }
        if (matches_discarded_status(line.code, prev_tail,
                                     config.status_functions))
            emit_finding("DL004", line_no, "status-returning call used as "
                         "a bare statement", raw, sup);
        if (matches_mutable_static(line.code))
            emit_finding("DL006", line_no, "non-const static data", raw,
                         sup);
        if (matches_float_accumulate(line.code))
            emit_finding("DL007", line_no,
                         "float-seeded std::accumulate", raw, sup);
        if (const std::string tail = trim(line.code); !tail.empty())
            prev_tail = tail.back();
    }
    return findings;
}

bool
parse_config(std::istream& is, Config& config, std::string& error)
{
    std::string line;
    std::string section;
    std::size_t line_no = 0;

    const auto fail = [&error, &line_no](const std::string& what) {
        error = "line " + std::to_string(line_no) + ": " + what;
        return false;
    };

    const auto parse_string_array =
        [](const std::string& value, std::vector<std::string>& out,
           std::string& why) {
            const std::string body = trim(value);
            if (body.size() < 2 || body.front() != '[' ||
                body.back() != ']') {
                why = "expected a [\"...\"] array";
                return false;
            }
            std::size_t i = 1;
            const std::size_t n = body.size() - 1;
            while (i < n) {
                while (i < n && (std::isspace(static_cast<unsigned char>(
                                     body[i])) ||
                                 body[i] == ','))
                    ++i;
                if (i >= n)
                    break;
                if (body[i] != '"') {
                    why = "array elements must be quoted strings";
                    return false;
                }
                const std::size_t close = body.find('"', i + 1);
                if (close == std::string::npos) {
                    why = "unterminated string";
                    return false;
                }
                out.push_back(body.substr(i + 1, close - (i + 1)));
                i = close + 1;
            }
            return true;
        };

    while (std::getline(is, line)) {
        ++line_no;
        bool in_string = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '"')
                in_string = !in_string;
            else if (line[i] == '#' && !in_string) {
                line.erase(i);
                break;
            }
        }
        const std::string text = trim(line);
        if (text.empty())
            continue;
        if (text.front() == '[') {
            if (text.back() != ']')
                return fail("unterminated section header");
            section = trim(text.substr(1, text.size() - 2));
            if (section != "lint" && section.rfind("rules.", 0) != 0)
                return fail("unknown section [" + section + "]");
            if (section.rfind("rules.", 0) == 0 &&
                !known_rule(section.substr(6)))
                return fail("unknown rule in section [" + section + "]");
            continue;
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos)
            return fail("expected key = value");
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));
        std::string why;
        if (section == "lint") {
            if (key == "extensions") {
                config.extensions.clear();
                if (!parse_string_array(value, config.extensions, why))
                    return fail(why);
            } else if (key == "exclude") {
                if (!parse_string_array(value, config.exclude, why))
                    return fail(why);
            } else {
                return fail("unknown key '" + key + "' in [lint]");
            }
        } else if (section.rfind("rules.", 0) == 0) {
            const std::string rule = section.substr(6);
            if (key == "allow") {
                if (!parse_string_array(value, config.allow[rule], why))
                    return fail(why);
            } else if (key == "functions" && rule == "DL004") {
                if (!parse_string_array(value, config.status_functions,
                                        why))
                    return fail(why);
            } else {
                return fail("unknown key '" + key + "' in [" + section +
                            "]");
            }
        } else {
            return fail("key outside any section");
        }
    }
    return true;
}

bool
load_config(const std::string& path, Config& config, std::string& error)
{
    std::ifstream is(path);
    if (!is) {
        error = path + ": cannot open";
        return false;
    }
    if (!parse_config(is, config, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

std::vector<Finding>
lint_paths(const std::vector<std::string>& paths, const Config& config,
           std::vector<std::string>& errors)
{
    namespace fs = std::filesystem;

    const auto wanted_extension = [&config](const fs::path& p) {
        const std::string ext = p.extension().string();
        return std::find(config.extensions.begin(),
                         config.extensions.end(),
                         ext) != config.extensions.end();
    };
    const auto excluded = [&config](const std::string& p) {
        return std::any_of(config.exclude.begin(), config.exclude.end(),
                           [&p](const std::string& prefix) {
                               return path_matches(p, prefix);
                           });
    };

    std::vector<std::string> files;
    for (const auto& root : paths) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (fs::recursive_directory_iterator
                     it(root, fs::directory_options::skip_permission_denied,
                        ec),
                 end;
                 it != end; it.increment(ec)) {
                if (ec) {
                    errors.push_back(root + ": " + ec.message());
                    break;
                }
                if (it->is_regular_file(ec) &&
                    wanted_extension(it->path())) {
                    const std::string p = it->path().generic_string();
                    if (!excluded(p))
                        files.push_back(p);
                }
            }
        } else if (fs::is_regular_file(root, ec)) {
            if (!excluded(root))
                files.push_back(root);
        } else {
            errors.push_back(root + ": not a file or directory");
        }
    }
    // Deterministic report order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> findings;
    for (const auto& file : files) {
        std::ifstream is(file, std::ios::binary);
        if (!is) {
            errors.push_back(file + ": cannot open");
            continue;
        }
        std::ostringstream text;
        text << is.rdbuf();
        auto file_findings = lint_text(file, text.str(), config);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
    }
    return findings;
}

void
write_text(std::ostream& os, const std::vector<Finding>& findings)
{
    for (const auto& f : findings) {
        os << f.path << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n    " << f.excerpt << "\n";
    }
    if (findings.empty())
        os << "detlint: clean\n";
    else
        os << "detlint: " << findings.size() << " finding"
           << (findings.size() == 1 ? "" : "s") << "\n";
}

void
write_json(std::ostream& os, const std::vector<Finding>& findings)
{
    os << "{\n  \"tool\": \"detlint\",\n  \"count\": " << findings.size()
       << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const auto& f = findings[i];
        os << (i == 0 ? "\n" : ",\n") << "    {\"rule\": ";
        json_escape(os, f.rule);
        os << ", \"path\": ";
        json_escape(os, f.path);
        os << ", \"line\": " << f.line << ", \"message\": ";
        json_escape(os, f.message);
        os << ", \"excerpt\": ";
        json_escape(os, f.excerpt);
        os << "}";
    }
    os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace artmem::detlint
