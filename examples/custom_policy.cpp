/**
 * @file
 * Extensibility example: implementing your own tiering policy against
 * the public Policy interface and racing it against ArtMem.
 *
 * The custom policy below ("SimpleHot") promotes any slow page seen at
 * least N times in the PEBS sample stream within an interval and never
 * demotes proactively — a ~40-line strawman that shows exactly which
 * hooks a policy gets (samples, ticks, intervals) and how migrations
 * are issued through the TieredMachine.
 *
 *   ./custom_policy --workload=s3 --accesses=4000000
 */
#include <iostream>
#include <vector>

#include "policies/policy.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace artmem;

/** Promote-on-K-samples strawman policy. */
class SimpleHot final : public policies::Policy
{
  public:
    explicit SimpleHot(std::uint32_t k = 2) : k_(k) {}

    std::string_view name() const override { return "simplehot"; }

    void
    init(memsim::TieredMachine& machine) override
    {
        Policy::init(machine);
        window_counts_.assign(machine.page_count(), 0);
    }

    void
    on_samples(std::span<const memsim::PebsSample> samples) override
    {
        for (const auto& s : samples) {
            if (s.tier == memsim::Tier::kSlow &&
                ++window_counts_[s.page] == k_) {
                candidates_.push_back(s.page);
            }
        }
    }

    void
    on_interval(SimTimeNs now) override
    {
        (void)now;
        auto& m = machine();
        for (PageId page : candidates_) {
            if (m.free_pages(memsim::Tier::kFast) == 0)
                break;  // never demotes: stops when DRAM is full
            // migrate() returns a typed result that must be consumed;
            // a failed promotion (pinned page, lost race for the last
            // slot) simply moves on to the next candidate.
            if (!m.migrate(page, memsim::Tier::kFast))
                continue;
        }
        candidates_.clear();
        // Forget stale counts every few intervals (a crude cooling).
        if (++intervals_ % 8 == 0)
            std::fill(window_counts_.begin(), window_counts_.end(), 0);
    }

  private:
    std::uint32_t k_;
    unsigned intervals_ = 0;
    std::vector<std::uint32_t> window_counts_;
    std::vector<PageId> candidates_;
};

}  // namespace

int
main(int argc, char** argv)
{
    const auto args = CliArgs::parse(argc, argv);
    sim::RunSpec spec;
    spec.workload = args.get_string("workload", "s1");
    spec.accesses = static_cast<std::uint64_t>(
        args.get_int("accesses", 4000000));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    spec.ratio = {1, 2};

    std::cout << "Custom policy vs ArtMem on " << spec.workload
              << " (1:2 ratio)\n\n";

    Table table({"policy", "runtime (ms)", "fast ratio", "migrated"});

    SimpleHot custom;
    const auto mine = sim::run_experiment(spec, custom);
    table.row()
        .cell("simplehot (yours)")
        .cell(mine.seconds() * 1e3, 1)
        .cell(mine.fast_ratio, 3)
        .cell(mine.totals.migrated_pages());

    spec.policy = "artmem";
    const auto art = sim::run_experiment(spec);
    table.row()
        .cell("artmem")
        .cell(art.seconds() * 1e3, 1)
        .cell(art.fast_ratio, 3)
        .cell(art.totals.migrated_pages());

    table.print(std::cout);
    std::cout << "\nSimpleHot never demotes, so once DRAM fills with the "
                 "first warm pages it can no longer adapt — the gap to "
                 "ArtMem is the value of scope control + demotion.\n";
    return 0;
}
