/**
 * @file
 * Quickstart: run one workload under ArtMem and a baseline, print the
 * headline numbers. Start here to see the public API end to end.
 *
 *   ./quickstart --workload=ycsb --baseline=memtis --ratio=1:4
 */
#include <iostream>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    const auto args = CliArgs::parse(argc, argv);

    sim::RunSpec spec;
    spec.workload = args.get_string("workload", "ycsb");
    spec.accesses = static_cast<std::uint64_t>(
        args.get_int("accesses", 4000000));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const std::string ratio = args.get_string("ratio", "1:4");
    const auto colon = ratio.find(':');
    if (colon != std::string::npos) {
        spec.ratio.fast = std::stoi(ratio.substr(0, colon));
        spec.ratio.slow = std::stoi(ratio.substr(colon + 1));
    }

    const std::string baseline = args.get_string("baseline", "memtis");

    std::cout << "workload=" << spec.workload << " ratio="
              << spec.ratio.label() << " accesses=" << spec.accesses
              << " seed=" << spec.seed << "\n\n";

    Table table({"policy", "runtime (ms)", "fast-tier ratio",
                 "migrated pages", "speedup vs static"});

    spec.policy = "static";
    const auto base = sim::run_experiment(spec);

    for (const std::string& policy :
         {std::string("static"), baseline, std::string("artmem")}) {
        spec.policy = policy;
        const auto r = sim::run_experiment(spec);
        table.row()
            .cell(policy)
            .cell(r.seconds() * 1e3, 2)
            .cell(r.fast_ratio, 3)
            .cell(static_cast<std::uint64_t>(r.totals.migrated_pages()))
            .cell(static_cast<double>(base.runtime_ns) /
                      static_cast<double>(r.runtime_ns),
                  2);
    }
    table.print(std::cout);
    std::cout << "\nHigher fast-tier ratio and fewer migrations at the "
                 "same speedup indicate better scope control.\n";
    return 0;
}
