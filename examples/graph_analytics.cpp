/**
 * @file
 * Domain example: graph analytics on tiered memory.
 *
 * Runs the three GAP-style graph workloads (CC, SSSP, PageRank) under
 * ArtMem and a chosen baseline across shrinking DRAM shares, printing
 * runtime and fast-tier access ratio — the scenario from the paper's
 * "Graph" evaluation, where locality-aware promotion gives ArtMem
 * 12%-509% improvements.
 *
 *   ./graph_analytics --baseline=autonuma --accesses=4000000
 */
#include <iostream>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    const auto args = CliArgs::parse(argc, argv);
    const auto accesses = static_cast<std::uint64_t>(
        args.get_int("accesses", 4000000));
    const std::string baseline = args.get_string("baseline", "autonuma");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const std::vector<sim::RatioSpec> ratios = {{1, 1}, {1, 4}, {1, 16}};

    std::cout << "Graph analytics on tiered memory: ArtMem vs " << baseline
              << "\n\n";

    for (const std::string workload : {"cc", "sssp", "pr"}) {
        Table table({"ratio", baseline + " ms", "artmem ms", "speedup",
                     baseline + " ratio", "artmem ratio"});
        for (const auto& ratio : ratios) {
            sim::RunSpec spec;
            spec.workload = workload;
            spec.ratio = ratio;
            spec.accesses = accesses;
            spec.seed = seed;

            spec.policy = baseline;
            const auto base = sim::run_experiment(spec);
            spec.policy = "artmem";
            const auto art = sim::run_experiment(spec);

            table.row()
                .cell(ratio.label())
                .cell(base.seconds() * 1e3, 1)
                .cell(art.seconds() * 1e3, 1)
                .cell(static_cast<double>(base.runtime_ns) /
                          static_cast<double>(art.runtime_ns),
                      2)
                .cell(base.fast_ratio, 3)
                .cell(art.fast_ratio, 3);
        }
        std::cout << "Workload: " << workload << "\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
