/**
 * @file
 * CLI tool example: run any MASIM-style workload config file under any
 * registered policy (the workflow the paper's Section 3 used to study
 * policy behaviour on hand-written patterns).
 *
 *   ./masim_runner my_pattern.cfg --policy=artmem --ratio=1:1
 *
 * Config format (key = value):
 *   name = mypattern
 *   footprint_mib = 32768
 *   phases = 1
 *   phase0.accesses = 4000000
 *   phase0.regions = 2
 *   phase0.region0 = 20480 500 45.0        # offset_mib size_mib weight
 *   phase0.region1 = 0 32768 10.0 seq      # trailing 'seq' = sequential
 */
#include <fstream>
#include <iostream>

#include "sim/experiment.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workloads/masim.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    const auto args = CliArgs::parse(argc, argv);
    if (args.positional().empty()) {
        std::cerr << "usage: " << args.program()
                  << " <config-file> [--policy=artmem] [--ratio=1:1]"
                     " [--seed=N] [--timeline] [--check-invariants]\n"
                     "       [--metrics-out=FILE] [--trace-out=BASE]"
                     " [--trace-categories=LIST] [--profile]\n";
        return 1;
    }

    const auto cfg = KvConfig::load(args.positional()[0]);
    auto spec = workloads::Masim::parse_spec(cfg);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    constexpr Bytes kPage = 2ull << 20;
    workloads::Masim gen(spec, kPage, seed);

    sim::RatioSpec ratio{1, 1};
    const std::string ratio_text = args.get_string("ratio", "1:1");
    const auto colon = ratio_text.find(':');
    if (colon != std::string::npos) {
        ratio.fast = std::stoi(ratio_text.substr(0, colon));
        ratio.slow = std::stoi(ratio_text.substr(colon + 1));
    }

    auto machine_config =
        sim::make_machine_config(gen.footprint(), ratio, kPage);
    memsim::TieredMachine machine(machine_config);
    auto policy =
        sim::make_policy(args.get_string("policy", "artmem"), seed);
    sim::EngineConfig engine;
    engine.record_timeline = args.get_bool("timeline", false);
    engine.check_invariants = args.get_bool("check-invariants", false);

    const std::string metrics_out = args.get_string("metrics-out", "");
    const std::string trace_out = args.get_string("trace-out", "");
    engine.telemetry.metrics = !metrics_out.empty();
    engine.telemetry.profile = args.get_bool("profile", false);
    if (!trace_out.empty()) {
        engine.telemetry.trace_categories = telemetry::parse_categories(
            args.get_string("trace-categories", "all"));
    }

    const auto r = sim::run_simulation(gen, *policy, machine, engine);

    std::cout << "workload=" << gen.name() << " footprint="
              << gen.footprint() / (1ull << 20) << "MiB policy="
              << policy->name() << " ratio=" << ratio.label() << "\n"
              << "runtime=" << format_fixed(r.seconds() * 1e3, 2)
              << "ms fast_ratio=" << format_fixed(r.fast_ratio, 3)
              << " migrated_pages=" << r.totals.migrated_pages()
              << " hint_faults=" << r.totals.hint_faults << "\n";

    if (engine.record_timeline) {
        Table table({"t (ms)", "ratio", "promoted", "demoted"});
        for (const auto& iv : r.timeline) {
            table.row()
                .cell(static_cast<double>(iv.end_time) * 1e-6, 1)
                .cell(iv.fast_ratio, 3)
                .cell(iv.promoted)
                .cell(iv.demoted);
        }
        table.print(std::cout);
    }

    if (r.telemetry != nullptr) {
        if (!metrics_out.empty()) {
            std::ofstream out(metrics_out);
            r.telemetry->metrics_registry().write_json(out);
        }
        if (!trace_out.empty()) {
            if (const auto* sink = r.telemetry->sink()) {
                std::ofstream jsonl(trace_out + ".jsonl");
                sink->write_jsonl(jsonl);
                std::ofstream chrome(trace_out + ".json");
                sink->write_chrome(chrome);
            }
        }
        if (engine.telemetry.profile)
            r.telemetry->phase_profiler().write_table(std::cerr);
    }
    return 0;
}
