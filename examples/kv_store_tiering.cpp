/**
 * @file
 * Domain example: an in-memory key-value store (Memcached + YCSB)
 * whose hot set shifts mid-run.
 *
 * YCSB runs A-B-C-F-D; workload D switches popularity to the most
 * recently inserted keys at the top of the arena. The example prints a
 * timeline of ArtMem's fast-tier access ratio and migrations so you can
 * watch the RL agent detect the shift (ratio drop) and re-place the new
 * hot set — the adaptivity that static-threshold systems miss.
 *
 *   ./kv_store_tiering --ratio=1:4 --accesses=6000000
 */
#include <iostream>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace artmem;
    const auto args = CliArgs::parse(argc, argv);

    sim::RunSpec spec;
    spec.workload = "ycsb";
    spec.policy = "artmem";
    spec.accesses = static_cast<std::uint64_t>(
        args.get_int("accesses", 6000000));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    spec.engine.record_timeline = true;

    const std::string ratio = args.get_string("ratio", "1:4");
    const auto colon = ratio.find(':');
    if (colon != std::string::npos) {
        spec.ratio.fast = std::stoi(ratio.substr(0, colon));
        spec.ratio.slow = std::stoi(ratio.substr(colon + 1));
    }

    std::cout << "KV-store tiering: YCSB A-B-C-F-D under ArtMem, ratio "
              << spec.ratio.label() << "\n\n";

    const auto r = sim::run_experiment(spec);

    Table table({"t (ms)", "progress %", "fast-tier ratio",
                 "promoted", "demoted"});
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
        const auto& iv = r.timeline[i];
        done += iv.accesses;
        if (i % 3 != 0)
            continue;
        table.row()
            .cell(static_cast<double>(iv.end_time) * 1e-6, 0)
            .cell(100.0 * static_cast<double>(done) /
                      static_cast<double>(r.accesses),
                  0)
            .cell(iv.fast_ratio, 3)
            .cell(iv.promoted)
            .cell(iv.demoted);
    }
    table.print(std::cout);

    std::cout << "\nOverall: runtime "
              << format_fixed(r.seconds() * 1e3, 1) << " ms, fast-tier "
              << format_fixed(r.fast_ratio, 3) << ", migrated "
              << r.totals.migrated_pages()
              << " pages.\nThe last ~20% of the run is workload D: watch "
                 "the ratio dip and recover as the hot set moves.\n";
    return 0;
}
