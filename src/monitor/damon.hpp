/**
 * @file
 * DAMON-style region-based access monitor.
 *
 * DAMON (Data Access MONitor, cited by the paper in Section 2.1 and
 * used to produce the Figure 10 footprints) bounds monitoring overhead
 * by tracking *regions* instead of pages: each sampling pass checks one
 * page per region (accessed-bit test-and-clear) and charges the hit to
 * the whole region; an aggregation pass then merges adjacent regions
 * with similar access counts and splits regions to keep their number
 * inside [min_regions, max_regions], adapting resolution to where the
 * action is.
 */
#ifndef ARTMEM_MONITOR_DAMON_HPP
#define ARTMEM_MONITOR_DAMON_HPP

#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace artmem::monitor {

/** One monitored address region. */
struct Region {
    PageId start = 0;          ///< First page of the region.
    PageId length = 0;         ///< Pages covered.
    std::uint32_t nr_accesses = 0;  ///< Sampling hits this window.
};

/** Region-based monitor over an abstract accessed-bit oracle. */
class Damon
{
  public:
    /** Reads and clears the accessed bit of a page. */
    using AccessProbe = std::function<bool(PageId)>;

    /** Monitor parameters (defaults follow DAMON's spirit). */
    struct Config {
        std::size_t min_regions = 10;
        std::size_t max_regions = 100;
        /** Merge neighbours whose count difference is <= this. */
        std::uint32_t merge_threshold = 2;
        /** Sampling passes per aggregation window. */
        unsigned samples_per_aggregation = 20;
    };

    /**
     * @param page_count Monitored address-space size in pages.
     * @param probe      Accessed-bit test-and-clear oracle.
     * @param config     Parameters; fatal on inconsistent ones.
     * @param seed       RNG seed for the per-region page picks.
     */
    Damon(std::size_t page_count, AccessProbe probe, const Config& config,
          std::uint64_t seed);

    /** One sampling pass: probe one page per region. */
    void sample();

    /**
     * Close the aggregation window: merge similar neighbours, split
     * large regions to restore resolution, and reset counters.
     * @return the snapshot of regions as they were at window close.
     */
    std::vector<Region> aggregate();

    /** Current regions (counts are mid-window). */
    const std::vector<Region>& regions() const { return regions_; }

    /** Sampling passes since the last aggregation. */
    unsigned samples_in_window() const { return samples_in_window_; }

    /** True when the configured window is complete. */
    bool aggregation_due() const
    {
        return samples_in_window_ >= config_.samples_per_aggregation;
    }

  private:
    void merge_similar();
    void split_to_resolution();

    Config config_;
    AccessProbe probe_;
    std::vector<Region> regions_;
    Rng rng_;
    unsigned samples_in_window_ = 0;
};

}  // namespace artmem::monitor

#endif  // ARTMEM_MONITOR_DAMON_HPP
