#include "monitor/damon.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::monitor {

Damon::Damon(std::size_t page_count, AccessProbe probe,
             const Config& config, std::uint64_t seed)
    : config_(config), probe_(std::move(probe)), rng_(seed)
{
    if (page_count == 0)
        fatal("Damon: empty address space");
    if (!probe_)
        fatal("Damon: access probe required");
    if (config_.min_regions == 0 ||
        config_.min_regions > config_.max_regions) {
        fatal("Damon: invalid region bounds");
    }
    // Initial layout: min_regions equal slices.
    const std::size_t n =
        std::min(config_.min_regions, page_count);
    const PageId chunk =
        static_cast<PageId>((page_count + n - 1) / n);
    PageId start = 0;
    while (start < page_count) {
        Region r;
        r.start = start;
        r.length = static_cast<PageId>(
            std::min<std::size_t>(chunk, page_count - start));
        regions_.push_back(r);
        start += r.length;
    }
}

void
Damon::sample()
{
    for (auto& region : regions_) {
        const PageId page =
            region.start +
            static_cast<PageId>(rng_.next_below(region.length));
        if (probe_(page))
            ++region.nr_accesses;
    }
    ++samples_in_window_;
}

void
Damon::merge_similar()
{
    std::vector<Region> merged;
    merged.reserve(regions_.size());
    for (const auto& region : regions_) {
        if (!merged.empty()) {
            auto& last = merged.back();
            const auto diff =
                last.nr_accesses > region.nr_accesses
                    ? last.nr_accesses - region.nr_accesses
                    : region.nr_accesses - last.nr_accesses;
            if (diff <= config_.merge_threshold &&
                merged.size() + (regions_.size() - merged.size()) >
                    config_.min_regions) {
                // Weighted-average the counts into the merged region.
                const std::uint64_t total =
                    static_cast<std::uint64_t>(last.nr_accesses) *
                        last.length +
                    static_cast<std::uint64_t>(region.nr_accesses) *
                        region.length;
                last.length += region.length;
                last.nr_accesses =
                    static_cast<std::uint32_t>(total / last.length);
                continue;
            }
        }
        merged.push_back(region);
    }
    if (merged.size() >= config_.min_regions)
        regions_.swap(merged);
}

void
Damon::split_to_resolution()
{
    // Split the largest regions in half until we are comfortably above
    // min_regions (DAMON splits randomly; halving the largest keeps the
    // monitor deterministic given the RNG state).
    const std::size_t target =
        std::min(config_.max_regions,
                 std::max<std::size_t>(config_.min_regions * 2,
                                       regions_.size()));
    while (regions_.size() < target) {
        auto widest = std::max_element(
            regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) {
                return a.length < b.length;
            });
        if (widest == regions_.end() || widest->length < 2)
            break;
        Region right;
        right.length = widest->length / 2;
        right.start = widest->start + (widest->length - right.length);
        right.nr_accesses = widest->nr_accesses;
        widest->length -= right.length;
        regions_.insert(std::next(widest), right);
    }
}

std::vector<Region>
Damon::aggregate()
{
    std::vector<Region> snapshot = regions_;
    merge_similar();
    split_to_resolution();
    for (auto& region : regions_)
        region.nr_accesses = 0;
    samples_in_window_ = 0;
    return snapshot;
}

}  // namespace artmem::monitor
