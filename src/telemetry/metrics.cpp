#include "telemetry/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "telemetry/json.hpp"
#include "util/logging.hpp"

namespace artmem::telemetry {

MetricsRegistry::Id
MetricsRegistry::lookup_or_register(std::string_view name, Kind kind)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        if (it->second.first != kind)
            panic("MetricsRegistry: metric '", name,
                  "' re-registered as a different kind");
        return it->second.second;
    }
    Id id = 0;
    switch (kind) {
    case Kind::kCounter:
        id = counters_.size();
        counters_.push_back({std::string(name), 0});
        break;
    case Kind::kGauge:
        id = gauges_.size();
        gauges_.push_back({std::string(name), 0.0, {}});
        break;
    case Kind::kHistogram:
        id = histograms_.size();
        histograms_.push_back({std::string(name), {}, {}, 0, 0.0});
        break;
    }
    index_.emplace(std::string(name), std::make_pair(kind, id));
    return id;
}

MetricsRegistry::Id
MetricsRegistry::counter(std::string_view name)
{
    return lookup_or_register(name, Kind::kCounter);
}

MetricsRegistry::Id
MetricsRegistry::gauge(std::string_view name)
{
    return lookup_or_register(name, Kind::kGauge);
}

MetricsRegistry::Id
MetricsRegistry::histogram(std::string_view name,
                           std::vector<double> upper_bounds)
{
    if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end()))
        panic("MetricsRegistry: histogram '", name,
              "' bounds must be ascending");
    const Id id = lookup_or_register(name, Kind::kHistogram);
    Histogram& h = histograms_[id];
    if (h.buckets.empty()) {
        h.bounds = std::move(upper_bounds);
        h.buckets.assign(h.bounds.size() + 1, 0);
    } else if (h.bounds != upper_bounds) {
        panic("MetricsRegistry: histogram '", name,
              "' re-registered with different bounds");
    }
    return id;
}

void
MetricsRegistry::set(Id id, double value)
{
    Gauge& g = gauges_[id];
    g.last = value;
    g.stats.add(value);
}

void
MetricsRegistry::observe(Id id, double value)
{
    Histogram& h = histograms_[id];
    const auto it =
        std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
    ++h.buckets[static_cast<std::size_t>(it - h.bounds.begin())];
    ++h.total;
    h.sum += value;
}

std::uint64_t
MetricsRegistry::counter_value(std::string_view name) const
{
    const auto it = index_.find(name);
    if (it == index_.end() || it->second.first != Kind::kCounter)
        return 0;
    return counters_[it->second.second].value;
}

const OnlineStats*
MetricsRegistry::gauge_stats(std::string_view name) const
{
    const auto it = index_.find(name);
    if (it == index_.end() || it->second.first != Kind::kGauge)
        return nullptr;
    return &gauges_[it->second.second].stats;
}

std::uint64_t
MetricsRegistry::histogram_count(std::string_view name) const
{
    const auto it = index_.find(name);
    if (it == index_.end() || it->second.first != Kind::kHistogram)
        return 0;
    return histograms_[it->second.second].total;
}

void
MetricsRegistry::merge(const MetricsRegistry& shard)
{
    for (const Counter& c : shard.counters_) {
        const Id id = counter(c.name);
        counters_[id].value += c.value;
    }
    for (const Gauge& g : shard.gauges_) {
        const Id id = gauge(g.name);
        // An empty shard gauge (registered, never set) must not poison
        // the merged extrema; OnlineStats::merge ignores empty inputs
        // and `last` only moves when the shard actually observed one.
        gauges_[id].stats.merge(g.stats);
        if (g.stats.count() > 0)
            gauges_[id].last = g.last;
    }
    for (const Histogram& h : shard.histograms_) {
        const Id id = histogram(h.name, h.bounds);
        Histogram& mine = histograms_[id];
        if (mine.bounds != h.bounds)
            panic("MetricsRegistry::merge: histogram '", h.name,
                  "' bounds mismatch");
        for (std::size_t b = 0; b < h.buckets.size(); ++b)
            mine.buckets[b] += h.buckets[b];
        mine.total += h.total;
        mine.sum += h.sum;
    }
}

void
MetricsRegistry::write_json(std::ostream& os) const
{
    std::string out;
    out += "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    ";
        append_json_escaped(out, counters_[i].name);
        out += ": ";
        out += std::to_string(counters_[i].value);
    }
    out += counters_.empty() ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        const Gauge& g = gauges_[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    ";
        append_json_escaped(out, g.name);
        out += ": {\"count\": ";
        out += std::to_string(g.stats.count());
        if (g.stats.count() > 0) {
            // min/max/mean are meaningless (and would mislead as 0.0)
            // for a gauge that was never set; emit them only when the
            // gauge holds observations.
            out += ", \"last\": " + json_double(g.last);
            out += ", \"min\": " + json_double(g.stats.min());
            out += ", \"max\": " + json_double(g.stats.max());
            out += ", \"mean\": " + json_double(g.stats.mean());
        }
        out += "}";
    }
    out += gauges_.empty() ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        const Histogram& h = histograms_[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    ";
        append_json_escaped(out, h.name);
        out += ": {\"total\": " + std::to_string(h.total);
        out += ", \"sum\": " + json_double(h.sum);
        out += ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0)
                out += ", ";
            out += "{\"le\": ";
            out += b < h.bounds.size() ? json_double(h.bounds[b])
                                       : std::string("\"inf\"");
            out += ", \"count\": " + std::to_string(h.buckets[b]) + "}";
        }
        out += "]}";
    }
    out += histograms_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    os << out;
}

std::vector<std::pair<std::string, std::string>>
MetricsRegistry::summary_rows() const
{
    std::vector<std::pair<std::string, std::string>> rows;
    rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const Counter& c : counters_)
        rows.emplace_back(c.name, std::to_string(c.value));
    for (const Gauge& g : gauges_) {
        if (g.stats.count() == 0) {
            rows.emplace_back(g.name, "-");
            continue;
        }
        rows.emplace_back(g.name, json_double(g.last) + " (" +
                                      json_double(g.stats.min()) + "/" +
                                      json_double(g.stats.mean()) + "/" +
                                      json_double(g.stats.max()) + ")");
    }
    for (const Histogram& h : histograms_)
        rows.emplace_back(h.name, std::to_string(h.total) + " samples");
    return rows;
}

}  // namespace artmem::telemetry
