/**
 * @file
 * The per-run telemetry bundle (DESIGN.md §8): configuration plus the
 * three collectors — MetricsRegistry, TraceSink, PhaseProfiler — that
 * one simulation job owns. Everything is off by default; when off,
 * every accessor returns nullptr so instrumentation sites reduce to a
 * branch on a null pointer (the zero-cost contract, measured by
 * bench_overheads).
 */
#ifndef ARTMEM_TELEMETRY_TELEMETRY_HPP
#define ARTMEM_TELEMETRY_TELEMETRY_HPP

#include <memory>

#include "telemetry/metrics.hpp"
#include "telemetry/phase_timer.hpp"
#include "telemetry/trace.hpp"

namespace artmem::telemetry {

/** Pure-value telemetry switches, copied through RunSpec/SweepJob. */
struct TelemetryConfig {
    bool metrics = false;              ///< Collect the metrics registry.
    std::uint32_t trace_categories = 0;  ///< Category bitmask (0 = off).
    bool profile = false;              ///< Wall-clock phase profiling.

    bool any() const
    {
        return metrics || trace_categories != 0 || profile;
    }
};

/** Collectors for one run; created by the engine when config.any(). */
class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig& config) : config_(config)
    {
        if (config_.trace_categories != 0)
            sink_ = std::make_unique<TraceSink>(config_.trace_categories);
    }

    const TelemetryConfig& config() const { return config_; }

    /** Metrics shard, or nullptr when metrics collection is off. */
    MetricsRegistry* metrics()
    {
        return config_.metrics ? &metrics_ : nullptr;
    }
    const MetricsRegistry& metrics_registry() const { return metrics_; }

    /** Sink if @p cat is enabled, else nullptr (per-site cached). */
    TraceSink* trace(Category cat)
    {
        return sink_ != nullptr && sink_->enabled(cat) ? sink_.get()
                                                       : nullptr;
    }

    /** The whole sink (serialization), or nullptr when tracing is off. */
    TraceSink* sink() { return sink_.get(); }
    const TraceSink* sink() const { return sink_.get(); }

    /** Profiler, or nullptr when --profile was not given. */
    PhaseProfiler* profiler()
    {
        return config_.profile ? &profiler_ : nullptr;
    }
    const PhaseProfiler& phase_profiler() const { return profiler_; }

  private:
    TelemetryConfig config_;
    MetricsRegistry metrics_;
    std::unique_ptr<TraceSink> sink_;
    PhaseProfiler profiler_;
};

}  // namespace artmem::telemetry

#endif  // ARTMEM_TELEMETRY_TELEMETRY_HPP
