// The single translation unit where the telemetry subsystem may read a
// wall clock (enforced by the scripts/check_lint.sh path allowlist).
// Host time measured here feeds the --profile table only; it never
// reaches traces, metrics files, or any determinism-checked output.
#include "telemetry/phase_timer.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace artmem::telemetry {

namespace {

std::uint64_t
wall_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr std::array<std::string_view, kPhaseCount> kPhaseNames = {
    "generate", "access", "tick", "decision", "audit", "shard_merge"};

}  // namespace

std::string_view
phase_name(Phase phase)
{
    return kPhaseNames[static_cast<std::size_t>(phase)];
}

void
PhaseProfiler::merge(const PhaseProfiler& other)
{
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        totals_ns_[i] += other.totals_ns_[i];
        counts_[i] += other.counts_[i];
    }
}

std::uint64_t
PhaseProfiler::total_ns() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t ns : totals_ns_)
        total += ns;
    return total;
}

void
PhaseProfiler::write_table(std::ostream& os) const
{
    const std::uint64_t total = total_ns();
    os << "phase profile (host wall clock; excluded from determinism "
          "checks)\n";
    os << "  phase      calls        ms   share\n";
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        const double ms = static_cast<double>(totals_ns_[i]) / 1e6;
        const double share =
            total == 0 ? 0.0
                       : 100.0 * static_cast<double>(totals_ns_[i]) /
                             static_cast<double>(total);
        char line[96];
        std::snprintf(line, sizeof line, "  %-9s %7llu %9.2f  %5.1f%%\n",
                      std::string(kPhaseNames[i]).c_str(),
                      static_cast<unsigned long long>(counts_[i]), ms,
                      share);
        os << line;
    }
    char totline[64];
    std::snprintf(totline, sizeof totline, "  total             %9.2f\n",
                  static_cast<double>(total) / 1e6);
    os << totline;
}

PhaseTimer::PhaseTimer(PhaseProfiler* profiler, Phase phase)
    : profiler_(profiler), phase_(phase)
{
    if (profiler_ != nullptr)
        start_ns_ = wall_ns();
}

PhaseTimer::~PhaseTimer()
{
    if (profiler_ != nullptr)
        profiler_->add(phase_, wall_ns() - start_ns_);
}

}  // namespace artmem::telemetry
