/**
 * @file
 * Wall-clock phase profiling (DESIGN.md §8). PhaseTimer attributes
 * *host* time to engine phases; the results feed a per-run profile
 * table only. They are deliberately excluded from traces, metrics
 * files, and every determinism check — wall clock is nondeterministic
 * by nature, and the repo lint confines clock reads to phase_timer.cpp
 * (the only allowlisted file).
 */
#ifndef ARTMEM_TELEMETRY_PHASE_TIMER_HPP
#define ARTMEM_TELEMETRY_PHASE_TIMER_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace artmem::telemetry {

/** Engine phases host time is attributed to. */
enum class Phase : std::uint8_t {
    kGenerate,  ///< Workload batch generation.
    kAccess,    ///< Memory-access replay through the machine.
    kTick,      ///< Sampler drain + policy on_samples/on_tick.
    kDecision,  ///< Policy on_interval + window bookkeeping.
    kAudit,     ///< Invariant checker sweeps.
    kShardMerge,  ///< Sharded boundary merge + recency splice.
};

inline constexpr std::size_t kPhaseCount = 6;

std::string_view phase_name(Phase phase);

/** Accumulated host-time totals per phase for one run (or merged). */
class PhaseProfiler
{
  public:
    void add(Phase phase, std::uint64_t ns)
    {
        const auto i = static_cast<std::size_t>(phase);
        totals_ns_[i] += ns;
        ++counts_[i];
    }

    void merge(const PhaseProfiler& other);

    std::uint64_t total_ns() const;
    std::uint64_t phase_ns(Phase phase) const
    {
        return totals_ns_[static_cast<std::size_t>(phase)];
    }

    /** Human-readable profile table (phase, calls, ms, share). */
    void write_table(std::ostream& os) const;

  private:
    std::array<std::uint64_t, kPhaseCount> totals_ns_{};
    std::array<std::uint64_t, kPhaseCount> counts_{};
};

/**
 * RAII scope timer. Construction and destruction live in
 * phase_timer.cpp so the wall-clock read stays in the one allowlisted
 * translation unit; a null profiler skips the clock read entirely
 * (the zero-cost-when-off path).
 */
class PhaseTimer
{
  public:
    PhaseTimer(PhaseProfiler* profiler, Phase phase);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;

  private:
    PhaseProfiler* profiler_;
    Phase phase_;
    std::uint64_t start_ns_ = 0;
};

}  // namespace artmem::telemetry

#endif  // ARTMEM_TELEMETRY_PHASE_TIMER_HPP
