/**
 * @file
 * MetricsRegistry: named counters, gauges, and fixed-bucket histograms
 * for the deterministic telemetry subsystem (DESIGN.md §8).
 *
 * Determinism contract: a registry is a single-threaded shard. Every
 * simulation job owns exactly one (created per run by the engine), so
 * updates are plain unsynchronized increments — the lock-free fast
 * path. Parallel sweeps merge the per-job shards *in job order* after
 * all jobs finish, and every emission walks metrics in registration
 * order, so `--jobs N` output is byte-identical to `--jobs 1`.
 *
 * Empty-shard safety: a gauge that was registered but never set (or a
 * histogram never observed) contributes nothing to a merge — its
 * zero-initialized min/max must never poison the merged extrema (the
 * OnlineStats::merge contract, tested directly in test_util.cpp and
 * test_telemetry.cpp).
 */
#ifndef ARTMEM_TELEMETRY_METRICS_HPP
#define ARTMEM_TELEMETRY_METRICS_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace artmem::telemetry {

/** Single-threaded metrics shard; see the file header for the model. */
class MetricsRegistry
{
  public:
    /** Handle returned by registration; indexes the metric's kind. */
    using Id = std::size_t;

    /** Register (or look up) a monotonically increasing counter. */
    Id counter(std::string_view name);

    /** Register (or look up) a gauge: last value + online extrema. */
    Id gauge(std::string_view name);

    /**
     * Register (or look up) a histogram with the given inclusive upper
     * bucket bounds (ascending; an implicit +inf bucket is appended).
     * Re-registration with different bounds is a caller bug (panic).
     */
    Id histogram(std::string_view name, std::vector<double> upper_bounds);

    /** Increment a counter. Hot path: one add on a flat vector. */
    void add(Id id, std::uint64_t delta = 1) { counters_[id].value += delta; }

    /** Set a gauge (records the observation into its OnlineStats). */
    void set(Id id, double value);

    /** Observe one histogram sample. */
    void observe(Id id, double value);

    /** Counter value by name (0 if absent — absent metrics read as idle). */
    std::uint64_t counter_value(std::string_view name) const;

    /** Gauge observation stats by name (nullptr if absent). */
    const OnlineStats* gauge_stats(std::string_view name) const;

    /** Total histogram observations by name (0 if absent). */
    std::uint64_t histogram_count(std::string_view name) const;

    /** True when nothing has been registered. */
    bool empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    /**
     * Merge another shard into this one. Metrics are matched by name;
     * names unknown here are appended in @p shard's registration order,
     * so merging shards in job order yields one deterministic registry.
     * Counters add, gauges merge their OnlineStats (taking the shard's
     * last value when it has one), histogram buckets add bucket-wise
     * (panic on mismatched bounds).
     */
    void merge(const MetricsRegistry& shard);

    /**
     * Emit the whole registry as one JSON document, metrics in
     * registration order. Byte-deterministic for identical content.
     */
    void write_json(std::ostream& os) const;

    /**
     * Flattened {metric, value} rows for a ResultSink summary table:
     * counters as integers, gauges as "last (min/mean/max)", histograms
     * as their total count. Registration order.
     */
    std::vector<std::pair<std::string, std::string>> summary_rows() const;

  private:
    struct Counter {
        std::string name;
        std::uint64_t value = 0;
    };
    struct Gauge {
        std::string name;
        double last = 0.0;
        OnlineStats stats;
    };
    struct Histogram {
        std::string name;
        std::vector<double> bounds;
        std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 slots.
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

    Id lookup_or_register(std::string_view name, Kind kind);

    std::vector<Counter> counters_;
    std::vector<Gauge> gauges_;
    std::vector<Histogram> histograms_;
    /** Name -> (kind, index). std::map: deterministic, and the custom
     *  lint bans unordered containers anyway. */
    std::map<std::string, std::pair<Kind, Id>, std::less<>> index_;
};

}  // namespace artmem::telemetry

#endif  // ARTMEM_TELEMETRY_METRICS_HPP
