#include "telemetry/trace.hpp"

#include <array>
#include <ostream>

#include "telemetry/json.hpp"
#include "util/logging.hpp"

namespace artmem::telemetry {

namespace {

constexpr std::array<std::string_view, 5> kCategoryNames = {
    "engine", "migration", "pebs", "rl", "threshold"};

}  // namespace

std::string_view
category_name(Category cat)
{
    return kCategoryNames[category_track(cat)];
}

unsigned
category_track(Category cat)
{
    const auto bits = static_cast<std::uint32_t>(cat);
    unsigned track = 0;
    while ((bits >> (track + 1)) != 0)
        ++track;
    return track;
}

std::uint32_t
parse_categories(std::string_view csv)
{
    if (csv == "all")
        return kAllCategories;
    if (csv == "none" || csv.empty())
        return 0;
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string_view::npos)
            comma = csv.size();
        const std::string_view token = csv.substr(pos, comma - pos);
        bool found = false;
        for (std::size_t bit = 0; bit < kCategoryNames.size(); ++bit) {
            if (token == kCategoryNames[bit]) {
                mask |= 1u << bit;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown trace category '", token,
                  "' (expected all, none, or a comma list of: engine, "
                  "migration, pebs, rl, threshold)");
        pos = comma + 1;
    }
    return mask;
}

void
Args::key(std::string_view k)
{
    body_ += body_.empty() ? "{" : ",";
    append_json_escaped(body_, k);
    body_ += ":";
}

Args&
Args::add(std::string_view k, std::uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

Args&
Args::add(std::string_view k, std::int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

Args&
Args::add(std::string_view k, std::uint32_t value)
{
    return add(k, static_cast<std::uint64_t>(value));
}

Args&
Args::add(std::string_view k, std::int32_t value)
{
    return add(k, static_cast<std::int64_t>(value));
}

Args&
Args::add(std::string_view k, double value)
{
    key(k);
    body_ += json_double(value);
    return *this;
}

Args&
Args::add(std::string_view k, std::string_view value)
{
    key(k);
    append_json_escaped(body_, value);
    return *this;
}

Args&
Args::add(std::string_view k, const char* value)
{
    return add(k, std::string_view(value));
}

std::string
Args::str()
{
    if (body_.empty())
        return "{}";
    body_ += "}";
    return std::move(body_);
}

void
TraceSink::instant(Category cat, std::string_view name, std::uint64_t ts_ns,
                   std::string args)
{
    events_.push_back(
        {ts_ns, 0, cat, 'i', std::string(name), std::move(args)});
}

void
TraceSink::complete(Category cat, std::string_view name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns, std::string args)
{
    events_.push_back(
        {ts_ns, dur_ns, cat, 'X', std::string(name), std::move(args)});
}

void
TraceSink::write_jsonl(std::ostream& os, int job) const
{
    std::string line;
    for (const Event& e : events_) {
        line.clear();
        line += "{";
        if (job >= 0) {
            line += "\"job\":";
            line += std::to_string(job);
            line += ",";
        }
        line += "\"ts\":";
        line += std::to_string(e.ts_ns);
        line += ",\"cat\":";
        append_json_escaped(line, category_name(e.cat));
        line += ",\"ph\":\"";
        line.push_back(e.phase);
        line += "\",\"name\":";
        append_json_escaped(line, e.name);
        if (e.phase == 'X') {
            line += ",\"dur\":";
            line += std::to_string(e.dur_ns);
        }
        line += ",\"args\":";
        line += e.args;
        line += "}\n";
        os << line;
    }
}

namespace {

/** Exact ns -> µs decimal ("1234567" -> "1234.567"): pure integer
 *  math, so identical inputs always produce identical bytes. */
std::string
chrome_us(std::uint64_t ns)
{
    std::string out = std::to_string(ns / 1000);
    const std::uint64_t frac = ns % 1000;
    out += '.';
    out += static_cast<char>('0' + frac / 100);
    out += static_cast<char>('0' + frac / 10 % 10);
    out += static_cast<char>('0' + frac % 10);
    return out;
}

}  // namespace

void
TraceSink::append_chrome_events(std::ostream& os, int pid, bool& first) const
{
    std::string line;
    for (std::size_t bit = 0; bit < kCategoryNames.size(); ++bit) {
        if ((categories_ & (1u << bit)) == 0)
            continue;
        line.clear();
        line += first ? "\n" : ",\n";
        first = false;
        line += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
        line += std::to_string(pid);
        line += ",\"tid\":";
        line += std::to_string(bit);
        line += ",\"args\":{\"name\":";
        append_json_escaped(line, kCategoryNames[bit]);
        line += "}}";
        os << line;
    }
    for (const Event& e : events_) {
        line.clear();
        line += first ? "\n" : ",\n";
        first = false;
        line += "{\"name\":";
        append_json_escaped(line, e.name);
        line += ",\"cat\":";
        append_json_escaped(line, category_name(e.cat));
        line += ",\"ph\":\"";
        line.push_back(e.phase);
        line += "\",\"ts\":";
        line += chrome_us(e.ts_ns);
        if (e.phase == 'X') {
            line += ",\"dur\":";
            line += chrome_us(e.dur_ns);
        }
        if (e.phase == 'i')
            line += ",\"s\":\"t\"";
        line += ",\"pid\":";
        line += std::to_string(pid);
        line += ",\"tid\":";
        line += std::to_string(category_track(e.cat));
        line += ",\"args\":";
        line += e.args;
        line += "}";
        os << line;
    }
}

void
TraceSink::write_chrome(std::ostream& os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    append_chrome_events(os, 0, first);
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace artmem::telemetry
