/**
 * @file
 * Tiny JSON emission helpers shared by the telemetry writers
 * (metrics.cpp, trace.cpp). Formatting is fully deterministic: the
 * same values always produce the same bytes, which is what the
 * bit-identity contract of the subsystem rests on (DESIGN.md §8).
 */
#ifndef ARTMEM_TELEMETRY_JSON_HPP
#define ARTMEM_TELEMETRY_JSON_HPP

#include <cstdio>
#include <string>
#include <string_view>

namespace artmem::telemetry {

/** Append @p text JSON-escaped (quotes, backslashes, control chars). */
inline void
append_json_escaped(std::string& out, std::string_view text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out.push_back(c);
            break;
        }
    }
    out.push_back('"');
}

/**
 * Shortest round-trippable decimal for @p value ("%.9g" keeps every
 * digit a float-derived double in this codebase carries). Non-finite
 * values are not valid JSON numbers; emit null so the stream stays
 * parseable.
 */
inline std::string
json_double(double value)
{
    char buf[40];
    if (value != value || value > 1.7e308 || value < -1.7e308)
        return "null";
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
}

/** Fixed-precision decimal (Chrome trace timestamps in microseconds). */
inline std::string
json_fixed(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

}  // namespace artmem::telemetry

#endif  // ARTMEM_TELEMETRY_JSON_HPP
