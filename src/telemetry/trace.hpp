/**
 * @file
 * Structured event tracing keyed by *simulated* time (DESIGN.md §8).
 *
 * A TraceSink buffers events in memory during a run and serializes
 * afterwards, in two formats from the same buffer:
 *   - JSONL: one event object per line, for grep/jq-style analysis and
 *     the golden-trace tests;
 *   - Chrome trace-event JSON ({"traceEvents": [...]}), loadable in
 *     Perfetto / chrome://tracing, with one named track per category.
 *
 * Timestamps are simulated nanoseconds from TieredMachine::now(); the
 * sink never reads a wall clock, so traces are bit-identical across
 * runs and across `--jobs 1` vs `--jobs N` (per-job sinks, merged in
 * job order by the sweep layer).
 */
#ifndef ARTMEM_TELEMETRY_TRACE_HPP
#define ARTMEM_TELEMETRY_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace artmem::telemetry {

/** Event categories; bit flags so a run can enable any subset. */
enum class Category : std::uint32_t {
    kEngine = 1u << 0,     ///< Simulation ticks and decision intervals.
    kMigration = 1u << 1,  ///< Page migrations: start/complete/fail.
    kPebs = 1u << 2,       ///< Sampler drains, drops, blackout windows.
    kRl = 1u << 3,         ///< RL state/action/reward and Q updates.
    kThreshold = 1u << 4,  ///< Hot-threshold moves and resets.
};

inline constexpr std::uint32_t kAllCategories = 0x1f;

/** Stable lowercase name ("engine", "migration", ...). */
std::string_view category_name(Category cat);

/** Track index for Chrome output: the category's bit position. */
unsigned category_track(Category cat);

/**
 * Parse a --trace-categories value: "all", "none", or a comma list of
 * category names. Unknown names are fatal (mirrors BenchOptions'
 * strict flag handling).
 */
std::uint32_t parse_categories(std::string_view csv);

/**
 * Builder for an event's JSON args object. The explicit fixed-width
 * overload set keeps call sites unambiguous and -Wconversion-clean
 * under ARTMEM_STRICT.
 */
class Args
{
  public:
    Args& add(std::string_view key, std::uint64_t value);
    Args& add(std::string_view key, std::int64_t value);
    Args& add(std::string_view key, std::uint32_t value);
    Args& add(std::string_view key, std::int32_t value);
    Args& add(std::string_view key, double value);
    Args& add(std::string_view key, std::string_view value);
    Args& add(std::string_view key, const char* value);

    /** Finished JSON object, e.g. {"page":12,"reason":"pinned"}. */
    std::string str();

  private:
    void key(std::string_view k);
    std::string body_;
};

/** In-memory event buffer for one run (one job = one sink shard). */
class TraceSink
{
  public:
    explicit TraceSink(std::uint32_t categories) : categories_(categories) {}

    bool enabled(Category cat) const
    {
        return (categories_ & static_cast<std::uint32_t>(cat)) != 0;
    }

    /**
     * Simulated-time cursor for emitters without a clock of their own
     * (the RL agent); the engine advances it at tick/decision edges.
     */
    void set_sim_time(std::uint64_t now_ns) { sim_time_ = now_ns; }
    std::uint64_t sim_time() const { return sim_time_; }

    /** Point event (Chrome phase 'i'). */
    void instant(Category cat, std::string_view name, std::uint64_t ts_ns,
                 std::string args = "{}");

    /** Duration event (Chrome phase 'X'); @p ts_ns is the start. */
    void complete(Category cat, std::string_view name, std::uint64_t ts_ns,
                  std::uint64_t dur_ns, std::string args = "{}");

    std::size_t event_count() const { return events_.size(); }
    std::uint32_t categories() const { return categories_; }

    /**
     * One JSON object per line, in emission order. @p job >= 0 adds a
     * "job" field (sweep merges tag each shard's lines this way).
     */
    void write_jsonl(std::ostream& os, int job = -1) const;

    /** Complete Chrome trace document for a single run (pid 0). */
    void write_chrome(std::ostream& os) const;

    /**
     * Append this sink's events to an open traceEvents array using
     * @p pid as the process id (one pid per sweep job). Emits the
     * per-track metadata first. @p first tracks array comma state.
     */
    void append_chrome_events(std::ostream& os, int pid, bool& first) const;

  private:
    struct Event {
        std::uint64_t ts_ns;
        std::uint64_t dur_ns;  ///< 0 for instant events.
        Category cat;
        char phase;  ///< 'i' or 'X' (Chrome phase letter).
        std::string name;
        std::string args;
    };

    std::uint32_t categories_;
    std::uint64_t sim_time_ = 0;
    std::vector<Event> events_;
};

}  // namespace artmem::telemetry

#endif  // ARTMEM_TELEMETRY_TRACE_HPP
