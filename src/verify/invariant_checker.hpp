/**
 * @file
 * Compiled-in simulator invariant checker.
 *
 * Every figure this repo reproduces is only as trustworthy as the
 * simulator's internal consistency: if the residency map, the LRU
 * lists, the EMA histogram, or the Q-tables silently drift apart —
 * exactly the kind of corruption ARMS warns tiering systems about and
 * that Nomad observed during aborted transactional migrations — the
 * benchmark deltas measure the bug, not the policy. The fault-injection
 * layer (memsim/fault_injector.hpp) deliberately exercises the
 * aborted/retried migration and PEBS-blackout paths where such drift
 * would hide.
 *
 * InvariantChecker audits, after every decision interval of a run
 * (sim/engine.cpp) and on demand from tests:
 *
 *  - machine residency: per-tier used counts equal a recount of the
 *    page-flags array, and never exceed tier capacity;
 *  - LRU structure: each active/inactive list is a well-formed doubly
 *    linked chain whose walk matches its size and its members' where()
 *    labels (catching duplicates and cycles), and every linked page is
 *    resident in the list's tier;
 *  - EMA histogram mass: per-bin page populations equal a recount from
 *    the per-page counters, and total mass equals the page space;
 *  - fault accounting: migration-failure counters reconcile with the
 *    FaultInjector's own draw bookkeeping, and are zero in fault-free
 *    runs;
 *  - Q-tables: every action value is finite and inside the bound
 *    implied by the clamped reward range and the discount factor.
 *
 * A violated invariant throws a typed InvariantViolation carrying the
 * invariant id and a dump of the offending page/state, so a corruption
 * is caught at the interval it happens instead of as a benchmark delta.
 *
 * The checks are O(pages) and allocation-free after construction; the
 * engine hook is compiled in only under -DARTMEM_CHECK_INVARIANTS=ON
 * (the default) and still gated by a runtime flag
 * (EngineConfig::check_invariants, CLI --check-invariants).
 */
#ifndef ARTMEM_VERIFY_INVARIANT_CHECKER_HPP
#define ARTMEM_VERIFY_INVARIANT_CHECKER_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/artmem.hpp"
#include "lru/lru_lists.hpp"
#include "memsim/sharded_access.hpp"
#include "memsim/tiered_machine.hpp"
#include "policies/policy.hpp"
#include "rl/qtable.hpp"
#include "stats/ema_bins.hpp"

namespace artmem::verify {

/** Which audited invariant was violated. */
enum class Invariant : std::uint8_t {
    kResidencyCount = 0,  ///< used_pages() disagrees with a flag recount.
    kTierCapacity,        ///< A tier holds more pages than its capacity.
    kLruStructure,        ///< Broken links, size mismatch, cycle, or dup.
    kLruResidency,        ///< Linked page unallocated or in wrong tier.
    kEmaBinMass,          ///< Bin populations disagree with the counters.
    kFaultAccounting,     ///< Failure counters vs. injector bookkeeping.
    kQTableValue,         ///< Non-finite or out-of-bound action value.
    kTxAccounting,        ///< Transaction counters vs. draw bookkeeping.
    kShardPartition,      ///< Shard ownership map / per-shard census drift.
    kTenantQuota,         ///< Tenant ledger census / quota violation.
};

/** Printable invariant name ("residency_count", ...). */
std::string_view invariant_name(Invariant invariant);

/**
 * Thrown when an audit finds an inconsistency. what() carries a dump of
 * the offending page/state; which() identifies the invariant so tests
 * can assert the exact failure class.
 */
class InvariantViolation : public std::runtime_error
{
  public:
    InvariantViolation(Invariant which, const std::string& detail);

    /** The violated invariant. */
    Invariant which() const { return which_; }

  private:
    Invariant which_;
};

/**
 * The audit pass. Stateless apart from the audit counter; all check_*
 * entry points are usable independently (unit tests corrupt one
 * structure and call one check).
 *
 * Every check returns the number of items it examined (pages, list
 * nodes, bins, Q-entries, reconciled counters) and is [[nodiscard]]:
 * a call site that ignores the count is almost always a call site
 * that would also swallow a zero-coverage audit, so the type system
 * (and detlint rule DL004) make the acknowledgement explicit. Tests
 * assert the count is positive in the pass direction.
 */
class InvariantChecker
{
  public:
    /**
     * Residency map vs. per-tier counts and capacities: recounts the
     * allocation flags of every page and compares with used_pages().
     * With the transactional engine on, the recount also charges each
     * in-flight shadow copy to its destination tier and each
     * dual-resident secondary copy to its non-primary tier, matching
     * the machine's capacity bookkeeping.
     * @returns pages examined plus per-tier counters reconciled.
     */
    [[nodiscard]] static std::uint64_t
    check_machine(const memsim::TieredMachine& machine);

    /**
     * LRU list audit against the machine's residency: every list walk
     * must be consistent (links, sizes, where() labels, no cycles or
     * duplicates) and every linked page must be allocated and resident
     * in the tier the list belongs to.
     * @returns page labels examined plus list nodes walked.
     */
    [[nodiscard]] static std::uint64_t
    check_lru(const lru::LruLists& lists,
              const memsim::TieredMachine& machine);

    /**
     * EMA histogram mass: recomputes each bin's population from the
     * per-page counters and compares with bin_pages(); total mass must
     * equal the page space.
     * @returns per-page counters examined plus bins reconciled.
     */
    [[nodiscard]] static std::uint64_t
    check_ema(const stats::EmaBins& bins);

    /**
     * Migration-failure counters vs. FaultInjector bookkeeping. In a
     * fault-free machine every injected-failure counter must be zero;
     * with faults installed, transient aborts must match the injector's
     * draw log exactly, contention failures must be at least the
     * injector's contended draws (capacity pressure adds more), and
     * pinned failures require a pinned fraction. @p expected_suppressed,
     * when provided (the engine's own running count), must equal the
     * injector's suppressed-sample count.
     * @returns counter reconciliations performed.
     */
    [[nodiscard]] static std::uint64_t check_fault_accounting(
        const memsim::TieredMachine& machine,
        std::optional<std::uint64_t> expected_suppressed = std::nullopt);

    /**
     * Transactional-migration accounting. With the engine off, every
     * transaction counter must be zero (the mode is a strict no-op).
     * With it on: opens must equal commits + aborts + the in-flight
     * table's population; write-classification hits must equal aborts
     * plus dual-copy drops (each hit resolves exactly one way); and the
     * per-tier reclaimable count must equal a census of dual-resident
     * pages charged to that tier.
     * @returns counters reconciled (plus pages censused when tx is on).
     */
    [[nodiscard]] static std::uint64_t
    check_tx_accounting(const memsim::TieredMachine& machine);

    /**
     * Sharded ownership partition and cross-shard residency census
     * (memsim/sharded_access.hpp). The slice->shard owner map must be a
     * partition (every slice owned by exactly one shard below the shard
     * count), and a per-shard per-tier census of owned pages — charging
     * transactional shadow/dual secondary copies exactly like
     * check_machine() — must sum across shards to the machine's
     * used_pages(). A shard scanning pages it does not own, or losing
     * pages it does, breaks the sum.
     * @returns slices examined plus pages censused plus per-tier
     *          counters reconciled.
     */
    [[nodiscard]] static std::uint64_t
    check_shard_partition(const memsim::TieredMachine& machine,
                          const memsim::ShardedAccessEngine& sharded);

    /**
     * Tenant-ledger accounting (memsim/tenant_ledger.hpp; DESIGN.md
     * §13). A per-tenant per-tier census of the machine's residency map
     * — bucketing every allocated page by its ledger owner and charging
     * transactional shadow/dual secondary copies exactly like
     * check_machine() — must equal the ledger's used counts tenant by
     * tenant, and the per-tenant sums must add back up to the machine's
     * used_pages(). A tenant may hold fast pages beyond its quota only
     * up to its recorded over-quota allocation count (the soft
     * first-touch fallback); anything further means a migration slipped
     * past the quota gate. Per-tenant promotion/demotion totals must
     * sum to the machine's (exchanges count one promotion and one
     * demotion each).
     * @returns pages censused plus per-tenant counters reconciled.
     */
    [[nodiscard]] static std::uint64_t
    check_tenant_quota(const memsim::TieredMachine& machine);

    /**
     * Q-table sanity: every entry finite and |Q| <= @p bound.
     * @p label names the table in the violation dump.
     * @returns Q-entries examined (states x actions).
     */
    [[nodiscard]] static std::uint64_t
    check_qtable(const rl::QTable& table, double bound,
                 std::string_view label);

    /**
     * The Q-value bound implied by an ArtMem configuration: rewards are
     * clamped to [-100, 100] (core/artmem.cpp), so a tabular TD fixpoint
     * cannot leave [-R/(1-gamma), R/(1-gamma)] once the initial values
     * are inside it. A small epsilon absorbs floating-point slack.
     */
    static double qtable_bound(const core::ArtMemConfig& config);

    /** Audit ArtMem's internal structures (LRU, EMA, both Q-tables).
     *  @returns the summed item counts of the four sub-checks. */
    [[nodiscard]] static std::uint64_t
    check_artmem(const core::ArtMem& artmem,
                 const memsim::TieredMachine& machine);

    /**
     * Full per-interval audit: machine residency + fault accounting
     * always, ArtMem internals when @p policy is an ArtMem instance,
     * shard partition + census when @p sharded is non-null (the engine
     * passes its sharded front end on --shards runs).
     * @returns the summed item counts of every check performed.
     */
    [[nodiscard]] std::uint64_t
    audit(const memsim::TieredMachine& machine,
          const policies::Policy& policy,
          std::optional<std::uint64_t> expected_suppressed = std::nullopt,
          const memsim::ShardedAccessEngine* sharded = nullptr);

    /** Audits performed so far. */
    std::uint64_t audits() const { return audits_; }

  private:
    std::uint64_t audits_ = 0;
};

}  // namespace artmem::verify

#endif  // ARTMEM_VERIFY_INVARIANT_CHECKER_HPP
