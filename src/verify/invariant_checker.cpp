#include "verify/invariant_checker.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "memsim/fault_injector.hpp"

namespace artmem::verify {

using lru::ListId;
using memsim::Tier;

std::string_view
invariant_name(Invariant invariant)
{
    switch (invariant) {
    case Invariant::kResidencyCount:
        return "residency_count";
    case Invariant::kTierCapacity:
        return "tier_capacity";
    case Invariant::kLruStructure:
        return "lru_structure";
    case Invariant::kLruResidency:
        return "lru_residency";
    case Invariant::kEmaBinMass:
        return "ema_bin_mass";
    case Invariant::kFaultAccounting:
        return "fault_accounting";
    case Invariant::kQTableValue:
        return "qtable_value";
    case Invariant::kTxAccounting:
        return "tx_accounting";
    case Invariant::kShardPartition:
        return "shard_partition";
    case Invariant::kTenantQuota:
        return "tenant_quota";
    }
    return "unknown";
}

InvariantViolation::InvariantViolation(Invariant which,
                                       const std::string& detail)
    : std::runtime_error(std::string("invariant violated [") +
                         std::string(invariant_name(which)) + "]: " + detail),
      which_(which)
{
}

namespace {

[[noreturn]] void
violate(Invariant which, const std::string& detail)
{
    throw InvariantViolation(which, detail);
}

const char*
list_name(ListId list)
{
    switch (list) {
    case ListId::kFastActive:
        return "fast_active";
    case ListId::kFastInactive:
        return "fast_inactive";
    case ListId::kSlowActive:
        return "slow_active";
    case ListId::kSlowInactive:
        return "slow_inactive";
    case ListId::kNone:
        return "none";
    }
    return "?";
}

}  // namespace

std::uint64_t
InvariantChecker::check_machine(const memsim::TieredMachine& machine)
{
    const std::size_t pages = machine.page_count();
    std::size_t counted[memsim::kTierCount] = {0, 0};
    for (PageId page = 0; page < pages; ++page) {
        if (!machine.is_allocated(page))
            continue;
        const Tier primary = machine.tier_of(page);
        ++counted[static_cast<std::size_t>(primary)];
        // Transactional residency charges a second slot: an in-flight
        // migrate holds a shadow copy at its destination (exchanges
        // bounce-copy and charge nothing), and a committed
        // non-exclusive page keeps its old copy until reclaim.
        if (machine.tx_page_shadow(page) || machine.tx_page_dual(page))
            ++counted[static_cast<std::size_t>(memsim::other_tier(primary))];
    }
    for (int t = 0; t < memsim::kTierCount; ++t) {
        const Tier tier = static_cast<Tier>(t);
        const std::size_t used = machine.used_pages(tier);
        const std::size_t cap = machine.capacity_pages(tier);
        if (counted[static_cast<std::size_t>(t)] != used) {
            std::ostringstream os;
            os << "tier " << memsim::tier_name(tier) << " tracks " << used
               << " resident pages but the residency map holds "
               << counted[static_cast<std::size_t>(t)] << " (of " << pages
               << " total pages)";
            violate(Invariant::kResidencyCount, os.str());
        }
        if (used > cap) {
            std::ostringstream os;
            os << "tier " << memsim::tier_name(tier) << " holds " << used
               << " pages over its capacity of " << cap;
            violate(Invariant::kTierCapacity, os.str());
        }
    }
    return static_cast<std::uint64_t>(pages) + memsim::kTierCount;
}

std::uint64_t
InvariantChecker::check_lru(const lru::LruLists& lists,
                            const memsim::TieredMachine& machine)
{
    const std::size_t pages = lists.page_count();
    if (pages != machine.page_count()) {
        std::ostringstream os;
        os << "LRU page space (" << pages << ") differs from the machine's ("
           << machine.page_count() << ")";
        violate(Invariant::kLruStructure, os.str());
    }

    constexpr ListId kLists[] = {ListId::kFastActive, ListId::kFastInactive,
                                 ListId::kSlowActive, ListId::kSlowInactive};
    std::uint64_t examined = pages;  // every label is inspected below
    std::size_t census[4] = {0, 0, 0, 0};
    for (PageId page = 0; page < pages; ++page) {
        const ListId at = lists.where(page);
        if (at == ListId::kNone)
            continue;
        ++census[static_cast<std::size_t>(at)];
        if (!machine.is_allocated(page)) {
            std::ostringstream os;
            os << "page " << page << " is linked on " << list_name(at)
               << " but not allocated";
            violate(Invariant::kLruResidency, os.str());
        }
        if (machine.tier_of(page) != lru::list_tier(at)) {
            std::ostringstream os;
            os << "page " << page << " is linked on " << list_name(at)
               << " but resides in the "
               << memsim::tier_name(machine.tier_of(page)) << " tier";
            violate(Invariant::kLruResidency, os.str());
        }
    }

    for (ListId list : kLists) {
        const std::size_t size = lists.size(list);
        if (census[static_cast<std::size_t>(list)] != size) {
            std::ostringstream os;
            os << list_name(list) << " claims " << size << " pages but "
               << census[static_cast<std::size_t>(list)]
               << " pages carry its label";
            violate(Invariant::kLruStructure, os.str());
        }
        // Walk head -> tail: the chain must visit exactly size() labelled
        // nodes with consistent back links and then terminate. A page
        // linked twice (or a cycle) either breaks the back links or
        // fails to terminate within size() steps.
        std::size_t walked = 0;
        PageId prev = kInvalidPage;
        PageId page = lists.head(list);
        while (page != kInvalidPage) {
            if (walked == size) {
                std::ostringstream os;
                os << list_name(list) << " walk exceeds its size of " << size
                   << " (cycle or duplicate link at page " << page << ")";
                violate(Invariant::kLruStructure, os.str());
            }
            if (lists.where(page) != list) {
                std::ostringstream os;
                os << "page " << page << " reached walking "
                   << list_name(list) << " but is labelled "
                   << list_name(lists.where(page));
                violate(Invariant::kLruStructure, os.str());
            }
            if (lists.prev(page) != prev) {
                std::ostringstream os;
                os << list_name(list) << " back link of page " << page
                   << " points to " << lists.prev(page) << ", expected "
                   << prev;
                violate(Invariant::kLruStructure, os.str());
            }
            prev = page;
            page = lists.next(page);
            ++walked;
            ++examined;
        }
        if (walked != size) {
            std::ostringstream os;
            os << list_name(list) << " walk visited " << walked
               << " pages but the list claims " << size;
            violate(Invariant::kLruStructure, os.str());
        }
        if (lists.tail(list) != prev) {
            std::ostringstream os;
            os << list_name(list) << " tail is " << lists.tail(list)
               << " but the walk ended at " << prev;
            violate(Invariant::kLruStructure, os.str());
        }
    }
    return examined;
}

std::uint64_t
InvariantChecker::check_ema(const stats::EmaBins& bins)
{
    const std::size_t pages = bins.page_count();
    std::uint64_t recount[stats::EmaBins::kBins] = {};
    for (PageId page = 0; page < pages; ++page)
        ++recount[static_cast<std::size_t>(
            stats::EmaBins::bin_of(bins.count(page)))];

    std::uint64_t mass = 0;
    for (int b = 0; b < stats::EmaBins::kBins; ++b) {
        const std::uint64_t tracked = bins.bin_pages(b);
        mass += tracked;
        if (tracked != recount[static_cast<std::size_t>(b)]) {
            std::ostringstream os;
            os << "bin " << b << " (counts >= "
               << stats::EmaBins::bin_floor(b) << ") tracks " << tracked
               << " pages but the per-page counters place "
               << recount[static_cast<std::size_t>(b)] << " there";
            violate(Invariant::kEmaBinMass, os.str());
        }
    }
    if (mass != pages) {
        std::ostringstream os;
        os << "total bin mass " << mass << " differs from the page space "
           << pages;
        violate(Invariant::kEmaBinMass, os.str());
    }
    return static_cast<std::uint64_t>(pages) + stats::EmaBins::kBins;
}

std::uint64_t
InvariantChecker::check_fault_accounting(
    const memsim::TieredMachine& machine,
    std::optional<std::uint64_t> expected_suppressed)
{
    const auto& totals = machine.totals();
    if (!machine.faults_enabled()) {
        if (totals.failed_pinned != 0 || totals.failed_transient != 0 ||
            totals.failed_contended != 0 ||
            (totals.aborted_migration_ns != 0 && totals.tx_aborted == 0)) {
            std::ostringstream os;
            os << "fault-free machine recorded injected failures (pinned="
               << totals.failed_pinned << " transient="
               << totals.failed_transient << " contended="
               << totals.failed_contended << " aborted_ns="
               << totals.aborted_migration_ns << ")";
            violate(Invariant::kFaultAccounting, os.str());
        }
        return 4;  // the four fault counters verified zero
    }
    const memsim::FaultInjector& faults = *machine.fault_injector();
    if (totals.failed_transient != faults.transient_aborts()) {
        std::ostringstream os;
        os << "machine recorded " << totals.failed_transient
           << " transient aborts but the injector granted "
           << faults.transient_aborts();
        violate(Invariant::kFaultAccounting, os.str());
    }
    if (totals.failed_contended < faults.contended_hits()) {
        std::ostringstream os;
        os << "machine recorded " << totals.failed_contended
           << " contended failures, fewer than the injector's "
           << faults.contended_hits() << " contended draws";
        violate(Invariant::kFaultAccounting, os.str());
    }
    if (totals.failed_pinned > 0 && faults.config().pinned_fraction <= 0.0) {
        std::ostringstream os;
        os << "machine recorded " << totals.failed_pinned
           << " pinned failures but no pages are pinned";
        violate(Invariant::kFaultAccounting, os.str());
    }
    if (totals.aborted_migration_ns > 0 && totals.failed_transient == 0 &&
        totals.tx_aborted == 0) {
        std::ostringstream os;
        os << "machine charged " << totals.aborted_migration_ns
           << " ns of aborted copies without a transient or "
           << "transactional abort";
        violate(Invariant::kFaultAccounting, os.str());
    }
    if (expected_suppressed &&
        *expected_suppressed != faults.suppressed_samples()) {
        std::ostringstream os;
        os << "engine counted " << *expected_suppressed
           << " suppressed samples but the injector suppressed "
           << faults.suppressed_samples();
        violate(Invariant::kFaultAccounting, os.str());
    }
    return expected_suppressed ? 5 : 4;  // reconciliations performed
}

std::uint64_t
InvariantChecker::check_tx_accounting(const memsim::TieredMachine& machine)
{
    const auto& totals = machine.totals();
    if (!machine.tx_enabled()) {
        if (totals.tx_opened != 0 || totals.tx_committed != 0 ||
            totals.tx_aborted != 0 || totals.tx_retries != 0 ||
            totals.tx_free_flips != 0 || totals.tx_dual_drops != 0 ||
            totals.tx_dual_reclaims != 0 || totals.failed_tx_busy != 0) {
            std::ostringstream os;
            os << "tx-off machine recorded transaction activity (opened="
               << totals.tx_opened << " committed=" << totals.tx_committed
               << " aborted=" << totals.tx_aborted << " busy="
               << totals.failed_tx_busy << ")";
            violate(Invariant::kTxAccounting, os.str());
        }
        return 8;  // the eight transaction counters verified zero
    }
    // Every open resolves exactly once: commit, abort, or still pending.
    const std::uint64_t inflight = machine.tx_inflight_count();
    if (totals.tx_opened !=
        totals.tx_committed + totals.tx_aborted + inflight) {
        std::ostringstream os;
        os << "transaction ledger does not balance: opened="
           << totals.tx_opened << " != committed=" << totals.tx_committed
           << " + aborted=" << totals.tx_aborted << " + in-flight="
           << inflight;
        violate(Invariant::kTxAccounting, os.str());
    }
    // Every write draw that hit resolved exactly one way: it aborted an
    // in-flight transaction or dropped a dual-resident secondary copy.
    if (machine.tx_write_hits() !=
        totals.tx_aborted + totals.tx_dual_drops) {
        std::ostringstream os;
        os << "write-classification draws do not reconcile: "
           << machine.tx_write_hits() << " hits (of "
           << machine.tx_write_draws() << " draws) but aborted="
           << totals.tx_aborted << " + dual_drops="
           << totals.tx_dual_drops;
        violate(Invariant::kTxAccounting, os.str());
    }
    // The per-tier reclaimable counters must match a census of the
    // dual-residency flags (a stale counter would let free_pages() lie
    // to every policy).
    std::size_t dual[memsim::kTierCount] = {0, 0};
    const std::size_t pages = machine.page_count();
    for (PageId page = 0; page < pages; ++page) {
        if (machine.is_allocated(page) && machine.tx_page_dual(page))
            ++dual[static_cast<std::size_t>(
                memsim::other_tier(machine.tier_of(page)))];
    }
    for (int t = 0; t < memsim::kTierCount; ++t) {
        const Tier tier = static_cast<Tier>(t);
        if (machine.tx_reclaimable_pages(tier) !=
            dual[static_cast<std::size_t>(t)]) {
            std::ostringstream os;
            os << "tier " << memsim::tier_name(tier) << " tracks "
               << machine.tx_reclaimable_pages(tier)
               << " reclaimable secondary copies but "
               << dual[static_cast<std::size_t>(t)]
               << " pages carry the dual-residency flag there";
            violate(Invariant::kTxAccounting, os.str());
        }
    }
    return static_cast<std::uint64_t>(pages) + memsim::kTierCount + 2;
}

std::uint64_t
InvariantChecker::check_shard_partition(
    const memsim::TieredMachine& machine,
    const memsim::ShardedAccessEngine& sharded)
{
    using memsim::ShardedAccessEngine;
    const unsigned shards = sharded.shards();
    // The owner map must be a partition: every slice owned by exactly
    // the shard its block-cyclic formula names, and never a shard index
    // outside [0, shards).
    for (unsigned sl = 0; sl < ShardedAccessEngine::kNumSlices; ++sl) {
        const unsigned owner = sharded.slice_owner(sl);
        if (owner >= shards || owner != sl % shards) {
            std::ostringstream os;
            os << "slice " << sl << " owned by shard " << owner
               << " under " << shards << " shards (expected "
               << sl % shards << ")";
            violate(Invariant::kShardPartition, os.str());
        }
    }
    // Cross-shard residency census: bucket every allocated page by its
    // owner and charge tiers exactly like check_machine() (primary copy
    // plus any transactional shadow/dual secondary). The per-shard
    // sums must add back up to the machine's own used counters — a
    // shard mutating foreign pages (or dropping owned ones) shows up
    // here as a sum mismatch attributable to a shard.
    std::size_t census[ShardedAccessEngine::kNumSlices]
                      [memsim::kTierCount] = {};
    const std::size_t pages = machine.page_count();
    for (PageId page = 0; page < pages; ++page) {
        if (!machine.is_allocated(page))
            continue;
        const unsigned owner = sharded.owner_of(page);
        const Tier primary = machine.tier_of(page);
        ++census[owner][static_cast<std::size_t>(primary)];
        if (machine.tx_page_shadow(page) || machine.tx_page_dual(page))
            ++census[owner][static_cast<std::size_t>(
                memsim::other_tier(primary))];
    }
    for (int t = 0; t < memsim::kTierCount; ++t) {
        const Tier tier = static_cast<Tier>(t);
        std::size_t total = 0;
        for (unsigned s = 0; s < shards; ++s)
            total += census[s][static_cast<std::size_t>(t)];
        if (total != machine.used_pages(tier)) {
            std::ostringstream os;
            os << "per-shard census of tier " << memsim::tier_name(tier)
               << " sums to " << total << " across " << shards
               << " shards but the machine tracks "
               << machine.used_pages(tier) << " resident pages";
            violate(Invariant::kShardPartition, os.str());
        }
    }
    std::uint64_t examined =
        static_cast<std::uint64_t>(ShardedAccessEngine::kNumSlices) +
        static_cast<std::uint64_t>(pages) + memsim::kTierCount;
    if (!sharded.parallel_merge())
        return examined;

    // --- parallel-merge audits (DESIGN.md §12) ----------------------

    // (a) Lane latency reconciliation. The cumulative per-lane folded
    // accumulators must add back up to the engine's independently
    // recomputed totals: parallel_charged_ns() comes from the faulted
    // timebase scan's clock delta (or per-tier counts x latencies
    // unfaulted), never from the lane sums themselves, so a single
    // off-by-one in any lane's private accumulator surfaces here.
    std::uint64_t folded_accesses = 0;
    SimTimeNs folded_lat = 0;
    for (unsigned s = 0; s < shards; ++s) {
        folded_accesses += sharded.lane_folded_accesses(s);
        folded_lat += sharded.lane_folded_latency_ns(s);
    }
    if (folded_accesses != sharded.parallel_accesses()) {
        std::ostringstream os;
        os << "lane folded access counters sum to " << folded_accesses
           << " across " << shards << " shards but the parallel merge "
           << "processed " << sharded.parallel_accesses() << " accesses";
        violate(Invariant::kShardPartition, os.str());
    }
    if (folded_lat != sharded.parallel_charged_ns()) {
        std::ostringstream os;
        os << "lane latency accumulators sum to " << folded_lat
           << " ns across " << shards << " shards but parallel-merged "
           << "batches charged " << sharded.parallel_charged_ns()
           << " ns";
        violate(Invariant::kShardPartition, os.str());
    }
    examined += static_cast<std::uint64_t>(shards) * 2;

    // (b) Pending per-shard sampler records awaiting the boundary
    // merge: each record must carry the index of the lane holding it,
    // that lane must own the record's page, and each lane's stream
    // must be strictly seq-sorted below the engine's next global
    // sequence number (the merge relies on per-lane sortedness).
    const std::uint64_t next_seq = sharded.next_seq();
    for (unsigned s = 0; s < shards; ++s) {
        const auto& pending = sharded.lane_pending(s);
        std::uint64_t prev_seq = 0;
        bool have_prev = false;
        for (const auto& ps : pending) {
            if (ps.shard != s || sharded.owner_of(ps.page) != s) {
                std::ostringstream os;
                os << "pending sampler record for page " << ps.page
                   << " (seq " << ps.seq << ") sits on lane " << s
                   << " but is attributed to shard " << ps.shard
                   << " and the page is owned by shard "
                   << sharded.owner_of(ps.page);
                violate(Invariant::kShardPartition, os.str());
            }
            if (ps.seq >= next_seq || (have_prev && ps.seq <= prev_seq)) {
                std::ostringstream os;
                os << "pending sampler record on lane " << s
                   << " carries seq " << ps.seq << " (previous "
                   << (have_prev ? prev_seq : 0)
                   << ", engine next_seq " << next_seq
                   << "): per-lane streams must be strictly "
                   << "seq-sorted below next_seq";
                violate(Invariant::kShardPartition, os.str());
            }
            prev_seq = ps.seq;
            have_prev = true;
            ++examined;
        }
    }

    // (c) Per-shard LRU segments: every linked page must belong to the
    // segment's shard, be allocated, and carry a stamp below next_seq;
    // along each list stamps must strictly descend (every touch moves
    // the page to a head with a fresh globally-unique stamp — the
    // property the decision-boundary splice's k-way merge relies on).
    // Deliberately NO tier-residency check: a page touched and then
    // migrated by the policy stays on its old tier's list until its
    // next touch, exactly like the serial LruLists oracle.
    const lru::ShardedLru* recency = sharded.recency();
    if (recency == nullptr || recency->shards() != shards ||
        recency->page_count() != pages) {
        std::ostringstream os;
        os << "parallel merge is active but the recency view is "
           << (recency == nullptr ? "missing" : "mis-shaped");
        violate(Invariant::kShardPartition, os.str());
    }
    for (unsigned s = 0; s < shards; ++s) {
        const lru::LruLists& seg = recency->segment(s);
        for (int l = 0; l < 4; ++l) {
            const auto list = static_cast<lru::ListId>(l);
            std::uint64_t prev_stamp = 0;
            bool first = true;
            std::size_t walked = 0;
            for (PageId page = seg.head(list); page != kInvalidPage;
                 page = seg.next(page)) {
                if (sharded.owner_of(page) != s) {
                    std::ostringstream os;
                    os << "page " << page << " is linked on shard " << s
                       << "'s LRU segment but is owned by shard "
                       << sharded.owner_of(page);
                    violate(Invariant::kShardPartition, os.str());
                }
                if (!machine.is_allocated(page)) {
                    std::ostringstream os;
                    os << "unallocated page " << page
                       << " is linked on shard " << s
                       << "'s LRU segment";
                    violate(Invariant::kShardPartition, os.str());
                }
                const std::uint64_t stamp = recency->stamp_of(page);
                if (stamp >= next_seq ||
                    (!first && stamp >= prev_stamp)) {
                    std::ostringstream os;
                    os << "page " << page << " on shard " << s
                       << "'s LRU segment carries stamp " << stamp
                       << " (previous " << (first ? 0 : prev_stamp)
                       << ", engine next_seq " << next_seq
                       << "): list stamps must strictly descend below "
                       << "next_seq";
                    violate(Invariant::kShardPartition, os.str());
                }
                prev_stamp = stamp;
                first = false;
                if (++walked > pages) {
                    std::ostringstream os;
                    os << "shard " << s << "'s LRU segment list " << l
                       << " walks more pages than exist (cycle?)";
                    violate(Invariant::kShardPartition, os.str());
                }
                ++examined;
            }
            if (walked != seg.size(list)) {
                std::ostringstream os;
                os << "shard " << s << "'s LRU segment list " << l
                   << " links " << walked << " pages but tracks "
                   << seg.size(list);
                violate(Invariant::kShardPartition, os.str());
            }
        }
    }
    return examined;
}

std::uint64_t
InvariantChecker::check_tenant_quota(const memsim::TieredMachine& machine)
{
    const memsim::TenantLedger* ledger = machine.tenants();
    if (ledger == nullptr)
        violate(Invariant::kTenantQuota,
                "check_tenant_quota called on a single-tenant machine");
    const std::size_t pages = machine.page_count();
    if (ledger->page_count() != pages) {
        std::ostringstream os;
        os << "tenant ledger covers " << ledger->page_count()
           << " pages but the machine holds " << pages;
        violate(Invariant::kTenantQuota, os.str());
    }
    // Per-tenant per-tier census of the residency map, charging
    // transactional shadow/dual secondary copies exactly like
    // check_machine(): the ledger mirrors the machine's used-page
    // bookkeeping, so the same recount must reproduce it per owner.
    const std::uint32_t tenants = ledger->tenant_count();
    std::vector<std::size_t> census(
        static_cast<std::size_t>(tenants) * memsim::kTierCount, 0);
    for (PageId page = 0; page < pages; ++page) {
        if (!machine.is_allocated(page))
            continue;
        const std::uint32_t owner = ledger->owner(page);
        if (owner >= tenants) {
            std::ostringstream os;
            os << "page " << page << " owned by tenant " << owner
               << " outside [0, " << tenants << ")";
            violate(Invariant::kTenantQuota, os.str());
        }
        const Tier primary = machine.tier_of(page);
        ++census[owner * memsim::kTierCount +
                 static_cast<std::size_t>(primary)];
        if (machine.tx_page_shadow(page) || machine.tx_page_dual(page))
            ++census[owner * memsim::kTierCount +
                     static_cast<std::size_t>(memsim::other_tier(primary))];
    }
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    for (std::uint32_t tenant = 0; tenant < tenants; ++tenant) {
        for (int t = 0; t < memsim::kTierCount; ++t) {
            const Tier tier = static_cast<Tier>(t);
            const std::size_t tracked = ledger->used_pages(tenant, tier);
            const std::size_t counted =
                census[tenant * memsim::kTierCount +
                       static_cast<std::size_t>(t)];
            if (tracked != counted) {
                std::ostringstream os;
                os << "tenant " << tenant << " tracks " << tracked
                   << " resident pages in tier " << memsim::tier_name(tier)
                   << " but the residency map holds " << counted;
                violate(Invariant::kTenantQuota, os.str());
            }
        }
        // The quota is hard at migration time and soft only at
        // first-touch (allocation may spill into the fast tier when the
        // slow tier is full), so residency above quota is bounded by
        // the recorded over-quota allocations.
        const std::size_t quota = ledger->quota(tenant);
        const auto& totals = ledger->totals(tenant);
        if (quota != memsim::TenantLedger::kNoQuota) {
            const std::size_t used_fast =
                ledger->used_pages(tenant, Tier::kFast);
            if (used_fast > quota + totals.over_quota_allocs) {
                std::ostringstream os;
                os << "tenant " << tenant << " holds " << used_fast
                   << " fast pages over its quota of " << quota << " ("
                   << totals.over_quota_allocs
                   << " over-quota allocations recorded)";
                violate(Invariant::kTenantQuota, os.str());
            }
        }
        promoted += totals.promoted_pages;
        demoted += totals.demoted_pages;
    }
    // Per-tenant migration totals reconcile with the machine's: an
    // exchange counts one promotion and one demotion in the ledger but
    // lands in the machine's dedicated exchange counter.
    const auto& machine_totals = machine.totals();
    if (promoted !=
        machine_totals.promoted_pages + machine_totals.exchanges) {
        std::ostringstream os;
        os << "per-tenant promotions sum to " << promoted
           << " but the machine counts " << machine_totals.promoted_pages
           << " promotions + " << machine_totals.exchanges << " exchanges";
        violate(Invariant::kTenantQuota, os.str());
    }
    if (demoted !=
        machine_totals.demoted_pages + machine_totals.exchanges) {
        std::ostringstream os;
        os << "per-tenant demotions sum to " << demoted
           << " but the machine counts " << machine_totals.demoted_pages
           << " demotions + " << machine_totals.exchanges << " exchanges";
        violate(Invariant::kTenantQuota, os.str());
    }
    return static_cast<std::uint64_t>(pages) +
           static_cast<std::uint64_t>(tenants) * memsim::kTierCount + 2;
}

std::uint64_t
InvariantChecker::check_qtable(const rl::QTable& table, double bound,
                               std::string_view label)
{
    for (int s = 0; s < table.states(); ++s) {
        for (int a = 0; a < table.actions(); ++a) {
            const double q = table.at(s, a);
            if (!std::isfinite(q) || std::fabs(q) > bound) {
                std::ostringstream os;
                os << label << " Q(" << s << ", " << a << ") = " << q
                   << " outside the reward-implied bound of +-" << bound;
                violate(Invariant::kQTableValue, os.str());
            }
        }
    }
    return static_cast<std::uint64_t>(table.states()) *
           static_cast<std::uint64_t>(table.actions());
}

double
InvariantChecker::qtable_bound(const core::ArtMemConfig& config)
{
    // Rewards are clamped to [-100, 100] before every TD update
    // (core/artmem.cpp), and both tables start inside the fixpoint
    // interval (0 everywhere, one primed entry at 1), so the values can
    // never leave +-R/(1-gamma). 1e-6 absorbs accumulation error.
    const double gamma = config.agent.gamma;
    if (!(gamma >= 0.0) || gamma >= 1.0)
        return std::numeric_limits<double>::infinity();
    return 100.0 / (1.0 - gamma) + 1e-6;
}

std::uint64_t
InvariantChecker::check_artmem(const core::ArtMem& artmem,
                               const memsim::TieredMachine& machine)
{
    std::uint64_t examined = 0;
    examined += check_lru(artmem.lists(), machine);
    examined += check_ema(artmem.bins());
    const double bound = qtable_bound(artmem.config());
    examined +=
        check_qtable(artmem.migration_agent().table(), bound, "migration");
    examined +=
        check_qtable(artmem.threshold_agent().table(), bound, "threshold");
    return examined;
}

std::uint64_t
InvariantChecker::audit(const memsim::TieredMachine& machine,
                        const policies::Policy& policy,
                        std::optional<std::uint64_t> expected_suppressed,
                        const memsim::ShardedAccessEngine* sharded)
{
    ++audits_;
    std::uint64_t examined = 0;
    examined += check_machine(machine);
    examined += check_fault_accounting(machine, expected_suppressed);
    examined += check_tx_accounting(machine);
    if (sharded != nullptr)
        examined += check_shard_partition(machine, *sharded);
    if (machine.tenants() != nullptr)
        examined += check_tenant_quota(machine);
    if (const auto* artmem =
            dynamic_cast<const core::ArtMem*>(&policy)) {
        if (artmem->initialized())
            examined += check_artmem(*artmem, machine);
    }
    return examined;
}

}  // namespace artmem::verify
