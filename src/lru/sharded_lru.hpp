/**
 * @file
 * Per-shard LRU segments with a deterministic decision-boundary splice
 * (DESIGN.md §12, phase-2 parallel merge).
 *
 * The sharded access engine's parallel merge lets every lane record
 * page recency for its owned slices without synchronization: each
 * shard owns a private LruLists segment, and a lane only ever touches
 * pages it owns, so segment mutations and the per-page last-touch
 * stamps are disjoint writes by construction. At decision-interval
 * boundaries the segments are spliced into one merged global view that
 * is provably identical to what a single serial LruLists fed the same
 * touch stream would hold:
 *
 *  - a page's membership (which of the four lists) and referenced bit
 *    depend ONLY on that page's own touch history — every touch of a
 *    page lands in the one segment that owns it, so per-page state in
 *    the segment equals per-page state in the serial oracle;
 *  - every touch moves the touched page to the head of exactly one
 *    list, so within any list pages sit in strictly descending order
 *    of their last-touch stamp; the serial oracle's global list obeys
 *    the same rule. A k-way merge of the segments' lists by stamp
 *    descending therefore reproduces the serial order exactly (stamps
 *    are globally unique access sequence numbers, so the order is
 *    total). tests/test_sharded.cpp checks this against a serially
 *    touched LruLists oracle.
 *
 * The splice is pure bookkeeping over engine-internal state: nothing
 * byte-observable consumes the merged view yet (policies keep their
 * own lists), so it cannot perturb the engine's byte-identity
 * contract. It exists to parallelize the recency maintenance that a
 * future per-shard policy state will consume, and it is audited by the
 * kShardPartition invariant (segment ownership + stamp monotonicity).
 */
#ifndef ARTMEM_LRU_SHARDED_LRU_HPP
#define ARTMEM_LRU_SHARDED_LRU_HPP

#include <cstdint>
#include <vector>

#include "lru/lru_lists.hpp"
#include "memsim/tier.hpp"
#include "util/types.hpp"

namespace artmem::lru {

/** N private LruLists segments + a stamp-ordered merged view. */
class ShardedLru
{
  public:
    /**
     * @param page_count Size of the page id space (every segment and
     *                   the merged view cover the full space; only
     *                   owned pages are ever linked in a segment).
     * @param shards     Number of segments.
     */
    ShardedLru(std::size_t page_count, unsigned shards);

    /**
     * Record an access to @p page served from @p tier, observed by
     * @p shard at global access sequence number @p stamp. Safe to call
     * concurrently from different shards as long as each shard only
     * touches pages it owns (the sharded engine's ownership partition
     * guarantees this); stamps must be globally unique and increasing
     * within a shard.
     */
    void
    touch(unsigned shard, PageId page, memsim::Tier tier,
          std::uint64_t stamp)
    {
        segments_[shard].touch(page, tier);
        stamp_[page] = stamp;
        ++touches_[shard].value;
    }

    /**
     * Rebuild the merged global view from the segments: k-way merge
     * each of the four lists across segments by last-touch stamp
     * descending and copy per-page referenced bits. Serial-equivalence
     * argument in the file header. Not thread-safe; call only between
     * batches (the engine splices at decision boundaries).
     */
    void splice();

    /** Merged global view as of the last splice(). */
    const LruLists& merged() const { return merged_; }

    /** One shard's private segment. */
    const LruLists& segment(unsigned shard) const
    {
        return segments_[shard];
    }

    /** Last-touch stamp of @p page (0 if never touched). */
    std::uint64_t stamp_of(PageId page) const { return stamp_[page]; }

    /** Segment count. */
    unsigned shards() const
    {
        return static_cast<unsigned>(segments_.size());
    }

    /** Page id space size. */
    std::size_t page_count() const { return stamp_.size(); }

    /** Total touches recorded across all segments. */
    std::uint64_t touches() const;

    /** Splices performed. */
    std::uint64_t splices() const { return splices_; }

  private:
    friend struct ShardedLruTestPeer;

    std::vector<LruLists> segments_;
    LruLists merged_;
    std::vector<std::uint64_t> stamp_;
    /** Per-shard touch counter, cache-line aligned so concurrent
     *  shards never bounce a line while counting. */
    struct alignas(64) TouchCount {
        std::uint64_t value = 0;
    };
    std::vector<TouchCount> touches_;
    std::uint64_t splices_ = 0;
};

}  // namespace artmem::lru

#endif  // ARTMEM_LRU_SHARDED_LRU_HPP
