/**
 * @file
 * Linux-style page LRU lists for a two-tier machine.
 *
 * Both tiers maintain separate active and inactive lists, as the kernel
 * does per NUMA node. ArtMem's "page sorting" (Section 4.3) and the
 * Multi-clock / TPP / AutoNUMA baselines are built on these primitives:
 * pages are promoted inactive -> active when referenced again, aged
 * active -> inactive by a second-chance scan, demotion candidates are
 * taken from the fast tier's inactive tail, and promotion candidates
 * from the slow tier's active head.
 *
 * Implemented as intrusive doubly-linked lists over flat arrays indexed
 * by PageId, so every operation is O(1) and iteration is cache-friendly.
 */
#ifndef ARTMEM_LRU_LRU_LISTS_HPP
#define ARTMEM_LRU_LRU_LISTS_HPP

#include <cstdint>
#include <vector>

#include "memsim/tier.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace artmem::lru {

/** Identifier of one of the four lists (or none). */
enum class ListId : std::uint8_t {
    kFastActive = 0,
    kFastInactive = 1,
    kSlowActive = 2,
    kSlowInactive = 3,
    kNone = 4,
};

/** List holding pages of @p tier with the given activity. */
inline ListId
list_id(memsim::Tier tier, bool active)
{
    const int base = tier == memsim::Tier::kFast ? 0 : 2;
    return static_cast<ListId>(base + (active ? 0 : 1));
}

/** Tier a list belongs to; panic on kNone. */
memsim::Tier list_tier(ListId id);

/** True for the two active lists. */
inline bool
list_active(ListId id)
{
    return id == ListId::kFastActive || id == ListId::kSlowActive;
}

/** Four active/inactive LRU lists with per-page referenced bits. */
class LruLists
{
  public:
    /** @param page_count Size of the page id space. */
    explicit LruLists(std::size_t page_count);

    /** List currently containing the page (kNone if unlinked). */
    ListId where(PageId page) const { return where_[page]; }

    /**
     * Insert an unlinked page at the head (MRU end) of a list.
     * Inline along with remove()/move_to_head()/touch(): these run per
     * drained PEBS sample on the engine's tick path (DESIGN.md §9).
     */
    void
    insert_head(PageId page, ListId list)
    {
        if (where_[page] != ListId::kNone)
            panic("LruLists::insert_head: page ", page, " already linked");
        const int l = static_cast<int>(list);
        next_[page] = heads_[l];
        prev_[page] = kInvalidPage;
        if (heads_[l] != kInvalidPage)
            prev_[heads_[l]] = page;
        heads_[l] = page;
        if (tails_[l] == kInvalidPage)
            tails_[l] = page;
        where_[page] = list;
        ++sizes_[l];
    }

    /** Insert an unlinked page at the tail (LRU end) of a list. */
    void insert_tail(PageId page, ListId list);

    /** Unlink the page from whatever list holds it (no-op if none). */
    void
    remove(PageId page)
    {
        const ListId list = where_[page];
        if (list == ListId::kNone)
            return;
        const int l = static_cast<int>(list);
        const PageId p = prev_[page];
        const PageId n = next_[page];
        if (p != kInvalidPage)
            next_[p] = n;
        else
            heads_[l] = n;
        if (n != kInvalidPage)
            prev_[n] = p;
        else
            tails_[l] = p;
        prev_[page] = kInvalidPage;
        next_[page] = kInvalidPage;
        where_[page] = ListId::kNone;
        --sizes_[l];
    }

    /** Unlink + insert at the head of @p list. */
    void
    move_to_head(PageId page, ListId list)
    {
        remove(page);
        insert_head(page, list);
    }

    /** Head (MRU) page of a list, or kInvalidPage. */
    PageId head(ListId list) const;

    /** Tail (LRU) page of a list, or kInvalidPage. */
    PageId tail(ListId list) const;

    /** Next page toward the tail, or kInvalidPage. */
    PageId next(PageId page) const { return next_[page]; }

    /** Next page toward the head, or kInvalidPage. */
    PageId prev(PageId page) const { return prev_[page]; }

    /** Number of pages on a list. */
    std::size_t size(ListId list) const
    {
        return sizes_[static_cast<int>(list)];
    }

    /** Mark the page referenced (kernel PG_referenced analogue). */
    void set_referenced(PageId page) { referenced_[page] = 1; }

    /** Read and clear the referenced bit. */
    bool test_and_clear_referenced(PageId page);

    /** Read the referenced bit. */
    bool referenced(PageId page) const { return referenced_[page] != 0; }

    /**
     * Record an observed access: a referenced inactive page is activated
     * (moved to its tier's active head), an active page is rotated to the
     * head, an unlinked page is inserted at the inactive head. Mirrors
     * mark_page_accessed() semantics closely enough for policy purposes.
     */
    void
    touch(PageId page, memsim::Tier tier)
    {
        const ListId current = where_[page];
        const ListId active = list_id(tier, true);
        const ListId inactive = list_id(tier, false);
        if (current == ListId::kNone) {
            referenced_[page] = 1;
            insert_head(page, inactive);
            return;
        }
        // If the page migrated since its last touch, current may belong
        // to the other tier; re-home it.
        if (list_active(current)) {
            move_to_head(page, active);
            referenced_[page] = 1;
            return;
        }
        if (referenced_[page]) {
            // Second touch while inactive: activate (workingset rule).
            referenced_[page] = 0;
            move_to_head(page, active);
        } else {
            referenced_[page] = 1;
            move_to_head(page, inactive);
        }
    }

    /**
     * Second-chance aging pass over the active list of @p tier, from the
     * tail: referenced pages are cleared and rotated to the head,
     * unreferenced pages are deactivated to the inactive head.
     * @return number of pages deactivated.
     */
    std::size_t age_active(memsim::Tier tier, std::size_t scan_count);

    /**
     * Scan the inactive list of @p tier from the tail, reclaiming-style:
     * referenced pages are activated; unreferenced pages are appended to
     * @p candidates (left in place).
     * @return number of candidates produced.
     */
    std::size_t scan_inactive(memsim::Tier tier, std::size_t scan_count,
                              std::vector<PageId>& candidates);

    /**
     * Unlink every page and clear every referenced bit, returning the
     * lists to the freshly constructed state. Used by ShardedLru to
     * rebuild its merged view at each decision-boundary splice.
     */
    void clear();

    /** Page id space size. */
    std::size_t page_count() const { return where_.size(); }

  private:
    std::vector<PageId> next_;
    std::vector<PageId> prev_;
    std::vector<ListId> where_;
    std::vector<std::uint8_t> referenced_;
    PageId heads_[4];
    PageId tails_[4];
    std::size_t sizes_[4] = {0, 0, 0, 0};
};

}  // namespace artmem::lru

#endif  // ARTMEM_LRU_LRU_LISTS_HPP
