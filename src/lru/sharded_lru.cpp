#include "lru/sharded_lru.hpp"

#include "util/logging.hpp"

namespace artmem::lru {

ShardedLru::ShardedLru(std::size_t page_count, unsigned shards)
    : merged_(page_count), stamp_(page_count, 0), touches_(shards)
{
    if (shards == 0)
        panic("ShardedLru: shard count must be positive");
    segments_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        segments_.emplace_back(page_count);
}

void
ShardedLru::splice()
{
    ++splices_;
    merged_.clear();
    const unsigned n = shards();
    // Per-segment walk cursor, reused across the four lists.
    std::vector<PageId> cursor(n);
    for (int l = 0; l < 4; ++l) {
        const ListId list = static_cast<ListId>(l);
        for (unsigned s = 0; s < n; ++s)
            cursor[s] = segments_[s].head(list);
        // K-way merge by stamp descending: each segment list is
        // already in strictly descending stamp order (every touch
        // moves its page to a head with a fresh, globally unique
        // stamp), so repeatedly taking the largest head stamp emits
        // the serial oracle's order. Ties are impossible; the shard
        // index tiebreak below only makes the comparator total.
        while (true) {
            unsigned best = n;
            std::uint64_t best_stamp = 0;
            for (unsigned s = 0; s < n; ++s) {
                const PageId head = cursor[s];
                if (head == kInvalidPage)
                    continue;
                if (best == n || stamp_[head] > best_stamp) {
                    best = s;
                    best_stamp = stamp_[head];
                }
            }
            if (best == n)
                break;
            const PageId page = cursor[best];
            cursor[best] = segments_[best].next(page);
            merged_.insert_tail(page, list);
            if (segments_[best].referenced(page))
                merged_.set_referenced(page);
        }
    }
}

std::uint64_t
ShardedLru::touches() const
{
    std::uint64_t total = 0;
    for (const TouchCount& c : touches_)
        total += c.value;
    return total;
}

}  // namespace artmem::lru
