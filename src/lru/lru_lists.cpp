#include "lru/lru_lists.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::lru {

memsim::Tier
list_tier(ListId id)
{
    if (id == ListId::kNone)
        panic("list_tier(kNone)");
    return static_cast<int>(id) < 2 ? memsim::Tier::kFast
                                    : memsim::Tier::kSlow;
}

LruLists::LruLists(std::size_t page_count)
    : next_(page_count, kInvalidPage),
      prev_(page_count, kInvalidPage),
      where_(page_count, ListId::kNone),
      referenced_(page_count, 0)
{
    for (int i = 0; i < 4; ++i) {
        heads_[i] = kInvalidPage;
        tails_[i] = kInvalidPage;
    }
}

void
LruLists::clear()
{
    for (int l = 0; l < 4; ++l) {
        PageId page = heads_[l];
        while (page != kInvalidPage) {
            const PageId n = next_[page];
            next_[page] = kInvalidPage;
            prev_[page] = kInvalidPage;
            where_[page] = ListId::kNone;
            page = n;
        }
        heads_[l] = kInvalidPage;
        tails_[l] = kInvalidPage;
        sizes_[l] = 0;
    }
    std::fill(referenced_.begin(), referenced_.end(),
              static_cast<std::uint8_t>(0));
}

void
LruLists::insert_tail(PageId page, ListId list)
{
    if (where_[page] != ListId::kNone)
        panic("LruLists::insert_tail: page ", page, " already linked");
    const int l = static_cast<int>(list);
    prev_[page] = tails_[l];
    next_[page] = kInvalidPage;
    if (tails_[l] != kInvalidPage)
        next_[tails_[l]] = page;
    tails_[l] = page;
    if (heads_[l] == kInvalidPage)
        heads_[l] = page;
    where_[page] = list;
    ++sizes_[l];
}

PageId
LruLists::head(ListId list) const
{
    return heads_[static_cast<int>(list)];
}

PageId
LruLists::tail(ListId list) const
{
    return tails_[static_cast<int>(list)];
}

bool
LruLists::test_and_clear_referenced(PageId page)
{
    const bool was = referenced_[page] != 0;
    referenced_[page] = 0;
    return was;
}

std::size_t
LruLists::age_active(memsim::Tier tier, std::size_t scan_count)
{
    const ListId active = list_id(tier, true);
    const ListId inactive = list_id(tier, false);
    std::size_t deactivated = 0;
    for (std::size_t i = 0; i < scan_count; ++i) {
        const PageId page = tail(active);
        if (page == kInvalidPage)
            break;
        if (test_and_clear_referenced(page)) {
            move_to_head(page, active);
        } else {
            move_to_head(page, inactive);
            ++deactivated;
        }
    }
    return deactivated;
}

std::size_t
LruLists::scan_inactive(memsim::Tier tier, std::size_t scan_count,
                        std::vector<PageId>& candidates)
{
    const ListId active = list_id(tier, true);
    const ListId inactive = list_id(tier, false);
    std::size_t produced = 0;
    PageId page = tail(inactive);
    for (std::size_t i = 0; i < scan_count && page != kInvalidPage; ++i) {
        const PageId toward_head = prev_[page];
        if (test_and_clear_referenced(page)) {
            move_to_head(page, active);
        } else {
            candidates.push_back(page);
            ++produced;
        }
        page = toward_head;
    }
    return produced;
}

}  // namespace artmem::lru
