#include "lru/lru_lists.hpp"

#include "util/logging.hpp"

namespace artmem::lru {

ListId
list_id(memsim::Tier tier, bool active)
{
    const int base = tier == memsim::Tier::kFast ? 0 : 2;
    return static_cast<ListId>(base + (active ? 0 : 1));
}

memsim::Tier
list_tier(ListId id)
{
    if (id == ListId::kNone)
        panic("list_tier(kNone)");
    return static_cast<int>(id) < 2 ? memsim::Tier::kFast
                                    : memsim::Tier::kSlow;
}

bool
list_active(ListId id)
{
    return id == ListId::kFastActive || id == ListId::kSlowActive;
}

LruLists::LruLists(std::size_t page_count)
    : next_(page_count, kInvalidPage),
      prev_(page_count, kInvalidPage),
      where_(page_count, ListId::kNone),
      referenced_(page_count, 0)
{
    for (int i = 0; i < 4; ++i) {
        heads_[i] = kInvalidPage;
        tails_[i] = kInvalidPage;
    }
}

void
LruLists::insert_head(PageId page, ListId list)
{
    if (where_[page] != ListId::kNone)
        panic("LruLists::insert_head: page ", page, " already linked");
    const int l = static_cast<int>(list);
    next_[page] = heads_[l];
    prev_[page] = kInvalidPage;
    if (heads_[l] != kInvalidPage)
        prev_[heads_[l]] = page;
    heads_[l] = page;
    if (tails_[l] == kInvalidPage)
        tails_[l] = page;
    where_[page] = list;
    ++sizes_[l];
}

void
LruLists::insert_tail(PageId page, ListId list)
{
    if (where_[page] != ListId::kNone)
        panic("LruLists::insert_tail: page ", page, " already linked");
    const int l = static_cast<int>(list);
    prev_[page] = tails_[l];
    next_[page] = kInvalidPage;
    if (tails_[l] != kInvalidPage)
        next_[tails_[l]] = page;
    tails_[l] = page;
    if (heads_[l] == kInvalidPage)
        heads_[l] = page;
    where_[page] = list;
    ++sizes_[l];
}

void
LruLists::remove(PageId page)
{
    const ListId list = where_[page];
    if (list == ListId::kNone)
        return;
    const int l = static_cast<int>(list);
    const PageId p = prev_[page];
    const PageId n = next_[page];
    if (p != kInvalidPage)
        next_[p] = n;
    else
        heads_[l] = n;
    if (n != kInvalidPage)
        prev_[n] = p;
    else
        tails_[l] = p;
    prev_[page] = kInvalidPage;
    next_[page] = kInvalidPage;
    where_[page] = ListId::kNone;
    --sizes_[l];
}

void
LruLists::move_to_head(PageId page, ListId list)
{
    remove(page);
    insert_head(page, list);
}

PageId
LruLists::head(ListId list) const
{
    return heads_[static_cast<int>(list)];
}

PageId
LruLists::tail(ListId list) const
{
    return tails_[static_cast<int>(list)];
}

bool
LruLists::test_and_clear_referenced(PageId page)
{
    const bool was = referenced_[page] != 0;
    referenced_[page] = 0;
    return was;
}

void
LruLists::touch(PageId page, memsim::Tier tier)
{
    const ListId current = where_[page];
    const ListId active = list_id(tier, true);
    const ListId inactive = list_id(tier, false);
    if (current == ListId::kNone) {
        referenced_[page] = 1;
        insert_head(page, inactive);
        return;
    }
    // If the page migrated since its last touch, current may belong to
    // the other tier; re-home it.
    if (list_active(current)) {
        move_to_head(page, active);
        referenced_[page] = 1;
        return;
    }
    if (referenced_[page]) {
        // Second touch while inactive: activate (kernel workingset rule).
        referenced_[page] = 0;
        move_to_head(page, active);
    } else {
        referenced_[page] = 1;
        move_to_head(page, inactive);
    }
}

std::size_t
LruLists::age_active(memsim::Tier tier, std::size_t scan_count)
{
    const ListId active = list_id(tier, true);
    const ListId inactive = list_id(tier, false);
    std::size_t deactivated = 0;
    for (std::size_t i = 0; i < scan_count; ++i) {
        const PageId page = tail(active);
        if (page == kInvalidPage)
            break;
        if (test_and_clear_referenced(page)) {
            move_to_head(page, active);
        } else {
            move_to_head(page, inactive);
            ++deactivated;
        }
    }
    return deactivated;
}

std::size_t
LruLists::scan_inactive(memsim::Tier tier, std::size_t scan_count,
                        std::vector<PageId>& candidates)
{
    const ListId active = list_id(tier, true);
    const ListId inactive = list_id(tier, false);
    std::size_t produced = 0;
    PageId page = tail(inactive);
    for (std::size_t i = 0; i < scan_count && page != kInvalidPage; ++i) {
        const PageId toward_head = prev_[page];
        if (test_and_clear_referenced(page)) {
            move_to_head(page, active);
        } else {
            candidates.push_back(page);
            ++produced;
        }
        page = toward_head;
    }
    return produced;
}

}  // namespace artmem::lru
