/**
 * @file
 * The simulation engine: drives one workload against one policy on one
 * TieredMachine, reproducing the cadence of ArtMem's kernel threads —
 * PEBS records accumulate per access, the sampling thread drains them
 * every tick (ksampled, 2 ms in the paper), and the migration/decision
 * interval fires the policy's on_interval (kmigrated + RL step).
 *
 * Simulated time advances only through machine accesses and migration
 * charges, so the reported runtime is the workload's execution time on
 * the modelled hardware.
 */
#ifndef ARTMEM_SIM_ENGINE_HPP
#define ARTMEM_SIM_ENGINE_HPP

#include <functional>
#include <memory>
#include <vector>

#include "memsim/pebs.hpp"
#include "memsim/tiered_machine.hpp"
#include "policies/policy.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/generator.hpp"

namespace artmem::sim {

/** Engine cadence and instrumentation configuration. */
struct EngineConfig {
    /** Sampling-thread drain period (simulated ns). */
    SimTimeNs tick_interval = 1000000;  // 1 ms
    /** Migration/decision interval (simulated ns). */
    SimTimeNs decision_interval = 10000000;  // 10 ms
    /** PEBS configuration. The paper samples one in 200 accesses over
     *  billions of accesses; runs here execute ~10^7 accesses, so the
     *  default period is scaled to 20 to preserve per-page sample
     *  counts (see DESIGN.md, access-volume scaling). */
    memsim::PebsSampler::Config pebs{.period = 10,
                                     .buffer_capacity = 1 << 14};
    /** Accesses pulled from the generator per engine iteration. */
    std::size_t batch_size = 512;
    /**
     * Shard the access hot path (memsim/sharded_access.hpp): split page
     * ownership into fixed slices, classify each batch's accesses on N
     * threads, then merge serially in deterministic epoch order. 0 (the
     * default) runs the legacy unsharded batch loop; 1 runs the sharded
     * pipeline on the calling thread only (the determinism baseline);
     * N in [2, 64] adds N-1 workers. Results, telemetry, and goldens
     * are byte-identical across every value — scripts/ci.sh diffs
     * --shards 1 vs --shards 4 runs byte-for-byte, like --jobs.
     */
    unsigned shards = 0;
    /**
     * Base seed for per-shard audit streams. 0 means "derive from the
     * run seed": run_experiment() fills it with RunSpec::seed. Streams
     * are namespaced under SeedDomain::kShard, so they can never
     * collide with sweep-job seeds (util/rng.hpp).
     */
    std::uint64_t shard_seed = 0;
    /**
     * Run phase 2 of all-plain sharded batches as per-lane parallel
     * work with a deterministic decision-boundary merge (per-lane
     * latency accumulators, per-shard PEBS streams, per-shard LRU
     * segments; memsim/sharded_access.hpp). Meaningful only when
     * shards > 0. Byte-identical to the serial epoch merge — and to
     * shards = 0 — for every shard count, policy, tx mode, and fault
     * scenario; false keeps the serial merge as the oracle/escape
     * hatch (--merge=serial).
     */
    bool parallel_merge = true;
    /**
     * Test-only lane scheduling hook, forwarded to
     * ShardedAccessEngine::Config::lane_delay_hook (tests force lane
     * completion orders with it). Must not touch simulation state.
     */
    std::function<void(unsigned)> lane_delay_hook = nullptr;
    /** Record a per-interval timeline (Figures 12 and 17). */
    bool record_timeline = false;
    /**
     * Pre-allocate the workload footprint in address order before the
     * access stream starts (a program initializing its heap), so the
     * fast tier initially holds the low addresses rather than whichever
     * pages happen to be touched first.
     */
    bool prefault = true;
    /**
     * Fault model for the run (memsim/fault_injector.hpp). The default
     * disables every fault class, leaving the run bit-identical to one
     * without the fault layer.
     */
    memsim::FaultConfig faults;
    /**
     * Transactional-migration engine (memsim/tx_migration.hpp). Off by
     * default, which is a strict no-op: the machine never allocates the
     * transaction table and every run is bit-identical to one without
     * the engine compiled in. When enabled, the engine polls the
     * machine at every decision boundary so due transactions commit
     * before the policy reasons about residency, and routes each
     * resolution to Policy::on_tx_resolved().
     */
    memsim::TxConfig tx;
    /**
     * Audit simulator invariants (residency, LRU partition, EMA mass,
     * fault accounting, Q-table bounds; see verify/invariant_checker.hpp)
     * after every decision interval. Requires a build with
     * ARTMEM_CHECK_INVARIANTS=ON (the default); a violation throws
     * verify::InvariantViolation out of run_simulation().
     */
    bool check_invariants = false;
    /**
     * Telemetry switches (telemetry/telemetry.hpp). All off by default;
     * when any is on the engine creates a per-run Telemetry bundle,
     * attaches it to the machine, injector, and policy, and returns it
     * in RunResult::telemetry. Collection is strictly observational:
     * it never advances simulated time, draws randomness, or reorders
     * work, so an instrumented run is bit-identical to a bare one.
     */
    telemetry::TelemetryConfig telemetry;
};

/**
 * One decision interval's ground-truth observation. This is the
 * engine's per-interval telemetry record: the same struct feeds both
 * the RunResult timeline (Figures 12 and 17) and the kEngine
 * "decision" trace event, so the two outputs can never drift apart
 * (DESIGN.md §8).
 */
struct IntervalRecord {
    SimTimeNs end_time = 0;           ///< Simulated time at interval end.
    std::uint64_t accesses = 0;       ///< Accesses inside the interval.
    double fast_ratio = 1.0;          ///< Ground-truth fast-tier ratio.
    std::uint64_t promoted = 0;       ///< Pages promoted this interval.
    std::uint64_t demoted = 0;        ///< Pages demoted this interval.
    std::uint64_t exchanges = 0;      ///< Exchange migrations.
    std::uint64_t failed_migrations = 0;  ///< Injected-fault failures.
    bool sampling_blackout = false;   ///< PEBS blackout at interval end.
};

/**
 * One tenant's share of a multi-tenant run (DESIGN.md §13): the
 * engine's end-of-run snapshot of the machine's TenantLedger, so bench
 * harnesses and the CLI report per-tenant outcomes without reaching
 * into the (by then possibly destroyed) machine.
 */
struct TenantSummary {
    std::uint64_t accesses[memsim::kTierCount] = {0, 0};
    double fast_ratio = 1.0;
    std::uint64_t samples = 0;            ///< PEBS samples attributed.
    std::uint64_t promoted = 0;           ///< Includes exchange legs.
    std::uint64_t demoted = 0;            ///< Includes exchange legs.
    std::uint64_t quota_denied = 0;
    std::uint64_t admission_denied = 0;
    std::uint64_t admission_grants = 0;
    std::uint64_t over_quota_allocs = 0;
    std::size_t used_fast = 0;            ///< Fast pages held at exit.
    std::size_t quota = 0;                ///< Fast-tier quota (kNoQuota = none).
};

/** Aggregate outcome of one run. */
struct RunResult {
    SimTimeNs runtime_ns = 0;             ///< Total simulated runtime.
    std::uint64_t accesses = 0;           ///< Accesses executed.
    double fast_ratio = 1.0;              ///< Overall fast-tier ratio.
    memsim::TieredMachine::Counters totals;  ///< Machine counters.
    std::uint64_t pebs_recorded = 0;
    std::uint64_t pebs_dropped = 0;
    std::uint64_t pebs_suppressed = 0;    ///< Samples lost to injected faults.
    std::uint64_t invariant_audits = 0;   ///< Audits run (check_invariants).
    std::vector<IntervalRecord> timeline; ///< If record_timeline.
    /** Per-tenant outcomes; empty unless the run was multi-tenant. */
    std::vector<TenantSummary> tenants;
    /** The run's collectors (null unless EngineConfig::telemetry.any()). */
    std::shared_ptr<telemetry::Telemetry> telemetry;

    /** Runtime in seconds. */
    double seconds() const
    {
        return static_cast<double>(runtime_ns) * 1e-9;
    }

    /** Migrated volume in GiB for a given page size. */
    double
    migrated_gib(Bytes page_size) const
    {
        return static_cast<double>(totals.migrated_pages()) *
               static_cast<double>(page_size) / (1ull << 30);
    }
};

/**
 * Run @p gen to completion under @p policy on @p machine.
 * The machine must be freshly constructed (time 0) and sized to hold
 * the generator's footprint.
 */
RunResult run_simulation(workloads::AccessGenerator& gen,
                         policies::Policy& policy,
                         memsim::TieredMachine& machine,
                         const EngineConfig& config);

}  // namespace artmem::sim

#endif  // ARTMEM_SIM_ENGINE_HPP
