#include "sim/experiment.hpp"

#include "util/logging.hpp"

namespace artmem::sim {

std::vector<RatioSpec>
paper_ratios()
{
    return {{2, 1}, {1, 1}, {1, 2}, {1, 4}, {1, 8}, {1, 16}};
}

memsim::MachineConfig
make_machine_config(Bytes footprint, Bytes fast_bytes, Bytes page_size)
{
    if (footprint == 0)
        fatal("make_machine_config: footprint must be positive");
    memsim::MachineConfig config;
    config.page_size = page_size;
    const Bytes aligned =
        (footprint + page_size - 1) / page_size * page_size;
    config.address_space = aligned;
    // At least one fast page so the model stays two-tiered.
    config.tiers[0].capacity =
        std::max<Bytes>(page_size, fast_bytes / page_size * page_size);
    // The slow tier can always absorb the whole footprint (512 GB PM in
    // the paper's testbed vs <= 290 GB footprints).
    config.tiers[1].capacity = aligned + page_size;
    return config;
}

memsim::MachineConfig
make_machine_config(Bytes footprint, const RatioSpec& ratio, Bytes page_size)
{
    const auto fast_bytes = static_cast<Bytes>(
        static_cast<double>(footprint) * ratio.fast_fraction());
    return make_machine_config(footprint, fast_bytes, page_size);
}

memsim::TxConfig
parse_tx_cli(const CliArgs& args)
{
    memsim::TxConfig tx;
    tx.enabled = args.get_bool("tx-migration", false);
    static constexpr std::string_view kKnown[] = {
        "tx-migration", "tx-seed", "tx-write-ratio", "tx-max-inflight",
        "tx-exclusive"};
    for (const auto& name : args.flag_names()) {
        if (name.rfind("tx-", 0) != 0)
            continue;
        bool known = false;
        for (const auto k : kKnown)
            known = known || name == k;
        if (!known) {
            fatal("unknown transactional-migration flag --", name,
                  " (known: --tx-migration --tx-seed --tx-write-ratio "
                  "--tx-max-inflight --tx-exclusive)");
        }
        if (!tx.enabled && name != "tx-migration")
            fatal("--", name, " requires --tx-migration");
    }
    if (!tx.enabled)
        return tx;
    tx.seed = static_cast<std::uint64_t>(
        args.get_int("tx-seed", static_cast<long long>(tx.seed)));
    tx.write_ratio = args.get_double("tx-write-ratio", tx.write_ratio);
    tx.max_inflight = static_cast<std::size_t>(args.get_int(
        "tx-max-inflight", static_cast<long long>(tx.max_inflight)));
    tx.non_exclusive = !args.get_bool("tx-exclusive", false);
    tx.validate();
    return tx;
}

RunResult
run_experiment(const RunSpec& spec)
{
    auto policy = make_policy(spec.policy, spec.seed);
    return run_experiment(spec, *policy);
}

RunResult
run_experiment(const RunSpec& spec, policies::Policy& policy)
{
    const Bytes page_size = 2ull << 20;
    spec.tenancy.validate();
    // Multi-tenant runs interleave N per-tenant generators; the plain
    // path below is untouched at tenants <= 1 (scripts/ci.sh diffs
    // --tenants=1 against the seed goldens).
    std::unique_ptr<tenancy::TenantSet> set;
    std::unique_ptr<workloads::AccessGenerator> gen;
    if (spec.tenancy.enabled()) {
        set = tenancy::make_tenant_set(spec.tenancy, spec.workload,
                                       page_size, spec.accesses, spec.seed);
    } else {
        gen = workloads::make_workload(spec.workload, page_size,
                                       spec.accesses, spec.seed);
    }
    workloads::AccessGenerator& workload = set != nullptr ? *set : *gen;
    auto machine_config =
        make_machine_config(workload.footprint(), spec.ratio, page_size);
    memsim::TieredMachine machine(machine_config);
    if (set != nullptr) {
        machine.install_tenants(tenancy::make_tenant_ledger(
            spec.tenancy, *set, machine.page_count(),
            machine_config.fast_capacity_pages()));
    }
    sim::EngineConfig engine = spec.engine;
    if (engine.shards > 0 && engine.shard_seed == 0)
        engine.shard_seed = spec.seed;
    return run_simulation(workload, policy, machine, engine);
}

}  // namespace artmem::sim
