/**
 * @file
 * Name-based policy factory: maps the system names used throughout the
 * paper's figures to configured Policy instances.
 */
#ifndef ARTMEM_SIM_REGISTRY_HPP
#define ARTMEM_SIM_REGISTRY_HPP

#include <memory>
#include <string_view>
#include <vector>

#include "core/artmem.hpp"
#include "policies/policy.hpp"

namespace artmem::sim {

/** All policy names, baselines first, ArtMem last. */
std::vector<std::string_view> policy_names();

/** The seven baseline systems of Table 1 (no static, no artmem). */
std::vector<std::string_view> baseline_names();

/**
 * Build a policy by name with default configuration: "static",
 * "autonuma", "tpp", "autotiering", "nimble", "multiclock", "memtis",
 * "tiering08", or "artmem". fatal() on unknown names.
 *
 * @param seed Seed for stochastic policies (ArtMem's exploration).
 */
std::unique_ptr<policies::Policy> make_policy(std::string_view name,
                                              std::uint64_t seed = 42);

/** Build an ArtMem instance with an explicit configuration. */
std::unique_ptr<core::ArtMem> make_artmem(const core::ArtMemConfig& config);

}  // namespace artmem::sim

#endif  // ARTMEM_SIM_REGISTRY_HPP
