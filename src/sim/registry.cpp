#include "sim/registry.hpp"

#include "policies/autonuma.hpp"
#include "policies/autotiering.hpp"
#include "policies/memtis.hpp"
#include "policies/multiclock.hpp"
#include "policies/nimble.hpp"
#include "policies/static_tiering.hpp"
#include "policies/tiering08.hpp"
#include "policies/tpp.hpp"
#include "util/logging.hpp"

namespace artmem::sim {

std::vector<std::string_view>
policy_names()
{
    return {"static",     "autonuma",   "tpp",    "autotiering", "nimble",
            "multiclock", "memtis",     "tiering08", "artmem"};
}

std::vector<std::string_view>
baseline_names()
{
    return {"memtis",     "autotiering", "tpp",      "autonuma",
            "multiclock", "nimble",      "tiering08"};
}

std::unique_ptr<policies::Policy>
make_policy(std::string_view name, std::uint64_t seed)
{
    using namespace policies;
    if (name == "static")
        return std::make_unique<StaticTiering>();
    if (name == "autonuma")
        return std::make_unique<AutoNuma>();
    if (name == "tpp")
        return std::make_unique<Tpp>();
    if (name == "autotiering")
        return std::make_unique<AutoTiering>();
    if (name == "nimble")
        return std::make_unique<Nimble>();
    if (name == "multiclock")
        return std::make_unique<MultiClock>();
    if (name == "memtis")
        return std::make_unique<Memtis>();
    if (name == "tiering08")
        return std::make_unique<Tiering08>();
    if (name == "artmem") {
        core::ArtMemConfig config;
        config.seed = seed;
        return std::make_unique<core::ArtMem>(config);
    }
    fatal("make_policy: unknown policy '", std::string(name), "'");
}

std::unique_ptr<core::ArtMem>
make_artmem(const core::ArtMemConfig& config)
{
    return std::make_unique<core::ArtMem>(config);
}

}  // namespace artmem::sim
