/**
 * @file
 * Experiment plumbing shared by the bench harnesses: the paper's
 * DRAM:PM memory-ratio ladder, machine sizing from a workload
 * footprint, and a one-call "run workload X under policy Y at ratio Z"
 * helper.
 */
#ifndef ARTMEM_SIM_EXPERIMENT_HPP
#define ARTMEM_SIM_EXPERIMENT_HPP

#include <memory>
#include <string>
#include <string_view>

#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "tenancy/tenancy.hpp"
#include "util/cli.hpp"
#include "workloads/factory.hpp"

namespace artmem::sim {

/** One fast:slow capacity ratio (paper: 2:1 ... 1:16). */
struct RatioSpec {
    int fast = 1;
    int slow = 1;

    /** "2:1"-style label. */
    std::string label() const
    {
        return std::to_string(fast) + ":" + std::to_string(slow);
    }

    /** Fast-tier fraction of the footprint. */
    double fast_fraction() const
    {
        return static_cast<double>(fast) / static_cast<double>(fast + slow);
    }
};

/** The six ratios of the paper's evaluation (Section 6.1). */
std::vector<RatioSpec> paper_ratios();

/**
 * Size a machine for @p footprint with @p fast_bytes of fast tier.
 * The slow tier always gets enough capacity to hold the entire
 * footprint (as PM does in the testbed), plus paper Table 2 latencies
 * and bandwidths unless overridden afterwards.
 */
memsim::MachineConfig make_machine_config(Bytes footprint, Bytes fast_bytes,
                                          Bytes page_size = 2ull << 20);

/** Size a machine from a ratio: fast = footprint * fast/(fast+slow). */
memsim::MachineConfig make_machine_config(Bytes footprint,
                                          const RatioSpec& ratio,
                                          Bytes page_size = 2ull << 20);

/** Everything needed for one run. */
struct RunSpec {
    std::string workload;           ///< Factory workload name.
    std::string policy;             ///< Registry policy name.
    RatioSpec ratio{1, 1};          ///< DRAM:PM capacity ratio.
    std::uint64_t accesses = 8000000;
    std::uint64_t seed = 42;
    EngineConfig engine;            ///< Cadence / instrumentation.
    /**
     * Multi-tenant serving shape (DESIGN.md §13). Inert at the default
     * tenants=1: the run takes the plain single-tenant path and is
     * byte-identical to one without the subsystem. With tenants > 1 the
     * workload name becomes the base of the tenant mix, `accesses` is
     * the aggregate budget split evenly across tenants, and the machine
     * gets a TenantLedger with the configured quotas and admission
     * controller installed.
     */
    tenancy::TenancyConfig tenancy;
};

/**
 * Parse the transactional-migration flags shared by the CLI and the
 * bench harnesses: --tx-migration plus the --tx-seed, --tx-write-ratio,
 * --tx-max-inflight and --tx-exclusive knobs. Validation is strict:
 * CliArgs keeps unknown flags, so any other "--tx-"-prefixed flag is a
 * typo and fatal()s, as does a tx knob given without --tx-migration.
 */
memsim::TxConfig parse_tx_cli(const CliArgs& args);

/** Run one fully specified experiment (constructs everything). */
RunResult run_experiment(const RunSpec& spec);

/**
 * Run with a caller-provided policy instance (e.g. a custom-configured
 * ArtMem) instead of a registry name.
 */
RunResult run_experiment(const RunSpec& spec, policies::Policy& policy);

}  // namespace artmem::sim

#endif  // ARTMEM_SIM_EXPERIMENT_HPP
