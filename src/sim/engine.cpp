#include "sim/engine.hpp"

#include "util/logging.hpp"

#if ARTMEM_CHECK_INVARIANTS
#include "verify/invariant_checker.hpp"
#endif

namespace artmem::sim {

RunResult
run_simulation(workloads::AccessGenerator& gen, policies::Policy& policy,
               memsim::TieredMachine& machine, const EngineConfig& config)
{
    if (machine.now() != 0)
        fatal("run_simulation: machine must be freshly constructed");
    const Bytes needed = gen.footprint();
    if (machine.page_count() * machine.page_size() < needed)
        fatal("run_simulation: machine address space smaller than the ",
              "workload footprint");

    if (config.prefault) {
        machine.prefault_range(
            0, static_cast<std::size_t>(
                   (needed + machine.page_size() - 1) / machine.page_size()));
    }
    machine.install_faults(config.faults);
    memsim::FaultInjector* faults = machine.fault_injector();
    policy.init(machine);
    memsim::PebsSampler sampler(config.pebs);
    std::uint64_t pebs_suppressed = 0;

#if ARTMEM_CHECK_INVARIANTS
    verify::InvariantChecker checker;
    const bool check_invariants = config.check_invariants;
#else
    const bool check_invariants = false;
    if (config.check_invariants) {
        warn("run_simulation: check_invariants requested but this binary ",
             "was built with ARTMEM_CHECK_INVARIANTS=OFF; auditing skipped");
    }
#endif

    std::vector<PageId> batch(config.batch_size);
    std::vector<memsim::PebsSample> drained;
    drained.reserve(4096);

    SimTimeNs next_tick = config.tick_interval;
    SimTimeNs next_decision = config.decision_interval;

    RunResult result;
    IntervalRecord interval;
    std::uint64_t interval_start_accesses = 0;

    auto flush_tick = [&]() {
        drained.clear();
        sampler.drain(drained, static_cast<std::size_t>(-1));
        if (!drained.empty())
            policy.on_samples(drained);
        policy.on_tick(machine.now());
    };

    auto flush_decision = [&]() {
        policy.on_interval(machine.now());
        const auto window = machine.take_window();
        if (config.record_timeline) {
            interval.end_time = machine.now();
            interval.accesses = result.accesses - interval_start_accesses;
            interval.fast_ratio = window.fast_ratio();
            interval.promoted = window.promoted_pages;
            interval.demoted = window.demoted_pages;
            interval.exchanges = window.exchanges;
            interval.failed_migrations = window.migration_failures();
            interval.sampling_blackout =
                faults != nullptr &&
                faults->sampling_blackout(machine.now());
            result.timeline.push_back(interval);
        }
        interval_start_accesses = result.accesses;
#if ARTMEM_CHECK_INVARIANTS
        if (check_invariants) {
            checker.audit(machine, policy, pebs_suppressed);
            result.invariant_audits = checker.audits();
        }
#else
        (void)check_invariants;
#endif
    };

    while (true) {
        const std::size_t n = gen.fill(batch);
        if (n == 0)
            break;
        if (faults == nullptr) {
            for (std::size_t i = 0; i < n; ++i) {
                const memsim::Tier tier = machine.access(batch[i]);
                sampler.observe(batch[i], tier);
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const memsim::Tier tier = machine.access(batch[i]);
                if (faults->sample_suppressed(machine.now())) [[unlikely]]
                    ++pebs_suppressed;
                else
                    sampler.observe(batch[i], tier);
            }
        }
        result.accesses += n;
        // Periodic threads sleep relative to when they finish their
        // work: if a pass itself advanced simulated time past several
        // periods (e.g. a heavy migration burst), the next pass still
        // happens one period later, it does not "catch up". This also
        // guarantees engine progress when a policy migrates aggressively.
        if (machine.now() >= next_tick) {
            flush_tick();
            next_tick = machine.now() + config.tick_interval;
        }
        if (machine.now() >= next_decision) {
            flush_decision();
            next_decision = machine.now() + config.decision_interval;
        }
    }

    // Final partial tick/interval so trailing work is accounted.
    flush_tick();
    flush_decision();

    result.runtime_ns = machine.now();
    result.totals = machine.totals();
    result.fast_ratio = result.totals.fast_ratio();
    result.pebs_recorded = sampler.recorded();
    result.pebs_dropped = sampler.dropped();
    result.pebs_suppressed = pebs_suppressed;
    return result;
}

}  // namespace artmem::sim
