#include "sim/engine.hpp"

#include "memsim/sharded_access.hpp"
#include "util/logging.hpp"

#if ARTMEM_CHECK_INVARIANTS
#include "verify/invariant_checker.hpp"
#endif

namespace artmem::sim {

RunResult
run_simulation(workloads::AccessGenerator& gen, policies::Policy& policy,
               memsim::TieredMachine& machine, const EngineConfig& config)
{
    if (machine.now() != 0)
        fatal("run_simulation: machine must be freshly constructed");
    const Bytes needed = gen.footprint();
    if (machine.page_count() * machine.page_size() < needed)
        fatal("run_simulation: machine address space smaller than the ",
              "workload footprint");

    if (config.prefault) {
        machine.prefault_range(
            0, static_cast<std::size_t>(
                   (needed + machine.page_size() - 1) / machine.page_size()));
    }
    machine.install_faults(config.faults);
    memsim::FaultInjector* faults = machine.fault_injector();
    machine.install_tx(config.tx);

    // Per-run telemetry bundle; every cached pointer below stays null
    // when the corresponding collector is off, so instrumentation
    // sites reduce to one branch on a null pointer.
    std::shared_ptr<telemetry::Telemetry> telem;
    telemetry::TraceSink* trace_engine = nullptr;
    telemetry::TraceSink* sink = nullptr;
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::PhaseProfiler* profiler = nullptr;
    if (config.telemetry.any()) {
        telem = std::make_shared<telemetry::Telemetry>(config.telemetry);
        machine.set_telemetry(telem.get());
        policy.set_telemetry(telem.get());
        trace_engine = telem->trace(telemetry::Category::kEngine);
        sink = telem->sink();
        metrics = telem->metrics();
        profiler = telem->profiler();
    }
    telemetry::MetricsRegistry::Id ctr_ticks = 0;
    telemetry::MetricsRegistry::Id ctr_decisions = 0;
    telemetry::MetricsRegistry::Id ctr_drained = 0;
    telemetry::MetricsRegistry::Id hist_drain = 0;
    telemetry::MetricsRegistry::Id gauge_fast = 0;
    if (metrics != nullptr) {
        ctr_ticks = metrics->counter("engine.ticks");
        ctr_decisions = metrics->counter("engine.decisions");
        ctr_drained = metrics->counter("pebs.drained");
        hist_drain = metrics->histogram(
            "pebs.drain_batch", {0.0, 64.0, 256.0, 1024.0, 4096.0});
        gauge_fast = metrics->gauge("engine.fast_ratio");
    }

    policy.init(machine);
    if (machine.tx_enabled()) {
        machine.set_tx_handler([&policy](PageId page, memsim::Tier src,
                                         memsim::Tier dst, bool committed) {
            policy.on_tx_resolved(page, src, dst, committed);
        });
    }
    memsim::PebsSampler sampler(config.pebs);
    std::uint64_t pebs_suppressed = 0;

    // Sharded access pipeline (config.shards >= 1). Constructed once so
    // its lanes and worker pool persist across batches; null on the
    // legacy path. Byte-identical output either way — the sharded walk
    // replays the exact batch-loop sequence (memsim/sharded_access.hpp).
    std::unique_ptr<memsim::ShardedAccessEngine> sharded;
    if (config.shards > 0) {
        sharded = std::make_unique<memsim::ShardedAccessEngine>(
            machine, memsim::ShardedAccessEngine::Config{
                         config.shards, config.shard_seed,
                         config.check_invariants, config.parallel_merge,
                         config.lane_delay_hook});
    }

#if ARTMEM_CHECK_INVARIANTS
    verify::InvariantChecker checker;
    const bool check_invariants = config.check_invariants;
#else
    const bool check_invariants = false;
    if (config.check_invariants) {
        warn("run_simulation: check_invariants requested but this binary ",
             "was built with ARTMEM_CHECK_INVARIANTS=OFF; auditing skipped");
    }
#endif

    std::vector<PageId> batch(config.batch_size);
    std::vector<memsim::PebsSample> drained;
    drained.reserve(4096);

    SimTimeNs next_tick = config.tick_interval;
    SimTimeNs next_decision = config.decision_interval;

    RunResult result;
    IntervalRecord interval;
    std::uint64_t interval_start_accesses = 0;

    auto flush_tick = [&]() {
        // Publish the per-shard sampler streams into the ring in global
        // access order BEFORE draining, so the ring's cumulative push
        // sequence at this drain point matches the serial path's
        // (identical records and identical full-buffer drops).
        if (sharded != nullptr) {
            telemetry::PhaseTimer merge_timer(
                profiler, telemetry::Phase::kShardMerge);
            sharded->merge_boundary(sampler);
        }
        telemetry::PhaseTimer timer(profiler, telemetry::Phase::kTick);
        if (sink != nullptr)
            sink->set_sim_time(machine.now());
        const SimTimeNs tick_start = machine.now();
        drained.clear();
        sampler.drain(drained, static_cast<std::size_t>(-1));
        if (!drained.empty()) {
            // Per-tenant PEBS attribution rides the same drain the
            // policy sees, so a tenant's sample count is exactly its
            // share of the policy's evidence (DESIGN.md §13).
            if (auto* ledger = machine.tenants(); ledger != nullptr) {
                for (const auto& sample : drained)
                    ledger->note_sample(sample.page);
            }
            policy.on_samples(drained);
        }
        policy.on_tick(machine.now());
        if (metrics != nullptr) {
            metrics->add(ctr_ticks);
            metrics->add(ctr_drained, drained.size());
            metrics->observe(hist_drain,
                             static_cast<double>(drained.size()));
        }
        if (trace_engine != nullptr) {
            trace_engine->complete(
                telemetry::Category::kEngine, "tick", tick_start,
                machine.now() - tick_start,
                telemetry::Args()
                    .add("drained",
                         static_cast<std::uint64_t>(drained.size()))
                    .str());
        }
    };

    auto flush_decision = [&]() {
        // Decision-boundary shard merge: flush pending per-shard sampler
        // records (so the audit below sees a merged stream) and splice
        // the per-shard LRU segments into the merged recency view.
        if (sharded != nullptr) {
            telemetry::PhaseTimer merge_timer(
                profiler, telemetry::Phase::kShardMerge);
            sharded->merge_boundary(sampler);
            sharded->splice_recency();
        }
        if (sink != nullptr)
            sink->set_sim_time(machine.now());
        const SimTimeNs decision_start = machine.now();
        // Commit due transactions (and deliver their resolutions) before
        // the policy reasons about residency; a no-op when tx is off.
        machine.poll_tx();
        {
            telemetry::PhaseTimer timer(profiler,
                                        telemetry::Phase::kDecision);
            policy.on_interval(machine.now());
        }
        // Feed the closing decision window to the admission controller
        // and roll the ledger's per-tenant snapshot in the same breath
        // as the machine window, so both observe identical boundaries.
        if (auto* ledger = machine.tenants(); ledger != nullptr)
            ledger->interval_feedback();
        const auto window = machine.take_window();
        // One IntervalRecord per interval, consumed by both the
        // timeline (Figures 12/17) and the kEngine "decision" trace
        // event — a single observation, two serializations.
        interval.end_time = machine.now();
        interval.accesses = result.accesses - interval_start_accesses;
        interval.fast_ratio = window.fast_ratio();
        interval.promoted = window.promoted_pages;
        interval.demoted = window.demoted_pages;
        interval.exchanges = window.exchanges;
        interval.failed_migrations = window.migration_failures();
        interval.sampling_blackout =
            faults != nullptr && faults->sampling_blackout(machine.now());
        if (config.record_timeline)
            result.timeline.push_back(interval);
        if (metrics != nullptr) {
            metrics->add(ctr_decisions);
            metrics->set(gauge_fast, interval.fast_ratio);
        }
        if (trace_engine != nullptr) {
            trace_engine->complete(
                telemetry::Category::kEngine, "decision", decision_start,
                machine.now() - decision_start,
                telemetry::Args()
                    .add("accesses", interval.accesses)
                    .add("fast_ratio", interval.fast_ratio)
                    .add("promoted", interval.promoted)
                    .add("demoted", interval.demoted)
                    .add("exchanges", interval.exchanges)
                    .add("failed", interval.failed_migrations)
                    .add("blackout",
                         interval.sampling_blackout ? "yes" : "no")
                    .str());
        }
        interval_start_accesses = result.accesses;
#if ARTMEM_CHECK_INVARIANTS
        if (check_invariants) {
            telemetry::PhaseTimer audit_timer(profiler,
                                              telemetry::Phase::kAudit);
            if (checker.audit(machine, policy, pebs_suppressed,
                              sharded.get()) == 0)
                warn("run_simulation: invariant audit examined no state");
            result.invariant_audits = checker.audits();
        }
#else
        (void)check_invariants;
#endif
    };

    while (true) {
        std::size_t n = 0;
        {
            telemetry::PhaseTimer timer(profiler,
                                        telemetry::Phase::kGenerate);
            n = gen.fill(batch);
        }
        if (n == 0)
            break;
        {
            telemetry::PhaseTimer timer(profiler,
                                        telemetry::Phase::kAccess);
            // One fused dispatch loop per batch; semantically identical
            // to per-access access() + observe() calls (the scalar
            // sequence lives on as the oracle in tests/test_diff_model).
            if (sharded != nullptr) {
                if (faults == nullptr)
                    sharded->process(batch.data(), n, sampler);
                else
                    sharded->process_faulted(batch.data(), n, sampler,
                                             pebs_suppressed);
            } else if (faults == nullptr) {
                machine.access_batch(batch.data(), n, sampler);
            } else {
                machine.access_batch_faulted(batch.data(), n, sampler,
                                             pebs_suppressed);
            }
        }
        result.accesses += n;
        // Periodic threads sleep relative to when they finish their
        // work: if a pass itself advanced simulated time past several
        // periods (e.g. a heavy migration burst), the next pass still
        // happens one period later, it does not "catch up". This also
        // guarantees engine progress when a policy migrates aggressively.
        if (machine.now() >= next_tick) {
            flush_tick();
            next_tick = machine.now() + config.tick_interval;
        }
        if (machine.now() >= next_decision) {
            flush_decision();
            next_decision = machine.now() + config.decision_interval;
        }
    }

    // Final partial tick/interval so trailing work is accounted.
    flush_tick();
    flush_decision();

    result.runtime_ns = machine.now();
    result.totals = machine.totals();
    result.fast_ratio = result.totals.fast_ratio();
    result.pebs_recorded = sampler.recorded();
    result.pebs_dropped = sampler.dropped();
    result.pebs_suppressed = pebs_suppressed;

    if (const auto* ledger = machine.tenants(); ledger != nullptr) {
        result.tenants.resize(ledger->tenant_count());
        for (std::uint32_t t = 0; t < ledger->tenant_count(); ++t) {
            const auto& totals = ledger->totals(t);
            TenantSummary& summary = result.tenants[t];
            summary.accesses[0] = totals.accesses[0];
            summary.accesses[1] = totals.accesses[1];
            summary.fast_ratio = totals.fast_ratio();
            summary.samples = totals.samples;
            summary.promoted = totals.promoted_pages;
            summary.demoted = totals.demoted_pages;
            summary.quota_denied = totals.quota_denied;
            summary.admission_denied = totals.admission_denied;
            summary.admission_grants = totals.admission_grants;
            summary.over_quota_allocs = totals.over_quota_allocs;
            summary.used_fast = ledger->used_pages(t, memsim::Tier::kFast);
            summary.quota = ledger->quota(t);
        }
    }

    if (metrics != nullptr) {
        // Mirror the run's aggregate counters into the registry so a
        // metrics file is self-contained (registration order fixes the
        // emission order).
        const auto mirror = [&](std::string_view mname,
                                std::uint64_t value) {
            metrics->add(metrics->counter(mname), value);
        };
        mirror("engine.accesses", result.accesses);
        mirror("engine.runtime_ns", result.runtime_ns);
        mirror("engine.invariant_audits", result.invariant_audits);
        mirror("machine.accesses_fast", result.totals.accesses[0]);
        mirror("machine.accesses_slow", result.totals.accesses[1]);
        mirror("machine.hint_faults", result.totals.hint_faults);
        mirror("machine.promoted_pages", result.totals.promoted_pages);
        mirror("machine.demoted_pages", result.totals.demoted_pages);
        mirror("machine.exchanges", result.totals.exchanges);
        mirror("machine.failed_no_slot", result.totals.failed_no_slot);
        mirror("machine.failed_pinned", result.totals.failed_pinned);
        mirror("machine.failed_transient", result.totals.failed_transient);
        mirror("machine.failed_contended", result.totals.failed_contended);
        mirror("machine.migration_busy_ns",
               result.totals.migration_busy_ns);
        mirror("machine.overhead_ns", result.totals.overhead_ns);
        mirror("machine.aborted_migration_ns",
               result.totals.aborted_migration_ns);
        if (machine.tx_enabled()) {
            // Transaction counters exist only when the engine is on, so
            // a tx-off metrics file stays byte-identical to the seed.
            mirror("machine.tx_opened", result.totals.tx_opened);
            mirror("machine.tx_committed", result.totals.tx_committed);
            mirror("machine.tx_aborted", result.totals.tx_aborted);
            mirror("machine.tx_retries", result.totals.tx_retries);
            mirror("machine.tx_free_flips", result.totals.tx_free_flips);
            mirror("machine.tx_dual_drops", result.totals.tx_dual_drops);
            mirror("machine.tx_dual_reclaims",
                   result.totals.tx_dual_reclaims);
            mirror("machine.failed_tx_busy", result.totals.failed_tx_busy);
        }
        mirror("pebs.recorded", result.pebs_recorded);
        mirror("pebs.dropped", result.pebs_dropped);
        mirror("pebs.suppressed", result.pebs_suppressed);
        if (machine.tenants_enabled()) {
            // Tenant counters exist only on multi-tenant runs, so a
            // --tenants=1 metrics file stays byte-identical to the seed.
            mirror("machine.failed_quota", result.totals.failed_quota);
            mirror("machine.failed_admission",
                   result.totals.failed_admission);
            for (std::size_t t = 0; t < result.tenants.size(); ++t) {
                const TenantSummary& summary = result.tenants[t];
                const std::string prefix =
                    "tenant." + std::to_string(t) + ".";
                mirror(prefix + "accesses_fast", summary.accesses[0]);
                mirror(prefix + "accesses_slow", summary.accesses[1]);
                mirror(prefix + "samples", summary.samples);
                mirror(prefix + "promoted", summary.promoted);
                mirror(prefix + "demoted", summary.demoted);
                mirror(prefix + "quota_denied", summary.quota_denied);
                mirror(prefix + "admission_denied",
                       summary.admission_denied);
                mirror(prefix + "admission_grants",
                       summary.admission_grants);
            }
        }
    }
    if (telem != nullptr) {
        // Detach before returning: the machine and policy may outlive
        // the bundle's consumers, and a detached run is back on the
        // bare fast path.
        machine.set_telemetry(nullptr);
        policy.set_telemetry(nullptr);
        result.telemetry = std::move(telem);
    }
    return result;
}

}  // namespace artmem::sim
