/**
 * @file
 * Common scalar types shared across the ArtMem reproduction.
 */
#ifndef ARTMEM_UTIL_TYPES_HPP
#define ARTMEM_UTIL_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace artmem {

/** Index of a (huge) page inside a simulated virtual address space. */
using PageId = std::uint32_t;

/** Simulated time in nanoseconds. */
using SimTimeNs = std::uint64_t;

/** Count of bytes. */
using Bytes = std::uint64_t;

/** Sentinel for "no page". */
inline constexpr PageId kInvalidPage = ~PageId{0};

/** Handy byte-size literals. */
inline constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

/** Handy simulated-time literals. */
inline constexpr SimTimeNs operator""_us(unsigned long long v) { return v * 1000ull; }
inline constexpr SimTimeNs operator""_ms(unsigned long long v) { return v * 1000000ull; }
inline constexpr SimTimeNs operator""_s(unsigned long long v) { return v * 1000000000ull; }

}  // namespace artmem

#endif  // ARTMEM_UTIL_TYPES_HPP
