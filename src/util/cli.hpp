/**
 * @file
 * Tiny command-line flag parser shared by the bench harnesses and
 * examples. Supports --name=value and boolean --name forms.
 */
#ifndef ARTMEM_UTIL_CLI_HPP
#define ARTMEM_UTIL_CLI_HPP

#include <map>
#include <string>
#include <vector>

namespace artmem {

/** Parsed command line: flags plus positional arguments. */
class CliArgs
{
  public:
    /** Parse argv; unknown flags are kept (harnesses share flag sets). */
    static CliArgs parse(int argc, char** argv);

    /** True if --name was given (with or without a value). */
    bool has(const std::string& name) const;

    /** String flag with default. */
    std::string get_string(const std::string& name,
                           const std::string& fallback) const;

    /** Integer flag with default; fatal if malformed. */
    long long get_int(const std::string& name, long long fallback) const;

    /** Double flag with default; fatal if malformed. */
    double get_double(const std::string& name, double fallback) const;

    /** Boolean flag: present without value or with true/false. */
    bool get_bool(const std::string& name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** All flag names given, sorted (allowlist validation). */
    std::vector<std::string> flag_names() const;

    /** Program name (argv[0]). */
    const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_CLI_HPP
