/**
 * @file
 * Clang thread-safety (capability) annotation shim.
 *
 * Under Clang the macros expand to the capability attributes consumed
 * by `-Wthread-safety` (promoted to an error by ARTMEM_STRICT), so
 * lock discipline on every concurrent component — the sweep thread
 * pool, the async sampler, progress metering — is checked at compile
 * time. Under GCC (the container toolchain) every macro compiles away
 * to nothing, so the annotated tree builds identically there.
 *
 * Conventions (DESIGN.md §11):
 *  - never declare a raw `std::mutex` member; use `artmem::Mutex`
 *    (util/sync.hpp) so the analysis sees a capability type. The
 *    detlint rule DL005 enforces this mechanically.
 *  - every field touched by more than one thread is either an atomic
 *    or carries ARTMEM_GUARDED_BY(its mutex);
 *  - functions with a locking precondition say so with
 *    ARTMEM_REQUIRES; condition-variable predicates re-assert the
 *    capability with Mutex::assert_held() because lambda bodies do not
 *    inherit the caller's lock set.
 */
#ifndef ARTMEM_UTIL_THREAD_ANNOTATIONS_HPP
#define ARTMEM_UTIL_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && !defined(ARTMEM_NO_THREAD_SAFETY_ANNOTATIONS)
#define ARTMEM_TSA_(x) __attribute__((x))
#else
#define ARTMEM_TSA_(x)  // no-op on GCC and friends
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define ARTMEM_CAPABILITY(x) ARTMEM_TSA_(capability(x))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction (MutexLock). */
#define ARTMEM_SCOPED_CAPABILITY ARTMEM_TSA_(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define ARTMEM_GUARDED_BY(x) ARTMEM_TSA_(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define ARTMEM_PT_GUARDED_BY(x) ARTMEM_TSA_(pt_guarded_by(x))

/** Function precondition: the listed capabilities are held. */
#define ARTMEM_REQUIRES(...) ARTMEM_TSA_(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define ARTMEM_ACQUIRE(...) ARTMEM_TSA_(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define ARTMEM_RELEASE(...) ARTMEM_TSA_(release_capability(__VA_ARGS__))

/** Function tries to acquire; first argument is the success value. */
#define ARTMEM_TRY_ACQUIRE(...) \
    ARTMEM_TSA_(try_acquire_capability(__VA_ARGS__))

/** Function must be called with the capabilities NOT held. */
#define ARTMEM_EXCLUDES(...) ARTMEM_TSA_(locks_excluded(__VA_ARGS__))

/** Tells the analysis the capability is held (runtime-checked facts,
 *  condition-variable predicates). */
#define ARTMEM_ASSERT_CAPABILITY(x) ARTMEM_TSA_(assert_capability(x))

/** Function returns a reference to the named capability. */
#define ARTMEM_RETURN_CAPABILITY(x) ARTMEM_TSA_(lock_returned(x))

/** Opt a function out of the analysis (initialization/teardown paths
 *  whose exclusivity the analysis cannot see). Use sparingly; every
 *  use needs a comment saying why the exclusion is sound. */
#define ARTMEM_NO_THREAD_SAFETY_ANALYSIS \
    ARTMEM_TSA_(no_thread_safety_analysis)

#endif  // ARTMEM_UTIL_THREAD_ANNOTATIONS_HPP
