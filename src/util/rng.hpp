/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the reproduction (workload generators,
 * epsilon-greedy exploration) draws from an explicitly seeded Rng so that
 * experiments are reproducible bit-for-bit. The generator is
 * xoshiro256** seeded through SplitMix64, which is both fast enough for
 * the access-generation hot loop and statistically strong.
 */
#ifndef ARTMEM_UTIL_RNG_HPP
#define ARTMEM_UTIL_RNG_HPP

#include <cstdint>

namespace artmem {

/** SplitMix64 step; used for seeding and as a cheap hash. */
std::uint64_t splitmix64(std::uint64_t& state);

/**
 * Seed for job @p index of a sweep with @p base_seed.
 *
 * A pure function of (base_seed, index) — never of grid shape,
 * scheduling order, or worker count — so every job in a parallel sweep
 * draws from the same RNG stream it would get in a serial run. Two
 * SplitMix64 steps decorrelate neighbouring indices.
 */
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be fed
 * to <random> distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Reseed in place. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli draw with probability p. */
    bool next_bool(double p);

    /** Fork a statistically independent child generator. */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_RNG_HPP
