/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the reproduction (workload generators,
 * epsilon-greedy exploration) draws from an explicitly seeded Rng so that
 * experiments are reproducible bit-for-bit. The generator is
 * xoshiro256** seeded through SplitMix64, which is both fast enough for
 * the access-generation hot loop and statistically strong.
 */
#ifndef ARTMEM_UTIL_RNG_HPP
#define ARTMEM_UTIL_RNG_HPP

#include <cstdint>

namespace artmem {

/**
 * SplitMix64 step; used for seeding and as a cheap hash.
 *
 * Defined inline: seed derivation and fault-injector draws sit on hot
 * paths, and an out-of-line call per draw measurably costs throughput
 * (DESIGN.md §9).
 */
inline std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Seed for job @p index of a sweep with @p base_seed.
 *
 * A pure function of (base_seed, index) — never of grid shape,
 * scheduling order, or worker count — so every job in a parallel sweep
 * draws from the same RNG stream it would get in a serial run. Two
 * SplitMix64 steps decorrelate neighbouring indices.
 *
 * This two-argument form IS the kJob domain of the namespaced overload
 * below, frozen exactly as-is because sweep goldens (EXPERIMENTS.md)
 * bake in its values.
 */
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

/**
 * Derivation namespace for nested parallelism (DESIGN.md §12).
 *
 * A sweep derives per-job seeds, and a sharded run derives per-shard
 * streams from its job seed. Without namespacing, "job 3 of the sweep"
 * and "shard 3 of a run" would collide whenever a run seed equals the
 * sweep base seed (e.g. job 0 with --derive-seeds off). Each domain
 * salts the derivation so the index spaces cannot overlap.
 *
 * The enum values are the salts. kJob is 0 and is special-cased to the
 * legacy two-argument formula so every existing sweep golden stays
 * byte-identical; new domains must use large odd constants.
 */
enum class SeedDomain : std::uint64_t {
    kJob = 0,                          ///< Sweep jobs (legacy stream).
    kShard = 0x9d5c7f2b3a61e845ull,    ///< In-run shard lanes.
    kTenant = 0xc2b2ae3d27d4eb4full,   ///< Per-tenant workload streams.
};

/**
 * Seed for @p index within @p domain, derived from @p base_seed.
 * derive_seed(b, SeedDomain::kJob, i) == derive_seed(b, i) exactly;
 * any other domain yields a stream disjoint from the job stream
 * (tests/test_sharded.cpp proves job 3 and shard 3 never collide).
 */
std::uint64_t derive_seed(std::uint64_t base_seed, SeedDomain domain,
                          std::uint64_t index);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be fed
 * to <random> distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Reseed in place. */
    void seed(std::uint64_t seed);

    /**
     * Next raw 64-bit value. Inline: workload generation draws one to
     * three values per simulated access, making this the single
     * most-executed function in the simulator (DESIGN.md §9).
     */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl_(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl_(s_[3], 45);
        return result;
    }

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        if (bound == 0)
            panic_bound_zero();
        // The slight modulo bias is irrelevant for simulation workloads
        // (bound << 2^64). __int128 is a GCC/Clang extension;
        // __extension__ keeps -Wpedantic quiet about it.
        __extension__ typedef unsigned __int128 uint128;
        return static_cast<std::uint64_t>(
            (static_cast<uint128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool next_bool(double p) { return next_double() < p; }

    /** Fork a statistically independent child generator. */
    Rng fork();

  private:
    static std::uint64_t
    rotl_(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Out-of-line panic keeps the inline fast path tiny. */
    [[noreturn]] static void panic_bound_zero();

    std::uint64_t s_[4];
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_RNG_HPP
