#include "util/logging.hpp"

namespace artmem {

namespace {

LogLevel g_level = LogLevel::kInfo;

}  // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
emit(std::string_view tag, std::string_view msg)
{
    std::cerr << "[" << tag << "] " << msg << "\n";
}

}  // namespace detail

}  // namespace artmem
