#include "util/rng.hpp"

#include "util/logging.hpp"

namespace artmem {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
derive_seed(std::uint64_t base_seed, std::uint64_t index)
{
    std::uint64_t state = base_seed;
    state = splitmix64(state) ^ index;
    return splitmix64(state);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto& s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::next_below called with bound 0");
    // Lemire multiply-shift; the slight modulo bias is irrelevant for
    // simulation workloads (bound << 2^64). __int128 is a GCC/Clang
    // extension; __extension__ keeps -Wpedantic quiet about it.
    __extension__ typedef unsigned __int128 uint128;
    return static_cast<std::uint64_t>(
        (static_cast<uint128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::next_range(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::next_range: lo > hi");
    return lo + next_below(hi - lo + 1);
}

double
Rng::next_double()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

}  // namespace artmem
