#include "util/rng.hpp"

#include "util/logging.hpp"

namespace artmem {

std::uint64_t
derive_seed(std::uint64_t base_seed, std::uint64_t index)
{
    std::uint64_t state = base_seed;
    state = splitmix64(state) ^ index;
    return splitmix64(state);
}

std::uint64_t
derive_seed(std::uint64_t base_seed, SeedDomain domain, std::uint64_t index)
{
    // kJob must reduce to the legacy formula bit-for-bit: sweep goldens
    // (and the --jobs 1 vs --jobs 4 CI diff) pin those values.
    if (domain == SeedDomain::kJob)
        return derive_seed(base_seed, index);
    return derive_seed(base_seed ^ static_cast<std::uint64_t>(domain),
                       index);
}

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto& s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next_range(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::next_range: lo > hi");
    return lo + next_below(hi - lo + 1);
}

void
Rng::panic_bound_zero()
{
    panic("Rng::next_below called with bound 0");
}

Rng
Rng::fork()
{
    return Rng(next());
}

}  // namespace artmem
