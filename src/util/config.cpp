#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace artmem {

namespace {

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

}  // namespace

KvConfig
KvConfig::parse(std::string_view text)
{
    KvConfig cfg;
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= text.size()) {
        ++line_no;
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        const std::size_t hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;
        const std::size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            fatal("KvConfig: missing '=' on line ", line_no, ": ", stripped);
        std::string key = trim(std::string_view(stripped).substr(0, eq));
        std::string value = trim(std::string_view(stripped).substr(eq + 1));
        if (key.empty())
            fatal("KvConfig: empty key on line ", line_no);
        cfg.set(std::move(key), std::move(value));
        if (pos > text.size())
            break;
    }
    return cfg;
}

KvConfig
KvConfig::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("KvConfig: cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

void
KvConfig::set(std::string key, std::string value)
{
    values_[std::move(key)] = std::move(value);
}

bool
KvConfig::has(const std::string& key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string>
KvConfig::get(const std::string& key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
KvConfig::get_string(const std::string& key, const std::string& fallback) const
{
    auto v = get(key);
    return v ? *v : fallback;
}

long long
KvConfig::get_int(const std::string& key, long long fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    char* end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        fatal("KvConfig: key '", key, "' is not an integer: ", *v);
    return parsed;
}

double
KvConfig::get_double(const std::string& key, double fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        fatal("KvConfig: key '", key, "' is not a number: ", *v);
    return parsed;
}

std::vector<std::string>
KvConfig::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_)
        out.push_back(key);
    return out;
}

bool
KvConfig::get_bool(const std::string& key, bool fallback) const
{
    auto v = get(key);
    if (!v)
        return fallback;
    std::string lower = *v;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "true" || lower == "1" || lower == "yes")
        return true;
    if (lower == "false" || lower == "0" || lower == "no")
        return false;
    fatal("KvConfig: key '", key, "' is not a boolean: ", *v);
}

}  // namespace artmem
