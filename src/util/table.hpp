/**
 * @file
 * Aligned text-table printer used by the bench harnesses to emit the
 * rows/series of each paper table and figure, plus CSV output for
 * downstream plotting.
 */
#ifndef ARTMEM_UTIL_TABLE_HPP
#define ARTMEM_UTIL_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace artmem {

/** Collects rows of string cells and prints them column-aligned. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header width. */
    void add_row(std::vector<std::string> cells);

    /** Begin building a row cell-by-cell. */
    Table& row();

    /** Append a string cell to the row under construction. */
    Table& cell(std::string value);

    /** Append a numeric cell with fixed precision. */
    Table& cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table& cell(std::uint64_t value);

    /** Number of data rows. */
    std::size_t row_count() const { return rows_.size(); }

    /** Finish the row under construction (print* do this implicitly). */
    void flush();

    /** Column headers. */
    const std::vector<std::string>& headers() const { return headers_; }

    /** Finished data rows; call flush() first if building a row. */
    const std::vector<std::vector<std::string>>& rows() const
    {
        return rows_;
    }

    /** Print aligned with a separator rule under the header. */
    void print(std::ostream& os);

    /** Print as CSV (comma-separated, no quoting of commas needed here). */
    void print_csv(std::ostream& os);

  private:
    void flush_pending();

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool has_pending_ = false;
};

/** Format a double with fixed precision into a string. */
std::string format_fixed(double value, int precision);

}  // namespace artmem

#endif  // ARTMEM_UTIL_TABLE_HPP
