/**
 * @file
 * Small statistics helpers: online mean/variance, Pearson correlation
 * (Figure 3), and geometric means for normalized-performance summaries.
 */
#ifndef ARTMEM_UTIL_STATS_HPP
#define ARTMEM_UTIL_STATS_HPP

#include <cstddef>
#include <span>

namespace artmem {

/** Welford online accumulator for mean and variance. */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation seen (0 if empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation seen (0 if empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats& other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Pearson correlation coefficient of two equally sized samples.
 * Returns 0 when either sample has zero variance or fewer than two points.
 */
double pearson(std::span<const double> x, std::span<const double> y);

/** Arithmetic mean (0 if empty). */
double mean(std::span<const double> xs);

/** Geometric mean; all inputs must be positive (0 if empty). */
double geomean(std::span<const double> xs);

}  // namespace artmem

#endif  // ARTMEM_UTIL_STATS_HPP
