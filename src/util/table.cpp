#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"

namespace artmem {

std::string
format_fixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("Table requires at least one column");
}

void
Table::add_row(std::vector<std::string> cells)
{
    flush_pending();
    if (cells.size() != headers_.size())
        panic("Table row width ", cells.size(), " != header width ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

Table&
Table::row()
{
    flush_pending();
    has_pending_ = true;
    pending_.clear();
    return *this;
}

Table&
Table::cell(std::string value)
{
    if (!has_pending_)
        panic("Table::cell without row()");
    pending_.push_back(std::move(value));
    return *this;
}

Table&
Table::cell(double value, int precision)
{
    return cell(format_fixed(value, precision));
}

Table&
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

void
Table::flush()
{
    flush_pending();
}

void
Table::flush_pending()
{
    if (!has_pending_)
        return;
    has_pending_ = false;
    std::vector<std::string> cells;
    cells.swap(pending_);
    add_row(std::move(cells));
}

void
Table::print(std::ostream& os)
{
    flush_pending();
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& row : rows_)
        emit_row(row);
}

void
Table::print_csv(std::ostream& os)
{
    flush_pending();
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    emit_row(headers_);
    for (const auto& row : rows_)
        emit_row(row);
}

}  // namespace artmem
