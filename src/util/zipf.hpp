/**
 * @file
 * Zipfian distribution sampler.
 *
 * Used by the YCSB-like key-value workload and the skewed-region
 * generators; memory access frequencies typically follow a Zipfian or
 * Pareto distribution (ArtMem paper Section 4.3, citing [8, 10]).
 *
 * The sampler's semantics are the Gray et al. closed form (rank_of()).
 * Because that form costs one libm pow() per draw and workload
 * generation dominates simulator wall time (DESIGN.md §9), construction
 * additionally builds an inverse-CDF boundary table for the hottest
 * ranks: boundary[r] is the bitwise-smallest double u for which the
 * closed form returns a rank > r, found by bisection over the double
 * bit space and verified against the closed form at and around every
 * boundary. A draw that lands inside the table indexes a uniform
 * bucket grid for a start rank and linearly scans at most a couple of
 * boundaries; any other draw (and any table whose verification failed)
 * takes the closed form. Both paths return bit-identical ranks for
 * every representable u — enforced by tests/test_diff_model.cpp, which
 * cross-checks millions of draws.
 */
#ifndef ARTMEM_UTIL_ZIPF_HPP
#define ARTMEM_UTIL_ZIPF_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace artmem {

/**
 * Zipfian sampler over [0, n) with exponent theta, using the
 * Gray et al. "quick and portable" method popularized by YCSB's
 * ZipfianGenerator. Draws are O(1).
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n     Number of items (must be >= 1).
     * @param theta Skew parameter in (0, 1); YCSB default is 0.99.
     */
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw the next item rank; rank 0 is the most popular item. */
    std::uint64_t
    next(Rng& rng)
    {
        const double u = rng.next_double();
        if (!boundaries_.empty() && u < boundaries_.back())
            return rank_from_table(u);
        return rank_of(u);
    }

    /**
     * The reference closed form: the rank the Gray et al. method
     * assigns to unit draw @p u. Public so the differential tests can
     * pit it against the table path.
     */
    std::uint64_t rank_of(double u) const;

    /** Number of items. */
    std::uint64_t item_count() const { return n_; }

    /** Skew exponent. */
    double theta() const { return theta_; }

    /** Ranks covered by the verified fast-path table (0 if disabled). */
    std::size_t table_ranks() const { return boundaries_.size(); }

  private:
    static double zeta(std::uint64_t n, double theta);

    void build_table();

    /**
     * Table lookup for u < boundaries_.back(). The bucket grid gives a
     * start rank; the scan below is correct for any start hint (it
     * walks to the exact upper bound in both directions), so floating
     * rounding in the bucket index cannot change the result — only add
     * a step to the scan.
     */
    std::uint64_t
    rank_from_table(double u) const
    {
        auto b = static_cast<std::size_t>(u * bucket_scale_);
        if (b >= bucket_start_.size())
            b = bucket_start_.size() - 1;
        std::size_t r = bucket_start_[b];
        while (r > 0 && boundaries_[r - 1] > u)
            --r;
        while (r < boundaries_.size() && boundaries_[r] <= u)
            ++r;
        return r;
    }

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
    /** 1.0 + 0.5^theta, the rank-1 cutoff of the closed form. */
    double threshold12_;
    /** boundaries_[r]: smallest u whose closed-form rank exceeds r. */
    std::vector<double> boundaries_;
    /** Per-bucket start rank over a uniform u grid covering the table. */
    std::vector<std::uint16_t> bucket_start_;
    /** Buckets per unit u: bucket_start_.size() / boundaries_.back(). */
    double bucket_scale_ = 0.0;
};

/**
 * A "scrambled" Zipfian: Zipfian ranks hashed across the key space, so
 * the popular items are spread uniformly over the address range, as in
 * YCSB's ScrambledZipfianGenerator.
 */
class ScrambledZipfianGenerator
{
  public:
    ScrambledZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw the next item id in [0, n). */
    std::uint64_t next(Rng& rng);

  private:
    ZipfianGenerator base_;
    std::uint64_t n_;
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_ZIPF_HPP
