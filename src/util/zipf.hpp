/**
 * @file
 * Zipfian distribution sampler.
 *
 * Used by the YCSB-like key-value workload and the skewed-region
 * generators; memory access frequencies typically follow a Zipfian or
 * Pareto distribution (ArtMem paper Section 4.3, citing [8, 10]).
 */
#ifndef ARTMEM_UTIL_ZIPF_HPP
#define ARTMEM_UTIL_ZIPF_HPP

#include <cstdint>

#include "util/rng.hpp"

namespace artmem {

/**
 * Zipfian sampler over [0, n) with exponent theta, using the
 * Gray et al. "quick and portable" method popularized by YCSB's
 * ZipfianGenerator. Draws are O(1).
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n     Number of items (must be >= 1).
     * @param theta Skew parameter in (0, 1); YCSB default is 0.99.
     */
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw the next item rank; rank 0 is the most popular item. */
    std::uint64_t next(Rng& rng);

    /** Number of items. */
    std::uint64_t item_count() const { return n_; }

    /** Skew exponent. */
    double theta() const { return theta_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
};

/**
 * A "scrambled" Zipfian: Zipfian ranks hashed across the key space, so
 * the popular items are spread uniformly over the address range, as in
 * YCSB's ScrambledZipfianGenerator.
 */
class ScrambledZipfianGenerator
{
  public:
    ScrambledZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw the next item id in [0, n). */
    std::uint64_t next(Rng& rng);

  private:
    ZipfianGenerator base_;
    std::uint64_t n_;
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_ZIPF_HPP
