#include "util/cli.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace artmem {

CliArgs
CliArgs::parse(int argc, char** argv)
{
    CliArgs args;
    args.program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.rfind("--", 0) != 0) {
            args.positional_.push_back(std::move(tok));
            continue;
        }
        std::string body = tok.substr(2);
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            // "--name=value" carries a value; a bare "--name" is boolean.
            args.flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else {
            args.flags_[body] = "";
        }
    }
    return args;
}

bool
CliArgs::has(const std::string& name) const
{
    return flags_.count(name) != 0;
}

std::vector<std::string>
CliArgs::flag_names() const
{
    std::vector<std::string> out;
    out.reserve(flags_.size());
    for (const auto& [name, value] : flags_)
        out.push_back(name);
    return out;
}

std::string
CliArgs::get_string(const std::string& name, const std::string& fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

long long
CliArgs::get_int(const std::string& name, long long fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char* end = nullptr;
    const long long parsed = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --", name, " expects an integer, got '", it->second, "'");
    return parsed;
}

double
CliArgs::get_double(const std::string& name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --", name, " expects a number, got '", it->second, "'");
    return parsed;
}

bool
CliArgs::get_bool(const std::string& name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    if (it->second.empty() || it->second == "true" || it->second == "1")
        return true;
    if (it->second == "false" || it->second == "0")
        return false;
    fatal("flag --", name, " expects a boolean, got '", it->second, "'");
}

}  // namespace artmem
