/**
 * @file
 * Minimal logging and error-exit helpers, in the spirit of gem5's
 * inform()/warn()/fatal()/panic() split: fatal() is a user error
 * (bad configuration), panic() is an internal invariant violation.
 */
#ifndef ARTMEM_UTIL_LOGGING_HPP
#define ARTMEM_UTIL_LOGGING_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace artmem {

/** Verbosity levels for inform-style messages. */
enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

/** Global verbosity; benches and examples may raise/lower it. */
LogLevel log_level();

/** Set the global verbosity. */
void set_log_level(LogLevel level);

namespace detail {

void emit(std::string_view tag, std::string_view msg);

template <typename... Args>
std::string
format_args(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

}  // namespace detail

/** Status message for the user; printed at kInfo and above. */
template <typename... Args>
void
inform(Args&&... args)
{
    if (log_level() >= LogLevel::kInfo)
        detail::emit("info", detail::format_args(std::forward<Args>(args)...));
}

/** Debug-level message; printed only at kDebug. */
template <typename... Args>
void
debug(Args&&... args)
{
    if (log_level() >= LogLevel::kDebug)
        detail::emit("debug", detail::format_args(std::forward<Args>(args)...));
}

/** Warn about suspicious but survivable conditions; always printed. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::emit("warn", detail::format_args(std::forward<Args>(args)...));
}

/** Terminate due to a user/configuration error (exit(1)). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::emit("fatal", detail::format_args(std::forward<Args>(args)...));
    std::exit(1);
}

/** Terminate due to an internal bug (abort()). */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::emit("panic", detail::format_args(std::forward<Args>(args)...));
    std::abort();
}

}  // namespace artmem

#endif  // ARTMEM_UTIL_LOGGING_HPP
