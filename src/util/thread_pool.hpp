/**
 * @file
 * Bounded worker pool used by the sweep subsystem (sweep/sweep.hpp).
 *
 * The pool is deliberately minimal: FIFO task queue, a fixed number of
 * workers, and a wait() barrier that rethrows the first task exception.
 * It contains no wall-clock reads and no entropy sources, so code built
 * on it stays clean under scripts/check_lint.sh — determinism has to
 * come from the tasks themselves (each sweep job owns all of its
 * mutable state and writes only its own result slot).
 *
 * Lock discipline is machine-checked: every cross-thread field is
 * ARTMEM_GUARDED_BY(mutex_) and a Clang ARTMEM_STRICT build
 * (-Wthread-safety -Werror) rejects any access outside the lock
 * (DESIGN.md §11).
 */
#ifndef ARTMEM_UTIL_THREAD_POOL_HPP
#define ARTMEM_UTIL_THREAD_POOL_HPP

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace artmem {

/** Fixed-size worker pool with exception-propagating wait(). */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads; 0 means one per hardware thread
     * (std::thread::hardware_concurrency, at least 1).
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers; pending tasks are still executed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads actually running. */
    unsigned worker_count() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p task. Tasks run in FIFO submission order (though
     * completion order depends on scheduling). A throwing task does not
     * kill its worker: the first exception is captured and rethrown by
     * the next wait(); later tasks still run.
     */
    void submit(std::function<void()> task) ARTMEM_EXCLUDES(mutex_);

    /**
     * Block until the queue is empty and no task is in flight, then
     * rethrow the first exception any task raised since the previous
     * wait() (clearing it, so the pool stays usable).
     */
    void wait() ARTMEM_EXCLUDES(mutex_);

  private:
    void worker_loop() ARTMEM_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar work_cv_;  ///< Signals workers: task/stop.
    CondVar idle_cv_;  ///< Signals wait(): all drained.
    std::deque<std::function<void()>> queue_ ARTMEM_GUARDED_BY(mutex_);
    std::size_t in_flight_ ARTMEM_GUARDED_BY(mutex_) = 0;
    bool stopping_ ARTMEM_GUARDED_BY(mutex_) = false;
    std::exception_ptr first_error_ ARTMEM_GUARDED_BY(mutex_);
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_THREAD_POOL_HPP
