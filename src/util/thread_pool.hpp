/**
 * @file
 * Bounded worker pool used by the sweep subsystem (sweep/sweep.hpp).
 *
 * The pool is deliberately minimal: FIFO task queue, a fixed number of
 * workers, and a wait() barrier that rethrows the first task exception.
 * It contains no wall-clock reads and no entropy sources, so code built
 * on it stays clean under scripts/check_lint.sh — determinism has to
 * come from the tasks themselves (each sweep job owns all of its
 * mutable state and writes only its own result slot).
 */
#ifndef ARTMEM_UTIL_THREAD_POOL_HPP
#define ARTMEM_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace artmem {

/** Fixed-size worker pool with exception-propagating wait(). */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads; 0 means one per hardware thread
     * (std::thread::hardware_concurrency, at least 1).
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers; pending tasks are still executed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads actually running. */
    unsigned worker_count() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p task. Tasks run in FIFO submission order (though
     * completion order depends on scheduling). A throwing task does not
     * kill its worker: the first exception is captured and rethrown by
     * the next wait(); later tasks still run.
     */
    void submit(std::function<void()> task);

    /**
     * Block until the queue is empty and no task is in flight, then
     * rethrow the first exception any task raised since the previous
     * wait() (clearing it, so the pool stays usable).
     */
    void wait();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< Signals workers: task/stop.
    std::condition_variable idle_cv_;  ///< Signals wait(): all drained.
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_THREAD_POOL_HPP
