#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace artmem {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ += delta * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
pearson(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size())
        panic("pearson: mismatched sample sizes");
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean requires positive inputs");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace artmem
