/**
 * @file
 * Capability-annotated synchronization primitives.
 *
 * `std::mutex` carries no capability attribute, so Clang's
 * thread-safety analysis cannot track it — GUARDED_BY(a raw
 * std::mutex) is rejected with "not a capability". These thin wrappers
 * give the analysis something to reason about while compiling down to
 * the exact std primitives (no extra state, no extra branches). All
 * concurrent components must use them; detlint rule DL005 flags raw
 * std::mutex declarations anywhere outside this file.
 *
 * Pattern for condition variables: CondVar::wait requires the mutex,
 * and because lambda bodies do not inherit the caller's lock set, a
 * predicate reading guarded fields starts with `mutex.assert_held()`:
 *
 *     MutexLock lock(mutex_);
 *     cv_.wait(mutex_, [this] {
 *         mutex_.assert_held();
 *         return stopping_ || !queue_.empty();
 *     });
 */
#ifndef ARTMEM_UTIL_SYNC_HPP
#define ARTMEM_UTIL_SYNC_HPP

#include <condition_variable>
#include <mutex>  // lint:allow(DL005) the one sanctioned raw-mutex site

#include "util/thread_annotations.hpp"

namespace artmem {

/** Annotated exclusive mutex; wraps std::mutex 1:1. */
class ARTMEM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ARTMEM_ACQUIRE() { mutex_.lock(); }
    void unlock() ARTMEM_RELEASE() { mutex_.unlock(); }
    bool try_lock() ARTMEM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /**
     * Declares to the analysis that this mutex is held — the bridge
     * into contexts the analysis cannot follow (condition-variable
     * predicates, callbacks invoked under the lock). Zero runtime cost.
     */
    void assert_held() const ARTMEM_ASSERT_CAPABILITY(this) {}

  private:
    friend class CondVar;
    std::mutex mutex_;
};

/** RAII scoped lock over Mutex (std::scoped_lock analogue). */
class ARTMEM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) ARTMEM_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() ARTMEM_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/**
 * Condition variable usable with Mutex. Built on
 * std::condition_variable_any, whose wait() takes any BasicLockable —
 * Mutex qualifies — so no std::unique_lock<std::mutex> (and therefore
 * no raw mutex exposure) appears at call sites.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /**
     * Block until @p pred holds; @p mutex must be held on entry and is
     * held again on return (released while blocked, as usual). The
     * predicate runs under the lock — start it with
     * `mutex.assert_held()` if it reads guarded fields.
     */
    template <typename Predicate>
    void
    wait(Mutex& mutex, Predicate pred) ARTMEM_REQUIRES(mutex)
    {
        cv_.wait(mutex, pred);
    }

  private:
    std::condition_variable_any cv_;
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_SYNC_HPP
