#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace artmem {

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && in_flight_ == 0; });
    if (first_error_) {
        auto error = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

}  // namespace artmem
