#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace artmem {

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        MutexLock lock(mutex_);
        idle_cv_.wait(mutex_, [this] {
            mutex_.assert_held();
            return queue_.empty() && in_flight_ == 0;
        });
        error = std::exchange(first_error_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            work_cv_.wait(mutex_, [this] {
                mutex_.assert_held();
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        try {
            task();
        } catch (...) {
            MutexLock lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            MutexLock lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

}  // namespace artmem
