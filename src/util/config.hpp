/**
 * @file
 * Minimal key=value configuration store, in the spirit of MASIM's plain
 * text workload configs. Supports '#' comments, section-free files, and
 * typed getters with defaults.
 */
#ifndef ARTMEM_UTIL_CONFIG_HPP
#define ARTMEM_UTIL_CONFIG_HPP

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace artmem {

/** A flat string-to-string configuration map with typed accessors. */
class KvConfig
{
  public:
    KvConfig() = default;

    /** Parse "key = value" lines (comments with '#'); fatal on syntax error. */
    static KvConfig parse(std::string_view text);

    /** Load and parse a file; fatal if unreadable. */
    static KvConfig load(const std::string& path);

    /** Set or overwrite a key. */
    void set(std::string key, std::string value);

    /** True if the key exists. */
    bool has(const std::string& key) const;

    /** Raw string lookup. */
    std::optional<std::string> get(const std::string& key) const;

    /** String with default. */
    std::string get_string(const std::string& key,
                           const std::string& fallback) const;

    /** Integer with default; fatal if present but not parseable. */
    long long get_int(const std::string& key, long long fallback) const;

    /** Double with default; fatal if present but not parseable. */
    double get_double(const std::string& key, double fallback) const;

    /** Boolean with default; accepts true/false/1/0/yes/no. */
    bool get_bool(const std::string& key, bool fallback) const;

    /** Number of keys. */
    std::size_t size() const { return values_.size(); }

    /** All keys, sorted (validation of expected-key sets). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

}  // namespace artmem

#endif  // ARTMEM_UTIL_CONFIG_HPP
