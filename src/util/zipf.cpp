#include "util/zipf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hpp"

namespace artmem {

namespace {

/**
 * Positive finite doubles compare the same way their IEEE-754 bit
 * patterns do, so bisection over [0, 1) can walk uint64 bit patterns
 * and visit every representable double exactly once.
 */
std::uint64_t
to_bits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

double
from_bits(std::uint64_t b)
{
    return std::bit_cast<double>(b);
}

/** Ranks covered by the fast-path table (capped by the item count). */
constexpr std::size_t kTableRanks = 512;

/**
 * Uniform buckets over [0, boundaries_.back()). Sized so that even in
 * the densest tail of the table a bucket spans only a boundary or two,
 * keeping the linear scan after the indexed lookup O(1).
 */
constexpr std::size_t kBuckets = 4096;

/** Random monotonicity probes per table rank during verification. */
constexpr std::size_t kProbesPerRank = 32;

}  // namespace

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    // Direct summation; n is bounded in our use (region/item counts).
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        fatal("ZipfianGenerator requires at least one item");
    if (theta <= 0.0 || theta >= 1.0)
        fatal("ZipfianGenerator theta must be in (0,1), got ", theta);
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zeta(n_, theta_);
    zeta2theta_ = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
    // Caching 0.5^theta is exact: pow() is a pure function of its
    // arguments, so the cached double is bit-identical to the per-draw
    // recomputation the closed form used to do.
    threshold12_ = 1.0 + std::pow(0.5, theta_);
    build_table();
}

std::uint64_t
ZipfianGenerator::rank_of(double u) const
{
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < threshold12_)
        return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

void
ZipfianGenerator::build_table()
{
    // Rank n-1 has no upper boundary below u = 1.0, so at most n-1
    // boundaries exist; n == 1 keeps the closed form alone (its uz < 1
    // branch already makes that case cheap).
    const std::size_t ranks = static_cast<std::size_t>(
        std::min<std::uint64_t>(n_ - 1, kTableRanks));
    if (ranks == 0)
        return;

    const std::uint64_t one_bits = to_bits(1.0);
    boundaries_.reserve(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
        // Bisect for the smallest u with rank_of(u) > r. Assuming the
        // closed form is weakly monotone in u (verified below), every
        // u below the previous boundary already has rank <= r, so the
        // search window starts there.
        std::uint64_t lo = boundaries_.empty() ? 0
                                               : to_bits(boundaries_.back());
        std::uint64_t hi = one_bits;
        while (lo < hi) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            if (rank_of(from_bits(mid)) > r)
                hi = mid;
            else
                lo = mid + 1;
        }
        if (lo >= one_bits)
            break;  // No drawable u reaches rank r+1; stop early.
        boundaries_.push_back(from_bits(lo));
    }
    if (boundaries_.empty())
        return;

    // boundaries_[r] is the smallest u with closed-form rank > r, so
    // the rank of u is the first index whose boundary exceeds it: an
    // upper-bound search. The bucket grid turns that search into an
    // indexed jump: bucket_start_[b] holds the upper bound at the
    // bucket's left edge, and rank_from_table() walks the final step.
    // Equal adjacent boundaries (a rank the closed form skips over)
    // fall out naturally: the scan steps past the empty interval.
    bucket_scale_ = static_cast<double>(kBuckets) / boundaries_.back();
    bucket_start_.resize(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const double edge = static_cast<double>(b) / bucket_scale_;
        bucket_start_[b] = static_cast<std::uint16_t>(
            std::upper_bound(boundaries_.begin(), boundaries_.end(), edge) -
            boundaries_.begin());
    }

    // Verify the table against the closed form. Bisection is only
    // correct if rank_of() is weakly monotone over the double bit
    // space — true for a correctly-rounded pow(), but not guaranteed
    // by the standard — so probe each boundary's both sides plus a
    // deterministic random spray of bit patterns under the table, and
    // drop the whole table (falling back to the closed form, which is
    // always correct) on any mismatch. tests/test_diff_model.cpp
    // additionally cross-checks millions of live draws.
    bool ok = true;
    for (std::size_t r = 0; r < boundaries_.size() && ok; ++r) {
        const double b = boundaries_[r];
        if (r > 0 && b < boundaries_[r - 1])
            ok = false;
        if (rank_of(b) <= r)
            ok = false;
        const std::uint64_t bb = to_bits(b);
        if (bb > 0 && rank_of(from_bits(bb - 1)) > r)
            ok = false;
        if (ok && rank_from_table(b) != rank_of(b))
            ok = false;
    }
    if (ok) {
        std::uint64_t probe_state = 0x5a1fb00c0ffee123ull;
        const std::uint64_t back_bits = to_bits(boundaries_.back());
        const std::size_t probes = kProbesPerRank * boundaries_.size();
        for (std::size_t i = 0; i < probes && ok; ++i) {
            const double u = from_bits(splitmix64(probe_state) % back_bits);
            if (rank_from_table(u) != rank_of(u))
                ok = false;
        }
    }
    if (!ok) {
        boundaries_.clear();
        bucket_start_.clear();
        bucket_scale_ = 0.0;
    }
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(std::uint64_t n,
                                                     double theta)
    : base_(n, theta), n_(n)
{
}

std::uint64_t
ScrambledZipfianGenerator::next(Rng& rng)
{
    std::uint64_t rank = base_.next(rng);
    // FNV-1a style scramble of the rank, folded back into [0, n).
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = (h ^ rank) * 0x100000001b3ull;
    h ^= h >> 33;
    return h % n_;
}

}  // namespace artmem
