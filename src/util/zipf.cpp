#include "util/zipf.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace artmem {

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    // Direct summation; n is bounded in our use (region/item counts).
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        fatal("ZipfianGenerator requires at least one item");
    if (theta <= 0.0 || theta >= 1.0)
        fatal("ZipfianGenerator theta must be in (0,1), got ", theta);
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zeta(n_, theta_);
    zeta2theta_ = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t
ZipfianGenerator::next(Rng& rng)
{
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(std::uint64_t n,
                                                     double theta)
    : base_(n, theta), n_(n)
{
}

std::uint64_t
ScrambledZipfianGenerator::next(Rng& rng)
{
    std::uint64_t rank = base_.next(rng);
    // FNV-1a style scramble of the rank, folded back into [0, n).
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = (h ^ rank) * 0x100000001b3ull;
    h ^= h >> 33;
    return h % n_;
}

}  // namespace artmem
