/**
 * @file
 * ArtMem: the paper's reinforcement-learning tiered-memory manager.
 *
 * Two tabular TD agents share the discretized fast-tier access-ratio
 * state (Equation 1, k=10 plus a dedicated no-sample state):
 *
 *  - the *migration agent* picks the migration number — how many bytes
 *    may move this period, from {0, 16 MB, 32 MB, ..., 4096 MB};
 *  - the *threshold agent* adjusts the hotness threshold by
 *    {-8, -4, 0, +4, +8} sampled accesses, never below the heuristic
 *    minimum of 16 (Section 5).
 *
 * Both learn from the reward of Equation 2,
 *     r = tau_i - beta + lambda * (tau_i - tau_{i-1}),
 * where lambda is 1 only if the previous period migrated pages.
 *
 * Hotness comes from PEBS-sampled EMA bins (cooled every 2M samples at
 * paper scale; the threshold is reset to the capacity-derived value
 * after each cooling). Recency comes from active/inactive LRU lists fed
 * by the sampled stream: promotion candidates are drawn from the head
 * of the slow tier's active list, demotion victims from the tail of the
 * fast tier's inactive list, and every migrated page is inserted at the
 * head of the fast active list (the paper's aggressive re-insertion).
 *
 * Ablation switches (Figure 8) can disable the RL scope control, the
 * recency sorting, and the dynamic threshold independently; Section
 * 6.3.4's latency-based reward and Section 6.3.5's SARSA variant are
 * selectable.
 */
#ifndef ARTMEM_CORE_ARTMEM_HPP
#define ARTMEM_CORE_ARTMEM_HPP

#include <memory>
#include <vector>

#include "lru/lru_lists.hpp"
#include "policies/policy.hpp"
#include "rl/agent.hpp"
#include "stats/access_ratio.hpp"
#include "stats/ema_bins.hpp"

namespace artmem::core {

/** Reward signal variant (Section 6.3.4). */
enum class RewardMode {
    kAccessRatio,  ///< Default: discretized fast-tier access ratio.
    kLatency,      ///< EMA of sampled access latency (lags behind).
};

/** Full ArtMem configuration; defaults are the paper's (Section 5). */
struct ArtMemConfig {
    /** RL hyperparameters (alpha=e^-2, gamma=e^-1, epsilon=0.3). */
    rl::AgentConfig agent;
    /** Access-ratio discretization granularity (states 0..k, +1 extra). */
    int k = 10;
    /** Desired fast-tier access-ratio term of the reward, on tau scale. */
    double beta = 9.0;
    /** Samples between cooling events (2M at paper scale; scaled here). */
    std::uint64_t cooling_period = 200000;
    /** Heuristic minimum hotness threshold (sampled accesses). */
    std::uint32_t min_threshold = 16;
    /** Upper clamp for the threshold. */
    std::uint32_t max_threshold = 1u << 15;
    /** Threshold-agent action set (sampled-access deltas). */
    std::vector<int> threshold_deltas = {-8, -4, 0, 4, 8};
    /** Migration-agent action set (MiB per period; index 0 must be 0). */
    std::vector<Bytes> migration_sizes_mib = {0,   16,  32,   64,   128,
                                              256, 512, 1024, 2048, 4096};
    /** Reward signal. */
    RewardMode reward_mode = RewardMode::kAccessRatio;
    /** EMA weight of the latency reward (smaller = more lag; the
     *  pending-request proxy of Section 6.3.4 reacts with a delay). */
    double latency_ema_weight = 0.08;
    /** Ablation: RL scope control (false = MEMTIS-style heuristic). */
    bool use_rl = true;
    /** Ablation: LRU recency sorting of candidates/victims. */
    bool use_sorting = true;
    /** Ablation: dynamic threshold adjustment. */
    bool use_dynamic_threshold = true;
    /** Exploration RNG seed. */
    std::uint64_t seed = 42;
};

/** The ArtMem policy. */
class ArtMem final : public policies::Policy
{
  public:
    ArtMem();
    explicit ArtMem(const ArtMemConfig& config);

    std::string_view name() const override { return "artmem"; }

    void init(memsim::TieredMachine& machine) override;
    void on_samples(std::span<const memsim::PebsSample> samples) override;
    void on_interval(SimTimeNs now) override;
    void on_tx_resolved(PageId page, memsim::Tier src, memsim::Tier dst,
                        bool committed) override;
    void set_telemetry(telemetry::Telemetry* telemetry) override;

    /** Hotness threshold currently in force. */
    std::uint32_t current_threshold() const { return threshold_; }

    /** Migration budget chosen in the last period (bytes). */
    Bytes last_migration_budget() const { return last_budget_; }

    /** The migration-number agent (Q-table inspection / Fig. 14). */
    rl::TdAgent& migration_agent() { return *migration_agent_; }

    /** Read-only migration agent (invariant audits). */
    const rl::TdAgent& migration_agent() const { return *migration_agent_; }

    /** The threshold agent. */
    rl::TdAgent& threshold_agent() { return *threshold_agent_; }

    /** Read-only threshold agent. */
    const rl::TdAgent& threshold_agent() const { return *threshold_agent_; }

    /** True once init() built the per-run structures. */
    bool initialized() const { return bins_ != nullptr; }

    /** Histogram access (tests). */
    const stats::EmaBins& bins() const { return *bins_; }

    /** LRU lists access (tests). */
    const lru::LruLists& lists() const { return *lists_; }

    /** Configuration in use. */
    const ArtMemConfig& config() const { return config_; }

    /** Decision periods elapsed. */
    std::uint64_t periods() const { return periods_; }

    /**
     * Export both Q-tables as one text blob (Fig. 14 cross-training).
     */
    void save_qtables(std::ostream& os) const;

    /**
     * Import Q-tables previously produced by save_qtables(). A
     * malformed, truncated, non-finite, or dimension-mismatched blob is
     * recoverable: warn() and keep the current (cold-start) tables.
     * @return true if both tables were installed.
     */
    bool load_qtables(std::istream& is);

    /**
     * Provide Q-tables (the save_qtables() text format) to be installed
     * right after the next init() — i.e. start the run from a converged
     * table instead of Algorithm 1's cold start. Used by the Figure 14
     * cross-training robustness study.
     */
    void set_pretrained_qtables(std::string blob)
    {
        pretrained_ = std::move(blob);
    }

  private:
    int state_count() const { return config_.k + 2; }
    void attach_agent_telemetry();
    double tau_for_reward(const stats::TauState& tau) const;
    double latency_tau() const;
    void apply_threshold_action(int action);
    std::size_t perform_migration(Bytes budget);
    std::size_t collect_promotion_candidates(std::size_t want,
                                             std::vector<PageId>& out);
    std::size_t demote_for_room(std::size_t need);
    bool backed_off(PageId page) const
    {
        return retry_after_[page] > periods_;
    }
    void note_migration_success(PageId page);
    void note_migration_failure(PageId page, memsim::MigrationResult result);

    ArtMemConfig config_;
    std::unique_ptr<stats::EmaBins> bins_;
    std::unique_ptr<lru::LruLists> lists_;
    std::unique_ptr<stats::AccessRatioTracker> tracker_;
    std::unique_ptr<rl::TdAgent> migration_agent_;
    std::unique_ptr<rl::TdAgent> threshold_agent_;
    std::uint32_t threshold_ = 16;
    double tau_prev_ = 0.0;
    std::uint64_t migrated_last_period_ = 0;
    Bytes last_budget_ = 0;
    std::uint64_t periods_ = 0;
    PageId cold_scan_cursor_ = 0;
    // Latency-reward bookkeeping.
    double latency_ema_ns_ = 0.0;
    SimTimeNs window_latency_sum_ = 0;
    std::uint64_t window_latency_samples_ = 0;
    SimTimeNs last_migration_busy_ns_ = 0;
    std::vector<PageId> candidate_scratch_;
    std::string pretrained_;
    // Fault resilience: per-page failure streaks and the period after
    // which a failed page may be retried (exponential backoff; pinned
    // pages get a long sentence). All-zero in fault-free runs, so the
    // backoff checks never change fault-free behaviour.
    std::vector<std::uint8_t> fail_streak_;
    std::vector<std::uint64_t> retry_after_;
};

}  // namespace artmem::core

#endif  // ARTMEM_CORE_ARTMEM_HPP
