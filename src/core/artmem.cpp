#include "core/artmem.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace artmem::core {

using memsim::Tier;

ArtMem::ArtMem() : ArtMem(ArtMemConfig{}) {}

ArtMem::ArtMem(const ArtMemConfig& config) : config_(config)
{
    if (config_.k <= 0)
        fatal("ArtMem: k must be positive");
    if (config_.migration_sizes_mib.empty() ||
        config_.migration_sizes_mib.front() != 0) {
        fatal("ArtMem: migration size action 0 must be 'no migration'");
    }
    if (config_.threshold_deltas.empty())
        fatal("ArtMem: threshold action set must not be empty");
    if (config_.min_threshold == 0 ||
        config_.min_threshold > config_.max_threshold) {
        fatal("ArtMem: invalid threshold clamp range");
    }
}

void
ArtMem::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    const std::size_t pages = machine.page_count();
    bins_ = std::make_unique<stats::EmaBins>(pages, config_.cooling_period);
    lists_ = std::make_unique<lru::LruLists>(pages);
    tracker_ = std::make_unique<stats::AccessRatioTracker>(config_.k);

    const int states = state_count();
    // Derive the exploration streams from the whole configuration, not
    // just the seed: two variants (e.g. the two reward modes of Section
    // 6.3.4) would otherwise explore in perfect lockstep and could never
    // produce different trajectories.
    std::uint64_t seed_state =
        config_.seed ^ (static_cast<std::uint64_t>(config_.reward_mode)
                        << 32);
    const std::uint64_t seed_a = splitmix64(seed_state);
    const std::uint64_t seed_b = splitmix64(seed_state);
    migration_agent_ = std::make_unique<rl::TdAgent>(
        states, static_cast<int>(config_.migration_sizes_mib.size()),
        config_.agent, seed_a);
    threshold_agent_ = std::make_unique<rl::TdAgent>(
        states, static_cast<int>(config_.threshold_deltas.size()),
        config_.agent, seed_b);

    // Algorithm 1 line 1: the program loads from DRAM, so the initial
    // state is k and the no-migration action is primed with Q = 1.
    migration_agent_->table().at(config_.k, 0) = 1.0;
    const auto no_delta = std::find(config_.threshold_deltas.begin(),
                                    config_.threshold_deltas.end(), 0);
    const int no_delta_action =
        no_delta == config_.threshold_deltas.end()
            ? 0
            : static_cast<int>(no_delta - config_.threshold_deltas.begin());
    migration_agent_->reset(config_.k, 0);
    threshold_agent_->reset(config_.k, no_delta_action);

    // The engine attaches telemetry before init(); the agents only
    // exist from here on, so the forwarding happens in both places.
    attach_agent_telemetry();

    if (!pretrained_.empty()) {
        std::istringstream is(pretrained_);
        load_qtables(is);
    }

    threshold_ = config_.min_threshold;
    tau_prev_ = static_cast<double>(config_.k);
    migrated_last_period_ = 0;
    last_budget_ = 0;
    periods_ = 0;
    cold_scan_cursor_ = 0;
    latency_ema_ns_ =
        static_cast<double>(machine.config().tiers[0].load_latency_ns);
    window_latency_sum_ = 0;
    window_latency_samples_ = 0;
    last_migration_busy_ns_ = 0;
    fail_streak_.assign(pages, 0);
    retry_after_.assign(pages, 0);
}

void
ArtMem::set_telemetry(telemetry::Telemetry* telemetry)
{
    Policy::set_telemetry(telemetry);
    attach_agent_telemetry();
}

void
ArtMem::attach_agent_telemetry()
{
    telemetry::TraceSink* sink = trace(telemetry::Category::kRl);
    if (migration_agent_ != nullptr)
        migration_agent_->set_telemetry(sink, "migration");
    if (threshold_agent_ != nullptr)
        threshold_agent_->set_telemetry(sink, "threshold");
}

void
ArtMem::on_samples(std::span<const memsim::PebsSample> samples)
{
    auto& m = machine();
    // Per-batch invariants hoisted out of the sample loop: the two tier
    // latencies, the sorting flag, and local accumulators for sums that
    // are pure integer additions (order-independent, so accumulating
    // locally is bit-identical to the per-sample updates).
    const SimTimeNs lat[memsim::kTierCount] = {
        m.config().tiers[0].load_latency_ns,
        m.config().tiers[1].load_latency_ns,
    };
    const bool sorting = config_.use_sorting;
    SimTimeNs latency_sum = 0;
    for (const auto& s : samples) {
        bins_->record(s.page);
        tracker_->record(s.tier);
        // Sort on the page's *current* tier, not the tier recorded at
        // sample time: the sample may have sat in the PEBS buffer across
        // a migration interval, and touch() re-homes the page to
        // whichever tier it is told, so a stale s.tier would link a
        // migrated page onto the wrong tier's LRU list (caught by
        // verify::Invariant::kLruResidency). A sampled page was
        // necessarily accessed, hence allocated: the unchecked read is
        // safe.
        if (sorting)
            lists_->touch(s.page, m.tier_of_unchecked(s.page));
        latency_sum += lat[static_cast<int>(s.tier)];
    }
    window_latency_sum_ += latency_sum;
    window_latency_samples_ += samples.size();
    if (bins_->cooling_due()) {
        bins_->cool();
        // The threshold is re-derived from capacity after each cooling;
        // the RL agent refines it between coolings (Section 4.3).
        threshold_ = std::max(
            config_.min_threshold,
            bins_->capacity_threshold(m.capacity_pages(Tier::kFast)));
        if (auto* t = trace(telemetry::Category::kThreshold)) {
            t->instant(telemetry::Category::kThreshold, "reset",
                       t->sim_time(),
                       telemetry::Args()
                           .add("threshold", threshold_)
                           .str());
        }
    }
}

double
ArtMem::tau_for_reward(const stats::TauState& tau) const
{
    // The no-sample state carries no memory-pressure signal; treat it
    // as "all fast" for reward purposes (no accesses -> no stalls).
    if (tau.state == config_.k + 1)
        return static_cast<double>(config_.k);
    return static_cast<double>(tau.state);
}

double
ArtMem::latency_tau() const
{
    const auto& cfg = machine().config();
    const auto fast =
        static_cast<double>(cfg.tiers[0].load_latency_ns);
    const auto slow =
        static_cast<double>(cfg.tiers[1].load_latency_ns);
    if (slow <= fast)
        return static_cast<double>(config_.k);
    const double scaled =
        (slow - latency_ema_ns_) / (slow - fast) * config_.k;
    return std::clamp(scaled, 0.0, static_cast<double>(config_.k));
}

void
ArtMem::apply_threshold_action(int action)
{
    const int delta = config_.threshold_deltas[static_cast<std::size_t>(action)];
    const long long next = static_cast<long long>(threshold_) + delta;
    threshold_ = static_cast<std::uint32_t>(
        std::clamp<long long>(next, config_.min_threshold,
                              config_.max_threshold));
    if (auto* t = trace(telemetry::Category::kThreshold)) {
        t->instant(telemetry::Category::kThreshold, "move", t->sim_time(),
                   telemetry::Args()
                       .add("delta", delta)
                       .add("threshold", threshold_)
                       .str());
    }
}

std::size_t
ArtMem::collect_promotion_candidates(std::size_t want,
                                     std::vector<PageId>& out)
{
    auto& m = machine();
    if (!config_.use_sorting) {
        // Ablation: frequency-only selection, hottest first.
        candidate_scratch_.clear();
        bins_->collect_at_or_above(threshold_, candidate_scratch_);
        std::sort(candidate_scratch_.begin(), candidate_scratch_.end(),
                  [this](PageId a, PageId b) {
                      return bins_->count(a) > bins_->count(b);
                  });
        for (PageId page : candidate_scratch_) {
            if (out.size() >= want)
                break;
            if (m.is_allocated(page) &&
                m.tier_of_unchecked(page) == Tier::kSlow &&
                !backed_off(page) && !m.tx_page_inflight(page)) {
                out.push_back(page);
            }
        }
        return out.size();
    }
    // Recency-first: walk the slow tier's active list from the MRU head,
    // keeping only pages above the hotness threshold, then fall back to
    // the inactive list (Section 4.3, step V). Pages inside their
    // failure backoff window are skipped: retrying a pinned or
    // recently-aborted page burns budget for nothing.
    for (lru::ListId list :
         {lru::ListId::kSlowActive, lru::ListId::kSlowInactive}) {
        for (PageId page = lists_->head(list);
             page != kInvalidPage && out.size() < want;
             page = lists_->next(page)) {
            if (bins_->count(page) >= threshold_ && m.is_allocated(page) &&
                m.tier_of_unchecked(page) == Tier::kSlow &&
                !backed_off(page) && !m.tx_page_inflight(page)) {
                out.push_back(page);
            }
        }
        if (out.size() >= want)
            break;
    }
    return out.size();
}

void
ArtMem::note_migration_success(PageId page)
{
    if (fail_streak_[page] != 0) {
        fail_streak_[page] = 0;
        retry_after_[page] = 0;
    }
}

void
ArtMem::note_migration_failure(PageId page, memsim::MigrationResult result)
{
    if (result.pinned()) {
        // Retries are futile; park the page for a long time. (Not
        // forever: the injector is opaque to the policy, and a real
        // kernel would eventually unpin.)
        fail_streak_[page] = 255;
        retry_after_[page] = periods_ + 256;
        return;
    }
    if (result.denied()) {
        // Tenancy refusal (quota exhausted or admission denied): the
        // obstacle is standing resource policy, not device luck, so
        // back off harder than for a transient — the quota only opens
        // when the tenant's own pages demote, and admission budgets
        // refill once per decision interval.
        const std::uint8_t streak = static_cast<std::uint8_t>(
            std::min<int>(fail_streak_[page] + 2, 8));
        fail_streak_[page] = streak;
        retry_after_[page] = periods_ + (1ull << streak);
        return;
    }
    if (result.status == memsim::MigrateStatus::kTxAbort) {
        // A concurrent write aborted the in-flight copy: the page is
        // write-hot *right now*, which is different from being pinned
        // (futile forever) or a plain transient (random). Back off
        // twice as hard per failure so the write burst can pass, but
        // cap sooner — bursts end, pins don't.
        const std::uint8_t streak = static_cast<std::uint8_t>(
            std::min<int>(fail_streak_[page] + 1, 4));
        fail_streak_[page] = streak;
        retry_after_[page] = periods_ + (2ull << streak);
        return;
    }
    // Transient: exponential backoff, capped at 64 periods.
    const std::uint8_t streak =
        static_cast<std::uint8_t>(std::min<int>(fail_streak_[page] + 1, 6));
    fail_streak_[page] = streak;
    retry_after_[page] = periods_ + (1ull << streak);
}

void
ArtMem::on_tx_resolved(PageId page, memsim::Tier src, memsim::Tier dst,
                       bool committed)
{
    (void)src;
    if (!initialized())
        return;
    if (committed) {
        lists_->remove(page);
        lists_->insert_head(page, dst == Tier::kFast
                                      ? lru::ListId::kFastActive
                                      : lru::ListId::kSlowInactive);
        note_migration_success(page);
        return;
    }
    note_migration_failure(page, {memsim::MigrateStatus::kTxAbort});
    if (dst == Tier::kFast) {
        // Aborted promotion: the page is still slow-resident and still
        // hot enough to have been a candidate. Re-home it so the next
        // unbacked-off period can find it; aborted demotions stay
        // off-list like any other failed demotion.
        lists_->remove(page);
        lists_->insert_head(page, lru::ListId::kSlowActive);
    }
}

std::size_t
ArtMem::demote_for_room(std::size_t need)
{
    auto& m = machine();
    std::size_t demoted = 0;
    auto demote_page = [&](PageId page) {
        lists_->remove(page);
        const auto result = m.migrate(page, Tier::kSlow);
        if (result.ok()) {
            // Demoted pages join the slow inactive head: cold but recent.
            lists_->insert_head(page, lru::ListId::kSlowInactive);
            ++demoted;
        } else if (result.pending()) {
            // Transactional open: the room arrives at commit, and
            // on_tx_resolved() re-homes (or backs off) the page. Count
            // it so the victim loops don't over-demote.
            ++demoted;
        } else if (result.faulted()) {
            // The page stays resident but leaves the lists (same as the
            // no-slot path), so the loops below keep making progress;
            // the backoff keeps the cold scan from hammering it.
            note_migration_failure(page, result);
        }
    };
    // 1) Fast-tier inactive tail (cold and not recently referenced).
    //    Stop at the first victim that is itself above the hotness
    //    threshold: swapping hot pages for hot pages cannot raise the
    //    access ratio and only burns migration bandwidth (the Pattern
    //    S4 thrashing trap, Section 3.1).
    while (demoted < need) {
        const PageId page = lists_->tail(lru::ListId::kFastInactive);
        if (page == kInvalidPage || bins_->count(page) >= threshold_)
            break;
        demote_page(page);
    }
    // 2) Fast pages that were never sampled at all: the very coldest,
    //    invisible to the LRU lists. Round-robin scan.
    const std::size_t pages = m.page_count();
    std::size_t scanned = 0;
    while (demoted < need && scanned < pages) {
        const PageId page = cold_scan_cursor_;
        cold_scan_cursor_ =
            static_cast<PageId>((cold_scan_cursor_ + 1) % pages);
        ++scanned;
        if (m.is_allocated(page) && m.tier_of_unchecked(page) == Tier::kFast &&
            lists_->where(page) == lru::ListId::kNone && !backed_off(page) &&
            !m.tx_page_inflight(page)) {
            demote_page(page);
        }
    }
    // 3) Fast active tail as a last resort, with the same hot-victim
    //    guard.
    while (demoted < need) {
        const PageId page = lists_->tail(lru::ListId::kFastActive);
        if (page == kInvalidPage || bins_->count(page) >= threshold_)
            break;
        demote_page(page);
    }
    return demoted;
}

std::size_t
ArtMem::perform_migration(Bytes budget)
{
    auto& m = machine();
    const auto want = static_cast<std::size_t>(budget / m.page_size());
    if (want == 0)
        return 0;
    std::vector<PageId> candidates;
    candidates.reserve(want);
    collect_promotion_candidates(want, candidates);
    // Scope-bounded selection: the kmigrated thread only touches the
    // candidate/victim lists it actually migrates from, not the whole
    // page population (contrast with MEMTIS's full classification walk).
    m.charge_overhead((candidates.size() + want) * 4);
    if (candidates.empty())
        return 0;
    std::size_t promoted = 0;
    std::size_t faulted = 0;
    auto promote_round = [&](const std::vector<PageId>& round) {
        const std::size_t free = m.free_pages(Tier::kFast);
        if (round.size() > free)
            demote_for_room(round.size() - free);
        for (PageId page : round) {
            lists_->remove(page);
            const auto result = m.migrate(page, Tier::kFast);
            if (result.ok()) {
                // Aggressive re-insertion: always the fast active head.
                lists_->insert_head(page, lru::ListId::kFastActive);
                note_migration_success(page);
                ++promoted;
            } else if (result.pending()) {
                // Transactional open: the budget is spent either way;
                // on_tx_resolved() re-homes the page at commit or backs
                // it off at abort. Off-list until then.
                ++promoted;
            } else if (result.faulted() || result.denied()) {
                // Skip-and-requeue: the page stays a candidate for later
                // periods (after its backoff), and the budget it did not
                // consume can fund a replacement below. Tenancy denials
                // take the same path with a harder backoff — another
                // tenant's candidate can still use the refill round.
                lists_->insert_head(page, lru::ListId::kSlowActive);
                note_migration_failure(page, result);
                ++faulted;
            } else {
                lists_->insert_head(page, lru::ListId::kSlowActive);
            }
        }
    };
    promote_round(candidates);
    // Faulted promotions consumed no budget; refill the round once from
    // the next-best candidates (the failed pages are now backed off, so
    // the collection cannot hand them straight back).
    if (faulted > 0 && promoted < want) {
        std::vector<PageId> extra;
        extra.reserve(want - promoted);
        collect_promotion_candidates(want - promoted, extra);
        m.charge_overhead(extra.size() * 4);
        if (!extra.empty())
            promote_round(extra);
    }
    return promoted;
}

void
ArtMem::on_interval(SimTimeNs now)
{
    auto& m = machine();
    ++periods_;

    // Observe the environment (Algorithm 1 line 6).
    const stats::TauState tau = tracker_->take();
    if (window_latency_samples_ > 0) {
        // Pending-request proxy (Section 6.3.4): sampled load latency
        // plus the queueing contributed by in-flight migration traffic,
        // amortized over the sampled accesses of the window.
        const std::uint64_t migration_busy =
            m.totals().migration_busy_ns - last_migration_busy_ns_;
        last_migration_busy_ns_ = m.totals().migration_busy_ns;
        const double window_avg =
            (static_cast<double>(window_latency_sum_) +
             static_cast<double>(migration_busy) *
                 m.config().migration_contention) /
            static_cast<double>(window_latency_samples_);
        latency_ema_ns_ = config_.latency_ema_weight * window_avg +
                          (1.0 - config_.latency_ema_weight) * latency_ema_ns_;
    }
    window_latency_sum_ = 0;
    window_latency_samples_ = 0;

    const double tau_i = config_.reward_mode == RewardMode::kLatency
                             ? latency_tau()
                             : tau_for_reward(tau);
    const double lambda = migrated_last_period_ > 0 ? 1.0 : 0.0;
    double reward = tau_i - config_.beta + lambda * (tau_i - tau_prev_);
    // Keep the TD targets sane no matter what the observation pipeline
    // produced (a sampling blackout yields the no-sample state; a broken
    // latency proxy must not poison the Q-tables). The clamp bounds are
    // far outside the reachable reward range, so it never alters a
    // healthy run.
    if (!std::isfinite(reward))
        reward = -config_.beta;
    reward = std::clamp(reward, -100.0, 100.0);

    // A PEBS blackout (injected fault) leaves this period with no
    // samples: the trackers saw nothing, so the dedicated no-sample
    // state carries the decision. The migration agent still learns
    // there — "what to do while blind" is a real policy question — but
    // the threshold must not drift on zero evidence, so its agent is
    // frozen for the period.
    const bool blind = m.faults_enabled() && tau.no_samples(config_.k);

    Bytes budget = 0;
    if (config_.use_rl) {
        const int state = tau.state;
        const int mig_action = migration_agent_->step(reward, state);
        budget = config_.migration_sizes_mib[
                     static_cast<std::size_t>(mig_action)] << 20;
        if (config_.use_dynamic_threshold && !blind) {
            const int thr_action = threshold_agent_->step(reward, state);
            apply_threshold_action(thr_action);
        }
    } else {
        // Ablation: heuristic scope — capacity threshold, migrate all hot.
        threshold_ = std::max(
            config_.min_threshold,
            bins_->capacity_threshold(m.capacity_pages(Tier::kFast)));
        budget = static_cast<Bytes>(2048) << 20;
    }

    if (auto* t = trace(telemetry::Category::kRl)) {
        // The period's full state-action-reward record, emitted once
        // the scope decision is fixed but before it executes.
        t->instant(telemetry::Category::kRl, "decision", now,
                   telemetry::Args()
                       .add("state", tau.state)
                       .add("reward", reward)
                       .add("budget_mib", budget >> 20)
                       .add("threshold", threshold_)
                       .add("blind", blind ? 1 : 0)
                       .str());
    }
    if (auto* reg = metrics()) {
        reg->set(reg->gauge("artmem.threshold"),
                 static_cast<double>(threshold_));
        reg->set(reg->gauge("artmem.budget_mib"),
                 static_cast<double>(budget >> 20));
        reg->set(reg->gauge("artmem.reward"), reward);
    }

    last_budget_ = budget;
    migrated_last_period_ = perform_migration(budget);
    tau_prev_ = tau_i;
}

void
ArtMem::save_qtables(std::ostream& os) const
{
    migration_agent_->table().save(os);
    threshold_agent_->table().save(os);
}

bool
ArtMem::load_qtables(std::istream& is)
{
    // All-or-nothing: parse and dimension-check both tables before
    // touching either agent, so a blob that dies halfway through cannot
    // leave one agent pretrained and the other cold.
    std::string error;
    auto check = [&](const rl::TdAgent& agent, const char* which)
        -> std::optional<rl::QTable> {
        auto table = rl::QTable::try_load(is, &error);
        if (!table) {
            warn("ArtMem: ignoring pretrained Q-tables (", which, " table: ",
                 error, "); continuing from a cold start");
            return std::nullopt;
        }
        if (table->states() != agent.table().states() ||
            table->actions() != agent.table().actions()) {
            warn("ArtMem: ignoring pretrained Q-tables (", which, " table is ",
                 table->states(), "x", table->actions(), ", expected ",
                 agent.table().states(), "x", agent.table().actions(),
                 "); continuing from a cold start");
            return std::nullopt;
        }
        return table;
    };
    auto migration = check(*migration_agent_, "migration");
    if (!migration)
        return false;
    auto threshold = check(*threshold_agent_, "threshold");
    if (!threshold)
        return false;
    migration_agent_->set_table(*std::move(migration));
    threshold_agent_->set_table(*std::move(threshold));
    return true;
}

}  // namespace artmem::core
