#include "tenancy/tenancy.hpp"

#include <algorithm>
#include <charconv>

#include "tenancy/admission.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workloads/factory.hpp"

namespace artmem::tenancy {

namespace {

/** Split a comma list; empty input yields an empty vector. */
std::vector<std::string>
split_list(std::string_view text)
{
    std::vector<std::string> out;
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view item = text.substr(0, comma);
        if (item.empty())
            fatal("tenancy: empty entry in list '", text, "'");
        out.emplace_back(item);
        if (comma == std::string_view::npos)
            break;
        text.remove_prefix(comma + 1);
    }
    return out;
}

std::vector<std::size_t>
parse_weights(std::string_view text)
{
    std::vector<std::size_t> out;
    for (const auto& item : split_list(text)) {
        std::size_t value = 0;
        const auto [ptr, ec] = std::from_chars(
            item.data(), item.data() + item.size(), value);
        if (ec != std::errc{} || ptr != item.data() + item.size() ||
            value == 0)
            fatal("tenancy: weight '", item,
                  "' is not a positive integer");
        out.push_back(value);
    }
    return out;
}

}  // namespace

void
TenancyConfig::validate() const
{
    if (tenants > 65535)
        fatal("tenancy: ", tenants, " tenants exceed the 16-bit "
              "ownership map");
    if (!enabled()) {
        // Knobs without --tenants > 1 are silent no-ops waiting to
        // mislead an experiment; refuse them outright.
        const bool knobs = !mix.empty() || !weights.empty() ||
                           quantum != 256 || phase_stride != 0 ||
                           quota_pages != 0 || quota_share != 0.0 ||
                           admission != "none" || admission_rate != 64 ||
                           admission_target != 0.5 || admission_max != 256;
        if (knobs)
            fatal("tenancy: quota/mix/admission knobs require "
                  "tenants > 1");
        return;
    }
    if (quantum == 0)
        fatal("tenancy: quantum must be positive");
    if (quota_share < 0.0 || quota_share > 1.0)
        fatal("tenancy: quota share ", quota_share, " outside [0, 1]");
    const auto names = admission_names();
    if (std::find(names.begin(), names.end(), admission) == names.end())
        fatal("tenancy: unknown admission policy '", admission, "'");
}

TenancyConfig
parse_tenancy_config(const KvConfig& config)
{
    TenancyConfig tc;
    static const char* kKnown[] = {
        "tenancy.tenants",        "tenancy.mix",
        "tenancy.weights",        "tenancy.quantum",
        "tenancy.phase_stride",   "tenancy.quota_pages",
        "tenancy.quota_share",    "tenancy.admission",
        "tenancy.admission_rate", "tenancy.admission_target",
        "tenancy.admission_max",
    };
    for (const auto& key : config.keys()) {
        if (key.rfind("tenancy.", 0) != 0)
            continue;
        const bool known =
            std::find_if(std::begin(kKnown), std::end(kKnown),
                         [&](const char* k) { return key == k; }) !=
            std::end(kKnown);
        if (!known)
            fatal("tenancy config: unknown key '", key, "'");
    }
    tc.tenants =
        static_cast<std::uint32_t>(config.get_int("tenancy.tenants", 1));
    tc.mix = split_list(config.get_string("tenancy.mix", ""));
    tc.weights = parse_weights(config.get_string("tenancy.weights", ""));
    tc.quantum = static_cast<std::size_t>(
        config.get_int("tenancy.quantum", 256));
    tc.phase_stride = static_cast<std::uint64_t>(
        config.get_int("tenancy.phase_stride", 0));
    tc.quota_pages = static_cast<std::size_t>(
        config.get_int("tenancy.quota_pages", 0));
    tc.quota_share = config.get_double("tenancy.quota_share", 0.0);
    tc.admission = config.get_string("tenancy.admission", "none");
    tc.admission_rate = static_cast<std::uint64_t>(
        config.get_int("tenancy.admission_rate", 64));
    tc.admission_target = config.get_double("tenancy.admission_target", 0.5);
    tc.admission_max = static_cast<std::uint64_t>(
        config.get_int("tenancy.admission_max", 256));
    tc.validate();
    return tc;
}

TenancyConfig
parse_tenancy_cli(const CliArgs& args)
{
    static constexpr std::string_view kKnown[] = {
        "tenants",         "tenant-config",       "tenant-quota",
        "tenant-quota-share", "tenant-mix",       "tenant-weights",
        "tenant-quantum",  "tenant-phase-stride", "admission",
        "admission-rate",  "admission-target",    "admission-max"};
    for (const auto& name : args.flag_names()) {
        if (name.rfind("tenant", 0) != 0 &&
            name.rfind("admission", 0) != 0)
            continue;
        bool known = false;
        for (const auto k : kKnown)
            known = known || name == k;
        if (!known)
            fatal("unknown tenancy flag --", name,
                  " (known: --tenants --tenant-config --tenant-quota "
                  "--tenant-quota-share --tenant-mix --tenant-weights "
                  "--tenant-quantum --tenant-phase-stride --admission "
                  "--admission-rate --admission-target --admission-max)");
    }
    TenancyConfig tc;
    if (args.has("tenant-config"))
        tc = parse_tenancy_config(
            KvConfig::load(args.get_string("tenant-config", "")));
    tc.tenants = static_cast<std::uint32_t>(
        args.get_int("tenants", tc.tenants));
    if (args.has("tenant-mix"))
        tc.mix = split_list(args.get_string("tenant-mix", ""));
    if (args.has("tenant-weights"))
        tc.weights = parse_weights(args.get_string("tenant-weights", ""));
    tc.quantum = static_cast<std::size_t>(
        args.get_int("tenant-quantum", static_cast<long long>(tc.quantum)));
    tc.phase_stride = static_cast<std::uint64_t>(args.get_int(
        "tenant-phase-stride", static_cast<long long>(tc.phase_stride)));
    tc.quota_pages = static_cast<std::size_t>(args.get_int(
        "tenant-quota", static_cast<long long>(tc.quota_pages)));
    tc.quota_share =
        args.get_double("tenant-quota-share", tc.quota_share);
    tc.admission = args.get_string("admission", tc.admission);
    tc.admission_rate = static_cast<std::uint64_t>(args.get_int(
        "admission-rate", static_cast<long long>(tc.admission_rate)));
    tc.admission_target =
        args.get_double("admission-target", tc.admission_target);
    tc.admission_max = static_cast<std::uint64_t>(args.get_int(
        "admission-max", static_cast<long long>(tc.admission_max)));
    tc.validate();
    return tc;
}

std::unique_ptr<TenantSet>
make_tenant_set(const TenancyConfig& config, std::string_view base_workload,
                Bytes page_size, std::uint64_t total_accesses,
                std::uint64_t base_seed)
{
    if (!config.enabled())
        fatal("make_tenant_set: tenancy is disabled (tenants <= 1)");
    const std::uint64_t per_tenant =
        std::max<std::uint64_t>(1, total_accesses / config.tenants);
    std::vector<std::unique_ptr<workloads::AccessGenerator>> generators;
    std::vector<std::size_t> weights;
    generators.reserve(config.tenants);
    weights.reserve(config.tenants);
    for (std::uint32_t i = 0; i < config.tenants; ++i) {
        const std::string_view name =
            config.mix.empty() ? base_workload
                               : std::string_view(
                                     config.mix[i % config.mix.size()]);
        generators.push_back(workloads::make_workload(
            name, page_size, per_tenant,
            derive_seed(base_seed, SeedDomain::kTenant, i)));
        weights.push_back(config.weights.empty()
                              ? 1
                              : config.weights[i % config.weights.size()]);
    }
    return std::make_unique<TenantSet>(std::move(generators),
                                       std::move(weights), page_size,
                                       config.quantum, config.phase_stride);
}

std::unique_ptr<memsim::TenantLedger>
make_tenant_ledger(const TenancyConfig& config, const TenantSet& set,
                   std::size_t total_pages, std::size_t fast_pages)
{
    auto ledger = std::make_unique<memsim::TenantLedger>(
        set.tenant_count(), total_pages);
    std::size_t quota = memsim::TenantLedger::kNoQuota;
    if (config.quota_pages > 0)
        quota = config.quota_pages;
    else if (config.quota_share > 0.0)
        quota = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(fast_pages) * config.quota_share));
    for (std::uint32_t i = 0; i < set.tenant_count(); ++i) {
        ledger->set_owner_span(set.first_page(i), set.span_pages(i), i);
        ledger->set_quota(i, quota);
    }
    ledger->set_admission(make_admission(config.admission,
                                         set.tenant_count(),
                                         config.admission_rate,
                                         config.admission_target,
                                         config.admission_max));
    return ledger;
}

}  // namespace artmem::tenancy
