#include "tenancy/admission.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"

namespace artmem::tenancy {

namespace {

/** Grants every request; the no-op baseline of the bench matrix. */
class AllowAllAdmission final : public memsim::AdmissionController
{
  public:
    std::string_view name() const override { return "allow_all"; }
    bool admit(std::uint32_t, memsim::Tier) override { return true; }
};

/** Fixed per-tenant grant budget, refilled every decision interval. */
class StaticRateAdmission final : public memsim::AdmissionController
{
  public:
    StaticRateAdmission(std::uint32_t tenants, std::uint64_t rate)
        : rate_(rate), budget_(tenants, rate)
    {
        if (rate_ == 0)
            fatal("static admission: rate must be positive");
    }

    std::string_view name() const override { return "static"; }

    bool admit(std::uint32_t tenant, memsim::Tier) override
    {
        if (budget_[tenant] == 0)
            return false;
        --budget_[tenant];
        return true;
    }

    void on_interval(const memsim::TenantLedger&) override
    {
        std::fill(budget_.begin(), budget_.end(), rate_);
    }

  private:
    std::uint64_t rate_;
    std::vector<std::uint64_t> budget_;
};

/**
 * AIMD feedback on the decision-window hit ratios. While the aggregate
 * fast-tier hit ratio sits below target, tenants performing below the
 * aggregate — the ones whose promotions are not paying off — get their
 * per-interval budgets halved, freeing fast-tier churn for the tenants
 * that convert promotions into hits; budgets recover additively once
 * the aggregate is healthy (or for above-aggregate tenants).
 */
class FeedbackAdmission final : public memsim::AdmissionController
{
  public:
    FeedbackAdmission(std::uint32_t tenants, double target,
                      std::uint64_t max_grants)
        : target_(target),
          max_(max_grants),
          cap_(tenants, max_grants),
          budget_(tenants, max_grants)
    {
        if (target_ < 0.0 || target_ > 1.0)
            fatal("feedback admission: target ", target_,
                  " outside [0, 1]");
        if (max_ == 0)
            fatal("feedback admission: max grants must be positive");
    }

    std::string_view name() const override { return "feedback"; }

    bool admit(std::uint32_t tenant, memsim::Tier) override
    {
        if (budget_[tenant] == 0)
            return false;
        --budget_[tenant];
        return true;
    }

    void on_interval(const memsim::TenantLedger& ledger) override
    {
        const double aggregate = ledger.aggregate_window_fast_ratio();
        const bool starved = aggregate < target_;
        for (std::uint32_t t = 0; t < ledger.tenant_count(); ++t) {
            if (starved && ledger.window_fast_ratio(t) < aggregate)
                cap_[t] = std::max<std::uint64_t>(kMinGrants, cap_[t] / 2);
            else
                cap_[t] = std::min<std::uint64_t>(max_, cap_[t] + kStep);
            budget_[t] = cap_[t];
        }
    }

  private:
    /** Never starve a tenant completely: one grant per interval floor. */
    static constexpr std::uint64_t kMinGrants = 1;
    /** Additive recovery per interval. */
    static constexpr std::uint64_t kStep = 8;

    double target_;
    std::uint64_t max_;
    std::vector<std::uint64_t> cap_;
    std::vector<std::uint64_t> budget_;
};

}  // namespace

std::vector<std::string_view>
admission_names()
{
    return {"none", "allow_all", "static", "feedback"};
}

std::unique_ptr<memsim::AdmissionController>
make_admission(std::string_view name, std::uint32_t tenants,
               std::uint64_t rate, double target, std::uint64_t max_grants)
{
    if (name == "none")
        return nullptr;
    if (name == "allow_all")
        return std::make_unique<AllowAllAdmission>();
    if (name == "static")
        return std::make_unique<StaticRateAdmission>(tenants, rate);
    if (name == "feedback")
        return std::make_unique<FeedbackAdmission>(tenants, target,
                                                   max_grants);
    fatal("unknown admission policy '", name,
          "' (known: none allow_all static feedback)");
}

}  // namespace artmem::tenancy
