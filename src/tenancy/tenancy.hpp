/**
 * @file
 * Multi-tenant serving configuration and construction (DESIGN.md §13).
 *
 * TenancyConfig carries everything the experiment layer needs to turn a
 * single-workload RunSpec into an N-tenant run: tenant count, the
 * workload mix, scheduler shape, per-tenant fast-tier quotas, and the
 * admission policy. tenants <= 1 means the feature is off and the run
 * takes the plain single-tenant path untouched (scripts/ci.sh diffs
 * --tenants=1 against the seed goldens byte-for-byte).
 */
#ifndef ARTMEM_TENANCY_TENANCY_HPP
#define ARTMEM_TENANCY_TENANCY_HPP

#include <memory>
#include <string>
#include <vector>

#include "memsim/tenant_ledger.hpp"
#include "tenancy/tenant_set.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"

namespace artmem::tenancy {

/** Multi-tenant run shape; inert until tenants > 1. */
struct TenancyConfig {
    /** Tenant count; <= 1 disables the subsystem entirely. */
    std::uint32_t tenants = 1;
    /**
     * Workload names cycled across tenants (tenant i runs
     * mix[i % size]). Empty = every tenant runs the RunSpec workload.
     */
    std::vector<std::string> mix;
    /**
     * Scheduling weights cycled across tenants (tenant i gets
     * quantum * weight accesses per round). Empty = all 1.
     */
    std::vector<std::size_t> weights;
    /** Base accesses per scheduler turn. */
    std::size_t quantum = 256;
    /** Tenant i discards i * phase_stride leading accesses. */
    std::uint64_t phase_stride = 0;
    /**
     * Per-tenant fast-tier quota in pages; 0 = derive from quota_share,
     * and if that is also unset, unlimited.
     */
    std::size_t quota_pages = 0;
    /**
     * Per-tenant quota as a fraction of fast-tier capacity in (0, 1];
     * 0 = unset. Ignored when quota_pages is given.
     */
    double quota_share = 0.0;
    /** Admission policy: none | allow_all | static | feedback. */
    std::string admission = "none";
    /** Per-tenant grants per decision interval ("static"). */
    std::uint64_t admission_rate = 64;
    /** Aggregate fast-ratio target ("feedback"). */
    double admission_target = 0.5;
    /** Per-interval budget ceiling ("feedback"). */
    std::uint64_t admission_max = 256;

    /** True when the run is actually multi-tenant. */
    bool enabled() const { return tenants > 1; }

    /** fatal() on out-of-range values or knobs without tenants > 1. */
    void validate() const;
};

/**
 * Parse a TenancyConfig from "tenancy.*" keys of a KvConfig
 * (tenancy.tenants, tenancy.mix, tenancy.weights, tenancy.quantum,
 * tenancy.phase_stride, tenancy.quota_pages, tenancy.quota_share,
 * tenancy.admission, tenancy.admission_rate, tenancy.admission_target,
 * tenancy.admission_max). Unknown "tenancy."-prefixed keys fatal();
 * keys outside the prefix are ignored so the section can share a file
 * with fault.* / tx.* sections.
 */
TenancyConfig parse_tenancy_config(const KvConfig& config);

/**
 * Parse the multi-tenant flags shared by the CLI and the bench
 * harnesses: --tenants, --tenant-quota, --tenant-quota-share,
 * --tenant-mix, --tenant-weights, --tenant-quantum,
 * --tenant-phase-stride, --admission, --admission-rate,
 * --admission-target, --admission-max, plus --tenant-config=FILE to
 * load a "tenancy.*" section first (explicit flags override the file).
 * Validation is strict: any other "tenant"/"admission"-prefixed flag is
 * a typo and fatal()s, as does a tenancy knob without --tenants > 1.
 */
TenancyConfig parse_tenancy_cli(const CliArgs& args);

/**
 * Build the N-tenant interleaved workload: tenant i runs
 * mix[i % size] (or @p base_workload when the mix is empty) with seed
 * derive_seed(base_seed, SeedDomain::kTenant, i) and an access budget
 * of @p total_accesses / tenants.
 */
std::unique_ptr<TenantSet> make_tenant_set(const TenancyConfig& config,
                                           std::string_view base_workload,
                                           Bytes page_size,
                                           std::uint64_t total_accesses,
                                           std::uint64_t base_seed);

/**
 * Build the machine-side ledger matching @p set: ownership spans from
 * the set's stacked layout, quotas resolved against @p fast_pages, and
 * the configured admission controller installed. @p total_pages must be
 * the machine's address-space page count.
 */
std::unique_ptr<memsim::TenantLedger> make_tenant_ledger(
    const TenancyConfig& config, const TenantSet& set,
    std::size_t total_pages, std::size_t fast_pages);

}  // namespace artmem::tenancy

#endif  // ARTMEM_TENANCY_TENANCY_HPP
