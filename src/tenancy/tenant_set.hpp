/**
 * @file
 * Multi-tenant workload interleaver (DESIGN.md §13).
 *
 * A TenantSet models N tenants sharing one tiered machine: each tenant
 * is an independent workloads::* generator with its own tagged seed
 * stream (SeedDomain::kTenant, so tenant 3 never collides with sweep
 * job 3 or shard 3) and an optional phase offset, stacked onto disjoint
 * contiguous spans of the simulated address space and scheduled by a
 * deterministic weighted round-robin (a time-sliced multi-tenant host's
 * view of its guests).
 *
 * The set exposes the per-tenant page spans so the experiment layer can
 * build the matching memsim::TenantLedger ownership map; workload
 * generation itself stays tenancy-agnostic.
 */
#ifndef ARTMEM_TENANCY_TENANT_SET_HPP
#define ARTMEM_TENANCY_TENANT_SET_HPP

#include <memory>
#include <string>
#include <vector>

#include "workloads/generator.hpp"

namespace artmem::tenancy {

/** Interleaves per-tenant generators over a stacked address space. */
class TenantSet final : public workloads::AccessGenerator
{
  public:
    /**
     * @param tenants  Per-tenant workloads (ownership taken; >= 2).
     * @param weights  Scheduling weight per tenant (same length;
     *                 quantum * weight accesses per turn, >= 1 each).
     * @param page_size Machine page size (span alignment).
     * @param quantum  Base accesses per turn of the round-robin.
     * @param phase_stride Accesses discarded from tenant i's stream at
     *                 construction (i * phase_stride), de-phasing
     *                 otherwise identical generators.
     */
    TenantSet(std::vector<std::unique_ptr<workloads::AccessGenerator>> tenants,
              std::vector<std::size_t> weights, Bytes page_size,
              std::size_t quantum, std::uint64_t phase_stride);

    std::string_view name() const override { return name_; }
    Bytes footprint() const override { return footprint_; }
    std::size_t fill(std::span<PageId> out) override;
    std::uint64_t total_accesses() const override { return total_; }

    std::uint32_t tenant_count() const
    {
        return static_cast<std::uint32_t>(tenants_.size());
    }

    /** First page of tenant @p i's span in the stacked address space. */
    PageId first_page(std::uint32_t i) const
    {
        return tenants_[i].page_offset;
    }

    /** Page count of tenant @p i's span. */
    std::size_t span_pages(std::uint32_t i) const
    {
        return tenants_[i].span_pages;
    }

    /** Tenant @p i's workload name (reporting). */
    std::string_view tenant_workload(std::uint32_t i) const
    {
        return tenants_[i].gen->name();
    }

  private:
    struct Tenant {
        std::unique_ptr<workloads::AccessGenerator> gen;
        PageId page_offset = 0;
        std::size_t span_pages = 0;
        std::size_t weight = 1;
        bool done = false;
    };

    std::vector<Tenant> tenants_;
    std::string name_;
    Bytes footprint_ = 0;
    std::uint64_t total_ = 0;
    std::size_t quantum_;
    std::size_t turn_ = 0;
    std::vector<PageId> scratch_;
};

}  // namespace artmem::tenancy

#endif  // ARTMEM_TENANCY_TENANT_SET_HPP
