/**
 * @file
 * Admission-controller implementations (DESIGN.md §13).
 *
 * The interface lives in memsim/tenant_ledger.hpp (the machine consults
 * it on every fast-tier migration attempt); the concrete policies live
 * here in the tenancy layer:
 *
 *  - allow_all:  grants everything; isolates the cost of the quota
 *                checks themselves in A/B runs.
 *  - static:     a fixed per-tenant grant budget per decision interval,
 *                the classical rate limiter.
 *  - feedback:   TierBPF-style AIMD on the ledger's decision-window
 *                counters — when the aggregate fast-tier hit ratio
 *                falls below target, tenants hitting below the
 *                aggregate get their budgets halved; everyone else
 *                recovers additively.
 *
 * All three are pure functions of the call sequence and the ledger's
 * deterministic counters (no clocks, no unseeded draws), so a
 * multi-tenant run stays byte-identical across --jobs and --shards.
 */
#ifndef ARTMEM_TENANCY_ADMISSION_HPP
#define ARTMEM_TENANCY_ADMISSION_HPP

#include <memory>
#include <string_view>

#include "memsim/tenant_ledger.hpp"

namespace artmem::tenancy {

/** Admission-policy names understood by make_admission(). */
std::vector<std::string_view> admission_names();

/**
 * Build an admission controller by name for @p tenants tenants.
 * "none" returns nullptr (quota-only enforcement); unknown names
 * fatal().
 *
 * @param rate   Per-tenant grants per decision interval ("static").
 * @param target Aggregate fast-ratio target in [0, 1] ("feedback").
 * @param max_grants Upper budget bound per interval ("feedback").
 */
std::unique_ptr<memsim::AdmissionController> make_admission(
    std::string_view name, std::uint32_t tenants, std::uint64_t rate,
    double target, std::uint64_t max_grants);

}  // namespace artmem::tenancy

#endif  // ARTMEM_TENANCY_ADMISSION_HPP
