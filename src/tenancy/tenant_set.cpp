#include "tenancy/tenant_set.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace artmem::tenancy {

TenantSet::TenantSet(
    std::vector<std::unique_ptr<workloads::AccessGenerator>> tenants,
    std::vector<std::size_t> weights, Bytes page_size, std::size_t quantum,
    std::uint64_t phase_stride)
    : quantum_(quantum)
{
    if (tenants.size() < 2)
        fatal("TenantSet: at least two tenants required (a single tenant "
              "is the plain run)");
    if (weights.size() != tenants.size())
        fatal("TenantSet: ", weights.size(), " weights for ",
              tenants.size(), " tenants");
    if (quantum_ == 0)
        fatal("TenantSet: quantum must be positive");
    name_ = "tenants" + std::to_string(tenants.size()) + "(";
    Bytes offset = 0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        auto& gen = tenants[i];
        if (weights[i] == 0)
            fatal("TenantSet: tenant ", i, " has zero weight");
        Tenant tenant;
        tenant.page_offset = static_cast<PageId>(offset / page_size);
        tenant.weight = weights[i];
        // Stack footprints page-aligned so spans never share a page.
        const Bytes aligned =
            (gen->footprint() + page_size - 1) / page_size * page_size;
        tenant.span_pages = static_cast<std::size_t>(aligned / page_size);
        offset += aligned;
        // De-phase tenant i by discarding the head of its stream; the
        // discarded accesses never reach the machine, so total_ counts
        // only what fill() will actually produce.
        std::uint64_t skip = phase_stride * i;
        std::uint64_t produced = 0;
        if (skip > 0) {
            scratch_.resize(std::min<std::uint64_t>(skip, 4096));
            while (skip > 0) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(skip, scratch_.size()));
                const std::size_t got =
                    gen->fill(std::span<PageId>(scratch_.data(), want));
                if (got == 0)
                    break;
                produced += got;
                skip -= got;
            }
        }
        total_ += gen->total_accesses() > produced
                      ? gen->total_accesses() - produced
                      : 0;
        if (i != 0)
            name_ += '+';
        name_ += gen->name();
        tenant.gen = std::move(gen);
        tenants_.push_back(std::move(tenant));
    }
    footprint_ = offset;
    name_ += ")";
}

std::size_t
TenantSet::fill(std::span<PageId> out)
{
    std::size_t produced = 0;
    std::size_t idle_rounds = 0;
    while (produced < out.size() && idle_rounds < tenants_.size()) {
        Tenant& tenant = tenants_[turn_];
        turn_ = (turn_ + 1) % tenants_.size();
        if (tenant.done) {
            ++idle_rounds;
            continue;
        }
        const std::size_t want =
            std::min(quantum_ * tenant.weight, out.size() - produced);
        scratch_.resize(want);
        const std::size_t got =
            tenant.gen->fill(std::span<PageId>(scratch_.data(), want));
        if (got == 0) {
            tenant.done = true;
            ++idle_rounds;
            continue;
        }
        idle_rounds = 0;
        for (std::size_t i = 0; i < got; ++i)
            out[produced++] = scratch_[i] + tenant.page_offset;
    }
    return produced;
}

}  // namespace artmem::tenancy
