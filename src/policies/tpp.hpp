/**
 * @file
 * TPP (Transparent Page Placement, ASPLOS'23) emulation.
 *
 * Key designs reproduced (Table 1 of the ArtMem paper): a *lightweight
 * proactive demotion* path that keeps a free-page headroom in the fast
 * tier so allocations and promotions never stall (decoupled allocation
 * and reclamation), and a promotion path driven by NUMA hint faults on
 * slow-tier pages with an LRU-active check — a page is promoted only on
 * its second fault inside a short window, filtering out single-touch
 * pages. Good on stable patterns; reacts slowly to bursts of new hot
 * pages (each page must fault twice first).
 */
#ifndef ARTMEM_POLICIES_TPP_HPP
#define ARTMEM_POLICIES_TPP_HPP

#include <memory>
#include <vector>

#include "lru/lru_lists.hpp"
#include "policies/policy.hpp"
#include "policies/scan_throttle.hpp"

namespace artmem::policies {

/** TPP: watermark demotion + hint-fault promotion with active check. */
class Tpp final : public Policy
{
  public:
    /** Tunables. */
    struct Config {
        /** Headroom kept free in the fast tier (fraction of capacity). */
        double demotion_watermark = 0.04;
        /** Fraction of slow-tier pages trap-armed per tick. */
        double scan_fraction = 1.0 / 16.0;
        /** Faults in consecutive scan sweeps required to count a slow
         *  page as LRU-active and promote it. */
        unsigned promote_streak = 2;
        /** Fraction of fast-tier pages LRU-aged per tick. */
        double age_fraction = 1.0 / 16.0;
        /** Promotions allowed per tick (migration rate limit). */
        std::size_t promote_limit = 3;
        /** CPU cost per page scanned (ns). */
        SimTimeNs scan_cost_ns = 8;
        /** Fault-rate target per tick for adaptive scan throttling. */
        std::uint64_t target_faults_per_tick = 150;
    };

    Tpp() = default;
    explicit Tpp(const Config& config) : config_(config) {}

    std::string_view name() const override { return "tpp"; }

    void init(memsim::TieredMachine& machine) override;
    void on_hint_fault(PageId page, memsim::Tier tier) override;
    void on_tick(SimTimeNs now) override;
    void on_tx_resolved(PageId page, memsim::Tier src, memsim::Tier dst,
                        bool committed) override;

  private:
    void feed_lru(std::size_t scan_count);
    void demote_to_watermark();

    Config config_;
    std::vector<std::uint32_t> last_sweep_;
    std::vector<std::uint8_t> streak_;
    std::unique_ptr<lru::LruLists> lists_;
    ScanThrottle throttle_{1.0 / 16.0, 150};
    PageId trap_cursor_ = 0;
    PageId lru_cursor_ = 0;
    std::uint32_t sweep_ = 1;
    std::size_t promoted_this_tick_ = 0;
    unsigned promotion_backoff_ = 0;
    std::vector<PageId> scratch_;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_TPP_HPP
