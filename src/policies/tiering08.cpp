#include "policies/tiering08.hpp"

#include <algorithm>

namespace artmem::policies {

void
Tiering08::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    fault_count_.assign(machine.page_count(), 0);
    queued_.assign(machine.page_count(), 0);
    promote_queue_.clear();
    throttle_ =
        ScanThrottle(config_.scan_fraction, config_.target_faults_per_tick);
    scan_cursor_ = 0;
    demote_cursor_ = 0;
    threshold_ = config_.hot_threshold;
    last_ratio_ = 1.0;
    machine.set_fault_handler(
        [this](PageId page, memsim::Tier tier) { on_hint_fault(page, tier); });
}

void
Tiering08::on_hint_fault(PageId page, memsim::Tier tier)
{
    throttle_.on_fault();
    if (fault_count_[page] < std::uint16_t{0xffff})
        ++fault_count_[page];
    if (tier == memsim::Tier::kSlow && fault_count_[page] >= threshold_ &&
        !queued_[page]) {
        queued_[page] = 1;
        promote_queue_.push_back(page);
    }
}

void
Tiering08::on_samples(std::span<const memsim::PebsSample> samples)
{
    for (const auto& s : samples)
        ++window_hits_[static_cast<int>(s.tier)];
}

void
Tiering08::on_tick(SimTimeNs now)
{
    (void)now;
    auto& m = machine();
    const std::size_t pages = m.page_count();
    auto window = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(pages) *
                                    throttle_.tick()));
    for (std::size_t i = 0; i < window; ++i) {
        const PageId page = scan_cursor_;
        scan_cursor_ = static_cast<PageId>((scan_cursor_ + 1) % pages);
        if (m.is_allocated(page))
            m.set_trap(page);
    }
    m.charge_overhead(window * config_.scan_cost_ns);
}

void
Tiering08::demote_to_watermark()
{
    auto& m = machine();
    const auto capacity = m.capacity_pages(memsim::Tier::kFast);
    const auto target = static_cast<std::size_t>(
        static_cast<double>(capacity) * config_.free_watermark);
    const std::size_t pages = m.page_count();
    std::size_t scanned = 0;
    while (m.free_pages(memsim::Tier::kFast) < target && scanned < pages) {
        const PageId page = demote_cursor_;
        demote_cursor_ = static_cast<PageId>((demote_cursor_ + 1) % pages);
        ++scanned;
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kFast) {
            continue;
        }
        if (!m.test_and_clear_accessed(page)) {
            // The sweep presses on whatever the outcome — failures are
            // visible in the machine's failure counters — so the typed
            // result is deliberately discarded.
            (void)m.migrate(page, memsim::Tier::kSlow);
        }
    }
    m.charge_overhead(scanned * config_.scan_cost_ns);
}

void
Tiering08::on_interval(SimTimeNs now)
{
    auto& m = machine();

    // Workload-change detection from the sampled fast-tier hit ratio.
    const std::uint64_t total = window_hits_[0] + window_hits_[1];
    if (total > 0) {
        const double ratio =
            static_cast<double>(window_hits_[0]) / static_cast<double>(total);
        if (last_ratio_ - ratio > config_.change_delta) {
            // Access pattern shifted: stale fault counts are misleading;
            // reset the pipeline so new hot pages qualify quickly.
            std::fill(fault_count_.begin(), fault_count_.end(), 0);
            threshold_ = config_.hot_threshold;
        }
        last_ratio_ = ratio;
    }
    window_hits_[0] = 0;
    window_hits_[1] = 0;

    demote_to_watermark();
    const std::size_t demand = promote_queue_.size();
    std::size_t promoted = 0;
    for (PageId page : promote_queue_) {
        if (promoted >= config_.promote_limit)
            break;
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kSlow) {
            continue;
        }
        if (m.free_pages(memsim::Tier::kFast) == 0)
            demote_to_watermark();
        const auto result = m.migrate(page, memsim::Tier::kFast);
        if (result.ok() || result.pending())
            ++promoted;
        else if (!result.faulted() && !result.busy() && !result.denied())
            break;  // saturated: a fault or tenant denial skips one page
    }
    for (PageId page : promote_queue_)
        queued_[page] = 0;
    promote_queue_.clear();

    // Threshold self-tuning: raise it when the promotion demand far
    // exceeds the migration budget, relax it toward the base otherwise.
    if (demand > 4 * config_.promote_limit &&
        threshold_ < config_.max_threshold) {
        threshold_ += config_.threshold_step;
    } else if (threshold_ > config_.hot_threshold &&
               demand < config_.promote_limit) {
        threshold_ -= config_.threshold_step;
    }

    // Fault counts decay periodically so they track the recent fault
    // *rate* rather than all-time totals (otherwise every warm page
    // eventually clears any threshold).
    if (++interval_count_ % config_.decay_every == 0) {
        for (auto& c : fault_count_)
            c >>= 1;
    }
    if (auto* t = trace(telemetry::Category::kMigration)) {
        t->instant(telemetry::Category::kMigration, "policy_interval", now,
                   telemetry::Args()
                       .add("policy", name())
                       .add("threshold", threshold_)
                       .add("demand", static_cast<std::uint64_t>(demand))
                       .add("promoted",
                            static_cast<std::uint64_t>(promoted))
                       .str());
    }
}

}  // namespace artmem::policies
