/**
 * @file
 * Nimble (ASPLOS'19) emulation.
 *
 * Key designs reproduced: page hotness is obtained by periodically
 * scanning page-table accessed bits (one bit of information per scan
 * round — hence the paper's "slow page hotness differentiation"), and
 * migrations are issued in large batches using Nimble's optimized
 * multi-threaded/exchange migration mechanism (modelled as a reduced
 * fixed per-page cost). Good when spatial locality is high; bad on
 * random/warm access where a single accessed bit cannot separate hot
 * from lukewarm pages.
 */
#ifndef ARTMEM_POLICIES_NIMBLE_HPP
#define ARTMEM_POLICIES_NIMBLE_HPP

#include <vector>

#include "policies/policy.hpp"

namespace artmem::policies {

/** Nimble: accessed-bit scans + large batched migrations. */
class Nimble final : public Policy
{
  public:
    /** Tunables. */
    struct Config {
        /** Promote at most this many pages per scan round. */
        std::size_t batch_pages = 128;
        /** Scan every Nth decision interval (scans are expensive). */
        unsigned scan_every = 2;
        /** A page is promotion-eligible after this many consecutive
         *  scan rounds with the accessed bit set. */
        unsigned hot_rounds = 3;
        /** CPU cost per page-table entry scanned (ns). */
        SimTimeNs scan_cost_ns = 10;
    };

    Nimble() = default;
    explicit Nimble(const Config& config) : config_(config) {}

    std::string_view name() const override { return "nimble"; }

    void init(memsim::TieredMachine& machine) override;
    void on_interval(SimTimeNs now) override;

  private:
    Config config_;
    std::vector<std::uint8_t> hot_streak_;
    std::vector<std::uint8_t> cold_streak_;
    unsigned interval_count_ = 0;
    std::vector<PageId> promote_;
    std::vector<PageId> demote_;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_NIMBLE_HPP
