#include "policies/tpp.hpp"

#include <algorithm>

namespace artmem::policies {

void
Tpp::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    last_sweep_.assign(machine.page_count(), 0);
    streak_.assign(machine.page_count(), 0);
    lists_ = std::make_unique<lru::LruLists>(machine.page_count());
    throttle_ =
        ScanThrottle(config_.scan_fraction, config_.target_faults_per_tick);
    trap_cursor_ = 0;
    lru_cursor_ = 0;
    sweep_ = 1;
    machine.set_fault_handler(
        [this](PageId page, memsim::Tier tier) { on_hint_fault(page, tier); });
}

void
Tpp::on_hint_fault(PageId page, memsim::Tier tier)
{
    if (tier != memsim::Tier::kSlow)
        return;
    throttle_.on_fault();
    if (sweep_ - last_sweep_[page] <= 1)
        streak_[page] = static_cast<std::uint8_t>(
            std::min<unsigned>(255, streak_[page] + 1));
    else
        streak_[page] = 1;
    last_sweep_[page] = sweep_;
    if (streak_[page] < config_.promote_streak)
        return;  // not yet "active" enough to promote
    if (promoted_this_tick_ >= config_.promote_limit ||
        promotion_backoff_ > 0) {
        return;  // rate-limited or under demotion pressure
    }
    auto& m = machine();
    if (m.free_pages(memsim::Tier::kFast) == 0)
        demote_to_watermark();
    const auto result = m.migrate(page, memsim::Tier::kFast);
    if (result.ok()) {
        // Promoted pages land on the fast active list (they just faulted).
        lists_->remove(page);
        lists_->insert_head(page, lru::ListId::kFastActive);
        ++promoted_this_tick_;
    } else if (result.pending()) {
        // Transactional open: the page keeps its slow-list slot until
        // the commit re-homes it in on_tx_resolved().
        ++promoted_this_tick_;
    }
}

void
Tpp::on_tx_resolved(PageId page, memsim::Tier src, memsim::Tier dst,
                    bool committed)
{
    (void)src;
    if (!committed)
        return;  // aborted: the page never left its tier or its list
    lists_->remove(page);
    lists_->insert_head(page, dst == memsim::Tier::kFast
                                  ? lru::ListId::kFastActive
                                  : lru::ListId::kSlowInactive);
}

void
Tpp::feed_lru(std::size_t scan_count)
{
    auto& m = machine();
    const std::size_t pages = m.page_count();
    for (std::size_t i = 0; i < scan_count; ++i) {
        const PageId page = lru_cursor_;
        lru_cursor_ = static_cast<PageId>((lru_cursor_ + 1) % pages);
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kFast) {
            continue;
        }
        if (m.test_and_clear_accessed(page)) {
            lists_->touch(page, memsim::Tier::kFast);
        } else if (lists_->where(page) == lru::ListId::kNone) {
            lists_->insert_tail(page, lru::ListId::kFastInactive);
        }
    }
    m.charge_overhead(scan_count * config_.scan_cost_ns);
}

void
Tpp::demote_to_watermark()
{
    auto& m = machine();
    const auto capacity = m.capacity_pages(memsim::Tier::kFast);
    const auto target = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(capacity) *
                                    config_.demotion_watermark));
    std::size_t guard = capacity + 1;
    while (m.free_pages(memsim::Tier::kFast) < target && guard-- > 0) {
        scratch_.clear();
        lists_->scan_inactive(memsim::Tier::kFast, 32, scratch_);
        if (scratch_.empty()) {
            // Inactive exhausted or fully referenced: age the active list
            // to refill it; if aging finds nothing cold either, give up
            // (the fast tier is genuinely all-hot).
            if (lists_->age_active(memsim::Tier::kFast, 64) == 0 &&
                lists_->size(lru::ListId::kFastInactive) == 0) {
                break;
            }
            continue;
        }
        for (PageId page : scratch_) {
            lists_->remove(page);
            const auto result = m.migrate(page, memsim::Tier::kSlow);
            if (result.ok() || result.pending())
                streak_[page] = 0;  // fresh PTE: fault stats reset
            if (m.free_pages(memsim::Tier::kFast) >= target)
                break;
        }
    }
    // Headroom unattainable: everything resident is referenced, so
    // promotions would churn hot pages against hot pages. Back off.
    if (m.free_pages(memsim::Tier::kFast) < target)
        promotion_backoff_ = 8;
}

void
Tpp::on_tick(SimTimeNs now)
{
    // Promotions happen in the hint-fault handler between ticks; the
    // tick closes that window, so report it here (and only when pages
    // actually moved — hint-fault ticks are frequent).
    if (promoted_this_tick_ > 0) {
        if (auto* t = trace(telemetry::Category::kMigration)) {
            t->instant(telemetry::Category::kMigration, "policy_tick", now,
                       telemetry::Args()
                           .add("policy", name())
                           .add("promoted",
                                static_cast<std::uint64_t>(
                                    promoted_this_tick_))
                           .str());
        }
    }
    promoted_this_tick_ = 0;
    if (promotion_backoff_ > 0)
        --promotion_backoff_;
    auto& m = machine();
    const std::size_t pages = m.page_count();

    // LRU upkeep on the fast tier.
    const auto lru_scan = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(pages) *
                                    config_.age_fraction));
    feed_lru(lru_scan);
    lists_->age_active(memsim::Tier::kFast, lru_scan / 4);

    // Proactive, lightweight demotion keeps the headroom available so
    // that promotion and allocation never wait for reclaim.
    demote_to_watermark();

    // Arm hint-fault traps on slow-tier pages only (promotion path),
    // at the throttled scan rate.
    auto window = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(pages) *
                                    throttle_.tick()));
    for (std::size_t i = 0; i < window; ++i) {
        const PageId page = trap_cursor_;
        trap_cursor_ = static_cast<PageId>((trap_cursor_ + 1) % pages);
        if (trap_cursor_ == 0)
            ++sweep_;
        if (m.is_allocated(page) && m.tier_of(page) == memsim::Tier::kSlow)
            m.set_trap(page);
    }
    m.charge_overhead(window * config_.scan_cost_ns);
}

}  // namespace artmem::policies
