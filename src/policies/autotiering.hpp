/**
 * @file
 * AutoTiering (USENIX ATC'21) emulation.
 *
 * Key designs reproduced: promotion is *opportunistic* — a slow-tier
 * page is promoted on its very first hint fault when the fast tier has
 * free space (OPM); when the fast tier is full, the faulting page's
 * NUMA-fault count is compared with the coldest fast-tier pages and the
 * two are *exchanged* (CPM swap migration). Pages are effectively sorted
 * by per-page fault counts. Fast at separating clearly hot from clearly
 * cold data; churns on warm data because single faults trigger moves
 * (Table 1: disadvantage "warm data").
 */
#ifndef ARTMEM_POLICIES_AUTOTIERING_HPP
#define ARTMEM_POLICIES_AUTOTIERING_HPP

#include <vector>

#include "policies/policy.hpp"
#include "policies/scan_throttle.hpp"

namespace artmem::policies {

/** AutoTiering: opportunistic promotion + exchange migrations. */
class AutoTiering final : public Policy
{
  public:
    /** Tunables. */
    struct Config {
        /** Fraction of the address space trap-armed per tick. */
        double scan_fraction = 1.0 / 32.0;
        /** Halve fault counts every N intervals (history retention). */
        unsigned decay_every = 8;
        /** Pages examined when searching for a cold exchange victim. */
        std::size_t victim_scan = 128;
        /** Exchanges allowed per interval (swap-migration rate limit). */
        std::size_t exchange_limit = 32;
        /** CPU cost per page scanned (ns). */
        SimTimeNs scan_cost_ns = 8;
        /** Fault-rate target per tick for adaptive scan throttling. */
        std::uint64_t target_faults_per_tick = 150;
    };

    AutoTiering() = default;
    explicit AutoTiering(const Config& config) : config_(config) {}

    std::string_view name() const override { return "autotiering"; }

    void init(memsim::TieredMachine& machine) override;
    void on_hint_fault(PageId page, memsim::Tier tier) override;
    void on_tick(SimTimeNs now) override;
    void on_interval(SimTimeNs now) override;

  private:
    PageId find_cold_fast_page();

    Config config_;
    std::vector<std::uint32_t> fault_count_;
    std::vector<PageId> exchange_queue_;
    ScanThrottle throttle_{1.0 / 32.0, 48};
    PageId scan_cursor_ = 0;
    PageId victim_cursor_ = 0;
    unsigned interval_count_ = 0;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_AUTOTIERING_HPP
