/**
 * @file
 * Adaptive scan-rate throttle for hint-fault-based policies.
 *
 * Linux NUMA balancing adapts its scan period (numa_scan_period_min/max)
 * to the observed fault rate so that fault handling does not swamp the
 * application. The same mechanism is reproduced here: policies that arm
 * hint-fault traps report the faults observed each tick, and the
 * throttle halves the scan fraction when faults exceed the target band
 * and doubles it when faults are scarce.
 */
#ifndef ARTMEM_POLICIES_SCAN_THROTTLE_HPP
#define ARTMEM_POLICIES_SCAN_THROTTLE_HPP

#include <algorithm>
#include <cstdint>

namespace artmem::policies {

/** Multiplicative fault-rate controller for trap-arming policies. */
class ScanThrottle
{
  public:
    /**
     * @param base_fraction Fraction of the address space armed per tick
     *                      at full speed.
     * @param target_faults Faults per tick the controller aims for.
     */
    ScanThrottle(double base_fraction, std::uint64_t target_faults)
        : base_(base_fraction),
          fraction_(base_fraction),
          target_(target_faults)
    {
    }

    /** Record one fault (call from the fault handler). */
    void on_fault() { ++window_faults_; }

    /**
     * Close the tick window and adapt.
     * @return the scan fraction to use for the next tick.
     */
    double
    tick()
    {
        if (window_faults_ > 2 * target_)
            fraction_ = std::max(fraction_ / 2.0, base_ / 4096.0);
        else if (window_faults_ < target_ / 2)
            fraction_ = std::min(fraction_ * 2.0, base_);
        window_faults_ = 0;
        return fraction_;
    }

    /** Current scan fraction. */
    double fraction() const { return fraction_; }

  private:
    double base_;
    double fraction_;
    std::uint64_t target_;
    std::uint64_t window_faults_ = 0;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_SCAN_THROTTLE_HPP
