/**
 * @file
 * AutoNUMA-style tiering (Linux automatic NUMA balancing extended with
 * tier demotion, as evaluated by the paper on kernel v5.18).
 *
 * Mechanism: the balancer periodically unmaps a sliding window of the
 * address space (modelled as hint-fault traps); the scan rate adapts to
 * the observed fault rate exactly like numa_scan_period does. A page
 * that faults in consecutive scan sweeps is considered frequently
 * accessed and promoted (the kernel's two-hint-fault filter, expressed
 * in scan epochs so it is scan-rate invariant). Promotions are rate
 * limited. When fast-tier free space falls below a watermark, a
 * kswapd-style pass demotes pages whose accessed bit stayed clear.
 * Table 1 profile: good on stable patterns, slow on bursts of new hot
 * pages (two sweeps must observe a page before it moves).
 */
#ifndef ARTMEM_POLICIES_AUTONUMA_HPP
#define ARTMEM_POLICIES_AUTONUMA_HPP

#include <vector>

#include "policies/policy.hpp"
#include "policies/scan_throttle.hpp"

namespace artmem::policies {

/** Linux AutoNUMA balancing + demotion emulation. */
class AutoNuma final : public Policy
{
  public:
    /** Tunables; defaults approximate kernel defaults scaled to sim time. */
    struct Config {
        /** Fraction of the address space trap-armed per tick. */
        double scan_fraction = 1.0 / 32.0;
        /** Faults in consecutive sweeps needed to promote. */
        unsigned promote_streak = 2;
        /** Promotion rate limit per decision interval (pages). */
        std::size_t promote_limit = 48;
        /** Keep at least this fraction of the fast tier free. */
        double free_watermark = 0.01;
        /** CPU cost charged per page scanned (ns). */
        SimTimeNs scan_cost_ns = 8;
        /** Fault-rate target per tick for adaptive scan throttling
         *  (numa_scan_period adaptation). */
        std::uint64_t target_faults_per_tick = 150;
    };

    AutoNuma() = default;
    explicit AutoNuma(const Config& config) : config_(config) {}

    std::string_view name() const override { return "autonuma"; }

    void init(memsim::TieredMachine& machine) override;
    void on_hint_fault(PageId page, memsim::Tier tier) override;
    void on_tick(SimTimeNs now) override;
    void on_interval(SimTimeNs now) override;

  private:
    void demote_to_watermark();

    Config config_;
    std::vector<std::uint32_t> last_sweep_;
    std::vector<std::uint8_t> streak_;
    std::vector<PageId> promote_queue_;
    ScanThrottle throttle_{1.0 / 32.0, 150};
    PageId scan_cursor_ = 0;
    PageId demote_cursor_ = 0;
    std::uint32_t sweep_ = 1;
    unsigned promotion_backoff_ = 0;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_AUTONUMA_HPP
