/**
 * @file
 * MEMTIS (SOSP'23) emulation.
 *
 * Key designs reproduced: PEBS-sampled per-page access counts kept as an
 * exponential moving average in power-of-two histogram bins; a hotness
 * threshold derived from the DRAM-tier capacity (walk the bins from hot
 * to cold until the cumulative hot set would no longer fit); cooling by
 * halving all counts every `cooling_period` samples; and an eager
 * migration policy that promotes *every* page above the threshold while
 * demoting below-threshold pages to make room.
 *
 * This is the paper's prime example of the migration-scope problem
 * (Observation 3): with a capacity-derived threshold, Pattern S1 marks
 * all pages hot and migrates ~15 GB when 1 GB suffices, and Pattern S4
 * (hot set > DRAM) thrashes.
 */
#ifndef ARTMEM_POLICIES_MEMTIS_HPP
#define ARTMEM_POLICIES_MEMTIS_HPP

#include <memory>
#include <vector>

#include "policies/policy.hpp"
#include "stats/ema_bins.hpp"

namespace artmem::policies {

/** MEMTIS: EMA bins + capacity threshold + migrate-all-hot. */
class Memtis final : public Policy
{
  public:
    /** Tunables. */
    struct Config {
        /** Samples between cooling events (paper full-scale: 2M;
         *  scaled to this repo's access volumes). */
        std::uint64_t cooling_period = 400000;
        /** Migration rate limit per interval, in pages. */
        std::size_t migrate_limit = 256;
        /**
         * Manual threshold override for the Figure 4 study: when > 0,
         * the capacity-derived threshold is replaced by this sampled
         * access count.
         */
        std::uint32_t manual_threshold = 0;
    };

    Memtis() = default;
    explicit Memtis(const Config& config) : config_(config) {}

    std::string_view name() const override { return "memtis"; }

    void init(memsim::TieredMachine& machine) override;
    void on_samples(std::span<const memsim::PebsSample> samples) override;
    void on_interval(SimTimeNs now) override;

    /** Threshold currently in force (for tests and Fig. 4). */
    std::uint32_t current_threshold() const { return threshold_; }

    /** Access to the histogram (tests). */
    const stats::EmaBins& bins() const { return *bins_; }

  private:
    Config config_;
    std::unique_ptr<stats::EmaBins> bins_;
    std::uint32_t threshold_ = 1;
    std::vector<PageId> promote_;
    std::vector<PageId> demote_;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_MEMTIS_HPP
