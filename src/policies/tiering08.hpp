/**
 * @file
 * Tiering-0.8 (kernel tiering development tree) emulation.
 *
 * Key design reproduced (Table 1): an AutoNUMA-style hint-fault
 * promotion pipeline whose hotness threshold (fault count needed to
 * promote) is *reset when a workload change is detected*, where change
 * detection watches the fast-tier hit ratio reported by the PMU. Good
 * on workloads with high spatial locality; the fault-count accumulation
 * misbehaves on random access.
 */
#ifndef ARTMEM_POLICIES_TIERING08_HPP
#define ARTMEM_POLICIES_TIERING08_HPP

#include <vector>

#include "policies/policy.hpp"
#include "policies/scan_throttle.hpp"

namespace artmem::policies {

/** Tiering-0.8: fault-count promotion + threshold reset on change. */
class Tiering08 final : public Policy
{
  public:
    /** Tunables. */
    struct Config {
        /** Fraction of the address space trap-armed per tick. */
        double scan_fraction = 1.0 / 32.0;
        /** Initial fault-count threshold for promotion. */
        std::uint32_t hot_threshold = 2;
        /** Threshold raised when promotions overflow DRAM, lowered when
         *  DRAM underused: adjustment step. */
        std::uint32_t threshold_step = 1;
        /** Upper clamp for the self-tuned threshold. */
        std::uint32_t max_threshold = 16;
        /** Halve fault counts every N intervals. Must exceed the trap
         *  sweep period in intervals, or counts can never reach the
         *  promotion threshold. */
        unsigned decay_every = 8;
        /** Fast-ratio drop (absolute) treated as a workload change. */
        double change_delta = 0.15;
        /** Promotion limit per interval (pages). */
        std::size_t promote_limit = 128;
        /** Keep this fraction of fast tier free via cold demotion. */
        double free_watermark = 0.01;
        /** CPU cost per page scanned (ns). */
        SimTimeNs scan_cost_ns = 8;
        /** Fault-rate target per tick for adaptive scan throttling. */
        std::uint64_t target_faults_per_tick = 150;
    };

    Tiering08() = default;
    explicit Tiering08(const Config& config) : config_(config) {}

    std::string_view name() const override { return "tiering08"; }

    void init(memsim::TieredMachine& machine) override;
    void on_hint_fault(PageId page, memsim::Tier tier) override;
    void on_samples(std::span<const memsim::PebsSample> samples) override;
    void on_tick(SimTimeNs now) override;
    void on_interval(SimTimeNs now) override;

    /** Current promotion threshold (tests). */
    std::uint32_t current_threshold() const { return threshold_; }

  private:
    void demote_to_watermark();

    Config config_;
    std::vector<std::uint16_t> fault_count_;
    std::vector<std::uint8_t> queued_;
    std::vector<PageId> promote_queue_;
    ScanThrottle throttle_{1.0 / 32.0, 48};
    PageId scan_cursor_ = 0;
    PageId demote_cursor_ = 0;
    std::uint32_t threshold_ = 2;
    unsigned interval_count_ = 0;
    double last_ratio_ = 1.0;
    std::uint64_t window_hits_[memsim::kTierCount] = {0, 0};
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_TIERING08_HPP
