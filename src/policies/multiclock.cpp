#include "policies/multiclock.hpp"

#include <algorithm>

namespace artmem::policies {

void
MultiClock::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    candidate_.assign(machine.page_count(), 0);
    cold_count_.assign(machine.page_count(), 0);
    slow_hand_ = 0;
    fast_hand_ = 0;
}

void
MultiClock::sweep_slow_hand(std::size_t budget)
{
    auto& m = machine();
    const std::size_t pages = m.page_count();
    std::size_t examined = 0;
    for (std::size_t i = 0; i < pages && examined < budget; ++i) {
        const PageId page = slow_hand_;
        slow_hand_ = static_cast<PageId>((slow_hand_ + 1) % pages);
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kSlow) {
            continue;
        }
        ++examined;
        const bool accessed = m.test_and_clear_accessed(page);
        if (!accessed) {
            candidate_[page] = 0;
            continue;
        }
        if (!candidate_[page]) {
            // First sighting: stage on the candidate list.
            candidate_[page] = 1;
            continue;
        }
        // Accessed again while a candidate: promote if space permits.
        if (promoted_this_tick_ < config_.promote_limit &&
            m.free_pages(memsim::Tier::kFast) > 0) {
            const auto result = m.migrate(page, memsim::Tier::kFast);
            if (result.ok() || result.pending()) {
                candidate_[page] = 0;
                cold_count_[page] = 0;
                ++promoted_this_tick_;
            }
        }
    }
    m.charge_overhead(examined * config_.scan_cost_ns);
}

void
MultiClock::sweep_fast_hand(std::size_t budget)
{
    auto& m = machine();
    const auto capacity = m.capacity_pages(memsim::Tier::kFast);
    const auto watermark = static_cast<std::size_t>(
        static_cast<double>(capacity) * config_.free_watermark);
    const std::size_t pages = m.page_count();
    std::size_t examined = 0;
    for (std::size_t i = 0; i < pages && examined < budget; ++i) {
        const PageId page = fast_hand_;
        fast_hand_ = static_cast<PageId>((fast_hand_ + 1) % pages);
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kFast) {
            continue;
        }
        ++examined;
        if (m.test_and_clear_accessed(page)) {
            cold_count_[page] = 0;
            continue;
        }
        cold_count_[page] = static_cast<std::uint8_t>(
            std::min<unsigned>(255, cold_count_[page] + 1));
        // Conservative demotion: only under pressure, only after the
        // page stayed cold for several rounds.
        if (m.free_pages(memsim::Tier::kFast) < watermark &&
            cold_count_[page] >= config_.cold_rounds) {
            const auto result = m.migrate(page, memsim::Tier::kSlow);
            if (result.ok() || result.pending())
                cold_count_[page] = 0;
        }
    }
    m.charge_overhead(examined * config_.scan_cost_ns);
}

void
MultiClock::on_tick(SimTimeNs now)
{
    auto& m = machine();
    promoted_this_tick_ = 0;
    const auto slow_budget = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(m.used_pages(memsim::Tier::kSlow)) *
               config_.hand_fraction));
    const auto fast_budget = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(m.used_pages(memsim::Tier::kFast)) *
               config_.hand_fraction));
    sweep_fast_hand(fast_budget);
    sweep_slow_hand(slow_budget);
    // Sweeps run every tick; trace only the ones that moved pages.
    if (promoted_this_tick_ > 0) {
        if (auto* t = trace(telemetry::Category::kMigration)) {
            t->instant(telemetry::Category::kMigration, "policy_tick", now,
                       telemetry::Args()
                           .add("policy", name())
                           .add("promoted",
                                static_cast<std::uint64_t>(
                                    promoted_this_tick_))
                           .str());
        }
    }
}

}  // namespace artmem::policies
