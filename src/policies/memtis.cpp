#include "policies/memtis.hpp"

#include <algorithm>

namespace artmem::policies {

void
Memtis::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    bins_ = std::make_unique<stats::EmaBins>(machine.page_count(),
                                             config_.cooling_period);
    threshold_ = 1;
}

void
Memtis::on_samples(std::span<const memsim::PebsSample> samples)
{
    for (const auto& s : samples)
        bins_->record(s.page);
    if (bins_->cooling_due())
        bins_->cool();
}

void
Memtis::on_interval(SimTimeNs now)
{
    auto& m = machine();
    const std::uint32_t old_threshold = threshold_;
    threshold_ = config_.manual_threshold > 0
                     ? config_.manual_threshold
                     : bins_->capacity_threshold(
                           m.capacity_pages(memsim::Tier::kFast));
    if (threshold_ != old_threshold) {
        if (auto* t = trace(telemetry::Category::kThreshold)) {
            t->instant(telemetry::Category::kThreshold, "move", now,
                       telemetry::Args()
                           .add("threshold", threshold_)
                           .str());
        }
    }

    // Promote everything at or above the threshold; demote cold pages
    // (lowest counts first) to make room. No scope control beyond the
    // bandwidth-style rate limit.
    promote_.clear();
    demote_.clear();
    const std::size_t pages = m.page_count();
    // The classification pass walks every page each interval — the CPU
    // cost of MEMTIS's migration threads the paper measures at ~10x
    // ArtMem's (Section 6.3.3).
    m.charge_overhead(pages * 4);
    for (PageId page = 0; page < pages; ++page) {
        if (!m.is_allocated(page))
            continue;
        const bool hot = bins_->count(page) >= threshold_;
        const bool fast = m.tier_of(page) == memsim::Tier::kFast;
        if (hot && !fast)
            promote_.push_back(page);
        else if (!hot && fast)
            demote_.push_back(page);
    }

    // Hottest candidates first; coldest victims first.
    std::sort(promote_.begin(), promote_.end(),
              [this](PageId a, PageId b) {
                  return bins_->count(a) > bins_->count(b);
              });
    std::sort(demote_.begin(), demote_.end(),
              [this](PageId a, PageId b) {
                  return bins_->count(a) < bins_->count(b);
              });

    std::size_t moved = 0;
    std::size_t victim = 0;
    bool out_of_victims = false;
    for (PageId page : promote_) {
        if (moved >= config_.migrate_limit)
            break;
        while (m.free_pages(memsim::Tier::kFast) == 0) {
            if (victim >= demote_.size()) {
                out_of_victims = true;
                break;
            }
            // Only a successful (or transactionally pending) demotion
            // counts against the rate limit; a failed one (pinned or
            // aborted under fault injection) moved nothing, so the
            // next victim is tried instead.
            const auto result =
                m.migrate(demote_[victim++], memsim::Tier::kSlow);
            if (result.ok() || result.pending())
                ++moved;
            if (result.pending())
                break;  // the slot frees at commit, not now
        }
        if (out_of_victims)
            break;  // nothing cold to evict
        const auto result = m.migrate(page, memsim::Tier::kFast);
        if (result.ok() || result.pending())
            ++moved;
    }
    if (auto* t = trace(telemetry::Category::kMigration)) {
        t->instant(telemetry::Category::kMigration, "policy_interval", now,
                   telemetry::Args()
                       .add("policy", name())
                       .add("threshold", threshold_)
                       .add("candidates",
                            static_cast<std::uint64_t>(promote_.size()))
                       .add("moved", static_cast<std::uint64_t>(moved))
                       .str());
    }
}

}  // namespace artmem::policies
