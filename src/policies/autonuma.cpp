#include "policies/autonuma.hpp"

#include <algorithm>

namespace artmem::policies {

void
AutoNuma::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    last_sweep_.assign(machine.page_count(), 0);
    streak_.assign(machine.page_count(), 0);
    promote_queue_.clear();
    throttle_ =
        ScanThrottle(config_.scan_fraction, config_.target_faults_per_tick);
    scan_cursor_ = 0;
    demote_cursor_ = 0;
    sweep_ = 1;
    machine.set_fault_handler(
        [this](PageId page, memsim::Tier tier) { on_hint_fault(page, tier); });
}

void
AutoNuma::on_hint_fault(PageId page, memsim::Tier tier)
{
    throttle_.on_fault();
    // Streak accounting in scan-sweep epochs: faulting in consecutive
    // sweeps marks the page frequently accessed regardless of the
    // current (throttled) scan rate.
    if (sweep_ - last_sweep_[page] <= 1)
        streak_[page] = static_cast<std::uint8_t>(
            std::min<unsigned>(255, streak_[page] + 1));
    else
        streak_[page] = 1;
    last_sweep_[page] = sweep_;
    if (tier == memsim::Tier::kSlow &&
        streak_[page] >= config_.promote_streak) {
        promote_queue_.push_back(page);
    }
}

void
AutoNuma::on_tick(SimTimeNs now)
{
    (void)now;
    auto& m = machine();
    const std::size_t pages = m.page_count();
    auto window = static_cast<std::size_t>(
        static_cast<double>(pages) * throttle_.tick());
    window = std::max<std::size_t>(window, 1);
    for (std::size_t i = 0; i < window; ++i) {
        const PageId page = scan_cursor_;
        scan_cursor_ = static_cast<PageId>((scan_cursor_ + 1) % pages);
        if (scan_cursor_ == 0)
            ++sweep_;  // full pass completed
        if (m.is_allocated(page))
            m.set_trap(page);
    }
    m.charge_overhead(window * config_.scan_cost_ns);
}

void
AutoNuma::demote_to_watermark()
{
    auto& m = machine();
    const auto capacity = m.capacity_pages(memsim::Tier::kFast);
    const auto target = static_cast<std::size_t>(
        static_cast<double>(capacity) * config_.free_watermark);
    if (m.free_pages(memsim::Tier::kFast) >= target)
        return;
    // kswapd-style: sweep fast-tier pages, demoting ones whose accessed
    // bit stayed clear since the previous sweep.
    const std::size_t pages = m.page_count();
    std::size_t scanned = 0;
    while (m.free_pages(memsim::Tier::kFast) < target && scanned < pages) {
        const PageId page = demote_cursor_;
        demote_cursor_ = static_cast<PageId>((demote_cursor_ + 1) % pages);
        ++scanned;
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kFast) {
            continue;
        }
        if (!m.test_and_clear_accessed(page)) {
            const auto result = m.migrate(page, memsim::Tier::kSlow);
            if (result.ok() || result.pending())
                streak_[page] = 0;  // fresh PTE: fault stats reset
        }
    }
    m.charge_overhead(scanned * config_.scan_cost_ns);
    // Demotion pressure: if a large sweep could not restore the
    // watermark, the fast tier is full of genuinely warm pages and
    // promotions would only cause hot-for-hot churn; back off.
    if (m.free_pages(memsim::Tier::kFast) < target && scanned >= pages / 4)
        promotion_backoff_ = 8;
}

void
AutoNuma::on_interval(SimTimeNs now)
{
    auto& m = machine();
    if (promotion_backoff_ > 0)
        --promotion_backoff_;
    demote_to_watermark();
    std::size_t promoted = 0;
    if (promotion_backoff_ == 0) {
        for (PageId page : promote_queue_) {
            if (promoted >= config_.promote_limit)
                break;
            if (!m.is_allocated(page) ||
                m.tier_of(page) != memsim::Tier::kSlow) {
                continue;
            }
            if (m.free_pages(memsim::Tier::kFast) == 0)
                demote_to_watermark();
            const auto result = m.migrate(page, memsim::Tier::kFast);
            if (result.ok() || result.pending())
                ++promoted;
            else if (!result.faulted() && !result.busy() &&
                     !result.denied())
                break;  // fast tier saturated and nothing demotable
            // Injected faults (pinned page, aborted copy), busy
            // transactional refusals, and per-tenant quota/admission
            // denials only skip this page; the rest of the queue (other
            // tenants included) may still promote fine.
        }
    }
    promote_queue_.clear();
    if (auto* t = trace(telemetry::Category::kMigration)) {
        t->instant(telemetry::Category::kMigration, "policy_interval", now,
                   telemetry::Args()
                       .add("policy", name())
                       .add("promoted",
                            static_cast<std::uint64_t>(promoted))
                       .add("backoff",
                            static_cast<std::uint64_t>(promotion_backoff_))
                       .str());
    }
}

}  // namespace artmem::policies
