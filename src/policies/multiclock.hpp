/**
 * @file
 * Multi-clock (HPCA'22) emulation.
 *
 * Key designs reproduced: each tier runs a CLOCK over its pages using
 * accessed bits, and the slow tier additionally keeps a *candidate* LRU
 * list — a page seen accessed by the slow clock hand enters the
 * candidate list, and only if it is seen accessed again while a
 * candidate is it promoted. Demotion is conservative: the fast clock
 * hand demotes pages only when free space is below a watermark and the
 * page has stayed cold for two consecutive rounds.
 *
 * Good when hot and cold data are easily distinguished; fails when the
 * hot set exceeds the fast tier (everything is always accessed, nothing
 * looks cold, demotion stalls and promotions starve — the paper's
 * Pattern S4 observation where 82% of pages never migrate).
 */
#ifndef ARTMEM_POLICIES_MULTICLOCK_HPP
#define ARTMEM_POLICIES_MULTICLOCK_HPP

#include <vector>

#include "policies/policy.hpp"

namespace artmem::policies {

/** Multi-clock: per-tier CLOCK hands + promotion candidate staging. */
class MultiClock final : public Policy
{
  public:
    /** Tunables. */
    struct Config {
        /** Fraction of each tier's pages the clock hand sweeps per tick. */
        double hand_fraction = 1.0 / 16.0;
        /** Free watermark below which the fast hand may demote. */
        double free_watermark = 0.02;
        /** Cold rounds required before a fast page may be demoted. */
        unsigned cold_rounds = 2;
        /** Promotions allowed per tick (migration rate limit). */
        std::size_t promote_limit = 2;
        /** CPU cost per page examined (ns). */
        SimTimeNs scan_cost_ns = 8;
    };

    MultiClock() = default;
    explicit MultiClock(const Config& config) : config_(config) {}

    std::string_view name() const override { return "multiclock"; }

    void init(memsim::TieredMachine& machine) override;
    void on_tick(SimTimeNs now) override;

  private:
    void sweep_slow_hand(std::size_t budget);
    void sweep_fast_hand(std::size_t budget);

    Config config_;
    std::vector<std::uint8_t> candidate_;
    std::vector<std::uint8_t> cold_count_;
    PageId slow_hand_ = 0;
    PageId fast_hand_ = 0;
    std::size_t promoted_this_tick_ = 0;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_MULTICLOCK_HPP
