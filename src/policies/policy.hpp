/**
 * @file
 * Abstract interface every tiering policy implements.
 *
 * The simulation engine (sim/engine.hpp) drives a policy with the same
 * stimuli a kernel policy receives on real hardware:
 *
 *  - on_samples(): the drained PEBS buffer, delivered at the sampling-
 *    thread cadence (ksampled in ArtMem);
 *  - on_hint_fault(): a NUMA-hint fault on a page the policy trapped;
 *  - on_tick(): periodic bookkeeping (page-table scans, LRU aging);
 *  - on_interval(): the migration/decision interval (kmigrated) where
 *    the policy is expected to issue promotions/demotions through the
 *    TieredMachine it was attached to.
 *
 * Policies are attached to exactly one machine per run and must be
 * reconstructed between runs.
 */
#ifndef ARTMEM_POLICIES_POLICY_HPP
#define ARTMEM_POLICIES_POLICY_HPP

#include <span>
#include <string_view>

#include "memsim/pebs.hpp"
#include "memsim/tiered_machine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/types.hpp"

namespace artmem::policies {

/** Base class for tiering policies (the seven baselines and ArtMem). */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Short identifier used in tables ("memtis", "artmem", ...). */
    virtual std::string_view name() const = 0;

    /**
     * Attach to the machine for a run. Overrides must call the base
     * implementation first.
     */
    virtual void
    init(memsim::TieredMachine& machine)
    {
        machine_ = &machine;
    }

    /** Drained PEBS samples since the previous delivery. */
    virtual void on_samples(std::span<const memsim::PebsSample> samples)
    {
        (void)samples;
    }

    /** A trapped page was accessed (page resides in @p tier). */
    virtual void on_hint_fault(PageId page, memsim::Tier tier)
    {
        (void)page;
        (void)tier;
    }

    /** Sampling-thread cadence bookkeeping. */
    virtual void on_tick(SimTimeNs now) { (void)now; }

    /** Migration/decision interval; issue migrations here. */
    virtual void on_interval(SimTimeNs now) { (void)now; }

    /**
     * A transactional migration this policy opened (migrate() returned
     * kTxOpened) has resolved: @p committed says whether the page now
     * resides in @p dst or a concurrent write aborted the copy and it
     * stayed in @p src. Delivered from TieredMachine::poll_tx() at
     * decision boundaries; only called in transactional mode. Policies
     * that keep per-page structures (LRU lists) re-home the page here.
     */
    virtual void on_tx_resolved(PageId page, memsim::Tier src,
                                memsim::Tier dst, bool committed)
    {
        (void)page;
        (void)src;
        (void)dst;
        (void)committed;
    }

    /**
     * Attach (or with nullptr detach) the run's telemetry bundle; the
     * engine calls this before init(). Overrides that forward it to
     * owned components must call the base implementation first.
     */
    virtual void set_telemetry(telemetry::Telemetry* telemetry)
    {
        telemetry_ = telemetry;
    }

  protected:
    /** The machine this policy is attached to; panics if detached. */
    memsim::TieredMachine&
    machine()
    {
        return *machine_;
    }

    /** Read-only machine access for const policy methods. */
    const memsim::TieredMachine&
    machine() const
    {
        return *machine_;
    }

    /** True once init() ran. */
    bool attached() const { return machine_ != nullptr; }

    /** The attached telemetry bundle, or nullptr when telemetry is off. */
    telemetry::Telemetry* telemetry() { return telemetry_; }

    /** Sink for @p cat, or nullptr — the branch-on-null idiom every
     *  instrumentation site uses (zero cost when telemetry is off). */
    telemetry::TraceSink* trace(telemetry::Category cat)
    {
        return telemetry_ != nullptr ? telemetry_->trace(cat) : nullptr;
    }

    /** Metrics shard, or nullptr when metrics collection is off. */
    telemetry::MetricsRegistry* metrics()
    {
        return telemetry_ != nullptr ? telemetry_->metrics() : nullptr;
    }

  private:
    memsim::TieredMachine* machine_ = nullptr;
    telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_POLICY_HPP
