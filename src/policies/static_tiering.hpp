/**
 * @file
 * The no-migration baseline: pages stay wherever first-touch placed
 * them. Figure 2 normalizes the seven tiering systems to this static
 * configuration.
 */
#ifndef ARTMEM_POLICIES_STATIC_TIERING_HPP
#define ARTMEM_POLICIES_STATIC_TIERING_HPP

#include "policies/policy.hpp"

namespace artmem::policies {

/** Static placement: never migrates. */
class StaticTiering final : public Policy
{
  public:
    std::string_view name() const override { return "static"; }
};

}  // namespace artmem::policies

#endif  // ARTMEM_POLICIES_STATIC_TIERING_HPP
