#include "policies/autotiering.hpp"

#include <algorithm>

namespace artmem::policies {

void
AutoTiering::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    fault_count_.assign(machine.page_count(), 0);
    exchange_queue_.clear();
    throttle_ =
        ScanThrottle(config_.scan_fraction, config_.target_faults_per_tick);
    scan_cursor_ = 0;
    victim_cursor_ = 0;
    machine.set_fault_handler(
        [this](PageId page, memsim::Tier tier) { on_hint_fault(page, tier); });
}

void
AutoTiering::on_hint_fault(PageId page, memsim::Tier tier)
{
    throttle_.on_fault();
    ++fault_count_[page];
    if (tier != memsim::Tier::kSlow)
        return;
    auto& m = machine();
    if (m.free_pages(memsim::Tier::kFast) > 0) {
        // OPM: opportunistic promotion on the first fault. A transient
        // injected failure (aborted copy, contended destination) defers
        // the page to the exchange pass instead of dropping it; a pinned
        // page is dropped — retrying is futile.
        const auto result = m.migrate(page, memsim::Tier::kFast);
        if (result.transient())
            exchange_queue_.push_back(page);
    } else {
        // Fast tier full: defer to the interval's exchange pass.
        exchange_queue_.push_back(page);
    }
}

void
AutoTiering::on_tick(SimTimeNs now)
{
    (void)now;
    auto& m = machine();
    const std::size_t pages = m.page_count();
    auto window = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(pages) *
                                    throttle_.tick()));
    for (std::size_t i = 0; i < window; ++i) {
        const PageId page = scan_cursor_;
        scan_cursor_ = static_cast<PageId>((scan_cursor_ + 1) % pages);
        if (m.is_allocated(page))
            m.set_trap(page);
    }
    m.charge_overhead(window * config_.scan_cost_ns);
}

PageId
AutoTiering::find_cold_fast_page()
{
    // Sampled min-scan over fast-tier pages by fault count.
    auto& m = machine();
    const std::size_t pages = m.page_count();
    PageId coldest = kInvalidPage;
    std::uint32_t coldest_count = ~0u;
    std::size_t examined = 0;
    for (std::size_t i = 0; i < pages && examined < config_.victim_scan;
         ++i) {
        const PageId page = victim_cursor_;
        victim_cursor_ = static_cast<PageId>((victim_cursor_ + 1) % pages);
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kFast) {
            continue;
        }
        ++examined;
        if (fault_count_[page] < coldest_count) {
            coldest_count = fault_count_[page];
            coldest = page;
        }
    }
    m.charge_overhead(examined * config_.scan_cost_ns);
    return coldest;
}

void
AutoTiering::on_interval(SimTimeNs now)
{
    auto& m = machine();
    std::size_t exchanged = 0;
    for (PageId page : exchange_queue_) {
        if (exchanged >= config_.exchange_limit)
            break;
        if (!m.is_allocated(page) ||
            m.tier_of(page) != memsim::Tier::kSlow) {
            continue;
        }
        if (m.free_pages(memsim::Tier::kFast) > 0) {
            const auto result = m.migrate(page, memsim::Tier::kFast);
            if (result.ok() || result.pending())
                ++exchanged;
            continue;
        }
        const PageId victim = find_cold_fast_page();
        if (victim == kInvalidPage)
            break;
        // CPM: swap only when the candidate is clearly hotter than the
        // victim (a margin of one fault avoids ping-pong between pages
        // of equal heat).
        if (fault_count_[page] > fault_count_[victim] + 1) {
            const auto result = m.exchange(page, victim);
            if (result.ok() || result.pending())
                ++exchanged;
        }
    }
    exchange_queue_.clear();

    // Age fault counts periodically so ordering follows recent behaviour.
    if (++interval_count_ % config_.decay_every == 0) {
        for (auto& c : fault_count_)
            c >>= 1;
    }
    if (auto* t = trace(telemetry::Category::kMigration)) {
        t->instant(telemetry::Category::kMigration, "policy_interval", now,
                   telemetry::Args()
                       .add("policy", name())
                       .add("exchanged",
                            static_cast<std::uint64_t>(exchanged))
                       .str());
    }
}

}  // namespace artmem::policies
