#include "policies/nimble.hpp"

#include <algorithm>

namespace artmem::policies {

void
Nimble::init(memsim::TieredMachine& machine)
{
    Policy::init(machine);
    hot_streak_.assign(machine.page_count(), 0);
    cold_streak_.assign(machine.page_count(), 0);
    interval_count_ = 0;
}

void
Nimble::on_interval(SimTimeNs now)
{
    if (++interval_count_ % config_.scan_every != 0)
        return;
    auto& m = machine();
    const std::size_t pages = m.page_count();

    promote_.clear();
    demote_.clear();
    for (PageId page = 0; page < pages; ++page) {
        if (!m.is_allocated(page))
            continue;
        const bool accessed = m.test_and_clear_accessed(page);
        if (accessed) {
            hot_streak_[page] =
                static_cast<std::uint8_t>(std::min(255, hot_streak_[page] + 1));
            cold_streak_[page] = 0;
        } else {
            cold_streak_[page] =
                static_cast<std::uint8_t>(std::min(255, cold_streak_[page] + 1));
            hot_streak_[page] = 0;
        }
        const bool fast = m.tier_of(page) == memsim::Tier::kFast;
        if (!fast && hot_streak_[page] >= config_.hot_rounds)
            promote_.push_back(page);
        else if (fast && cold_streak_[page] >= config_.hot_rounds)
            demote_.push_back(page);
    }
    m.charge_overhead(pages * config_.scan_cost_ns);

    // Batched migration: longest-hot candidates first (the only ranking
    // one accessed bit per round can provide), demote just enough cold
    // pages to make room, then promote the batch. Coldest-longest first.
    std::sort(promote_.begin(), promote_.end(),
              [this](PageId a, PageId b) {
                  return hot_streak_[a] > hot_streak_[b];
              });
    if (promote_.size() > config_.batch_pages)
        promote_.resize(config_.batch_pages);
    std::sort(demote_.begin(), demote_.end(),
              [this](PageId a, PageId b) {
                  return cold_streak_[a] > cold_streak_[b];
              });
    std::size_t need = promote_.size() > m.free_pages(memsim::Tier::kFast)
                           ? promote_.size() -
                                 m.free_pages(memsim::Tier::kFast)
                           : 0;
    std::size_t demoted = 0;
    for (PageId page : demote_) {
        if (need == 0)
            break;
        const auto result = m.migrate(page, memsim::Tier::kSlow);
        if (result.ok() || result.pending()) {
            --need;
            ++demoted;
        }
    }
    std::size_t promoted = 0;
    for (PageId page : promote_) {
        const auto result = m.migrate(page, memsim::Tier::kFast);
        if (result.ok() || result.pending())
            ++promoted;
    }
    if (auto* t = trace(telemetry::Category::kMigration)) {
        t->instant(telemetry::Category::kMigration, "policy_interval", now,
                   telemetry::Args()
                       .add("policy", name())
                       .add("promoted",
                            static_cast<std::uint64_t>(promoted))
                       .add("demoted",
                            static_cast<std::uint64_t>(demoted))
                       .str());
    }
}

}  // namespace artmem::policies
