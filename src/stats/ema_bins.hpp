/**
 * @file
 * Exponential (base-2) access-frequency histogram with cooling.
 *
 * ArtMem (Section 4.3) and MEMTIS track per-page sampled access counts
 * and group pages into exponential bins so the full access distribution
 * can be represented compactly. A cooling operation, triggered every
 * `cooling_period` samples (2 million in the paper's full-scale runs),
 * halves every per-page count and bin population to discount stale
 * history — the "exponential moving average" of access frequency.
 */
#ifndef ARTMEM_STATS_EMA_BINS_HPP
#define ARTMEM_STATS_EMA_BINS_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace artmem::stats {

/** Per-page sampled-access counters bucketed into power-of-two bins. */
class EmaBins
{
  public:
    /** Number of bins: bin 0 = count 0, bin b>=1 = counts [2^(b-1), 2^b). */
    static constexpr int kBins = 17;

    /**
     * @param page_count     Page id space size.
     * @param cooling_period Samples between automatic cooling events
     *                       (0 disables the internal trigger).
     */
    explicit EmaBins(std::size_t page_count,
                     std::uint64_t cooling_period = 0);

    /**
     * Record one sampled access to @p page. Inline: runs once per
     * drained PEBS sample on the engine's tick path (DESIGN.md §9).
     */
    void
    record(PageId page)
    {
        std::uint32_t& c = counts_[page];
        const int before = bin_of(c);
        // Saturate well below 2^kBins so cooling always shrinks the value.
        if (c < (1u << (kBins - 1)))
            ++c;
        const int after = bin_of(c);
        if (after != before) {
            --bins_[before];
            ++bins_[after];
        }
        ++samples_since_cooling_;
    }

    /** Sampled-access count of a page (post-cooling EMA value). */
    std::uint32_t count(PageId page) const { return counts_[page]; }

    /** Bin index a count falls into. */
    static int
    bin_of(std::uint32_t count)
    {
        if (count == 0)
            return 0;
        const int bin = std::bit_width(count);  // [2^(b-1), 2^b) -> b
        return bin >= kBins ? kBins - 1 : bin;
    }

    /** Smallest count belonging to @p bin (0 for bin 0). */
    static std::uint32_t bin_floor(int bin);

    /** Number of pages currently in @p bin. */
    std::uint64_t bin_pages(int bin) const { return bins_[bin]; }

    /** Samples recorded since the last cooling event. */
    std::uint64_t samples_since_cooling() const
    {
        return samples_since_cooling_;
    }

    /** Total cooling events so far. */
    std::uint64_t cooling_events() const { return cooling_events_; }

    /** True when the automatic cooling period has elapsed. */
    bool cooling_due() const
    {
        return cooling_period_ != 0 &&
               samples_since_cooling_ >= cooling_period_;
    }

    /** Halve every per-page count and rebuild the bins. */
    void cool();

    /**
     * MEMTIS-style capacity threshold: the smallest count T such that
     * the pages with count >= T fit into @p capacity_pages. Returns the
     * floor of the chosen bin; never below 1.
     */
    std::uint32_t capacity_threshold(std::size_t capacity_pages) const;

    /** Number of pages with count >= @p threshold (exact, O(pages)). */
    std::size_t pages_at_or_above(std::uint32_t threshold) const;

    /**
     * Append every page with count >= @p threshold to @p out.
     * @return number appended.
     */
    std::size_t collect_at_or_above(std::uint32_t threshold,
                                    std::vector<PageId>& out) const;

    /** Page id space size. */
    std::size_t page_count() const { return counts_.size(); }

  private:
    /** Test-only back door for deliberate histogram corruption
     *  (tests/test_verify.cpp). Never defined in the library. */
    friend struct EmaBinsTestPeer;

    std::vector<std::uint32_t> counts_;
    std::uint64_t bins_[kBins] = {};
    std::uint64_t cooling_period_;
    std::uint64_t samples_since_cooling_ = 0;
    std::uint64_t cooling_events_ = 0;
};

}  // namespace artmem::stats

#endif  // ARTMEM_STATS_EMA_BINS_HPP
