#include "stats/access_ratio.hpp"

#include "util/logging.hpp"

namespace artmem::stats {

AccessRatioTracker::AccessRatioTracker(int k) : k_(k)
{
    if (k <= 0)
        fatal("AccessRatioTracker: k must be positive");
}

TauState
AccessRatioTracker::peek() const
{
    TauState out;
    const std::uint64_t fast = hits_[0];
    const std::uint64_t slow = hits_[1];
    const std::uint64_t total = fast + slow;
    out.samples = total;
    if (total == 0) {
        // Dedicated no-sample state (paper: state k+1).
        out.state = k_ + 1;
        out.raw_ratio = 1.0;
        return out;
    }
    out.raw_ratio = static_cast<double>(fast) / static_cast<double>(total);
    // Equation 1: tau = floor(fast * k / (fast + slow)).
    out.state = static_cast<int>((fast * static_cast<std::uint64_t>(k_)) /
                                 total);
    return out;
}

TauState
AccessRatioTracker::take()
{
    TauState out = peek();
    hits_[0] = 0;
    hits_[1] = 0;
    return out;
}

}  // namespace artmem::stats
