/**
 * @file
 * Fast-tier access-ratio tracking and discretization into the RL state.
 *
 * The paper's Equation 1 maps the sampled DRAM access ratio of a period
 * into k+1 discrete states [0..k]; a separate state (k+1) distinguishes
 * "no events sampled" (e.g. everything hit in cache) from "all accesses
 * went to the slow tier", both of which would otherwise read as 0.
 */
#ifndef ARTMEM_STATS_ACCESS_RATIO_HPP
#define ARTMEM_STATS_ACCESS_RATIO_HPP

#include <cstdint>

#include "memsim/tier.hpp"

namespace artmem::stats {

/** Discretized access-ratio observation. */
struct TauState {
    /** State index in [0, k+1]; k+1 is the "no samples" state. */
    int state = 0;
    /** Raw ratio in [0,1]; 1.0 when there were no samples. */
    double raw_ratio = 1.0;
    /** Samples observed in the window. */
    std::uint64_t samples = 0;

    /** True when this is the dedicated no-sample state. */
    bool no_samples(int k) const { return state == k + 1; }
};

/** Accumulates per-window sampled tier hits and emits TauState. */
class AccessRatioTracker
{
  public:
    /** @param k Discretization granularity (paper uses k = 10). */
    explicit AccessRatioTracker(int k);

    /** Record one sampled access from @p tier. */
    void
    record(memsim::Tier tier)
    {
        ++hits_[static_cast<int>(tier)];
    }

    /** Discretization granularity. */
    int k() const { return k_; }

    /** Compute Equation 1 for the current window and reset it. */
    TauState take();

    /** Compute Equation 1 without resetting. */
    TauState peek() const;

  private:
    int k_;
    std::uint64_t hits_[memsim::kTierCount] = {0, 0};
};

}  // namespace artmem::stats

#endif  // ARTMEM_STATS_ACCESS_RATIO_HPP
