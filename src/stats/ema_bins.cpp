#include "stats/ema_bins.hpp"

#include <bit>

#include "util/logging.hpp"

namespace artmem::stats {

EmaBins::EmaBins(std::size_t page_count, std::uint64_t cooling_period)
    : counts_(page_count, 0), cooling_period_(cooling_period)
{
    bins_[0] = page_count;
}

std::uint32_t
EmaBins::bin_floor(int bin)
{
    if (bin <= 0)
        return 0;
    return 1u << (bin - 1);
}

void
EmaBins::cool()
{
    for (auto& b : bins_)
        b = 0;
    for (auto& c : counts_) {
        c >>= 1;
        ++bins_[bin_of(c)];
    }
    samples_since_cooling_ = 0;
    ++cooling_events_;
}

std::uint32_t
EmaBins::capacity_threshold(std::size_t capacity_pages) const
{
    // Walk bins from hottest downward, accumulating page populations,
    // and stop before the cumulative hot set would overflow the fast
    // tier. This is how MEMTIS derives its hotness threshold from the
    // DRAM size.
    std::uint64_t cumulative = 0;
    for (int bin = kBins - 1; bin >= 1; --bin) {
        cumulative += bins_[bin];
        if (cumulative > capacity_pages) {
            const int chosen = bin + 1;
            return chosen >= kBins ? bin_floor(kBins - 1)
                                   : bin_floor(chosen);
        }
    }
    return 1;  // everything fits: any accessed page counts as hot
}

std::size_t
EmaBins::pages_at_or_above(std::uint32_t threshold) const
{
    std::size_t n = 0;
    for (std::uint32_t c : counts_)
        if (c >= threshold)
            ++n;
    return n;
}

std::size_t
EmaBins::collect_at_or_above(std::uint32_t threshold,
                             std::vector<PageId>& out) const
{
    std::size_t n = 0;
    for (PageId p = 0; p < counts_.size(); ++p) {
        if (counts_[p] >= threshold) {
            out.push_back(p);
            ++n;
        }
    }
    return n;
}

}  // namespace artmem::stats
