/**
 * @file
 * Temporal-difference control agent over a tabular Q-function.
 *
 * Supports both off-policy Q-learning (the paper's default, Algorithm 1)
 * and on-policy SARSA (compared in Section 6.3.5). One TdAgent instance
 * owns one Q-table; ArtMem runs two of them — one choosing the migration
 * number, one adjusting the hotness threshold (Section 4.2).
 */
#ifndef ARTMEM_RL_AGENT_HPP
#define ARTMEM_RL_AGENT_HPP

#include <cmath>
#include <string>

#include "rl/qtable.hpp"
#include "util/rng.hpp"

namespace artmem::telemetry {
class TraceSink;
}  // namespace artmem::telemetry

namespace artmem::rl {

/** Which TD update rule the agent applies. */
enum class Algorithm {
    kQLearning,  ///< target = r + gamma * max_a' Q(s', a')
    kSarsa,      ///< target = r + gamma * Q(s', a') for the chosen a'
    /**
     * Expected SARSA: target = r + gamma * E_pi[Q(s', .)] under the
     * epsilon-greedy policy. Lower-variance extension beyond the
     * paper's two algorithms.
     */
    kExpectedSarsa,
};

/** Hyperparameters; defaults are the paper's tuned values (Fig. 15). */
struct AgentConfig {
    double alpha = std::exp(-2.0);    ///< learning rate (~0.135)
    double gamma = std::exp(-1.0);    ///< discount factor (~0.368)
    double epsilon = 0.3;             ///< exploration probability
    Algorithm algorithm = Algorithm::kQLearning;
};

/** One Q-table plus the online TD control loop around it. */
class TdAgent
{
  public:
    /**
     * @param states  State-space size (includes any sentinel states).
     * @param actions Action-space size.
     * @param config  Hyperparameters.
     * @param seed    Exploration RNG seed.
     */
    TdAgent(int states, int actions, const AgentConfig& config,
            std::uint64_t seed);

    /**
     * Advance one decision step: update Q(s, a) for the previous step
     * using @p reward and the observed @p new_state, then epsilon-
     * greedily choose and remember the next action.
     *
     * The first call performs no update (there is no previous step).
     *
     * @return the chosen action for @p new_state.
     */
    int step(double reward, int new_state);

    /**
     * Prime the agent's "previous step" without learning, e.g. the
     * paper initializes state to k with the no-migration action.
     */
    void reset(int state, int action);

    /** Forget the previous step (next step() will not update). */
    void clear_history();

    /** The underlying table (e.g. for Q(k, 0) = 1 initialization). */
    QTable& table() { return table_; }

    /** Read-only table. */
    const QTable& table() const { return table_; }

    /** Replace the table (Fig. 14 cross-training); dimensions must match. */
    void set_table(QTable table);

    /** Hyperparameters in use. */
    const AgentConfig& config() const { return config_; }

    /** Override the exploration rate (sensitivity sweeps). */
    void set_epsilon(double epsilon) { config_.epsilon = epsilon; }

    /** TD updates performed so far. */
    std::uint64_t updates() const { return updates_; }

    /**
     * Attach a trace sink for kRl "q_update" events (nullptr detaches).
     * @p label names the agent in the event args ("migration" /
     * "threshold"). Events are stamped with the sink's simulated-time
     * cursor, which the engine advances at tick/decision edges — the
     * agent itself has no clock.
     */
    void set_telemetry(telemetry::TraceSink* sink, std::string label);

  private:
    QTable table_;
    AgentConfig config_;
    Rng rng_;
    int prev_state_ = -1;
    int prev_action_ = -1;
    std::uint64_t updates_ = 0;
    telemetry::TraceSink* trace_ = nullptr;
    std::string label_;
};

}  // namespace artmem::rl

#endif  // ARTMEM_RL_AGENT_HPP
