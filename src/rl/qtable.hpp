/**
 * @file
 * Dense tabular Q-function with epsilon-greedy selection and text
 * serialization (the Figure 14 robustness study reuses converged
 * Q-tables across workloads).
 */
#ifndef ARTMEM_RL_QTABLE_HPP
#define ARTMEM_RL_QTABLE_HPP

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace artmem::rl {

/** A |S| x |A| table of action values. */
class QTable
{
  public:
    /** Build with every entry set to @p init. */
    QTable(int states, int actions, double init = 0.0);

    /** Mutable entry access; bounds-checked in debug via panic. */
    double& at(int state, int action);

    /** Entry value. */
    double at(int state, int action) const;

    /** Greedy action for a state; ties break toward the lowest index. */
    int best_action(int state) const;

    /** max_a Q(state, a). */
    double max_q(int state) const;

    /** Epsilon-greedy selection: explore with probability epsilon. */
    int select(int state, double epsilon, Rng& rng) const;

    /** Number of states. */
    int states() const { return states_; }

    /** Number of actions. */
    int actions() const { return actions_; }

    /** Approximate in-memory footprint in bytes (Section 6.4 check). */
    std::size_t memory_bytes() const
    {
        return q_.size() * sizeof(double) + sizeof(*this);
    }

    /** Write as a text block ("qtable <S> <A>" header + rows). */
    void save(std::ostream& os) const;

    /** Parse the save() format; fatal on malformed input. */
    static QTable load(std::istream& is);

    /**
     * Parse the save() format without dying: returns nullopt (and sets
     * @p error if non-null) on a malformed header, implausible or
     * non-positive dimensions, a truncated body, or non-finite entries.
     * The recoverable path for caller-supplied blobs (ArtMem pretrained
     * Q-tables fall back to a cold start).
     */
    [[nodiscard]] static std::optional<QTable>
    try_load(std::istream& is, std::string* error = nullptr);

  private:
    int index(int state, int action) const;

    int states_;
    int actions_;
    std::vector<double> q_;
};

}  // namespace artmem::rl

#endif  // ARTMEM_RL_QTABLE_HPP
