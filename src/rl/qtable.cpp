#include "rl/qtable.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "util/logging.hpp"

namespace artmem::rl {

QTable::QTable(int states, int actions, double init)
    : states_(states), actions_(actions)
{
    if (states <= 0 || actions <= 0)
        fatal("QTable requires positive dimensions");
    q_.assign(static_cast<std::size_t>(states) * actions, init);
}

int
QTable::index(int state, int action) const
{
    if (state < 0 || state >= states_ || action < 0 || action >= actions_)
        panic("QTable index out of range: (", state, ",", action, ") in ",
              states_, "x", actions_);
    return state * actions_ + action;
}

double&
QTable::at(int state, int action)
{
    return q_[index(state, action)];
}

double
QTable::at(int state, int action) const
{
    return q_[index(state, action)];
}

int
QTable::best_action(int state) const
{
    int best = 0;
    double best_q = at(state, 0);
    for (int a = 1; a < actions_; ++a) {
        const double q = at(state, a);
        if (q > best_q) {
            best_q = q;
            best = a;
        }
    }
    return best;
}

double
QTable::max_q(int state) const
{
    return at(state, best_action(state));
}

int
QTable::select(int state, double epsilon, Rng& rng) const
{
    if (rng.next_bool(epsilon))
        return static_cast<int>(rng.next_below(actions_));
    return best_action(state);
}

void
QTable::save(std::ostream& os) const
{
    os << "qtable " << states_ << " " << actions_ << "\n";
    for (int s = 0; s < states_; ++s) {
        for (int a = 0; a < actions_; ++a) {
            os << at(s, a);
            os << (a + 1 == actions_ ? '\n' : ' ');
        }
    }
}

QTable
QTable::load(std::istream& is)
{
    std::string magic;
    int states = 0, actions = 0;
    if (!(is >> magic >> states >> actions) || magic != "qtable")
        fatal("QTable::load: malformed header");
    QTable table(states, actions);
    for (int s = 0; s < states; ++s)
        for (int a = 0; a < actions; ++a)
            if (!(is >> table.at(s, a)))
                fatal("QTable::load: truncated table body");
    return table;
}

}  // namespace artmem::rl
