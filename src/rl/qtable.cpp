#include "rl/qtable.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/logging.hpp"

namespace artmem::rl {

QTable::QTable(int states, int actions, double init)
    : states_(states), actions_(actions)
{
    if (states <= 0 || actions <= 0)
        fatal("QTable requires positive dimensions");
    q_.assign(static_cast<std::size_t>(states) * actions, init);
}

int
QTable::index(int state, int action) const
{
    if (state < 0 || state >= states_ || action < 0 || action >= actions_)
        panic("QTable index out of range: (", state, ",", action, ") in ",
              states_, "x", actions_);
    return state * actions_ + action;
}

double&
QTable::at(int state, int action)
{
    return q_[index(state, action)];
}

double
QTable::at(int state, int action) const
{
    return q_[index(state, action)];
}

int
QTable::best_action(int state) const
{
    int best = 0;
    double best_q = at(state, 0);
    for (int a = 1; a < actions_; ++a) {
        const double q = at(state, a);
        if (q > best_q) {
            best_q = q;
            best = a;
        }
    }
    return best;
}

double
QTable::max_q(int state) const
{
    return at(state, best_action(state));
}

int
QTable::select(int state, double epsilon, Rng& rng) const
{
    if (rng.next_bool(epsilon))
        return static_cast<int>(rng.next_below(actions_));
    return best_action(state);
}

void
QTable::save(std::ostream& os) const
{
    os << "qtable " << states_ << " " << actions_ << "\n";
    for (int s = 0; s < states_; ++s) {
        for (int a = 0; a < actions_; ++a) {
            os << at(s, a);
            os << (a + 1 == actions_ ? '\n' : ' ');
        }
    }
}

QTable
QTable::load(std::istream& is)
{
    std::string error;
    auto table = try_load(is, &error);
    if (!table)
        fatal("QTable::load: ", error);
    return *std::move(table);
}

std::optional<QTable>
QTable::try_load(std::istream& is, std::string* error)
{
    const auto fail = [&](const std::string& why) -> std::optional<QTable> {
        if (error != nullptr)
            *error = why;
        return std::nullopt;
    };
    std::string magic;
    int states = 0, actions = 0;
    if (!(is >> magic >> states >> actions) || magic != "qtable")
        return fail("malformed header (expected 'qtable <S> <A>')");
    // A table bigger than this is not a save of ours; refuse before
    // the allocation rather than after.
    constexpr long long kMaxEntries = 1 << 20;
    if (states <= 0 || actions <= 0 ||
        static_cast<long long>(states) * actions > kMaxEntries) {
        std::ostringstream why;
        why << "implausible dimensions " << states << "x" << actions;
        return fail(why.str());
    }
    QTable table(states, actions);
    for (int s = 0; s < states; ++s) {
        for (int a = 0; a < actions; ++a) {
            double value = 0.0;
            if (!(is >> value)) {
                std::ostringstream why;
                why << "truncated or non-numeric body at entry (" << s
                    << "," << a << ")";
                return fail(why.str());
            }
            if (!std::isfinite(value)) {
                std::ostringstream why;
                why << "non-finite entry at (" << s << "," << a << ")";
                return fail(why.str());
            }
            table.at(s, a) = value;
        }
    }
    return table;
}

}  // namespace artmem::rl
