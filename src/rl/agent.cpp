#include "rl/agent.hpp"

#include "telemetry/trace.hpp"
#include "util/logging.hpp"

namespace artmem::rl {

TdAgent::TdAgent(int states, int actions, const AgentConfig& config,
                 std::uint64_t seed)
    : table_(states, actions), config_(config), rng_(seed)
{
    if (config.alpha <= 0.0 || config.alpha > 1.0)
        fatal("TdAgent: alpha must be in (0,1]");
    if (config.gamma < 0.0 || config.gamma >= 1.0)
        fatal("TdAgent: gamma must be in [0,1)");
    if (config.epsilon < 0.0 || config.epsilon > 1.0)
        fatal("TdAgent: epsilon must be in [0,1]");
}

int
TdAgent::step(double reward, int new_state)
{
    // Choose the next action first: SARSA's target needs it.
    const int next_action = table_.select(new_state, config_.epsilon, rng_);
    if (prev_state_ >= 0) {
        double future = 0.0;
        switch (config_.algorithm) {
          case Algorithm::kQLearning:
            future = table_.max_q(new_state);
            break;
          case Algorithm::kSarsa:
            future = table_.at(new_state, next_action);
            break;
          case Algorithm::kExpectedSarsa: {
            // E_pi[Q(s',.)] under epsilon-greedy: the greedy action with
            // probability (1 - eps), uniform exploration otherwise.
            double sum = 0.0;
            for (int a = 0; a < table_.actions(); ++a)
                sum += table_.at(new_state, a);
            const double uniform = sum / table_.actions();
            future = (1.0 - config_.epsilon) * table_.max_q(new_state) +
                     config_.epsilon * uniform;
            break;
          }
        }
        double& q = table_.at(prev_state_, prev_action_);
        q += config_.alpha * (reward + config_.gamma * future - q);
        ++updates_;
        if (trace_ != nullptr) [[unlikely]] {
            trace_->instant(
                telemetry::Category::kRl, "q_update", trace_->sim_time(),
                telemetry::Args()
                    .add("agent", label_)
                    .add("s", prev_state_)
                    .add("a", prev_action_)
                    .add("r", reward)
                    .add("s2", new_state)
                    .add("a2", next_action)
                    .add("q", q)
                    .str());
        }
    }
    prev_state_ = new_state;
    prev_action_ = next_action;
    return next_action;
}

void
TdAgent::reset(int state, int action)
{
    prev_state_ = state;
    prev_action_ = action;
}

void
TdAgent::clear_history()
{
    prev_state_ = -1;
    prev_action_ = -1;
}

void
TdAgent::set_telemetry(telemetry::TraceSink* sink, std::string label)
{
    trace_ = sink;
    label_ = std::move(label);
}

void
TdAgent::set_table(QTable table)
{
    if (table.states() != table_.states() ||
        table.actions() != table_.actions()) {
        fatal("TdAgent::set_table: dimension mismatch");
    }
    table_ = std::move(table);
}

}  // namespace artmem::rl
