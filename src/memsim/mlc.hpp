/**
 * @file
 * Intel Memory Latency Checker analogue: measures per-tier load latency
 * (pointer-chase) and sequential bandwidth (stream) on a TieredMachine,
 * reproducing the methodology behind the paper's Table 2.
 */
#ifndef ARTMEM_MEMSIM_MLC_HPP
#define ARTMEM_MEMSIM_MLC_HPP

#include "memsim/tier.hpp"
#include "memsim/tiered_machine.hpp"

namespace artmem::memsim {

/** Measured characteristics of one tier. */
struct MlcResult {
    double latency_ns = 0.0;      ///< Mean per-access load latency.
    double bandwidth_gbps = 0.0;  ///< Sequential read bandwidth.
};

/**
 * Measure one tier of a machine. Pages used for the probe are first
 * forced into @p tier (fatal if the tier cannot hold them).
 *
 * @param machine  Machine under test (time advances!).
 * @param tier     Tier to probe.
 * @param accesses Number of latency-probe accesses.
 * @param stream_bytes Bytes for the bandwidth probe.
 */
MlcResult measure_tier(TieredMachine& machine, Tier tier,
                       std::uint64_t accesses = 100000,
                       Bytes stream_bytes = 1ull << 30);

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_MLC_HPP
