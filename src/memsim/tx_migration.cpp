#include "memsim/tx_migration.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace artmem::memsim {

namespace {

/** Map a 64-bit hash to [0, 1) (same construction as the injector). */
double
to_unit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void
TxConfig::validate() const
{
    if (write_ratio < 0.0 || write_ratio > 1.0)
        fatal("TxConfig: write_ratio must be in [0,1], got ", write_ratio);
    if (max_inflight == 0)
        fatal("TxConfig: max_inflight must be positive");
}

TxConfig
parse_tx_config(const KvConfig& config)
{
    TxConfig tc;
    static const char* kKnown[] = {
        "tx.enabled",     "tx.seed",          "tx.write_ratio",
        "tx.max_inflight", "tx.non_exclusive",
    };
    for (const auto& key : config.keys()) {
        const bool known =
            std::find_if(std::begin(kKnown), std::end(kKnown),
                         [&](const char* k) { return key == k; }) !=
            std::end(kKnown);
        if (!known)
            fatal("tx config: unknown key '", key, "'");
    }
    tc.enabled = config.get_bool("tx.enabled", false);
    tc.seed = static_cast<std::uint64_t>(config.get_int("tx.seed", 1));
    tc.write_ratio = config.get_double("tx.write_ratio", 0.0);
    tc.max_inflight = static_cast<std::size_t>(
        config.get_int("tx.max_inflight", 64));
    tc.non_exclusive = config.get_bool("tx.non_exclusive", true);
    tc.validate();
    return tc;
}

bool
TxState::draw_write(double rate)
{
    // Independent splitmix64 stream keyed by the tx seed; the counter is
    // the draw index, so the schedule is a pure function of (seed, call
    // sequence) — replaying a run replays every abort.
    std::uint64_t x = config.seed + 0x9e3779b97f4a7c15ull * ++write_draws;
    const bool hit = to_unit(splitmix64(x)) < rate;
    if (hit)
        ++write_hits;
    return hit;
}

}  // namespace artmem::memsim
