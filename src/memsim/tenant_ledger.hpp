/**
 * @file
 * Per-tenant residency accounting, fast-tier quotas, and migration
 * admission control (DESIGN.md §13).
 *
 * A multi-tenant run interleaves N workload streams onto one
 * TieredMachine (tenancy/tenant_set.hpp); the TenantLedger is the
 * machine-side bookkeeping for that mode. It is the single source of
 * truth for "who holds fast-tier slots":
 *
 *  - a page→tenant ownership map (fixed at install time: each tenant
 *    owns one contiguous span of the stacked address space),
 *  - per-tenant per-tier residency counts mirroring every used-page
 *    mutation the machine makes (allocation, migration, transactional
 *    shadow/dual charges), reconciled against a flags census by the
 *    kTenantQuota invariant (verify/invariant_checker.hpp),
 *  - per-tenant access / PEBS-sample attribution counters,
 *  - per-tenant fast-tier quotas enforced at migration and placement
 *    time, and
 *  - the injected co-tenant reservation (fault_injector pressure
 *    class), which a multi-tenant machine routes through the ledger so
 *    the soft "co-tenant holds" model and the hard quota accounting
 *    share one accessor instead of the split bookkeeping the fault
 *    layer originally carried.
 *
 * The ledger is null on a single-tenant machine (the default), in which
 * case every hook below compiles down to one untaken branch on a null
 * pointer — a `--tenants 1` run is byte-identical to the seed goldens
 * (scripts/ci.sh diffs it).
 */
#ifndef ARTMEM_MEMSIM_TENANT_LEDGER_HPP
#define ARTMEM_MEMSIM_TENANT_LEDGER_HPP

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "memsim/fault_injector.hpp"
#include "memsim/tier.hpp"
#include "util/types.hpp"

namespace artmem::memsim {

class TenantLedger;

/**
 * Pluggable per-tenant migration admission control (TierBPF-style,
 * PAPERS.md). The machine consults the installed controller after a
 * promotion passes the quota check; a denial returns
 * MigrateStatus::kAdmissionDenied with no state change and no fault
 * draws consumed. Implementations live in src/tenancy/admission.cpp
 * (allow_all, static rate limit, aggregate-hit-ratio feedback); the
 * interface lives here so memsim never depends on the tenancy layer.
 *
 * Determinism contract: admit() and on_interval() must be pure
 * functions of the call sequence and the ledger's deterministic
 * counters — no wall clock, no unseeded randomness.
 */
class AdmissionController
{
  public:
    virtual ~AdmissionController() = default;

    /** Registry name ("allow_all", "static", "feedback"). */
    virtual std::string_view name() const = 0;

    /**
     * May @p tenant move a page into @p dst right now? Called once per
     * candidate migration after quota passes; a grant may consume
     * per-interval controller budget.
     */
    virtual bool admit(std::uint32_t tenant, Tier dst) = 0;

    /**
     * Decision-interval feedback: read the ledger's window counters
     * (window_accesses / aggregate_window_fast_ratio) and adjust
     * budgets. Called by the engine at every decision boundary, before
     * the window snapshot rolls.
     */
    virtual void on_interval(const TenantLedger& ledger) { (void)ledger; }
};

/** Outcome of the ledger's pre-migration check. */
enum class TenantDecision : std::uint8_t {
    kAdmit = 0,
    kQuotaDenied,      ///< Tenant's fast-tier quota is exhausted.
    kAdmissionDenied,  ///< The admission controller refused the grant.
};

/** Per-tenant residency, quota, and admission accounting. */
class TenantLedger
{
  public:
    /** No fast-tier quota (the default for every tenant). */
    static constexpr std::size_t kNoQuota = ~std::size_t{0};

    /** Monotonic per-tenant counters. */
    struct Totals {
        std::uint64_t accesses[kTierCount] = {0, 0};
        std::uint64_t samples = 0;          ///< PEBS samples attributed.
        std::uint64_t promoted_pages = 0;
        std::uint64_t demoted_pages = 0;
        std::uint64_t quota_denied = 0;
        std::uint64_t admission_denied = 0;
        std::uint64_t admission_grants = 0;
        /** First-touch allocations that landed in the fast tier while
         *  the tenant was at quota because the slow tier was full (the
         *  quota is soft at placement: allocation must never fail). */
        std::uint64_t over_quota_allocs = 0;

        std::uint64_t total_accesses() const
        {
            return accesses[0] + accesses[1];
        }
        /** Fast-tier hit ratio (1.0 if idle, matching Counters). */
        double fast_ratio() const
        {
            const std::uint64_t total = total_accesses();
            return total == 0 ? 1.0
                              : static_cast<double>(accesses[0]) /
                                    static_cast<double>(total);
        }
    };

    /**
     * Build a ledger for @p tenants tenants over @p page_count pages.
     * Ownership spans and quotas start empty/unlimited; fill them with
     * set_owner_span()/set_quota() before installing into a machine.
     */
    TenantLedger(std::uint32_t tenants, std::size_t page_count);

    /** Assign pages [first, first+pages) to @p tenant. */
    void set_owner_span(PageId first, std::size_t pages,
                        std::uint32_t tenant);

    /** Set @p tenant's fast-tier quota in pages (kNoQuota = unlimited). */
    void set_quota(std::uint32_t tenant, std::size_t fast_pages);

    /** Install (or clear with nullptr) the admission controller. */
    void set_admission(std::unique_ptr<AdmissionController> admission)
    {
        admission_ = std::move(admission);
    }

    /**
     * Route the injected co-tenant reservation (pressure fault class)
     * through the ledger. The computation stays the injector's pure
     * window function; the ledger is just the one accessor both the
     * quota checks and the machine's free-slot math read.
     */
    void set_fault_reservation(const FaultInjector* faults)
    {
        faults_ = faults;
    }

    std::uint32_t tenant_count() const { return tenants_; }
    std::size_t page_count() const { return owner_.size(); }

    /** Owning tenant of @p page. */
    std::uint32_t owner(PageId page) const { return owner_[page]; }

    /** Pages @p tenant currently holds resident in @p t (including
     *  transactional shadow and dual-resident secondary copies). */
    std::size_t used_pages(std::uint32_t tenant, Tier t) const
    {
        return used_[tenant * kTierCount + static_cast<int>(t)];
    }

    /** @p tenant's fast-tier quota (kNoQuota = unlimited). */
    std::size_t quota(std::uint32_t tenant) const
    {
        return quota_[tenant];
    }

    /** Fast-tier slots held by the injected co-tenant at @p now. */
    std::size_t reserved_fast(SimTimeNs now) const
    {
        return faults_ != nullptr ? faults_->reserved_fast_pages(now) : 0;
    }

    const Totals& totals(std::uint32_t tenant) const
    {
        return totals_[tenant];
    }

    AdmissionController* admission() { return admission_.get(); }
    const AdmissionController* admission() const
    {
        return admission_.get();
    }

    // --- hot-path hooks (one branch + two increments each) ------------

    /** Attribute one access by @p page's owner to tier index @p t. */
    void note_access(PageId page, int t)
    {
        ++totals_[owner_[page]].accesses[t];
    }

    /**
     * Fold @p count accesses for @p tenant on tier index @p t in one
     * add — the batch form of note_access() used by the sharded
     * engine's parallel merge: lanes count per-tenant accesses into
     * private accumulators and the fold applies them in fixed shard
     * order, producing totals identical to per-access increments
     * (integer addition is order-free).
     */
    void fold_accesses(std::uint32_t tenant, int t, std::uint64_t count)
    {
        totals_[tenant].accesses[t] += count;
    }

    /** Attribute one drained PEBS sample. */
    void note_sample(PageId page) { ++totals_[owner_[page]].samples; }

    /** Mirror a machine used-page mutation: @p delta is +1/-1. */
    void charge(PageId page, Tier t, int delta)
    {
        auto& slot = used_[owner_[page]* kTierCount + static_cast<int>(t)];
        slot = static_cast<std::size_t>(
            static_cast<long long>(slot) + delta);
    }

    /** Count a completed migration of @p page into @p dst. */
    void note_migration(PageId page, Tier dst)
    {
        Totals& t = totals_[owner_[page]];
        if (dst == Tier::kFast)
            ++t.promoted_pages;
        else
            ++t.demoted_pages;
    }

    // --- quota / admission enforcement --------------------------------

    /**
     * True when placing one more fast page for @p page's owner would
     * exceed its quota (allocation steering; the machine falls back to
     * the slow tier, or over quota when both constraints collide).
     */
    bool fast_quota_exhausted(PageId page) const
    {
        const std::uint32_t t = owner_[page];
        return used_[t * kTierCount] >= quota_[t];
    }

    /** Count a first-touch that had to violate the quota. */
    void note_over_quota_alloc(PageId page)
    {
        ++totals_[owner_[page]].over_quota_allocs;
    }

    /**
     * Pre-migration gate for moving @p page into @p dst. Quota is
     * checked first (only when the move charges a new destination slot,
     * @p charges_dst — a dual-copy free flip does not), then the
     * admission controller (for fast-tier promotions). Denials are
     * counted per tenant; the caller maps the decision to a
     * MigrateStatus and records the machine-level failure.
     */
    TenantDecision check_migration(PageId page, Tier dst, bool charges_dst);

    /**
     * Pre-exchange gate: @p promoted moves slow→fast, @p demoted
     * fast→slow. Quota applies only when the pages belong to different
     * tenants (a same-tenant swap is fast-usage neutral); admission is
     * consulted for the promoted page's tenant either way.
     */
    TenantDecision check_exchange(PageId promoted, PageId demoted);

    // --- decision-interval window ------------------------------------

    /** Accesses by @p tenant in tier @p t since the last roll. */
    std::uint64_t window_accesses(std::uint32_t tenant, int t) const
    {
        return totals_[tenant].accesses[t] - window_base_[tenant].accesses[t];
    }

    /** @p tenant's fast-tier hit ratio over the current window. */
    double window_fast_ratio(std::uint32_t tenant) const;

    /** All tenants' fast-tier hit ratio over the current window. */
    double aggregate_window_fast_ratio() const;

    /**
     * Decision-boundary hook: feed the window to the admission
     * controller, then roll the snapshot. Called by the engine after
     * every decision interval.
     */
    void interval_feedback();

  private:
    /** Test-only corruption back door (tests/test_verify.cpp). */
    friend struct TenantLedgerTestPeer;

    std::uint32_t tenants_;
    std::vector<std::uint16_t> owner_;       ///< page → tenant.
    std::vector<std::size_t> used_;          ///< tenant-major [tenant][tier].
    std::vector<std::size_t> quota_;         ///< fast-tier quota per tenant.
    std::vector<Totals> totals_;
    std::vector<Totals> window_base_;        ///< Snapshot at last roll.
    std::unique_ptr<AdmissionController> admission_;
    const FaultInjector* faults_ = nullptr;  ///< Co-tenant reservation.
};

}  // namespace artmem::memsim

#endif  // ARTMEM_MEMSIM_TENANT_LEDGER_HPP
