#include "memsim/tenant_ledger.hpp"

#include "util/logging.hpp"

namespace artmem::memsim {

TenantLedger::TenantLedger(std::uint32_t tenants, std::size_t page_count)
    : tenants_(tenants)
{
    if (tenants_ == 0)
        fatal("TenantLedger: tenant count must be positive");
    if (tenants_ > 65535)
        fatal("TenantLedger: tenant count ", tenants_,
              " exceeds the 16-bit ownership map");
    if (page_count == 0)
        fatal("TenantLedger: empty address space");
    owner_.assign(page_count, 0);
    used_.assign(static_cast<std::size_t>(tenants_) * kTierCount, 0);
    quota_.assign(tenants_, kNoQuota);
    totals_.assign(tenants_, Totals{});
    window_base_.assign(tenants_, Totals{});
}

void
TenantLedger::set_owner_span(PageId first, std::size_t pages,
                             std::uint32_t tenant)
{
    if (tenant >= tenants_)
        fatal("TenantLedger: tenant ", tenant, " out of range [0, ",
              tenants_, ")");
    if (first + pages > owner_.size())
        fatal("TenantLedger: span [", first, ", ", first + pages,
              ") exceeds the ", owner_.size(), "-page address space");
    for (std::size_t i = 0; i < pages; ++i)
        owner_[first + i] = static_cast<std::uint16_t>(tenant);
}

void
TenantLedger::set_quota(std::uint32_t tenant, std::size_t fast_pages)
{
    if (tenant >= tenants_)
        fatal("TenantLedger: tenant ", tenant, " out of range [0, ",
              tenants_, ")");
    quota_[tenant] = fast_pages;
}

TenantDecision
TenantLedger::check_migration(PageId page, Tier dst, bool charges_dst)
{
    if (dst != Tier::kFast)
        return TenantDecision::kAdmit;
    const std::uint32_t tenant = owner_[page];
    if (charges_dst && used_[tenant * kTierCount] >= quota_[tenant]) {
        ++totals_[tenant].quota_denied;
        return TenantDecision::kQuotaDenied;
    }
    if (admission_ != nullptr) {
        if (!admission_->admit(tenant, dst)) {
            ++totals_[tenant].admission_denied;
            return TenantDecision::kAdmissionDenied;
        }
        ++totals_[tenant].admission_grants;
    }
    return TenantDecision::kAdmit;
}

TenantDecision
TenantLedger::check_exchange(PageId promoted, PageId demoted)
{
    const std::uint32_t gaining = owner_[promoted];
    if (gaining != owner_[demoted] &&
        used_[gaining * kTierCount] >= quota_[gaining]) {
        ++totals_[gaining].quota_denied;
        return TenantDecision::kQuotaDenied;
    }
    if (admission_ != nullptr) {
        if (!admission_->admit(gaining, Tier::kFast)) {
            ++totals_[gaining].admission_denied;
            return TenantDecision::kAdmissionDenied;
        }
        ++totals_[gaining].admission_grants;
    }
    return TenantDecision::kAdmit;
}

double
TenantLedger::window_fast_ratio(std::uint32_t tenant) const
{
    const std::uint64_t fast = window_accesses(tenant, 0);
    const std::uint64_t total = fast + window_accesses(tenant, 1);
    return total == 0
               ? 1.0
               : static_cast<double>(fast) / static_cast<double>(total);
}

double
TenantLedger::aggregate_window_fast_ratio() const
{
    std::uint64_t fast = 0;
    std::uint64_t total = 0;
    for (std::uint32_t t = 0; t < tenants_; ++t) {
        fast += window_accesses(t, 0);
        total += window_accesses(t, 0) + window_accesses(t, 1);
    }
    return total == 0
               ? 1.0
               : static_cast<double>(fast) / static_cast<double>(total);
}

void
TenantLedger::interval_feedback()
{
    if (admission_ != nullptr)
        admission_->on_interval(*this);
    window_base_ = totals_;
}

}  // namespace artmem::memsim
