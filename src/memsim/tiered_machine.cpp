#include "memsim/tiered_machine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace artmem::memsim {

std::string_view
tier_name(Tier t)
{
    return t == Tier::kFast ? "fast" : "slow";
}

std::string_view
migrate_status_name(MigrateStatus status)
{
    switch (status) {
    case MigrateStatus::kOk:
        return "ok";
    case MigrateStatus::kNotAllocated:
        return "not_allocated";
    case MigrateStatus::kSameTier:
        return "same_tier";
    case MigrateStatus::kNoFreeSlot:
        return "no_free_slot";
    case MigrateStatus::kPagePinned:
        return "page_pinned";
    case MigrateStatus::kCopyAborted:
        return "copy_aborted";
    case MigrateStatus::kDstContended:
        return "dst_contended";
    case MigrateStatus::kTxOpened:
        return "tx_opened";
    case MigrateStatus::kTxInFlight:
        return "tx_in_flight";
    case MigrateStatus::kTxBusy:
        return "tx_busy";
    case MigrateStatus::kTxAbort:
        return "tx_abort";
    case MigrateStatus::kQuotaDenied:
        return "quota_denied";
    case MigrateStatus::kAdmissionDenied:
        return "admission_denied";
    }
    return "unknown";
}

TieredMachine::TieredMachine(const MachineConfig& config) : config_(config)
{
    if (config_.page_size == 0)
        fatal("MachineConfig: page_size must be positive");
    if (config_.address_space % config_.page_size != 0)
        fatal("MachineConfig: address_space must be page aligned");
    if (config_.migration_contention < 0.0 ||
        config_.migration_contention > 1.0) {
        fatal("MachineConfig: migration_contention must be in [0,1]");
    }
    const std::size_t pages = config_.address_space / config_.page_size;
    if (pages == 0)
        fatal("MachineConfig: empty address space");
    capacity_[0] = config_.fast_capacity_pages();
    capacity_[1] = config_.slow_capacity_pages();
    if (pages > capacity_[0] + capacity_[1]) {
        fatal("MachineConfig: footprint of ", pages,
              " pages exceeds machine capacity of ",
              capacity_[0] + capacity_[1], " pages");
    }
    for (int t = 0; t < kTierCount; ++t) {
        if (config_.tiers[t].bandwidth_gbps <= 0.0)
            fatal("MachineConfig: tier bandwidth must be positive");
        latency_[t] = config_.tiers[t].load_latency_ns;
    }
    flags_.assign(pages, 0);
}

void
TieredMachine::allocate(PageId page)
{
    // First-touch, fast tier first (the paper: "ArtMem first places pages
    // in fast memory before overflowing to the slower tier"). Co-tenant
    // pressure and an exhausted per-tenant quota both steer first-touch
    // to the slow tier, but if the slow tier is also full the hold
    // yields: reservations and quotas are soft at placement time and
    // must never make allocation fail.
    Tier tier = free_pages(Tier::kFast) > 0 ? Tier::kFast : Tier::kSlow;
    if (tier == Tier::kFast && tenants_ != nullptr &&
        tenants_->fast_quota_exhausted(page)) [[unlikely]]
        tier = Tier::kSlow;
    if (tier == Tier::kSlow && used_[1] >= capacity_[1] &&
        (tx_ == nullptr || !tx_reclaim_slot(Tier::kSlow))) {
        tier = Tier::kFast;
        if (tenants_ != nullptr && tenants_->fast_quota_exhausted(page))
            tenants_->note_over_quota_alloc(page);
    }
    const int ti = static_cast<int>(tier);
    // In transactional mode a "full" tier may hold reclaimable dual
    // copies; evict one rather than failing the allocation.
    if (used_[ti] >= capacity_[ti] && tx_ != nullptr)
        (void)tx_reclaim_slot(tier);
    if (used_[ti] >= capacity_[ti])
        panic("TieredMachine: both tiers full on allocation");
    ++used_[static_cast<int>(tier)];
    if (tenants_ != nullptr) [[unlikely]]
        tenants_->charge(page, tier, +1);
    flags_[page] = static_cast<std::uint8_t>(
        kAllocatedBit | (tier == Tier::kSlow ? kTierBit : 0));
}

void
TieredMachine::prefault_range(PageId first, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const PageId page = first + static_cast<PageId>(i);
        if (!(flags_[page] & kAllocatedBit))
            allocate(page);
    }
}

Tier
TieredMachine::access(PageId page)
{
    std::uint8_t& flags = flags_[page];
    if (!(flags & kAllocatedBit))
        allocate(page);
    const Tier tier =
        (flags & kTierBit) ? Tier::kSlow : Tier::kFast;
    flags |= kAccessedBit;
    const int t = static_cast<int>(tier);
    if (faults_ != nullptr) [[unlikely]]
        now_ += faults_->effective_latency(tier, latency_[t], now_);
    else
        now_ += latency_[t];
    ++totals_.accesses[t];
    ++window_.accesses[t];
    if (tenants_ != nullptr) [[unlikely]]
        tenants_->note_access(page, t);
    if (flags & kTxAccessMask) [[unlikely]]
        now_ += tx_on_access(page, now_);
    if (flags & kTrapBit) [[unlikely]] {
        flags &= static_cast<std::uint8_t>(~kTrapBit);
        now_ += config_.hint_fault_cost_ns;
        ++totals_.hint_faults;
        ++window_.hint_faults;
        if (fault_handler_)
            fault_handler_(page, tier);
    }
    return tier;
}

template <bool kFaulted>
void
TieredMachine::batch_loop(const PageId* pages, std::size_t n,
                          PebsSampler& sampler,
                          std::uint64_t* pebs_suppressed)
{
    // Hoisted per-batch invariants: the flags base pointer, the two
    // tier latencies, and — shadowed in BatchCtx — the clock and the
    // per-tier access counters. The context is flushed back before any
    // code that can observe machine state runs (trap handlers may
    // re-enter via migrate()/exchange()), which keeps every
    // intermediate state bit-identical to per-access access() calls.
    // The per-access body lives in access_step() (header) so the
    // sharded epoch walk replays the identical sequence.
    std::uint8_t* const flags = flags_.data();
    const SimTimeNs lat[kTierCount] = {latency_[0], latency_[1]};
    BatchCtx ctx{now_, {0, 0}, false};
    for (std::size_t i = 0; i < n; ++i)
        access_step<kFaulted>(pages[i], flags, lat, ctx, sampler,
                              pebs_suppressed);
    flush_batch_ctx(ctx);
}

void
TieredMachine::access_batch(const PageId* pages, std::size_t n,
                            PebsSampler& sampler)
{
    batch_loop<false>(pages, n, sampler, nullptr);
}

void
TieredMachine::access_batch_faulted(const PageId* pages, std::size_t n,
                                    PebsSampler& sampler,
                                    std::uint64_t& pebs_suppressed)
{
    if (faults_ == nullptr)
        panic("access_batch_faulted without an installed fault injector");
    batch_loop<true>(pages, n, sampler, &pebs_suppressed);
}

Tier
TieredMachine::tier_of(PageId page) const
{
    if (!is_allocated(page))
        panic("TieredMachine::tier_of on unallocated page ", page);
    return (flags_[page] & kTierBit) ? Tier::kSlow : Tier::kFast;
}

SimTimeNs
TieredMachine::migration_cost(Tier src, Tier dst) const
{
    // Copy cost: read from src at src bandwidth plus write to dst at dst
    // bandwidth, plus fixed PTE/TLB overhead. GB/s == bytes/ns. A
    // degradation window divides the affected leg's bandwidth.
    const double bytes = static_cast<double>(config_.page_size);
    double read_ns =
        bytes / config_.tiers[static_cast<int>(src)].bandwidth_gbps;
    double write_ns =
        bytes / config_.tiers[static_cast<int>(dst)].bandwidth_gbps;
    if (faults_ != nullptr) [[unlikely]] {
        read_ns *= faults_->bandwidth_penalty(src, now_);
        write_ns *= faults_->bandwidth_penalty(dst, now_);
    }
    return static_cast<SimTimeNs>(read_ns + write_ns) +
           config_.migration_fixed_ns;
}

void
TieredMachine::account_migration(Tier src, Tier dst)
{
    const SimTimeNs busy = migration_cost(src, dst);
    totals_.migration_busy_ns += busy;
    window_.migration_busy_ns += busy;
    now_ += static_cast<SimTimeNs>(
        static_cast<double>(busy) * config_.migration_contention);
    if (dst == Tier::kFast) {
        ++totals_.promoted_pages;
        ++window_.promoted_pages;
    } else {
        ++totals_.demoted_pages;
        ++window_.demoted_pages;
    }
}

void
TieredMachine::record_failure(MigrateStatus status, PageId page)
{
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "migrate_fail", now_,
            telemetry::Args()
                .add("page", page)
                .add("reason", migrate_status_name(status))
                .str());
    }
    switch (status) {
    case MigrateStatus::kNoFreeSlot:
        ++totals_.failed_no_slot;
        ++window_.failed_no_slot;
        break;
    case MigrateStatus::kPagePinned:
        ++totals_.failed_pinned;
        ++window_.failed_pinned;
        break;
    case MigrateStatus::kCopyAborted:
        ++totals_.failed_transient;
        ++window_.failed_transient;
        break;
    case MigrateStatus::kDstContended:
        ++totals_.failed_contended;
        ++window_.failed_contended;
        break;
    case MigrateStatus::kQuotaDenied:
        ++totals_.failed_quota;
        ++window_.failed_quota;
        break;
    case MigrateStatus::kAdmissionDenied:
        ++totals_.failed_admission;
        ++window_.failed_admission;
        break;
    default:
        break;
    }
}

void
TieredMachine::charge_aborted_copy(Tier src, Tier dst)
{
    // A mid-copy abort wasted roughly half the device copy time; the
    // page stays put but the bandwidth (and its contention share of
    // application time) is gone.
    const SimTimeNs busy = migration_cost(src, dst) / 2;
    totals_.aborted_migration_ns += busy;
    window_.aborted_migration_ns += busy;
    now_ += static_cast<SimTimeNs>(
        static_cast<double>(busy) * config_.migration_contention);
}

MigrationResult
TieredMachine::migrate(PageId page, Tier dst)
{
    if (!is_allocated(page))
        return {MigrateStatus::kNotAllocated};
    const Tier src = tier_of(page);
    if (src == dst)
        return {MigrateStatus::kSameTier};
    if (tx_ != nullptr)
        return tx_migrate(page, src, dst);
    if (tenants_ != nullptr) [[unlikely]] {
        // Tenancy gate first: a quota or admission denial is standing
        // policy, refused before any fault draw is consumed.
        const MigrateStatus deny = tenant_check_migration(page, dst, true);
        if (deny != MigrateStatus::kOk)
            return {deny};
    }
    if (faults_ != nullptr && faults_->page_pinned(page)) [[unlikely]] {
        record_failure(MigrateStatus::kPagePinned, page);
        return {MigrateStatus::kPagePinned};
    }
    const int d = static_cast<int>(dst);
    if (used_[d] >= capacity_[d]) {
        record_failure(MigrateStatus::kNoFreeSlot, page);
        return {MigrateStatus::kNoFreeSlot};
    }
    if (faults_ != nullptr) [[unlikely]] {
        // Co-tenant pressure: the free slot exists but is reserved.
        if (reserved_contended(dst)) {
            record_failure(MigrateStatus::kDstContended, page);
            return {MigrateStatus::kDstContended};
        }
        if (faults_->migration_transient_abort()) {
            charge_aborted_copy(src, dst);
            record_failure(MigrateStatus::kCopyAborted, page);
            return {MigrateStatus::kCopyAborted};
        }
        if (faults_->migration_contended()) {
            record_failure(MigrateStatus::kDstContended, page);
            return {MigrateStatus::kDstContended};
        }
    }
    --used_[static_cast<int>(src)];
    ++used_[d];
    if (tenants_ != nullptr) [[unlikely]] {
        tenants_->charge(page, src, -1);
        tenants_->charge(page, dst, +1);
        tenants_->note_migration(page, dst);
    }
    if (dst == Tier::kSlow)
        flags_[page] |= kTierBit;
    else
        flags_[page] &= static_cast<std::uint8_t>(~kTierBit);
    const SimTimeNs start = now_;
    account_migration(src, dst);
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->complete(
            telemetry::Category::kMigration,
            dst == Tier::kFast ? "promote" : "demote", start, now_ - start,
            telemetry::Args().add("page", page).str());
    }
    if (metrics_ != nullptr) [[unlikely]]
        metrics_->observe(hist_migration_cost_,
                          static_cast<double>(now_ - start));
    return {MigrateStatus::kOk};
}

MigrationResult
TieredMachine::exchange(PageId a, PageId b)
{
    if (!is_allocated(a) || !is_allocated(b) || a == b)
        return {MigrateStatus::kNotAllocated};
    const Tier ta = tier_of(a);
    const Tier tb = tier_of(b);
    if (ta == tb)
        return {MigrateStatus::kSameTier};
    if (tx_ != nullptr)
        return tx_exchange(a, b, ta, tb);
    if (tenants_ != nullptr) [[unlikely]] {
        const MigrateStatus deny = tenant_check_exchange(a, b, ta);
        if (deny != MigrateStatus::kOk)
            return {deny};
    }
    if (faults_ != nullptr) [[unlikely]] {
        if (faults_->page_pinned(a) || faults_->page_pinned(b)) {
            record_failure(MigrateStatus::kPagePinned, a);
            return {MigrateStatus::kPagePinned};
        }
        if (faults_->migration_transient_abort()) {
            charge_aborted_copy(ta, tb);
            record_failure(MigrateStatus::kCopyAborted, a);
            return {MigrateStatus::kCopyAborted};
        }
        if (faults_->migration_contended()) {
            record_failure(MigrateStatus::kDstContended, a);
            return {MigrateStatus::kDstContended};
        }
    }
    flags_[a] ^= kTierBit;
    flags_[b] ^= kTierBit;
    if (tenants_ != nullptr) [[unlikely]] {
        tenants_->charge(a, ta, -1);
        tenants_->charge(a, tb, +1);
        tenants_->charge(b, tb, -1);
        tenants_->charge(b, ta, +1);
        tenants_->note_migration(a, tb);
        tenants_->note_migration(b, ta);
    }
    // An exchange is two copies through a bounce buffer; charge both.
    const SimTimeNs start = now_;
    const SimTimeNs busy = migration_cost(ta, tb) + migration_cost(tb, ta);
    totals_.migration_busy_ns += busy;
    window_.migration_busy_ns += busy;
    now_ += static_cast<SimTimeNs>(
        static_cast<double>(busy) * config_.migration_contention);
    ++totals_.exchanges;
    ++window_.exchanges;
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->complete(
            telemetry::Category::kMigration, "exchange", start,
            now_ - start,
            telemetry::Args().add("a", a).add("b", b).str());
    }
    if (metrics_ != nullptr) [[unlikely]]
        metrics_->observe(hist_migration_cost_,
                          static_cast<double>(now_ - start));
    return {MigrateStatus::kOk};
}

void
TieredMachine::install_tx(const TxConfig& config)
{
    config.validate();
    if (!config.enabled) {
        tx_.reset();
        return;
    }
    tx_ = std::make_unique<TxState>(config);
}

MigrationResult
TieredMachine::tx_refuse(MigrateStatus status, PageId page)
{
    ++totals_.failed_tx_busy;
    ++window_.failed_tx_busy;
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "migrate_fail", now_,
            telemetry::Args()
                .add("page", page)
                .add("reason", migrate_status_name(status))
                .str());
    }
    return {status};
}

MigrationResult
TieredMachine::tx_free_flip(PageId page, Tier src, Tier dst)
{
    // The clean copy already lives in dst (non-exclusive residency):
    // adopt it by swapping the primary/secondary roles. No copy, no
    // device time — Nomad's free demotion of a still-clean page.
    flags_[page] ^= kTierBit;
    const int s = static_cast<int>(src);
    const int d = static_cast<int>(dst);
    --tx_->reclaimable[d];
    ++tx_->reclaimable[s];
    tx_->reclaim_queue[s].push_back(page);
    ++totals_.tx_free_flips;
    ++window_.tx_free_flips;
    if (tenants_ != nullptr) [[unlikely]]
        tenants_->note_migration(page, dst);  // usage is tier-neutral
    if (dst == Tier::kFast) {
        ++totals_.promoted_pages;
        ++window_.promoted_pages;
    } else {
        ++totals_.demoted_pages;
        ++window_.demoted_pages;
    }
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "tx_free_flip", now_,
            telemetry::Args()
                .add("page", page)
                .add("dst", tier_name(dst))
                .str());
    }
    return {MigrateStatus::kOk};
}

bool
TieredMachine::tx_reclaim_slot(Tier tier)
{
    const int t = static_cast<int>(tier);
    auto& queue = tx_->reclaim_queue[t];
    while (!queue.empty()) {
        const PageId page = queue.front();
        queue.pop_front();
        // Entries go stale when the copy was dropped, reclaimed, or
        // flipped to the other tier since it was queued; skip those.
        if ((flags_[page] & kDualBit) != 0 &&
            other_tier(tier_of_unchecked(page)) == tier) {
            tx_reclaim_page(page);
            return true;
        }
    }
    return false;
}

void
TieredMachine::tx_reclaim_page(PageId page)
{
    const Tier sec = other_tier(tier_of_unchecked(page));
    flags_[page] &= static_cast<std::uint8_t>(~kDualBit);
    --used_[static_cast<int>(sec)];
    if (tenants_ != nullptr) [[unlikely]]
        tenants_->charge(page, sec, -1);
    --tx_->reclaimable[static_cast<int>(sec)];
    ++totals_.tx_dual_reclaims;
    ++window_.tx_dual_reclaims;
}

MigrationResult
TieredMachine::tx_migrate(PageId page, Tier src, Tier dst)
{
    if (tenants_ != nullptr) [[unlikely]] {
        // Gate before the dual-copy fast path so free flips are subject
        // to admission control too; a flip charges no new slot, so the
        // quota check applies only to real (shadow-charging) opens.
        const MigrateStatus deny = tenant_check_migration(
            page, dst, (flags_[page] & kDualBit) == 0);
        if (deny != MigrateStatus::kOk)
            return {deny};
    }
    if (flags_[page] & kDualBit)
        return tx_free_flip(page, src, dst);
    if (flags_[page] & kInFlightBit)
        return tx_refuse(MigrateStatus::kTxInFlight, page);
    if (faults_ != nullptr && faults_->page_pinned(page)) [[unlikely]] {
        record_failure(MigrateStatus::kPagePinned, page);
        return {MigrateStatus::kPagePinned};
    }
    if (tx_->inflight.size() >= tx_->config.max_inflight)
        return tx_refuse(MigrateStatus::kTxBusy, page);
    const int d = static_cast<int>(dst);
    // The shadow copy charges a destination slot for the whole window;
    // a tier full of dual copies yields one slot on demand.
    if (used_[d] >= capacity_[d] && !tx_reclaim_slot(dst)) {
        record_failure(MigrateStatus::kNoFreeSlot, page);
        return {MigrateStatus::kNoFreeSlot};
    }
    if (faults_ != nullptr) [[unlikely]] {
        // Co-tenant pressure: the free slot exists but is reserved.
        if (reserved_contended(dst)) {
            record_failure(MigrateStatus::kDstContended, page);
            return {MigrateStatus::kDstContended};
        }
        // No mid-copy transient draw here: in transactional mode the
        // abort channel is a write observed during the window instead.
        if (faults_->migration_contended()) {
            record_failure(MigrateStatus::kDstContended, page);
            return {MigrateStatus::kDstContended};
        }
    }
    std::uint8_t& f = flags_[page];
    if (f & kTxAbortedBit) {
        f &= static_cast<std::uint8_t>(~kTxAbortedBit);
        ++totals_.tx_retries;
        ++window_.tx_retries;
    }
    ++used_[d];
    if (tenants_ != nullptr) [[unlikely]]
        tenants_->charge(page, dst, +1);  // shadow-copy slot
    f |= kInFlightBit;
    // Window length = the copy's device time at *current* bandwidth,
    // so tier-degradation faults stretch it (more write exposure).
    const SimTimeNs busy = migration_cost(src, dst);
    tx_->inflight.push_back(TxState::Entry{page, page, src, dst,
                                           now_ + busy, busy,
                                           tx_->next_seq++,
                                           TxState::Kind::kMigrate});
    ++totals_.tx_opened;
    ++window_.tx_opened;
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "tx_open", now_,
            telemetry::Args()
                .add("page", page)
                .add("dst", tier_name(dst))
                .str());
    }
    return {MigrateStatus::kTxOpened};
}

MigrationResult
TieredMachine::tx_exchange(PageId a, PageId b, Tier ta, Tier tb)
{
    if ((flags_[a] | flags_[b]) & kInFlightBit)
        return tx_refuse(MigrateStatus::kTxInFlight, a);
    if (tenants_ != nullptr) [[unlikely]] {
        const MigrateStatus deny = tenant_check_exchange(a, b, ta);
        if (deny != MigrateStatus::kOk)
            return {deny};
    }
    if (faults_ != nullptr) [[unlikely]] {
        if (faults_->page_pinned(a) || faults_->page_pinned(b)) {
            record_failure(MigrateStatus::kPagePinned, a);
            return {MigrateStatus::kPagePinned};
        }
        if (faults_->migration_contended()) {
            record_failure(MigrateStatus::kDstContended, a);
            return {MigrateStatus::kDstContended};
        }
    }
    if (tx_->inflight.size() >= tx_->config.max_inflight)
        return tx_refuse(MigrateStatus::kTxBusy, a);
    // The swap flips both primaries; a clean secondary copy would end
    // up co-located with its new primary, so reclaim them up front.
    if (flags_[a] & kDualBit)
        tx_reclaim_page(a);
    if (flags_[b] & kDualBit)
        tx_reclaim_page(b);
    for (const PageId page : {a, b}) {
        if (flags_[page] & kTxAbortedBit) {
            flags_[page] &= static_cast<std::uint8_t>(~kTxAbortedBit);
            ++totals_.tx_retries;
            ++window_.tx_retries;
        }
        flags_[page] |=
            static_cast<std::uint8_t>(kInFlightBit | kTxExchangeBit);
    }
    // One transaction covers the pair; both copies run through a bounce
    // buffer, so no shadow slot is charged in either tier.
    const SimTimeNs busy = migration_cost(ta, tb) + migration_cost(tb, ta);
    tx_->inflight.push_back(TxState::Entry{a, b, ta, tb, now_ + busy, busy,
                                           tx_->next_seq++,
                                           TxState::Kind::kExchange});
    ++totals_.tx_opened;
    ++window_.tx_opened;
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "tx_open", now_,
            telemetry::Args().add("a", a).add("b", b).str());
    }
    return {MigrateStatus::kTxOpened};
}

SimTimeNs
TieredMachine::tx_on_access(PageId page, SimTimeNs now)
{
    // Classify the access lazily: draws are consumed only for pages
    // with an open transaction or a dual copy, so a run that never
    // migrates consumes none.
    double rate = tx_->config.write_ratio;
    if (faults_ != nullptr) {
        const double storm = faults_->tx_write_storm_rate(now);
        if (storm > rate)
            rate = storm;
    }
    if (rate <= 0.0 || !tx_->draw_write(rate))
        return 0;
    if (flags_[page] & kInFlightBit)
        return tx_abort_page(page, now);
    tx_drop_secondary(page, now);
    return 0;
}

SimTimeNs
TieredMachine::tx_abort_page(PageId page, SimTimeNs now)
{
    auto& inflight = tx_->inflight;
    std::size_t idx = inflight.size();
    for (std::size_t i = 0; i < inflight.size(); ++i) {
        if (inflight[i].page == page || inflight[i].peer == page) {
            idx = i;
            break;
        }
    }
    if (idx == inflight.size())
        panic("TieredMachine: in-flight bit without an open tx on page ",
              page);
    const TxState::Entry entry = inflight[idx];
    inflight[idx] = inflight.back();
    inflight.pop_back();
    if (entry.kind == TxState::Kind::kMigrate) {
        flags_[entry.page] = static_cast<std::uint8_t>(
            (flags_[entry.page] & ~kInFlightBit) | kTxAbortedBit);
        // Release the shadow slot; the page never left the source.
        --used_[static_cast<int>(entry.dst)];
        if (tenants_ != nullptr) [[unlikely]]
            tenants_->charge(entry.page, entry.dst, -1);
    } else {
        for (const PageId p : {entry.page, entry.peer}) {
            flags_[p] = static_cast<std::uint8_t>(
                (flags_[p] & ~(kInFlightBit | kTxExchangeBit)) |
                kTxAbortedBit);
        }
    }
    // Half the copy's device time is wasted; only its contention share
    // reaches application time, returned to the caller because the
    // access loops hold the clock in a local.
    const SimTimeNs wasted = entry.busy_ns / 2;
    totals_.aborted_migration_ns += wasted;
    window_.aborted_migration_ns += wasted;
    ++totals_.tx_aborted;
    ++window_.tx_aborted;
    tx_->resolved.push_back(
        TxState::Resolved{entry.page, entry.src, entry.dst, false});
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "tx_abort", now,
            telemetry::Args().add("page", entry.page).str());
    }
    return static_cast<SimTimeNs>(static_cast<double>(wasted) *
                                  config_.migration_contention);
}

void
TieredMachine::tx_drop_secondary(PageId page, SimTimeNs now)
{
    const Tier sec = other_tier(tier_of_unchecked(page));
    flags_[page] &= static_cast<std::uint8_t>(~kDualBit);
    --used_[static_cast<int>(sec)];
    if (tenants_ != nullptr) [[unlikely]]
        tenants_->charge(page, sec, -1);
    --tx_->reclaimable[static_cast<int>(sec)];
    ++totals_.tx_dual_drops;
    ++window_.tx_dual_drops;
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->instant(
            telemetry::Category::kMigration, "tx_dual_drop", now,
            telemetry::Args().add("page", page).str());
    }
}

void
TieredMachine::tx_commit_entry(const TxState::Entry& entry)
{
    const SimTimeNs start = now_;
    if (entry.kind == TxState::Kind::kMigrate) {
        std::uint8_t& f = flags_[entry.page];
        f &= static_cast<std::uint8_t>(~kInFlightBit);
        if (entry.dst == Tier::kSlow)
            f |= kTierBit;
        else
            f &= static_cast<std::uint8_t>(~kTierBit);
        const int s = static_cast<int>(entry.src);
        if (tx_->config.non_exclusive) {
            // The source copy is still clean (a write would have
            // aborted): keep it resident until the slot is wanted.
            f |= kDualBit;
            ++tx_->reclaimable[s];
            tx_->reclaim_queue[s].push_back(entry.page);
        } else {
            --used_[s];
            if (tenants_ != nullptr) [[unlikely]]
                tenants_->charge(entry.page, entry.src, -1);
        }
        if (tenants_ != nullptr) [[unlikely]]
            tenants_->note_migration(entry.page, entry.dst);
        if (entry.dst == Tier::kFast) {
            ++totals_.promoted_pages;
            ++window_.promoted_pages;
        } else {
            ++totals_.demoted_pages;
            ++window_.demoted_pages;
        }
    } else {
        constexpr auto kClear =
            static_cast<std::uint8_t>(~(kInFlightBit | kTxExchangeBit));
        flags_[entry.page] &= kClear;
        flags_[entry.peer] &= kClear;
        flags_[entry.page] ^= kTierBit;
        flags_[entry.peer] ^= kTierBit;
        if (tenants_ != nullptr) [[unlikely]] {
            tenants_->charge(entry.page, entry.src, -1);
            tenants_->charge(entry.page, entry.dst, +1);
            tenants_->charge(entry.peer, entry.dst, -1);
            tenants_->charge(entry.peer, entry.src, +1);
            tenants_->note_migration(entry.page, entry.dst);
            tenants_->note_migration(entry.peer, entry.src);
        }
        ++totals_.exchanges;
        ++window_.exchanges;
    }
    totals_.migration_busy_ns += entry.busy_ns;
    window_.migration_busy_ns += entry.busy_ns;
    now_ += static_cast<SimTimeNs>(static_cast<double>(entry.busy_ns) *
                                   config_.migration_contention);
    ++totals_.tx_committed;
    ++window_.tx_committed;
    tx_->resolved.push_back(
        TxState::Resolved{entry.page, entry.src, entry.dst, true});
    if (trace_migration_ != nullptr) [[unlikely]] {
        trace_migration_->complete(
            telemetry::Category::kMigration, "tx_commit", start,
            now_ - start, telemetry::Args().add("page", entry.page).str());
    }
    if (metrics_ != nullptr) [[unlikely]]
        metrics_->observe(hist_migration_cost_,
                          static_cast<double>(now_ - start));
}

std::size_t
TieredMachine::poll_tx()
{
    if (tx_ == nullptr)
        return 0;
    auto& inflight = tx_->inflight;
    std::vector<TxState::Entry> due;
    for (std::size_t i = 0; i < inflight.size();) {
        if (inflight[i].commit_time <= now_) {
            due.push_back(inflight[i]);
            inflight[i] = inflight.back();
            inflight.pop_back();
        } else {
            ++i;
        }
    }
    // Deterministic commit order regardless of table layout.
    std::sort(due.begin(), due.end(),
              [](const TxState::Entry& x, const TxState::Entry& y) {
                  return x.commit_time != y.commit_time
                             ? x.commit_time < y.commit_time
                             : x.seq < y.seq;
              });
    for (const auto& entry : due)
        tx_commit_entry(entry);
    if (!tx_->resolved.empty()) {
        // Every machine-state change lands before any callback runs;
        // the handler may re-enter migrate()/exchange() and open new
        // transactions, which must not invalidate this iteration.
        std::vector<TxState::Resolved> events;
        events.swap(tx_->resolved);
        if (tx_handler_) {
            for (const auto& ev : events)
                tx_handler_(ev.page, ev.src, ev.dst, ev.committed);
        }
    }
    return due.size();
}

void
TieredMachine::install_faults(const FaultConfig& config)
{
    config.validate();
    if (!config.any_enabled()) {
        faults_.reset();
        if (tenants_ != nullptr)
            tenants_->set_fault_reservation(nullptr);
        return;
    }
    faults_ = std::make_unique<FaultInjector>(config, capacity_[0]);
    if (telemetry_ != nullptr)
        faults_->set_telemetry(telemetry_);
    if (tenants_ != nullptr)
        tenants_->set_fault_reservation(faults_.get());
}

void
TieredMachine::install_tenants(std::unique_ptr<TenantLedger> ledger)
{
    if (ledger == nullptr) {
        tenants_.reset();
        return;
    }
    if (ledger->page_count() != flags_.size())
        fatal("install_tenants: ledger covers ", ledger->page_count(),
              " pages but the machine has ", flags_.size());
    tenants_ = std::move(ledger);
    tenants_->set_fault_reservation(faults_.get());
    // Adopt pages already resident (a prefault that ran before the
    // install): charge the current primary census to the owners. The
    // ledger must be installed before any transactional copies exist.
    for (std::size_t page = 0; page < flags_.size(); ++page) {
        if (flags_[page] & kAllocatedBit) {
            tenants_->charge(static_cast<PageId>(page),
                             tier_of_unchecked(static_cast<PageId>(page)),
                             +1);
        }
    }
}

MigrateStatus
TieredMachine::tenant_check_migration(PageId page, Tier dst,
                                      bool charges_dst)
{
    const TenantDecision decision =
        tenants_->check_migration(page, dst, charges_dst);
    if (decision == TenantDecision::kAdmit)
        return MigrateStatus::kOk;
    const MigrateStatus status = decision == TenantDecision::kQuotaDenied
                                     ? MigrateStatus::kQuotaDenied
                                     : MigrateStatus::kAdmissionDenied;
    record_failure(status, page);
    return status;
}

MigrateStatus
TieredMachine::tenant_check_exchange(PageId a, PageId b, Tier ta)
{
    const PageId promoted = ta == Tier::kSlow ? a : b;
    const PageId demoted = ta == Tier::kSlow ? b : a;
    const TenantDecision decision =
        tenants_->check_exchange(promoted, demoted);
    if (decision == TenantDecision::kAdmit)
        return MigrateStatus::kOk;
    const MigrateStatus status = decision == TenantDecision::kQuotaDenied
                                     ? MigrateStatus::kQuotaDenied
                                     : MigrateStatus::kAdmissionDenied;
    record_failure(status, promoted);
    return status;
}

void
TieredMachine::set_telemetry(telemetry::Telemetry* telemetry)
{
    telemetry_ = telemetry;
    trace_migration_ = nullptr;
    metrics_ = nullptr;
    hist_migration_cost_ = 0;
    if (telemetry_ != nullptr) {
        trace_migration_ =
            telemetry_->trace(telemetry::Category::kMigration);
        metrics_ = telemetry_->metrics();
        if (metrics_ != nullptr) {
            // Observes the application-time charge per migration: one
            // 2 MiB page is ~110 µs of device time at the Table 2
            // bandwidths, so ~27 µs at the default 0.25 contention;
            // the upper buckets leave headroom for degradation windows
            // and double-copy exchanges.
            hist_migration_cost_ = metrics_->histogram(
                "migration.cost_ns",
                {25000.0, 50000.0, 100000.0, 200000.0, 400000.0});
        }
    }
    if (faults_ != nullptr)
        faults_->set_telemetry(telemetry_);
}

SimTimeNs
TieredMachine::stream(Tier tier, Bytes length)
{
    const double ns = static_cast<double>(length) /
                      config_.tiers[static_cast<int>(tier)].bandwidth_gbps;
    const auto delta = static_cast<SimTimeNs>(ns);
    now_ += delta;
    return delta;
}

bool
TieredMachine::test_and_clear_accessed(PageId page)
{
    std::uint8_t& flags = flags_[page];
    const bool was = (flags & kAccessedBit) != 0;
    flags &= static_cast<std::uint8_t>(~kAccessedBit);
    return was;
}

TieredMachine::Counters
TieredMachine::take_window()
{
    Counters out = window_;
    window_ = Counters{};
    return out;
}

}  // namespace artmem::memsim
